#include "registry/registry.hh"

#include <cctype>
#include <cstdio>

#include "flexon/config.hh"
#include "folded/program.hh"

namespace flexon {

std::string
IePlasticityConfig::validate() const
{
    if (!enabled)
        return "";
    if (eta <= 0.0 || eta > 1.0)
        return "ie.eta must be within (0, 1]";
    if (targetRate <= 0.0 || targetRate >= 1.0)
        return "ie.target_rate must be within (0, 1)";
    if (tau < 1.0)
        return "ie.tau must be >= 1 step";
    if (minOffset > maxOffset)
        return "ie.min_offset must not exceed ie.max_offset";
    return "";
}

ModelRegistry &
ModelRegistry::instance()
{
    static ModelRegistry *registry = [] {
        auto *r = new ModelRegistry();
        registerBuiltinModels(*r);
        return r;
    }();
    return *registry;
}

namespace {

std::string
nameProblem(const std::string &name)
{
    if (name.empty())
        return "model name must not be empty";
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '-' || c == '+' || c == '.')
            continue;
        return "model name '" + name +
               "' contains characters outside [A-Za-z0-9_+.-]";
    }
    return "";
}

bool
setError(std::string *error, const std::string &why)
{
    if (error != nullptr)
        *error = why;
    return false;
}

} // namespace

bool
ModelRegistry::registerModel(ModelDescriptor desc, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return registerLocked(std::move(desc), error);
}

bool
ModelRegistry::registerLocked(ModelDescriptor desc, std::string *error)
{
    const std::string bad = nameProblem(desc.name);
    if (!bad.empty())
        return setError(error, bad);
    if (byName_.count(desc.name) != 0) {
        return setError(error, "model '" + desc.name +
                                   "' is already registered");
    }

    const std::string paramsBad = desc.params.validate();
    if (!paramsBad.empty()) {
        return setError(error,
                        "model '" + desc.name + "': " + paramsBad);
    }
    // FlexonConfig::fromParams (and with it the folded lowering)
    // requires a membrane-decay MUX setting; NeuronParams::validate
    // deliberately allows decay-free sets for unit tests, so enforce
    // the hardware rule here where descriptors become simulatable.
    if (!desc.params.features.has(Feature::EXD) &&
        !desc.params.features.has(Feature::LID)) {
        return setError(error, "model '" + desc.name +
                                   "': a membrane decay feature (EXD "
                                   "or LID) is required");
    }

    // Derive the dispatch entry and the folded microcode metrics.
    // Lowering also structurally validates the program against the
    // Table IV field widths, so a descriptor that registers is known
    // to run on every engine.
    desc.kernel = selectStepKernel(desc.params.features);
    const FlexonConfig config = FlexonConfig::fromParams(desc.params);
    const MicrocodeProgram program = buildProgram(config);
    const std::string progBad =
        program.validate(config.numSynapseTypes);
    if (!progBad.empty()) {
        return setError(error, "model '" + desc.name +
                                   "': folded program invalid: " +
                                   progBad);
    }
    desc.microcodeOps = program.length();
    desc.microcodeLatency = program.latencyCycles();

    const std::string ieBad = desc.ie.validate();
    if (!ieBad.empty())
        return setError(error, "model '" + desc.name + "': " + ieBad);

    byName_.emplace(desc.name, models_.size());
    models_.push_back(
        std::make_unique<ModelDescriptor>(std::move(desc)));
    return true;
}

const ModelDescriptor *
ModelRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : models_[it->second].get();
}

std::vector<const ModelDescriptor *>
ModelRegistry::all() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const ModelDescriptor *> out;
    out.reserve(models_.size());
    for (const auto &m : models_)
        out.push_back(m.get());
    return out;
}

size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.size();
}

std::string
ModelRegistry::namesSummary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &m : models_) {
        if (!out.empty())
            out += ", ";
        out += m->name;
    }
    return out;
}

std::string
ModelRegistry::fingerprint() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t hash = 1469598103934665603ull; // FNV-1a offset basis
    const auto mix = [&hash](const std::string &s) {
        for (const char c : s) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ull; // FNV-1a prime
        }
        hash ^= 0xff;
        hash *= 1099511628211ull;
    };
    for (const auto &m : models_) {
        mix(m->name);
        mix(m->features().toString());
        mix(m->source);
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%zu:%016llx", models_.size(),
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace flexon
