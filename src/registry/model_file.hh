/**
 * @file
 * Loader for model-descriptor files (`flexon_sim --model-file`): a
 * JSON-subset document that registers additional neuron models into
 * the process registry by name, without touching the ModelKind enum.
 *
 * Format ("flexon-models-v1", parsed with common/json_lite.hh — no
 * arrays, so the per-synapse-type constants are nested objects):
 *
 *   {
 *     "schema": "flexon-models-v1",
 *     "models": {
 *       "LIFL_IE": {
 *         "doc": "LIF-with-latency + intrinsic excitability",
 *         "features": "LID+CUB+AR",
 *         "params": {
 *           "num_synapse_types": 2,
 *           "eps_m": 0.0, "v_leak": 0.002, "ar_steps": 20,
 *           "syn0": {"eps_g": 0.02, "v_g": 3.0},
 *           "syn1": {"eps_g": 0.02, "v_g": -1.0}
 *         },
 *         "ie": {"eta": 0.001, "target_rate": 0.02, "tau": 200,
 *                "min_offset": -0.5, "max_offset": 0.5}
 *       }
 *     }
 *   }
 *
 * Every "params" field defaults to the NeuronParams default; the
 * presence of an "ie" object enables intrinsic-excitability
 * plasticity for the model. Unknown keys are rejected (a typo that
 * silently falls back to a default would corrupt experiments).
 */

#ifndef FLEXON_REGISTRY_MODEL_FILE_HH
#define FLEXON_REGISTRY_MODEL_FILE_HH

#include <string>

namespace flexon {

class ModelRegistry;

/**
 * Parse `path` and register every model it describes into `registry`.
 * Returns the number of models registered, or -1 — with a diagnostic
 * in *error — on I/O failure, malformed JSON, schema mismatch, or any
 * descriptor the registry rejects (duplicates included). Models
 * registered before the failing entry stay registered.
 */
int loadModelFile(ModelRegistry &registry, const std::string &path,
                  std::string *error);

} // namespace flexon

#endif // FLEXON_REGISTRY_MODEL_FILE_HH
