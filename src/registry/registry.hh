/**
 * @file
 * The runtime model registry: the single owner of neuron-model
 * descriptors.
 *
 * Historically every layer that needed "a model" switched over
 * ModelKind and called modelFeatures()/defaultParams() directly, so
 * adding a model meant editing the enum, the two switches, the kernel
 * dispatch table, the CLI parser, and the network generators in
 * lockstep. The registry inverts that: a model is a *descriptor* —
 * name, feature mask, default parameters, folded microcode program
 * metrics, kernel-dispatch entry, optional plasticity hooks — and the
 * Table III zoo is merely the set of descriptors registered at
 * startup (from features/model_table.hh's builtinModelSeeds()). New
 * models register at runtime, typically from a `--model-file`
 * descriptor document (model_file.hh), and flow through the same
 * lookup paths as the built-ins: the CLI, the script frontend, the
 * network generators, and the simulator engines all resolve models by
 * name through ModelRegistry::find().
 *
 * Descriptors are immutable once registered and live for the process
 * lifetime, so `const ModelDescriptor *` handles stay valid without
 * holding the registry lock.
 */

#ifndef FLEXON_REGISTRY_REGISTRY_HH
#define FLEXON_REGISTRY_REGISTRY_HH

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "features/model_table.hh"
#include "features/params.hh"
#include "flexon/kernel.hh"

namespace flexon {

/**
 * Intrinsic-excitability plasticity configuration carried by a model
 * descriptor. When enabled, the simulator attaches an
 * IntrinsicExcitabilityRule (snn/plasticity.hh) that adapts each
 * neuron's firing threshold toward a target firing rate — the
 * homeostatic rule of LIFL-IE-style models. All values are in
 * normalized units / time steps.
 */
struct IePlasticityConfig
{
    bool enabled = false;
    double eta = 0.001;       ///< adaptation learning rate
    double targetRate = 0.02; ///< target firing probability per step
    double tau = 200.0;       ///< firing-rate EWMA time constant, steps
    double minOffset = -0.5;  ///< threshold offset clamp, lower bound
    double maxOffset = 0.5;   ///< threshold offset clamp, upper bound

    /** Empty string when valid, else the first problem found. */
    std::string validate() const;
};

/**
 * Everything the simulator layers need to know about one neuron
 * model. The feature mask lives inside `params.features`.
 */
struct ModelDescriptor
{
    std::string name;   ///< lookup key (unique, no whitespace)
    std::string doc;    ///< one-line provenance / description
    std::string source; ///< "builtin" or the descriptor-file path

    /** Set for the Table III zoo; runtime models have no enum. */
    std::optional<ModelKind> kind;

    /** Default normalized parameters; carries the feature mask. */
    NeuronParams params;

    /** Optional intrinsic-excitability plasticity hook. */
    IePlasticityConfig ie;

    // --- Derived at registration (never user-supplied) ---

    /** Batch step-kernel dispatch entry for the feature mask. */
    SelectedKernel kernel{};
    /** Spatially folded microcode length (control signals/step). */
    size_t microcodeOps = 0;
    /** Folded per-neuron evaluation latency in pipeline cycles. */
    size_t microcodeLatency = 0;

    bool builtin() const { return kind.has_value(); }
    FeatureSet features() const { return params.features; }
};

/**
 * Process-wide, thread-safe registry of model descriptors.
 *
 * instance() seeds the Table III zoo (plus baseline LIF) on first
 * use, so `find("AdEx")` works without any setup. Registration
 * validates the descriptor (unique name, legal feature combination,
 * legal parameters, folded program lowers cleanly) and derives the
 * kernel-dispatch and microcode fields; on failure nothing is
 * registered and *error describes the problem.
 */
class ModelRegistry
{
  public:
    /** The process-wide registry, builtins already seeded. */
    static ModelRegistry &instance();

    /**
     * Validate and register a descriptor. Returns false — with a
     * diagnostic in *error when given — on duplicate name, malformed
     * name, invalid feature combination or parameters, or a model
     * whose folded microcode fails structural validation.
     */
    bool registerModel(ModelDescriptor desc,
                       std::string *error = nullptr);

    /** Look up by name; nullptr when unknown. Pointer never dies. */
    const ModelDescriptor *find(const std::string &name) const;

    /** All descriptors, in registration order (builtins first). */
    std::vector<const ModelDescriptor *> all() const;

    size_t size() const;

    /**
     * Comma-separated registered names, for "unknown model" CLI
     * diagnostics.
     */
    std::string namesSummary() const;

    /**
     * Stable digest of the registered set (count plus an FNV-1a hash
     * over name/feature-mask/source triples). Recorded as benchmark
     * context so result comparisons can flag runs taken with
     * different model sets loaded.
     */
    std::string fingerprint() const;

  private:
    ModelRegistry() = default;

    bool registerLocked(ModelDescriptor desc, std::string *error);

    mutable std::mutex mutex_;
    /** unique_ptr keeps descriptor addresses stable across growth. */
    std::vector<std::unique_ptr<ModelDescriptor>> models_;
    std::unordered_map<std::string, size_t> byName_;
};

/**
 * Registry seeding from features/model_table.hh (registry/builtin.cc).
 * Called once by ModelRegistry::instance(); exposed for tests that
 * construct expectations from the seed rows.
 */
void registerBuiltinModels(ModelRegistry &registry);

} // namespace flexon

#endif // FLEXON_REGISTRY_REGISTRY_HH
