#include "registry/model_file.hh"

#include <fstream>
#include <sstream>

#include "common/json_lite.hh"
#include "registry/registry.hh"

namespace flexon {

namespace {

/** Parse a {"eps_g": ..., "v_g": ...} synapse-type object. */
bool
parseSynType(MiniJson &json, SynapseTypeParams &syn)
{
    return json.parseObject([&](const std::string &key) {
        if (key == "eps_g")
            return json.parseNumber(syn.epsG);
        if (key == "v_g")
            return json.parseNumber(syn.vG);
        return json.fail("unknown synapse-type field '" + key + "'");
    });
}

bool
parseParams(MiniJson &json, NeuronParams &p)
{
    return json.parseObject([&](const std::string &key) {
        double value = 0.0;
        if (key == "num_synapse_types") {
            if (!json.parseNumber(value))
                return false;
            p.numSynapseTypes = static_cast<size_t>(value);
            return true;
        }
        if (key == "ar_steps") {
            if (!json.parseNumber(value))
                return false;
            p.arSteps = static_cast<uint32_t>(value);
            return true;
        }
        if (key == "syn0")
            return parseSynType(json, p.syn[0]);
        if (key == "syn1")
            return parseSynType(json, p.syn[1]);
        if (key == "syn2")
            return parseSynType(json, p.syn[2]);
        if (key == "syn3")
            return parseSynType(json, p.syn[3]);

        double *field = nullptr;
        if (key == "eps_m")
            field = &p.epsM;
        else if (key == "v_leak")
            field = &p.vLeak;
        else if (key == "delta_t")
            field = &p.deltaT;
        else if (key == "v_crit")
            field = &p.vCrit;
        else if (key == "v_firing")
            field = &p.vFiring;
        else if (key == "eps_w")
            field = &p.epsW;
        else if (key == "a")
            field = &p.a;
        else if (key == "v_w")
            field = &p.vW;
        else if (key == "b")
            field = &p.b;
        else if (key == "eps_r")
            field = &p.epsR;
        else if (key == "v_rr")
            field = &p.vRR;
        else if (key == "v_ar")
            field = &p.vAR;
        else if (key == "q_r")
            field = &p.qR;
        if (field == nullptr)
            return json.fail("unknown params field '" + key + "'");
        return json.parseNumber(*field);
    });
}

bool
parseIe(MiniJson &json, IePlasticityConfig &ie)
{
    ie.enabled = true;
    return json.parseObject([&](const std::string &key) {
        double *field = nullptr;
        if (key == "eta")
            field = &ie.eta;
        else if (key == "target_rate")
            field = &ie.targetRate;
        else if (key == "tau")
            field = &ie.tau;
        else if (key == "min_offset")
            field = &ie.minOffset;
        else if (key == "max_offset")
            field = &ie.maxOffset;
        if (field == nullptr)
            return json.fail("unknown ie field '" + key + "'");
        return json.parseNumber(*field);
    });
}

bool
parseModel(MiniJson &json, const std::string &name,
           const std::string &path, ModelDescriptor &desc,
           bool &sawFeatures)
{
    desc.name = name;
    desc.source = path;
    return json.parseObject([&](const std::string &key) {
        if (key == "doc")
            return json.parseString(desc.doc);
        if (key == "features") {
            std::string text;
            if (!json.parseString(text))
                return false;
            std::string badToken;
            const auto set = featureSetFromString(text, &badToken);
            if (!set) {
                return json.fail("model '" + name +
                                 "': unknown feature '" + badToken +
                                 "' in \"" + text + "\"");
            }
            desc.params.features = *set;
            sawFeatures = true;
            return true;
        }
        if (key == "params")
            return parseParams(json, desc.params);
        if (key == "ie")
            return parseIe(json, desc.ie);
        return json.fail("model '" + name + "': unknown field '" +
                         key + "'");
    });
}

} // namespace

int
loadModelFile(ModelRegistry &registry, const std::string &path,
              std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error != nullptr)
            *error = "cannot open model file '" + path + "'";
        return -1;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    MiniJson json(text);
    bool sawSchema = false;
    int registered = 0;
    std::string registerError;

    const bool ok =
        json.parseObject([&](const std::string &key) {
            if (key == "schema") {
                std::string schema;
                if (!json.parseString(schema))
                    return false;
                if (schema != "flexon-models-v1") {
                    return json.fail("unsupported schema '" + schema +
                                     "' (expected flexon-models-v1)");
                }
                sawSchema = true;
                return true;
            }
            if (key == "models") {
                return json.parseObject([&](const std::string &name) {
                    ModelDescriptor desc;
                    bool sawFeatures = false;
                    if (!parseModel(json, name, path, desc,
                                    sawFeatures))
                        return false;
                    if (!sawFeatures) {
                        return json.fail("model '" + name +
                                         "' lacks a \"features\" "
                                         "field");
                    }
                    if (!registry.registerModel(std::move(desc),
                                                &registerError))
                        return json.fail(registerError);
                    ++registered;
                    return true;
                });
            }
            return json.fail("unknown top-level field '" + key + "'");
        }) &&
        json.atEnd() && (sawSchema || json.fail("missing \"schema\""));

    if (!ok) {
        if (error != nullptr)
            *error = path + ": " + json.error();
        return -1;
    }
    return registered;
}

} // namespace flexon
