/**
 * @file
 * Registry seeding: turn the Table III zoo (features/model_table.hh)
 * into registered descriptors. This is the only translation between
 * the ModelKind enum world and the name-keyed registry world; every
 * other layer resolves models through ModelRegistry::find().
 */

#include "common/logging.hh"
#include "registry/registry.hh"

namespace flexon {

void
registerBuiltinModels(ModelRegistry &registry)
{
    for (const BuiltinModelSeed &seed : builtinModelSeeds()) {
        ModelDescriptor desc;
        desc.name = seed.name;
        desc.doc = seed.doc;
        desc.source = "builtin";
        desc.kind = seed.kind;
        desc.params = seed.params;
        std::string error;
        if (!registry.registerModel(std::move(desc), &error))
            panic("builtin model seed rejected: %s", error.c_str());
    }
}

} // namespace flexon
