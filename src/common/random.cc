#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexon {

namespace {

/** splitmix64 step, used for seeding and splitting. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // xoshiro must not be seeded with all zeros; splitmix64 of any seed
    // cannot produce four zero outputs, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    flexon_assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = max() - max() % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double rate)
{
    flexon_assert(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

uint64_t
Rng::poisson(double mean)
{
    flexon_assert(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product-of-uniforms method.
        const double limit = std::exp(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation for large means (adequate for stimulus use).
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

Rng
Rng::split()
{
    uint64_t child_seed = next() ^ 0xd1b54a32d192ed03ULL;
    return Rng(child_seed);
}

RngState
Rng::state() const
{
    RngState st;
    for (size_t i = 0; i < st.s.size(); ++i)
        st.s[i] = s_[i];
    st.cachedNormal = cachedNormal_;
    st.hasCachedNormal = hasCachedNormal_;
    return st;
}

void
Rng::setState(const RngState &state)
{
    if ((state.s[0] | state.s[1] | state.s[2] | state.s[3]) == 0)
        fatal("Rng::setState: all-zero xoshiro state is invalid");
    for (size_t i = 0; i < state.s.size(); ++i)
        s_[i] = state.s[i];
    cachedNormal_ = state.cachedNormal;
    hasCachedNormal_ = state.hasCachedNormal;
}

} // namespace flexon
