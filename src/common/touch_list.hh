/**
 * @file
 * A budgeted touch list: records which keys of a dense array were
 * dirtied so the owner can later undo (clear) only those, with a
 * running cost estimate and a saturation budget. Once the
 * accumulated cost reaches the budget the keys stop being stored —
 * the cost keeps counting, and the owner is expected to fall back to
 * a dense wipe (which needs no key list). Used by the spike router
 * for activity-proportional ring-slot clearing.
 */

#ifndef FLEXON_COMMON_TOUCH_LIST_HH
#define FLEXON_COMMON_TOUCH_LIST_HH

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace flexon {

class TouchList
{
  public:
    explicit TouchList(
        uint64_t budget = std::numeric_limits<uint64_t>::max())
        : budget_(budget)
    {
    }

    void setBudget(uint64_t budget) { budget_ = budget; }

    /**
     * Record a touched key whose undo costs `cost` units. Keys added
     * after the budget is exhausted are counted but not stored.
     */
    void
    add(uint64_t key, uint64_t cost)
    {
        if (cost_ < budget_)
            keys_.push_back(key);
        cost_ += cost;
    }

    /** Total undo cost recorded since the last clear(). */
    uint64_t cost() const { return cost_; }

    /** True once keys() no longer covers every touched key. */
    bool saturated() const { return cost_ >= budget_; }

    /** The recorded keys; complete only while !saturated(). */
    std::span<const uint64_t> keys() const { return keys_; }

    bool empty() const { return cost_ == 0; }

    /** Forget all keys and cost; capacity is retained. */
    void
    clear()
    {
        keys_.clear();
        cost_ = 0;
    }

    /**
     * Replace the contents with a previously captured (keys, cost)
     * pair — the checkpoint/restore path. A saturated list round
     * trips exactly: cost >= budget with an incomplete key list keeps
     * forcing the dense-clear fallback after restore.
     */
    void
    restore(std::vector<uint64_t> keys, uint64_t cost)
    {
        keys_ = std::move(keys);
        cost_ = cost;
    }

  private:
    std::vector<uint64_t> keys_;
    uint64_t cost_ = 0;
    uint64_t budget_;
};

} // namespace flexon

#endif // FLEXON_COMMON_TOUCH_LIST_HH
