#include "common/telemetry.hh"

#include <chrono>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {
namespace telemetry {

namespace internal {
std::atomic<bool> gDetail{false};
std::atomic<bool> gTrace{false};
} // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

/** Guards gConfig and the trace-buffer directory. */
std::mutex &
stateMutex()
{
    static std::mutex m;
    return m;
}

TelemetryConfig gConfig;

/** One buffered span event; `name` must be a long-lived string. */
struct TraceEventRecord
{
    const char *name;
    uint64_t ts;
    uint32_t tid;
    char ph;
};

/** One thread's private span buffer, owned by the global directory
 *  (it must outlive the thread for writeTraceJson). */
struct TraceBuffer
{
    std::vector<TraceEventRecord> events;
    uint64_t dropped = 0;
    uint32_t tid = 0;
    size_t capacity = 0;
};

std::vector<std::unique_ptr<TraceBuffer>> &
traceBuffers()
{
    static std::vector<std::unique_ptr<TraceBuffer>> buffers;
    return buffers;
}

std::atomic<uint32_t> gNextTid{0};

TraceBuffer &
threadTraceBuffer()
{
    thread_local TraceBuffer *buffer = nullptr;
    if (buffer == nullptr) {
        auto owned = std::make_unique<TraceBuffer>();
        buffer = owned.get();
        std::lock_guard<std::mutex> guard(stateMutex());
        buffer->tid =
            gNextTid.fetch_add(1, std::memory_order_relaxed);
        buffer->capacity = gConfig.traceCapacity;
        traceBuffers().push_back(std::move(owned));
    }
    return *buffer;
}

void
appendTraceEvent(const char *name, char ph)
{
    TraceBuffer &buffer = threadTraceBuffer();
    if (buffer.events.size() >= buffer.capacity) {
        ++buffer.dropped;
        return;
    }
    buffer.events.push_back({name, nowNanos(), buffer.tid, ph});
}

} // namespace

uint64_t
nowNanos()
{
    static const Clock::time_point epoch = Clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

size_t
threadShard()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % numShards;
    return shard;
}

void
configure(const TelemetryConfig &config)
{
    {
        std::lock_guard<std::mutex> guard(stateMutex());
        gConfig = config;
        // Already-registered thread buffers keep their old capacity;
        // new threads pick up the new bound.
    }
    internal::gDetail.store(config.detail,
                            std::memory_order_relaxed);
    internal::gTrace.store(config.trace, std::memory_order_relaxed);
}

TelemetryConfig
config()
{
    std::lock_guard<std::mutex> guard(stateMutex());
    return gConfig;
}

// ---------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------

uint64_t
Counter::value() const
{
    uint64_t sum = 0;
    for (const Slot &slot : slots_)
        sum += slot.v.load(std::memory_order_relaxed);
    return sum;
}

void
Counter::reset()
{
    for (Slot &slot : slots_)
        slot.v.store(0, std::memory_order_relaxed);
}

void
Gauge::add(double x)
{
    double current = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(current, current + x,
                                     std::memory_order_relaxed)) {
    }
}

uint64_t
Timer::nanos() const
{
    uint64_t sum = 0;
    for (const Slot &slot : slots_)
        sum += slot.ns.load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Timer::count() const
{
    uint64_t sum = 0;
    for (const Slot &slot : slots_)
        sum += slot.count.load(std::memory_order_relaxed);
    return sum;
}

void
Timer::reset()
{
    for (Slot &slot : slots_) {
        slot.ns.store(0, std::memory_order_relaxed);
        slot.count.store(0, std::memory_order_relaxed);
    }
}

HistogramMetric::HistogramMetric(std::string name, std::string desc,
                                 double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), name_(std::move(name)),
      desc_(std::move(desc))
{
    const Histogram proto(lo, hi, bins);
    shards_.reserve(numShards);
    for (size_t i = 0; i < numShards; ++i)
        shards_.push_back(std::make_unique<Shard>(proto));
}

void
HistogramMetric::sample(double x)
{
    Shard &shard = *shards_[threadShard()];
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.hist.add(x);
}

Histogram
HistogramMetric::merged() const
{
    Histogram out(lo_, hi_, bins_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        out.merge(shard->hist);
    }
    return out;
}

uint64_t
HistogramMetric::total() const
{
    return merged().total();
}

void
HistogramMetric::reset()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard->mutex);
        shard->hist = Histogram(lo_, hi_, bins_);
    }
}

// ---------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

namespace {

/** A metric name maps to exactly one type across all four maps. */
template <typename Map, typename... Others>
void
checkNameFree(const std::string &name, const Map &map,
              const Others &...others)
{
    if (map.find(name) != map.end()) {
        panic("telemetry metric '%s' already registered as a "
              "different type",
              name.c_str());
    }
    if constexpr (sizeof...(others) > 0)
        checkNameFree(name, others...);
}

} // namespace

Counter &
Registry::counter(std::string_view name, std::string_view desc)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end())
        return *it->second;
    std::string key(name);
    checkNameFree(key, gauges_, timers_, histograms_);
    auto [pos, inserted] = counters_.emplace(
        key, std::unique_ptr<Counter>(
                 new Counter(key, std::string(desc))));
    return *pos->second;
}

Gauge &
Registry::gauge(std::string_view name, std::string_view desc)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end())
        return *it->second;
    std::string key(name);
    checkNameFree(key, counters_, timers_, histograms_);
    auto [pos, inserted] = gauges_.emplace(
        key,
        std::unique_ptr<Gauge>(new Gauge(key, std::string(desc))));
    return *pos->second;
}

Timer &
Registry::timer(std::string_view name, std::string_view desc)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = timers_.find(name);
    if (it != timers_.end())
        return *it->second;
    std::string key(name);
    checkNameFree(key, counters_, gauges_, histograms_);
    auto [pos, inserted] = timers_.emplace(
        key,
        std::unique_ptr<Timer>(new Timer(key, std::string(desc))));
    return *pos->second;
}

HistogramMetric &
Registry::histogram(std::string_view name, double lo, double hi,
                    size_t bins, std::string_view desc)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        flexon_assert(it->second->lo() == lo &&
                      it->second->hi() == hi &&
                      it->second->bins() == bins);
        return *it->second;
    }
    std::string key(name);
    checkNameFree(key, counters_, gauges_, timers_);
    auto [pos, inserted] = histograms_.emplace(
        key, std::unique_ptr<HistogramMetric>(new HistogramMetric(
                 key, std::string(desc), lo, hi, bins)));
    return *pos->second;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &[name, metric] : counters_)
        metric->reset();
    for (auto &[name, metric] : gauges_)
        metric->reset();
    for (auto &[name, metric] : timers_)
        metric->reset();
    for (auto &[name, metric] : histograms_)
        metric->reset();
}

std::vector<std::pair<std::string, uint64_t>>
Registry::counterValues() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, metric] : counters_)
        out.emplace_back(name, metric->value());
    return out;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, metric] : counters_)
        snap.counters.emplace_back(name, metric->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, metric] : gauges_)
        snap.gauges.emplace_back(name, metric->value());
    snap.timers.reserve(timers_.size());
    for (const auto &[name, metric] : timers_)
        snap.timers.emplace_back(
            name, TimerValue{metric->seconds(), metric->count()});
    return snap;
}

namespace {

std::string
indentOf(int n)
{
    return std::string(static_cast<size_t>(n), ' ');
}

} // namespace

void
Registry::writeJson(std::ostream &os, int indent) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const std::string pad = indentOf(indent);
    const std::string pad1 = indentOf(indent + 2);
    const std::string pad2 = indentOf(indent + 4);

    os << "{\n";
    os << pad1 << "\"counters\": {";
    bool first = true;
    for (const auto &[name, metric] : counters_) {
        os << (first ? "\n" : ",\n")
           << pad2 << jsonQuoted(name) << ": " << metric->value();
        first = false;
    }
    os << (first ? "" : "\n" + pad1) << "},\n";

    os << pad1 << "\"gauges\": {";
    first = true;
    for (const auto &[name, metric] : gauges_) {
        os << (first ? "\n" : ",\n") << pad2 << jsonQuoted(name)
           << ": " << jsonNumber(metric->value());
        first = false;
    }
    os << (first ? "" : "\n" + pad1) << "},\n";

    os << pad1 << "\"timers\": {";
    first = true;
    for (const auto &[name, metric] : timers_) {
        os << (first ? "\n" : ",\n") << pad2 << jsonQuoted(name)
           << ": {\"seconds\": " << jsonNumber(metric->seconds())
           << ", \"count\": " << metric->count() << "}";
        first = false;
    }
    os << (first ? "" : "\n" + pad1) << "},\n";

    os << pad1 << "\"histograms\": {";
    first = true;
    for (const auto &[name, metric] : histograms_) {
        const Histogram merged = metric->merged();
        os << (first ? "\n" : ",\n") << pad2 << jsonQuoted(name)
           << ": {\"lo\": " << jsonNumber(merged.lo())
           << ", \"hi\": " << jsonNumber(merged.hi())
           << ", \"total\": " << merged.total() << ", \"bins\": [";
        for (size_t i = 0; i < merged.bins(); ++i)
            os << (i ? ", " : "") << merged.binCount(i);
        os << "], \"p50\": " << jsonNumber(merged.percentile(50))
           << ", \"p90\": " << jsonNumber(merged.percentile(90))
           << ", \"p99\": " << jsonNumber(merged.percentile(99))
           << "}";
        first = false;
    }
    os << (first ? "" : "\n" + pad1) << "}\n";
    os << pad << "}";
}

// ---------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------

void
traceBegin(const char *name)
{
    appendTraceEvent(name, 'B');
}

void
traceEnd(const char *name)
{
    appendTraceEvent(name, 'E');
}

void
traceInstant(const char *name)
{
    appendTraceEvent(name, 'i');
}

size_t
traceEventCount()
{
    std::lock_guard<std::mutex> guard(stateMutex());
    size_t count = 0;
    for (const auto &buffer : traceBuffers())
        count += buffer->events.size();
    return count;
}

uint64_t
traceDropped()
{
    std::lock_guard<std::mutex> guard(stateMutex());
    uint64_t dropped = 0;
    for (const auto &buffer : traceBuffers())
        dropped += buffer->dropped;
    return dropped;
}

void
clearTrace()
{
    std::lock_guard<std::mutex> guard(stateMutex());
    for (auto &buffer : traceBuffers()) {
        buffer->events.clear();
        buffer->dropped = 0;
    }
}

void
writeTraceJson(std::ostream &os)
{
    std::lock_guard<std::mutex> guard(stateMutex());
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const auto &buffer : traceBuffers()) {
        for (const TraceEventRecord &event : buffer->events) {
            os << (first ? "\n" : ",\n");
            // ts is microseconds in the Chrome trace-event format.
            os << "{\"name\": " << jsonQuoted(event.name)
               << ", \"ph\": \"" << event.ph
               << "\", \"ts\": "
               << jsonNumber(static_cast<double>(event.ts) / 1e3)
               << ", \"pid\": 0, \"tid\": " << event.tid;
            // Instant events need a scope; "t" pins the marker to
            // its thread track in the viewer.
            if (event.ph == 'i')
                os << ", \"s\": \"t\"";
            os << "}";
            first = false;
        }
    }
    os << (first ? "" : "\n")
       << "], \"displayTimeUnit\": \"ms\"}\n";
}

bool
writeTraceFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        warn("telemetry: cannot open trace file '%s'", path.c_str());
        return false;
    }
    writeTraceJson(os);
    return os.good();
}

// ---------------------------------------------------------------
// Run-report JSON.
// ---------------------------------------------------------------

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuoted(std::string_view s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double x)
{
    if (!std::isfinite(x))
        return "null";
    std::ostringstream oss;
    oss.precision(12);
    oss << x;
    const std::string out = oss.str();
    // Bare integers are valid JSON numbers already; nothing to fix.
    return out;
}

namespace {

void
writeFields(std::ostream &os, const ReportFields &fields,
            int indent)
{
    const std::string pad = indentOf(indent);
    os << "{";
    bool first = true;
    for (const auto &[key, value] : fields) {
        os << (first ? "\n" : ",\n") << pad << jsonQuoted(key)
           << ": " << value;
        first = false;
    }
    os << (first ? "" : "\n" + indentOf(indent - 2)) << "}";
}

ReportFields
buildFields()
{
    ReportFields build;
#if defined(__VERSION__)
    build.emplace_back("compiler", jsonQuoted(__VERSION__));
#else
    build.emplace_back("compiler", jsonQuoted("unknown"));
#endif
    build.emplace_back("cxx_standard",
                       std::to_string(__cplusplus));
#ifdef NDEBUG
    build.emplace_back("assertions", "false");
#else
    build.emplace_back("assertions", "true");
#endif
    return build;
}

ReportFields
telemetryFields()
{
    const TelemetryConfig cfg = config();
    ReportFields fields;
    fields.emplace_back("detail", cfg.detail ? "true" : "false");
    fields.emplace_back("trace", cfg.trace ? "true" : "false");
    fields.emplace_back("trace_events",
                        std::to_string(traceEventCount()));
    fields.emplace_back("trace_dropped",
                        std::to_string(traceDropped()));
    return fields;
}

ReportFields
poolFields()
{
    const ThreadPool::TelemetrySnapshot snap =
        ThreadPool::global().telemetrySnapshot();
    ReportFields fields;
    fields.emplace_back("workers",
                        std::to_string(snap.workers));
    fields.emplace_back("dispatches",
                        std::to_string(snap.dispatches));
    fields.emplace_back("chunks", std::to_string(snap.chunks));
    fields.emplace_back("busy_ns", std::to_string(snap.busyNs));
    fields.emplace_back("dispatch_wall_ns",
                        std::to_string(snap.wallNs));
    fields.emplace_back("lane_ns", std::to_string(snap.laneNs));
    // Fraction of the lanes' allotted wall time spent in chunks:
    // 1.0 = perfectly balanced, lower = imbalance or barrier idle.
    const double efficiency =
        snap.laneNs > 0
            ? static_cast<double>(snap.busyNs) /
                  static_cast<double>(snap.laneNs)
            : 0.0;
    fields.emplace_back("parallel_efficiency",
                        jsonNumber(efficiency));
    std::string busy = "[";
    std::string chunks = "[";
    for (size_t i = 0; i < snap.laneBusyNs.size(); ++i) {
        busy += (i ? ", " : "") + std::to_string(snap.laneBusyNs[i]);
        chunks +=
            (i ? ", " : "") + std::to_string(snap.laneChunks[i]);
    }
    fields.emplace_back("lane_busy_ns", busy + "]");
    fields.emplace_back("lane_chunks", chunks + "]");
    return fields;
}

} // namespace

void
writeReportJson(std::ostream &os, const ReportContext &context)
{
    os << "{\n";
    os << "  \"schema\": \"flexon-run-report-v5\",\n";
    os << "  \"build\": ";
    writeFields(os, buildFields(), 4);
    os << ",\n  \"telemetry\": ";
    writeFields(os, telemetryFields(), 4);
    os << ",\n  \"config\": ";
    writeFields(os, context.config, 4);
    os << ",\n  \"stats\": ";
    writeFields(os, context.stats, 4);
    for (const auto &[name, fields] : context.sections) {
        os << ",\n  " << jsonQuoted(name) << ": ";
        writeFields(os, fields, 4);
    }
    os << ",\n  \"pool\": ";
    writeFields(os, poolFields(), 4);
    if (context.metrics != nullptr) {
        os << ",\n  \"metrics\": ";
        context.metrics->writeJson(os, 2);
    }
    os << ",\n  \"global_metrics\": ";
    Registry::global().writeJson(os, 2);
    os << "\n}\n";
}

bool
writeReportFile(const std::string &path,
                const ReportContext &context)
{
    std::ofstream os(path);
    if (!os) {
        warn("telemetry: cannot open report file '%s'",
             path.c_str());
        return false;
    }
    writeReportJson(os, context);
    return os.good();
}

} // namespace telemetry
} // namespace flexon
