#include "common/debug.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace flexon {
namespace debug {

namespace {

std::set<std::string> &
flags()
{
    static std::set<std::string> set = [] {
        std::set<std::string> initial;
        if (const char *env = std::getenv("FLEXON_DEBUG")) {
            std::istringstream iss(env);
            std::string flag;
            while (std::getline(iss, flag, ','))
                if (!flag.empty())
                    initial.insert(flag);
        }
        return initial;
    }();
    return set;
}

std::mutex &
mutex()
{
    static std::mutex m;
    return m;
}

} // namespace

bool
enabled(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(mutex());
    const auto &set = flags();
    return set.count(flag) > 0 || set.count("All") > 0;
}

void
enable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(mutex());
    flags().insert(flag);
}

void
disable(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(mutex());
    flags().erase(flag);
    flags().erase("All");
}

void
print(const char *flag, const char *fmt, ...)
{
    std::fprintf(stderr, "%s: ", flag);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace debug
} // namespace flexon
