/**
 * @file
 * Minimal recursive-descent parser for the JSON subset the project's
 * config documents use: objects whose values are numbers, strings,
 * booleans/null, or nested objects of the same shape. No arrays, no
 * escapes beyond \" and \\ (version/host/model strings never need
 * more). Whitespace per RFC 8259.
 *
 * Hoisted out of src/plan/calibration.cc once the model-descriptor
 * loader (src/registry/model_file.cc) became the second consumer —
 * one tiny parser, shared, instead of N ad-hoc copies. Parsing is
 * non-throwing: the first failure latches failed()/error() and every
 * later call returns false, so callers chain parse steps and check
 * once at the end.
 */

#ifndef FLEXON_COMMON_JSON_LITE_HH
#define FLEXON_COMMON_JSON_LITE_HH

#include <string>

namespace flexon {

/** See the file comment for the supported JSON subset. */
class MiniJson
{
  public:
    /** The text must outlive the parser (held by reference). */
    explicit MiniJson(const std::string &text) : text_(text) {}

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

    void skipWs();

    /** Consume one expected character (after whitespace). */
    bool expect(char c);

    /** True when the next non-whitespace character is `c`. */
    bool peek(char c);

    bool parseString(std::string &out);
    bool parseNumber(double &out);

    /**
     * Parse an object, invoking onField(key) positioned at the
     * value; onField must consume the value (or return false to
     * fail). Unknown keys are skipped via skipValue by the caller.
     */
    template <typename Fn>
    bool parseObject(Fn &&onField)
    {
        if (!expect('{'))
            return false;
        if (peek('}')) {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            if (!onField(key))
                return false;
            if (peek(',')) {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    /** Skip any value of the supported subset (for unknown keys). */
    bool skipValue();

    /**
     * After a successful top-level parse: require only whitespace to
     * the end of the document (rejects trailing garbage).
     */
    bool atEnd();

    /** Latch the first failure with a byte-offset diagnostic. */
    bool fail(const std::string &why);

  private:
    const std::string &text_;
    size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

/** Backslash-escape the characters MiniJson's parseString handles. */
std::string jsonEscaped(const std::string &s);

} // namespace flexon

#endif // FLEXON_COMMON_JSON_LITE_HH
