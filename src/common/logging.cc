#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <fstream>
#include <mutex>
#include <vector>

namespace flexon {
namespace {

std::atomic<LogLevel> gMinLevel{LogLevel::Info};

/**
 * JSONL sink state. A plain mutex (not the telemetry stateMutex):
 * logging sits below telemetry in the layering and must stay usable
 * from anywhere, including telemetry itself.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

struct JsonlSink {
    std::ofstream stream;
    uint64_t lines = 0;
};

JsonlSink &
jsonlSink()
{
    static JsonlSink sink;
    return sink;
}

/** Minimal JSON string escape (logging cannot depend on telemetry). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "unknown";
}

void
setLogMinLevel(LogLevel level)
{
    gMinLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logMinLevel()
{
    return gMinLevel.load(std::memory_order_relaxed);
}

bool
setLogJsonlPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    JsonlSink &sink = jsonlSink();
    if (sink.stream.is_open())
        sink.stream.close();
    sink.lines = 0;
    if (path.empty())
        return true;
    sink.stream.open(path, std::ios::out | std::ios::trunc);
    if (!sink.stream.is_open()) {
        std::fprintf(stderr, "warn: cannot open log sink '%s'\n",
                     path.c_str());
        return false;
    }
    return true;
}

uint64_t
logJsonlLines()
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    return jsonlSink().lines;
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
emit(LogLevel level, const std::string &msg, const char *component)
{
    // Fatal/Panic always emit; Info/Warn honor the level filter.
    if (level < logMinLevel() && level < LogLevel::Fatal)
        return;
    const char *prefix = "";
    switch (level) {
      case LogLevel::Info: prefix = "info: "; break;
      case LogLevel::Warn: prefix = "warn: "; break;
      case LogLevel::Fatal: prefix = "fatal: "; break;
      case LogLevel::Panic: prefix = "panic: "; break;
    }
    if (component != nullptr && component[0] != '\0')
        std::fprintf(stderr, "%s[%s] %s\n", prefix, component,
                     msg.c_str());
    else
        std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());

    std::lock_guard<std::mutex> lock(sinkMutex());
    JsonlSink &sink = jsonlSink();
    if (!sink.stream.is_open())
        return;
    sink.stream << "{\"seq\":" << sink.lines << ",\"level\":\""
                << logLevelName(level) << "\"";
    if (component != nullptr && component[0] != '\0')
        sink.stream << ",\"component\":\"" << escapeJson(component)
                    << "\"";
    sink.stream << ",\"msg\":\"" << escapeJson(msg) << "\"}\n";
    sink.stream.flush();
    ++sink.lines;
}

void
fatalImpl(const std::string &msg)
{
    emit(LogLevel::Fatal, msg);
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    emit(LogLevel::Panic, msg);
    std::abort();
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit(LogLevel::Info, detail::vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit(LogLevel::Warn, detail::vformat(fmt, ap));
    va_end(ap);
}

void
logTagged(LogLevel level, const char *component, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    if (level == LogLevel::Fatal)
        detail::fatalImpl(msg);
    if (level == LogLevel::Panic)
        detail::panicImpl(msg);
    detail::emit(level, msg, component);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::fatalImpl(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::panicImpl(msg);
}

} // namespace flexon
