#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace flexon {
namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
emit(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    switch (level) {
      case LogLevel::Info: prefix = "info: "; break;
      case LogLevel::Warn: prefix = "warn: "; break;
      case LogLevel::Fatal: prefix = "fatal: "; break;
      case LogLevel::Panic: prefix = "panic: "; break;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

void
fatalImpl(const std::string &msg)
{
    emit(LogLevel::Fatal, msg);
    std::exit(1);
}

void
panicImpl(const std::string &msg)
{
    emit(LogLevel::Panic, msg);
    std::abort();
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit(LogLevel::Info, detail::vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::emit(LogLevel::Warn, detail::vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::fatalImpl(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::panicImpl(msg);
}

} // namespace flexon
