/**
 * @file
 * Status and error reporting helpers in the style of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, invalid arguments);
 * panic() is for internal invariant violations that should never happen
 * regardless of user input. inform()/warn() report status without
 * terminating.
 *
 * Structured sinks (PR 9): messages can carry a component tag
 * (logTagged), the minimum emitted severity is configurable
 * (setLogMinLevel), and an optional JSONL sink mirrors every emitted
 * line as one machine-parseable JSON object — the form the health
 * detectors use so their firings can be grepped and post-processed
 * without scraping stderr prose.
 */

#ifndef FLEXON_COMMON_LOGGING_HH
#define FLEXON_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace flexon {

/** Severity of a log message. */
enum class LogLevel { Info, Warn, Fatal, Panic };

/** Human-readable name of a severity ("info", "warn", ...). */
const char *logLevelName(LogLevel level);

/**
 * Drop messages below this severity (Fatal/Panic always emit). The
 * filter applies to the stderr sink and the JSONL sink alike.
 */
void setLogMinLevel(LogLevel level);
LogLevel logMinLevel();

/**
 * Mirror every emitted message into `path` as JSON Lines, one object
 * per message: {"seq":N,"level":"warn","component":"health",
 * "msg":"..."}. An empty path closes the sink. Returns false (and
 * warns) when the file cannot be opened.
 */
bool setLogJsonlPath(const std::string &path);

/** Number of lines written to the JSONL sink since it was opened. */
uint64_t logJsonlLines();

/**
 * Tagged variant of inform()/warn(): the component name lands in the
 * stderr prefix ("warn: [health] ...") and in the JSONL record.
 * Fatal/Panic severities terminate exactly like fatal()/panic().
 */
void logTagged(LogLevel level, const char *component, const char *fmt,
               ...) __attribute__((format(printf, 3, 4)));

namespace detail {

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/**
 * Emit a formatted message with a severity prefix to stderr and the
 * JSONL sink. `component` may be nullptr (untagged message).
 */
void emit(LogLevel level, const std::string &msg,
          const char *component = nullptr);

/** Emit a message and terminate via exit(1) (user error). */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Emit a message and terminate via abort() (internal bug). */
[[noreturn]] void panicImpl(const std::string &msg);

} // namespace detail

/** Report a normal, informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Terminate due to a user error (exit code 1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Terminate due to an internal invariant violation (abort). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an internal invariant; panics with location info on failure.
 * Active in all build types (simulator correctness beats a branch).
 */
#define flexon_assert(cond)                                               \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::flexon::panic("assertion '%s' failed at %s:%d", #cond,      \
                            __FILE__, __LINE__);                          \
        }                                                                 \
    } while (0)

/**
 * Debug-build-only invariant check: like flexon_assert, but compiled
 * out under NDEBUG. For conditions worth checking continuously in
 * development but too hot (or too statistical) for release builds.
 */
#ifdef NDEBUG
#define flexon_debug_assert(cond) ((void)0)
#else
#define flexon_debug_assert(cond) flexon_assert(cond)
#endif

} // namespace flexon

#endif // FLEXON_COMMON_LOGGING_HH
