/**
 * @file
 * Low-overhead telemetry: a registry of named metrics plus a
 * Chrome-trace flight recorder.
 *
 * Three perf PRs in a row (thread pool, SoA kernels, routing tables)
 * were tuned through a hand-grown PhaseStats struct and printf-style
 * printStats; seeing *inside* a phase (per-lane imbalance, ring
 * occupancy, kernel dispatch mix) meant recompiling. This layer makes
 * that observability first class, the way gem5's Stats / NEST's
 * per-VP counters do:
 *
 *   - **Metrics registry** (`Registry`): named monotonic counters,
 *     gauges, scoped timers and fixed-bin histograms. Counter and
 *     timer writes go to per-thread *sharded slots* (cache-line
 *     padded, relaxed atomics), so concurrent lanes never contend on
 *     a line and hot paths stay wait-free; slots are summed only when
 *     a value is read (at phase barriers or report time). Registries
 *     are ordinary objects — each Simulator owns one, so two
 *     simulators in a process never mix their numbers — and
 *     `Registry::global()` holds process-wide instrumentation (kernel
 *     dispatch mix; the shared ThreadPool publishes its own lanes).
 *
 *   - **Flight recorder**: `TraceScope` / `traceBegin` / `traceEnd`
 *     append paired B/E span events to per-thread buffers, serialized
 *     by `writeTraceJson()` in the Chrome `chrome://tracing` /
 *     Perfetto trace-event format. Spans cover step, phase and
 *     parallelFor-chunk granularity.
 *
 * Everything beyond the always-on core counters is gated by the
 * runtime `TelemetryConfig`: with `detail` and `trace` both off (the
 * default), instrumented code paths cost a relaxed atomic load and a
 * predicted branch — no clocks, no allocation. `tools/trace_summary`
 * digests the trace and the run report into per-phase tables;
 * `tools/check_report` validates the report against its schema.
 */

#ifndef FLEXON_COMMON_TELEMETRY_HH
#define FLEXON_COMMON_TELEMETRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace flexon {
namespace telemetry {

/** Runtime gate for the optional instrumentation. */
struct TelemetryConfig
{
    /**
     * Deep counters: per-lane pool busy time, kernel dispatch mix,
     * ring-occupancy histograms. Off = a relaxed load + branch at
     * each site.
     */
    bool detail = false;
    /** Flight recorder (B/E span events). */
    bool trace = false;
    /** Span events kept per thread before dropping (flight-recorder
     *  bound; drops are counted, not silent). */
    size_t traceCapacity = 1u << 20;
};

/** Install a new process-wide telemetry configuration. */
void configure(const TelemetryConfig &config);

/** The current process-wide configuration. */
TelemetryConfig config();

namespace internal {
extern std::atomic<bool> gDetail;
extern std::atomic<bool> gTrace;
} // namespace internal

/** Fast gate for deep-counter sites (one relaxed load). */
inline bool
detailEnabled()
{
    return internal::gDetail.load(std::memory_order_relaxed);
}

/** Fast gate for flight-recorder sites (one relaxed load). */
inline bool
traceEnabled()
{
    return internal::gTrace.load(std::memory_order_relaxed);
}

/** Nanoseconds since the process telemetry epoch (steady clock). */
uint64_t nowNanos();

/** Slots metric writes shard across (threads map round-robin). */
constexpr size_t numShards = 16;

/** This thread's shard index, stable for the thread's lifetime. */
size_t threadShard();

/**
 * A named monotonic counter. add() is wait-free (relaxed fetch_add
 * on the calling thread's shard); value() sums the shards, so reads
 * racing with writes see a valid momentary sum.
 */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        slots_[threadShard()].v.fetch_add(n,
                                          std::memory_order_relaxed);
    }

    uint64_t value() const;
    void reset();
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend class Registry;
    Counter(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }
    Counter(const Counter &) = delete;

    struct alignas(64) Slot
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Slot, numShards> slots_;
    std::string name_;
    std::string desc_;
};

/** A named last-written / accumulated floating-point value. */
class Gauge
{
  public:
    void set(double x) { v_.store(x, std::memory_order_relaxed); }
    /** Accumulate (CAS loop; intended for single-writer use). */
    void add(double x);
    double value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { set(0.0); }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend class Registry;
    Gauge(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }
    Gauge(const Gauge &) = delete;

    std::atomic<double> v_{0.0};
    std::string name_;
    std::string desc_;
};

/**
 * A named duration accumulator: total nanoseconds + interval count,
 * sharded like Counter. Written through ScopedTimer or addNanos().
 */
class Timer
{
  public:
    void
    addNanos(uint64_t ns)
    {
        Slot &slot = slots_[threadShard()];
        slot.ns.fetch_add(ns, std::memory_order_relaxed);
        slot.count.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t nanos() const;
    double seconds() const { return static_cast<double>(nanos()) * 1e-9; }
    uint64_t count() const;
    void reset();
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend class Registry;
    Timer(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }
    Timer(const Timer &) = delete;

    struct alignas(64) Slot
    {
        std::atomic<uint64_t> ns{0};
        std::atomic<uint64_t> count{0};
    };
    std::array<Slot, numShards> slots_;
    std::string name_;
    std::string desc_;
};

/**
 * A named fixed-bin histogram (Histogram semantics: out-of-range
 * samples clamp into the edge bins). Samples lock the calling
 * thread's shard — contention-bounded, and cheap at the per-step
 * rates telemetry samples at; merged() folds the shards with
 * Histogram::merge().
 */
class HistogramMetric
{
  public:
    void sample(double x);
    /** All shards folded into one Histogram. */
    Histogram merged() const;
    uint64_t total() const;
    void reset();
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    size_t bins() const { return bins_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    friend class Registry;
    HistogramMetric(std::string name, std::string desc, double lo,
                    double hi, size_t bins);
    HistogramMetric(const HistogramMetric &) = delete;

    struct Shard
    {
        explicit Shard(const Histogram &proto) : hist(proto) {}
        mutable std::mutex mutex;
        Histogram hist;
    };
    double lo_;
    double hi_;
    size_t bins_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::string name_;
    std::string desc_;
};

/** Value snapshot of one Timer (shards summed at read time). */
struct TimerValue
{
    double seconds = 0.0;
    uint64_t count = 0;
};

/**
 * Point-in-time copy of a registry's scalar metrics, for consumers
 * that format them outside the registry lock (the health layer's
 * Prometheus/JSONL exporter). Histograms are omitted: the exporter's
 * scrape format has no stable encoding for fixed-bin histograms and
 * the percentiles already reach the run report.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, TimerValue>> timers;
};

/**
 * A registry of named metrics. Registration (counter()/gauge()/...)
 * takes a lock and returns a stable reference — do it once at
 * construction time and cache the handle; the handle's write methods
 * are the wait-free hot path. Metric values survive reset() only as
 * registrations: reset() zeroes every value but keeps the objects,
 * so cached handles stay valid.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * The process-wide registry: instrumentation that is not owned by
     * one engine instance (kernel dispatch mix, tool-level counters).
     * Per-run engines (Simulator, EventDrivenSimulator) own private
     * registries instead, so concurrent or sequential instances never
     * mix their numbers.
     */
    static Registry &global();

    /** Find-or-create; a name registers exactly one metric type. */
    Counter &counter(std::string_view name,
                     std::string_view desc = "");
    Gauge &gauge(std::string_view name, std::string_view desc = "");
    Timer &timer(std::string_view name, std::string_view desc = "");
    HistogramMetric &histogram(std::string_view name, double lo,
                               double hi, size_t bins,
                               std::string_view desc = "");

    /** Zero every metric value; registered handles stay valid. */
    void reset();

    /**
     * Serialize every metric as one JSON object:
     * {"counters":{...},"gauges":{...},"timers":{...},
     *  "histograms":{...}}, keys sorted (std::map order).
     * @param indent left margin (spaces) for pretty-printing
     */
    void writeJson(std::ostream &os, int indent = 0) const;

    /** Snapshot of all counter values (tests, run comparisons). */
    std::vector<std::pair<std::string, uint64_t>>
    counterValues() const;

    /** Point-in-time copy of every scalar metric (exporters). */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges_;
    std::map<std::string, std::unique_ptr<Timer>, std::less<>>
        timers_;
    std::map<std::string, std::unique_ptr<HistogramMetric>,
             std::less<>>
        histograms_;
};

// ---------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------

/**
 * Append a B (begin) span event named `name` for this thread.
 * `name` must outlive the recorder (string literals / registry-owned
 * strings). No-op unless tracing is enabled.
 */
void traceBegin(const char *name);

/** Append the matching E (end) event. Call iff traceBegin() ran. */
void traceEnd(const char *name);

/**
 * Append a thread-scoped instant event (ph "i"): a point-in-time
 * marker rather than a span. Used for plan decisions and health
 * detector firings so they line up against the phase spans in the
 * trace viewer. No-op unless tracing is enabled.
 */
void traceInstant(const char *name);

/** RAII span: B at construction (if tracing), E at destruction. */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
        : name_(traceEnabled() ? name : nullptr)
    {
        if (name_)
            traceBegin(name_);
    }
    ~TraceScope()
    {
        if (name_)
            traceEnd(name_);
    }
    TraceScope(const TraceScope &) = delete;

  private:
    const char *name_;
};

/**
 * RAII scope that accumulates into a Timer and (optionally) emits a
 * flight-recorder span of the same extent. The timer is always fed;
 * the span only when tracing is on at entry.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer, const char *span = nullptr)
        : timer_(&timer),
          span_(span && traceEnabled() ? span : nullptr),
          start_(nowNanos())
    {
        if (span_)
            traceBegin(span_);
    }
    ~ScopedTimer()
    {
        timer_->addNanos(nowNanos() - start_);
        if (span_)
            traceEnd(span_);
    }
    ScopedTimer(const ScopedTimer &) = delete;

  private:
    Timer *timer_;
    const char *span_;
    uint64_t start_;
};

/** Span events currently buffered across all threads. */
size_t traceEventCount();

/** Events dropped because a thread hit traceCapacity. */
uint64_t traceDropped();

/** Discard all buffered span events (drop count included). */
void clearTrace();

/**
 * Serialize the buffered span events in the Chrome trace-event JSON
 * format ({"traceEvents":[...]}, ts in microseconds). Call when the
 * instrumented engines are quiescent (between runs): buffers are
 * per-thread and only their owners may append.
 */
void writeTraceJson(std::ostream &os);

/** writeTraceJson to a file; warn()s and returns false on failure. */
bool writeTraceFile(const std::string &path);

// ---------------------------------------------------------------
// Run-report JSON.
// ---------------------------------------------------------------

/** JSON-escape the contents of a string (no surrounding quotes). */
std::string jsonEscape(std::string_view s);

/**
 * One section of a run report: name -> pre-encoded JSON value (use
 * jsonQuoted()/std::to_string to encode).
 */
using ReportFields =
    std::vector<std::pair<std::string, std::string>>;

/** Quote + escape a string into a JSON string literal. */
std::string jsonQuoted(std::string_view s);

/** Encode a double as JSON (handles non-finite values as null). */
std::string jsonNumber(double x);

/** Inputs to writeReportJson beyond the always-present sections. */
struct ReportContext
{
    /** Extra "config" fields (backend, threads, network, ...). */
    ReportFields config;
    /** Extra "stats" fields (steps, spikes, phase seconds, ...). */
    ReportFields stats;
    /** Extra engine-specific sections, emitted verbatim. */
    std::vector<std::pair<std::string, ReportFields>> sections;
    /** The owning engine's registry (omitted when null). */
    const Registry *metrics = nullptr;
};

/**
 * Write a schema "flexon-run-report-v5" JSON document: build +
 * telemetry metadata, the caller's config/stats/extra sections, the
 * caller's registry under "metrics", the process registry under
 * "global_metrics", and the shared ThreadPool's lane accounting
 * under "pool". Validated by tools/check_report against
 * tools/report_schema.json.
 */
void writeReportJson(std::ostream &os, const ReportContext &context);

/** writeReportJson to a file; warn()s and returns false on failure. */
bool writeReportFile(const std::string &path,
                     const ReportContext &context);

} // namespace telemetry
} // namespace flexon

#endif // FLEXON_COMMON_TELEMETRY_HH
