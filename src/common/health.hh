/**
 * @file
 * Runtime health monitoring: invariant detectors, a stalled-step
 * watchdog with crash dumps, and a live Prometheus/JSONL metrics
 * exporter (PR 9).
 *
 * The detectors themselves run inside SimulationSession (the engines
 * expose a HealthScan hook); this header holds the shared vocabulary
 * (policies, options, counters), the process-wide pieces (the Fix
 * saturation tally fed from the kernels, the watchdog heartbeat, the
 * crash-dump writer, signal handlers), and the exporter.
 *
 * Layering: health sits next to telemetry in flexon_common. The
 * header only forward-declares telemetry::Registry so hot code can
 * include it cheaply; the .cc pulls the full telemetry API for
 * snapshots and trace dumps.
 */

#ifndef FLEXON_COMMON_HEALTH_HH
#define FLEXON_COMMON_HEALTH_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace flexon {
namespace telemetry {
class Registry;
} // namespace telemetry

namespace health {

/**
 * What a detector does when it trips. Report silently tallies into
 * the run report's health section; Warn additionally logs (rate-
 * limited); Abort writes a crash dump and exits with
 * kDetectorExitCode. Off disables the detector entirely (it is not
 * even evaluated).
 */
enum class Policy { Off, Warn, Report, Abort };

const char *policyName(Policy policy);

/** Detector-tripped abort exit code (distinct from fatal()'s 1 and
 * the CLI usage error 2). */
constexpr int kDetectorExitCode = 3;

/** Watchdog stalled-step abort exit code. */
constexpr int kWatchdogExitCode = 4;

/**
 * Per-session detector configuration. The defaults are the cheap
 * always-on profile: every detector in Report mode, one sweep every
 * 64 steps over a bounded window of neurons, so the steady-state
 * overhead stays within measurement noise (the bench gate holds it
 * under 2%).
 */
struct HealthOptions {
    /** Master switch; false skips every check including heartbeats. */
    bool enabled = true;
    /** Non-finite membrane values (double backends). */
    Policy nan = Policy::Report;
    /** Fix-point rail hits in the flexon/folded input scaling. */
    Policy saturation = Policy::Report;
    /** EWMA firing-rate explosion/silence vs the thresholds below. */
    Policy rate = Policy::Report;
    /** Delay-ring occupancy watermark (dense engine). */
    Policy ring = Policy::Report;
    /** Steps between detector sweeps (clamped to >= 1). */
    uint64_t samplePeriod = 64;
    /**
     * Neurons examined per sweep; the scan window rotates through the
     * population so every neuron is eventually covered. 0 scans the
     * whole population each sweep.
     */
    uint64_t maxScanNeurons = 4096;
    /** EWMA rate above this fraction is an explosion. */
    double rateExplosion = 0.5;
    /** EWMA rate below this (after warmup) is silence. */
    double rateSilence = 1e-9;
    /** Steps before the rate detectors engage (startup transient). */
    uint64_t rateWarmupSteps = 1024;
    /** Ring occupancy fraction at/above which the watermark trips. */
    double ringWatermark = 0.9;
};

/**
 * Parse a --health specification. Accepted forms:
 *   "off" | "warn" | "report" | "abort"     apply to all detectors
 *   comma list of DET:POLICY pairs          nan|sat|rate|ring
 *   plus numeric keys                       sample=N, warmup=N
 * e.g. "nan:abort,rate:warn,sample=16". On failure returns false and
 * stores the offending token in *err (PR 7 strict-parse convention:
 * the caller reports it and exits 2).
 */
bool parseHealthSpec(const std::string &spec, HealthOptions &out,
                     std::string *err);

/** Render options back into canonical spec form (for the report). */
std::string specString(const HealthOptions &opts);

/**
 * One engine state scan: the session asks the engine to examine
 * neurons [begin, end) plus its delivery structures, and the engine
 * fills in what it found. ringCapacity 0 means "unbounded" (the
 * event engine's heap-backed ring) and disables the watermark.
 */
struct HealthScan {
    uint64_t checked = 0;       ///< neurons actually examined
    uint64_t nonFinite = 0;     ///< NaN/Inf membrane values found
    uint64_t saturated = 0;     ///< membranes pinned at a Fix rail
    int64_t firstBad = -1;      ///< index of first bad neuron, or -1
    uint64_t ringOccupancy = 0; ///< pending delivery writes
    uint64_t ringCapacity = 0;  ///< ring cell capacity (0 = unbounded)
};

/** Session-lifetime detector tallies (reported in the v5 report). */
struct HealthCounters {
    uint64_t sweeps = 0;           ///< detector sweeps executed
    uint64_t neuronsChecked = 0;   ///< membrane values examined
    uint64_t nanEvents = 0;        ///< sweeps that saw non-finite values
    uint64_t saturationEvents = 0; ///< sweeps that saw new rail hits
    uint64_t saturationHits = 0;   ///< individual rail hits tallied
    uint64_t rateExplosions = 0;   ///< sweeps with EWMA above threshold
    uint64_t rateSilences = 0;     ///< sweeps with EWMA below threshold
    uint64_t ringHighWater = 0;    ///< sweeps at/above the watermark
    double ringPeakFraction = 0.0; ///< max ring occupancy fraction seen
};

/**
 * Process-wide Fix saturation tally. The kernels call
 * noteFixSaturation() on the rare rail-hit path only (a relaxed
 * atomic increment); sessions read the counter before/after sweeps
 * and attribute the delta. Process-wide rather than per-session
 * because the hot kernels cannot carry a session pointer.
 */
void noteFixSaturation();
uint64_t fixSaturations();

/**
 * Process-wide kill switch (FLEXON_HEALTH=0 in the bench mains): a
 * disabled process never runs sweeps regardless of session options,
 * which gives the A/B overhead gate its "off" arm.
 */
void setGloballyDisabled(bool disabled);
bool globallyDisabled();

/**
 * Watchdog heartbeat. Sessions call heartbeat(step) once per step
 * when watchdogArmed() — a single relaxed load when no watchdog
 * exists, so the default path stays free.
 */
void heartbeat(uint64_t step);
bool watchdogArmed();

/** Stalls detected by any watchdog in this process. */
uint64_t watchdogStalls();

/**
 * Background thread that fires when the step heartbeat stops
 * advancing for `timeoutSec`. On a stall it logs, writes a crash
 * dump, and — under Policy::Abort — exits with kWatchdogExitCode.
 * Under Policy::Warn it re-arms and keeps watching. Arm it around
 * the run loop only: network construction and report writing must
 * not count against the step budget.
 */
class Watchdog {
  public:
    Watchdog(double timeoutSec, Policy policy = Policy::Abort);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    void start();
    void stop();
    uint64_t stalls() const { return stalls_.load(); }

  private:
    void watch();

    double timeoutSec_;
    Policy policy_;
    std::thread thread_;
    std::atomic<uint64_t> stalls_{0};
    bool running_ = false;
    bool stopRequested_ = false;
    std::mutex mutex_;
    std::condition_variable cv_;
};

/**
 * Crash-dump configuration. The dump is a single JSON document
 * (schema flexon-crash-dump-v1) with the stall/abort reason, the last
 * heartbeat step, a snapshot of the registered session registry (if
 * any) and the global registry, and the flight-recorder trace —
 * enough to replay what the simulation was doing when it died.
 */
void setCrashDumpPath(const std::string &path);
std::string crashDumpPath();

/**
 * Register the session registry to snapshot into dumps. The owner
 * must clear it before the registry dies (SimulationSession's
 * destructor calls clearCrashDumpRegistry(&metrics_)).
 */
void setCrashDumpRegistry(const telemetry::Registry *registry);

/** Clear the registered registry iff it is still `registry`. */
void clearCrashDumpRegistry(const telemetry::Registry *registry);

/**
 * Write the crash dump now. Best-effort and reentrancy-guarded (a
 * second concurrent call returns false immediately); returns true
 * when a dump file was written.
 */
bool writeCrashDump(const char *reason);

/**
 * Install fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) that
 * write a crash dump and then re-raise with the default disposition,
 * so the exit status still reflects the signal.
 */
void installCrashHandlers();

/**
 * Periodic metrics exporter: every call rewrites `path` atomically
 * (write-to-temp + rename) in Prometheus text exposition format and
 * appends one JSON line to `path`.jsonl. Scrape-friendly: a collector
 * polling the file never sees a torn snapshot.
 */
class MetricsExporter {
  public:
    MetricsExporter(std::string path, std::string label);

    /** Export a snapshot; returns false on I/O failure (warned once). */
    bool exportNow(const telemetry::Registry &registry, uint64_t step,
                   const std::string &engine);

    uint64_t snapshots() const { return snapshots_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string jsonlPath_;
    std::string label_;
    uint64_t snapshots_ = 0;
    bool warned_ = false;
};

} // namespace health
} // namespace flexon

#endif // FLEXON_COMMON_HEALTH_HH
