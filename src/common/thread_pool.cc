#include "common/thread_pool.hh"

#include <algorithm>

#include "common/telemetry.hh"

namespace flexon {

namespace {

/** Set for the lifetime of a pool worker thread. */
thread_local bool tlsInsideWorker = false;

/** Set while a caller thread is inside run() (holds the dispatch). */
thread_local bool tlsInDispatch = false;

} // namespace

bool
ThreadPool::insideWorker()
{
    // Both a pool worker and a caller mid-dispatch must run nested
    // forks inline: the worker to keep the barrier acyclic, the
    // caller because it already holds the (non-recursive) dispatch
    // mutex.
    return tlsInsideWorker || tlsInDispatch;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

size_t
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return workers_.size();
}

void
ThreadPool::execChunk(Task task, void *ctx, size_t lane,
                      size_t begin, size_t end)
{
    if (begin >= end)
        return;
    const bool detail = telemetry::detailEnabled();
    const bool trace = telemetry::traceEnabled();
    if (!detail && !trace) {
        task(ctx, lane, begin, end);
        return;
    }
    if (trace)
        telemetry::traceBegin("pool.chunk");
    const uint64_t start = telemetry::nowNanos();
    task(ctx, lane, begin, end);
    const uint64_t elapsed = telemetry::nowNanos() - start;
    if (trace)
        telemetry::traceEnd("pool.chunk");
    LaneMetrics &metrics = laneMetrics_[lane];
    metrics.busyNs.fetch_add(elapsed, std::memory_order_relaxed);
    metrics.chunks.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::TelemetrySnapshot
ThreadPool::telemetrySnapshot() const
{
    TelemetrySnapshot snap;
    snap.workers = workerCount();
    snap.dispatches = dispatches_.load(std::memory_order_relaxed);
    snap.wallNs = wallNs_.load(std::memory_order_relaxed);
    snap.laneNs = laneNs_.load(std::memory_order_relaxed);
    size_t used = 0;
    for (size_t i = 0; i < maxLanes; ++i) {
        if (laneMetrics_[i].chunks.load(std::memory_order_relaxed) >
            0) {
            used = i + 1;
        }
    }
    snap.laneBusyNs.resize(used);
    snap.laneChunks.resize(used);
    for (size_t i = 0; i < used; ++i) {
        snap.laneBusyNs[i] =
            laneMetrics_[i].busyNs.load(std::memory_order_relaxed);
        snap.laneChunks[i] =
            laneMetrics_[i].chunks.load(std::memory_order_relaxed);
        snap.busyNs += snap.laneBusyNs[i];
        snap.chunks += snap.laneChunks[i];
    }
    return snap;
}

void
ThreadPool::resetTelemetry()
{
    for (LaneMetrics &metrics : laneMetrics_) {
        metrics.busyNs.store(0, std::memory_order_relaxed);
        metrics.chunks.store(0, std::memory_order_relaxed);
    }
    dispatches_.store(0, std::memory_order_relaxed);
    wallNs_.store(0, std::memory_order_relaxed);
    laneNs_.store(0, std::memory_order_relaxed);
}

void
ThreadPool::ensureWorkers(size_t count)
{
    count = std::min(count, maxLanes);
    std::lock_guard<std::mutex> guard(mutex_);
    while (workers_.size() < count)
        workers_.emplace_back([this] { workerMain(); });
}

void
ThreadPool::workerMain()
{
    tlsInsideWorker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    uint64_t seen = 0;
    for (;;) {
        wake_.wait(lock, [&] {
            return shutdown_ ||
                   (generation_ != seen && nextLane_ < jobLanes_);
        });
        if (shutdown_)
            return;
        seen = generation_;
        // Claim lanes until the job is drained. A worker may execute
        // several lanes when the host is oversubscribed; the
        // lane -> index-range mapping is fixed by (n, lanes) alone,
        // so results do not depend on who runs which lane.
        while (nextLane_ < jobLanes_) {
            const size_t lane = nextLane_++;
            const size_t begin = lane * jobChunk_;
            const size_t end = std::min(jobN_, begin + jobChunk_);
            const Task task = task_;
            void *const ctx = ctx_;
            lock.unlock();
            execChunk(task, ctx, lane, begin, end);
            lock.lock();
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::run(size_t n, size_t lanes, Task task, void *ctx)
{
    // One dispatch at a time; concurrent callers queue here.
    std::lock_guard<std::mutex> dispatch(dispatchMutex_);
    struct DispatchFlag
    {
        DispatchFlag() { tlsInDispatch = true; }
        ~DispatchFlag() { tlsInDispatch = false; }
    } inDispatch;
    ensureWorkers(lanes - 1);
    const bool detail = telemetry::detailEnabled();
    const uint64_t dispatchStart = detail ? telemetry::nowNanos() : 0;
    const size_t chunk = (n + lanes - 1) / lanes;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        task_ = task;
        ctx_ = ctx;
        jobN_ = n;
        jobLanes_ = lanes;
        jobChunk_ = chunk;
        nextLane_ = 1; // the caller takes lane 0 itself
        pending_ = lanes;
        ++generation_;
    }
    wake_.notify_all();
    execChunk(task, ctx, 0, 0, std::min(n, chunk));
    std::unique_lock<std::mutex> lock(mutex_);
    --pending_;
    // Help drain lanes the workers have not picked up yet (slow
    // wakeups, oversubscribed hosts): the barrier never waits on a
    // sleeping thread while there is runnable work.
    while (nextLane_ < jobLanes_) {
        const size_t lane = nextLane_++;
        const size_t begin = lane * jobChunk_;
        const size_t end = std::min(jobN_, begin + jobChunk_);
        lock.unlock();
        execChunk(task, ctx, lane, begin, end);
        lock.lock();
        --pending_;
    }
    done_.wait(lock, [&] { return pending_ == 0; });
    lock.unlock();
    if (detail) {
        const uint64_t wall =
            telemetry::nowNanos() - dispatchStart;
        dispatches_.fetch_add(1, std::memory_order_relaxed);
        wallNs_.fetch_add(wall, std::memory_order_relaxed);
        laneNs_.fetch_add(wall * lanes, std::memory_order_relaxed);
    }
}

} // namespace flexon
