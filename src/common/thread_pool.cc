#include "common/thread_pool.hh"

#include <algorithm>

namespace flexon {

namespace {

/** Set for the lifetime of a pool worker thread. */
thread_local bool tlsInsideWorker = false;

/** Set while a caller thread is inside run() (holds the dispatch). */
thread_local bool tlsInDispatch = false;

} // namespace

bool
ThreadPool::insideWorker()
{
    // Both a pool worker and a caller mid-dispatch must run nested
    // forks inline: the worker to keep the barrier acyclic, the
    // caller because it already holds the (non-recursive) dispatch
    // mutex.
    return tlsInsideWorker || tlsInDispatch;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

size_t
ThreadPool::workerCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return workers_.size();
}

void
ThreadPool::ensureWorkers(size_t count)
{
    count = std::min(count, maxLanes);
    std::lock_guard<std::mutex> guard(mutex_);
    while (workers_.size() < count)
        workers_.emplace_back([this] { workerMain(); });
}

void
ThreadPool::workerMain()
{
    tlsInsideWorker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    uint64_t seen = 0;
    for (;;) {
        wake_.wait(lock, [&] {
            return shutdown_ ||
                   (generation_ != seen && nextLane_ < jobLanes_);
        });
        if (shutdown_)
            return;
        seen = generation_;
        // Claim lanes until the job is drained. A worker may execute
        // several lanes when the host is oversubscribed; the
        // lane -> index-range mapping is fixed by (n, lanes) alone,
        // so results do not depend on who runs which lane.
        while (nextLane_ < jobLanes_) {
            const size_t lane = nextLane_++;
            const size_t begin = lane * jobChunk_;
            const size_t end = std::min(jobN_, begin + jobChunk_);
            const Task task = task_;
            void *const ctx = ctx_;
            lock.unlock();
            if (begin < end)
                task(ctx, lane, begin, end);
            lock.lock();
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::run(size_t n, size_t lanes, Task task, void *ctx)
{
    // One dispatch at a time; concurrent callers queue here.
    std::lock_guard<std::mutex> dispatch(dispatchMutex_);
    struct DispatchFlag
    {
        DispatchFlag() { tlsInDispatch = true; }
        ~DispatchFlag() { tlsInDispatch = false; }
    } inDispatch;
    ensureWorkers(lanes - 1);
    const size_t chunk = (n + lanes - 1) / lanes;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        task_ = task;
        ctx_ = ctx;
        jobN_ = n;
        jobLanes_ = lanes;
        jobChunk_ = chunk;
        nextLane_ = 1; // the caller takes lane 0 itself
        pending_ = lanes;
        ++generation_;
    }
    wake_.notify_all();
    task(ctx, 0, 0, std::min(n, chunk));
    std::unique_lock<std::mutex> lock(mutex_);
    --pending_;
    // Help drain lanes the workers have not picked up yet (slow
    // wakeups, oversubscribed hosts): the barrier never waits on a
    // sleeping thread while there is runnable work.
    while (nextLane_ < jobLanes_) {
        const size_t lane = nextLane_++;
        const size_t begin = lane * jobChunk_;
        const size_t end = std::min(jobN_, begin + jobChunk_);
        lock.unlock();
        if (begin < end)
            task(ctx, lane, begin, end);
        lock.lock();
        --pending_;
    }
    done_.wait(lock, [&] { return pending_ == 0; });
}

} // namespace flexon
