#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace flexon {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    flexon_assert(!header_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size()) {
        panic("table row arity %zu does not match header arity %zu",
              cells.size(), header_.size());
    }
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    print_row(header_);
    size_t rule_len = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule_len, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::ratio(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v << "x";
    return oss.str();
}

} // namespace flexon
