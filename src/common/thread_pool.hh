/**
 * @file
 * Persistent worker-pool execution engine.
 *
 * The original flexon::parallelFor spawned and joined fresh
 * std::threads on every call, which puts a thread create/destroy pair
 * on every simulation step (Section II-C's hot loop runs millions of
 * steps). ThreadPool keeps the workers alive across calls: a
 * dispatch publishes one job (a chunked index range), wakes the
 * sleeping workers, lets the caller participate as lane 0, and waits
 * on a completion barrier. Large-scale SNN engines (NEST's per-VP
 * threads, the FPGA routing pipelines in PAPERS.md) use the same
 * persistent-partition structure; this is the CPU-side equivalent.
 *
 * Determinism contract: parallelFor(n, lanes, fn) always splits
 * [0, n) into the same contiguous, ascending chunks for a given
 * (n, lanes) pair and passes the lane index to fn, so callers can
 * keep lane-private scratch and reduce in fixed lane order.
 */

#ifndef FLEXON_COMMON_THREAD_POOL_HH
#define FLEXON_COMMON_THREAD_POOL_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace flexon {

/** A persistent pool of worker threads with a barrier-style fork/join. */
class ThreadPool
{
  public:
    /** Jobs are plain function pointers: no per-dispatch allocation. */
    using Task = void (*)(void *ctx, size_t lane, size_t begin,
                          size_t end);

    /** Hard cap on lanes per dispatch (backstop, not a tuning knob). */
    static constexpr size_t maxLanes = 256;

    ThreadPool() = default;
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * The process-wide pool. Workers are spawned lazily on first use
     * and reused by every caller (simulator phases, array backends,
     * the legacy parallelFor shim).
     */
    static ThreadPool &global();

    /**
     * Invoke fn(lane, begin, end) on `lanes` contiguous chunks of
     * [0, n). The calling thread participates as lane 0; lanes - 1
     * pooled workers take the rest. Blocks until every lane is done,
     * so callers need no synchronization. With lanes <= 1 (or tiny n)
     * the call runs inline. Dispatches from within a worker also run
     * inline (no nested fork).
     */
    template <typename Fn>
    void
    parallelFor(size_t n, size_t lanes, Fn &&fn)
    {
        if (lanes > maxLanes)
            lanes = maxLanes;
        if (lanes <= 1 || n < 2 * lanes || insideWorker()) {
            if (n > 0)
                fn(size_t{0}, size_t{0}, n);
            return;
        }
        using F = std::remove_reference_t<Fn>;
        auto trampoline = [](void *ctx, size_t lane, size_t begin,
                             size_t end) {
            (*static_cast<F *>(ctx))(lane, begin, end);
        };
        run(n, lanes, trampoline, &fn);
    }

    /**
     * Invoke fn(lane) once per lane in [0, lanes), one lane per
     * dispatch chunk. Unlike parallelFor there is no small-n inline
     * heuristic: callers use this when each lane owns a
     * pre-partitioned slice of work (e.g. a target shard of the
     * synapse table). Blocks until every lane is done.
     */
    template <typename Fn>
    void
    forEachLane(size_t lanes, Fn &&fn)
    {
        if (lanes > maxLanes)
            lanes = maxLanes;
        if (lanes <= 1 || insideWorker()) {
            for (size_t lane = 0; lane < lanes; ++lane)
                fn(lane);
            return;
        }
        using F = std::remove_reference_t<Fn>;
        auto trampoline = [](void *ctx, size_t lane, size_t begin,
                             size_t end) {
            (void)begin;
            (void)end;
            (*static_cast<F *>(ctx))(lane);
        };
        run(lanes, lanes, trampoline, &fn);
    }

    /** Workers currently alive (grows on demand, for tests/stats). */
    size_t workerCount() const;

    /**
     * Aggregated lane accounting, populated only while
     * telemetry::detailEnabled() (otherwise all zero: the hot path
     * takes no clock reads). Lane vectors are trimmed to the highest
     * lane that ever ran a chunk.
     */
    struct TelemetrySnapshot
    {
        /** Workers alive (excludes the per-dispatch caller lane 0). */
        size_t workers = 0;
        /** parallelFor/forEachLane dispatches that hit the pool. */
        uint64_t dispatches = 0;
        /** Chunks executed across all lanes. */
        uint64_t chunks = 0;
        /** Nanoseconds spent inside chunk bodies, summed over lanes. */
        uint64_t busyNs = 0;
        /** Wall nanoseconds spent inside run() by the callers. */
        uint64_t wallNs = 0;
        /** wallNs x lanes per dispatch: the busy-time denominator
         *  (busyNs / laneNs = parallel efficiency). */
        uint64_t laneNs = 0;
        std::vector<uint64_t> laneBusyNs;
        std::vector<uint64_t> laneChunks;
    };

    /** Snapshot the pool's telemetry counters (sum-on-read). */
    TelemetrySnapshot telemetrySnapshot() const;

    /** Zero the pool's telemetry counters (between measured runs). */
    void resetTelemetry();

  private:
    void run(size_t n, size_t lanes, Task task, void *ctx);
    void execChunk(Task task, void *ctx, size_t lane, size_t begin,
                   size_t end);
    void ensureWorkers(size_t count);
    void workerMain();
    static bool insideWorker();

    /** Serializes dispatches from different caller threads. */
    std::mutex dispatchMutex_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;

    // Current job, published under mutex_. Workers claim lanes from
    // nextLane_ and count themselves out through pending_.
    uint64_t generation_ = 0;
    Task task_ = nullptr;
    void *ctx_ = nullptr;
    size_t jobN_ = 0;
    size_t jobLanes_ = 0;
    size_t jobChunk_ = 0;
    size_t nextLane_ = 0;
    size_t pending_ = 0;
    bool shutdown_ = false;

    // Telemetry (written only while telemetry::detailEnabled()).
    // Lane slots are line-padded so concurrent lanes never share one.
    struct alignas(64) LaneMetrics
    {
        std::atomic<uint64_t> busyNs{0};
        std::atomic<uint64_t> chunks{0};
    };
    std::array<LaneMetrics, maxLanes> laneMetrics_;
    std::atomic<uint64_t> dispatches_{0};
    std::atomic<uint64_t> wallNs_{0};
    std::atomic<uint64_t> laneNs_{0};
};

} // namespace flexon

#endif // FLEXON_COMMON_THREAD_POOL_HH
