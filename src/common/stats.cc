#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexon {

void
Summary::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Summary::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        flexon_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    flexon_assert(hi > lo);
    flexon_assert(bins > 0);
}

void
Histogram::add(double x)
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<long>(std::floor((x - lo_) / width));
    idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(idx)];
    ++total_;
}

double
Histogram::binCenter(size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double threshold =
        p / 100.0 * static_cast<double>(total_);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (static_cast<double>(cumulative) >= threshold &&
            cumulative > 0) {
            return binCenter(i);
        }
    }
    // Unreachable with total_ > 0; keep the last bin as a backstop.
    return binCenter(counts_.size() - 1);
}

void
Histogram::merge(const Histogram &other)
{
    flexon_assert(other.lo_ == lo_);
    flexon_assert(other.hi_ == hi_);
    flexon_assert(other.counts_.size() == counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

} // namespace flexon
