/**
 * @file
 * gem5-style debug tracing: named flags enabled at runtime through
 * the FLEXON_DEBUG environment variable (comma-separated, e.g.
 * `FLEXON_DEBUG=Simulator,Folded`), and a DPRINTF-like macro that
 * compiles to a flag check plus a printf.
 *
 * Tracing is for humans chasing a bug, not for programs: output goes
 * to stderr and the format is free-form. Hot paths guard with
 * FLEXON_DPRINTF's flag check, which is a single hash-set probe the
 * first time and a cached boolean afterwards.
 */

#ifndef FLEXON_COMMON_DEBUG_HH
#define FLEXON_COMMON_DEBUG_HH

#include <string>

namespace flexon {
namespace debug {

/**
 * Is a debug flag enabled? Flags come from FLEXON_DEBUG (read once,
 * lazily) plus any flags force-enabled through enable(). The special
 * value `All` enables everything.
 */
bool enabled(const std::string &flag);

/** Force-enable / disable a flag at runtime (tests, tools). */
void enable(const std::string &flag);
void disable(const std::string &flag);

/** Printf-style trace line: "<flag>: <message>" on stderr. */
void print(const char *flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace debug

/**
 * Trace-if-enabled. The flag is a bare identifier, e.g.
 * FLEXON_DPRINTF(Simulator, "step %llu", step).
 */
#define FLEXON_DPRINTF(flag, ...)                                     \
    do {                                                              \
        if (::flexon::debug::enabled(#flag))                          \
            ::flexon::debug::print(#flag, __VA_ARGS__);               \
    } while (0)

} // namespace flexon

#endif // FLEXON_COMMON_DEBUG_HH
