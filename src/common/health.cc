#include "common/health.hh"

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/telemetry.hh"

namespace flexon {
namespace health {
namespace {

std::atomic<uint64_t> gFixSaturations{0};
std::atomic<bool> gDisabled{false};

// Watchdog heartbeat: the step value for dumps, the serial for stall
// detection (restores can rewind the step; the serial only grows).
std::atomic<uint64_t> gHeartbeatStep{0};
std::atomic<uint64_t> gHeartbeatSerial{0};
std::atomic<int> gArmed{0};
std::atomic<uint64_t> gStalls{0};

// Crash-dump configuration. The registry pointer is cleared by its
// owner's destructor (clearCrashDumpRegistry), so a dump taken after
// a session died falls back to the global registry only.
std::mutex &
dumpMutex()
{
    static std::mutex m;
    return m;
}

std::string &
dumpPath()
{
    static std::string path;
    return path;
}

std::atomic<const telemetry::Registry *> gDumpRegistry{nullptr};

bool
parsePolicyWord(const std::string &word, Policy &out)
{
    if (word == "off") {
        out = Policy::Off;
    } else if (word == "warn") {
        out = Policy::Warn;
    } else if (word == "report") {
        out = Policy::Report;
    } else if (word == "abort") {
        out = Policy::Abort;
    } else {
        return false;
    }
    return true;
}

/** Strict whole-token unsigned parse (PR 7 convention: no sign, no
 * trailing garbage). */
bool
parseCountToken(const std::string &text, uint64_t &out)
{
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

} // namespace

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Off: return "off";
      case Policy::Warn: return "warn";
      case Policy::Report: return "report";
      case Policy::Abort: return "abort";
    }
    return "unknown";
}

bool
parseHealthSpec(const std::string &spec, HealthOptions &out,
                std::string *err)
{
    HealthOptions opts;
    size_t pos = 0;
    while (pos <= spec.size()) {
        const size_t comma = spec.find(',', pos);
        const std::string token =
            spec.substr(pos, (comma == std::string::npos
                                  ? spec.size()
                                  : comma) - pos);
        pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (token.empty()) {
            if (err != nullptr)
                *err = "(empty token)";
            return false;
        }

        const size_t colon = token.find(':');
        const size_t equals = token.find('=');
        if (colon != std::string::npos) {
            const std::string det = token.substr(0, colon);
            Policy policy;
            if (!parsePolicyWord(token.substr(colon + 1), policy)) {
                if (err != nullptr)
                    *err = token;
                return false;
            }
            if (det == "nan") {
                opts.nan = policy;
            } else if (det == "sat") {
                opts.saturation = policy;
            } else if (det == "rate") {
                opts.rate = policy;
            } else if (det == "ring") {
                opts.ring = policy;
            } else {
                if (err != nullptr)
                    *err = token;
                return false;
            }
        } else if (equals != std::string::npos) {
            const std::string key = token.substr(0, equals);
            uint64_t value = 0;
            if (!parseCountToken(token.substr(equals + 1), value)) {
                if (err != nullptr)
                    *err = token;
                return false;
            }
            if (key == "sample") {
                opts.samplePeriod = value;
            } else if (key == "warmup") {
                opts.rateWarmupSteps = value;
            } else {
                if (err != nullptr)
                    *err = token;
                return false;
            }
        } else {
            Policy policy;
            if (!parsePolicyWord(token, policy)) {
                if (err != nullptr)
                    *err = token;
                return false;
            }
            opts.nan = opts.saturation = opts.rate = opts.ring =
                policy;
        }
    }
    opts.enabled = opts.nan != Policy::Off ||
                   opts.saturation != Policy::Off ||
                   opts.rate != Policy::Off ||
                   opts.ring != Policy::Off;
    out = opts;
    return true;
}

std::string
specString(const HealthOptions &opts)
{
    if (!opts.enabled)
        return "off";
    std::ostringstream os;
    os << "nan:" << policyName(opts.nan)
       << ",sat:" << policyName(opts.saturation)
       << ",rate:" << policyName(opts.rate)
       << ",ring:" << policyName(opts.ring)
       << ",sample=" << opts.samplePeriod;
    return os.str();
}

void
noteFixSaturation()
{
    gFixSaturations.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
fixSaturations()
{
    return gFixSaturations.load(std::memory_order_relaxed);
}

void
setGloballyDisabled(bool disabled)
{
    gDisabled.store(disabled, std::memory_order_relaxed);
}

bool
globallyDisabled()
{
    return gDisabled.load(std::memory_order_relaxed);
}

void
heartbeat(uint64_t step)
{
    gHeartbeatStep.store(step, std::memory_order_relaxed);
    gHeartbeatSerial.fetch_add(1, std::memory_order_relaxed);
}

bool
watchdogArmed()
{
    return gArmed.load(std::memory_order_relaxed) > 0;
}

uint64_t
watchdogStalls()
{
    return gStalls.load(std::memory_order_relaxed);
}

Watchdog::Watchdog(double timeoutSec, Policy policy)
    : timeoutSec_(timeoutSec), policy_(policy)
{
}

Watchdog::~Watchdog()
{
    stop();
}

void
Watchdog::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_ || timeoutSec_ <= 0.0)
        return;
    stopRequested_ = false;
    running_ = true;
    gArmed.fetch_add(1, std::memory_order_relaxed);
    thread_ = std::thread(&Watchdog::watch, this);
}

void
Watchdog::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
    gArmed.fetch_sub(1, std::memory_order_relaxed);
}

void
Watchdog::watch()
{
    using clock = std::chrono::steady_clock;
    uint64_t lastSerial =
        gHeartbeatSerial.load(std::memory_order_relaxed);
    clock::time_point lastChange = clock::now();
    const auto poll =
        std::chrono::duration<double>(timeoutSec_ / 4.0);

    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopRequested_) {
        cv_.wait_for(lock, poll);
        if (stopRequested_)
            return;
        lock.unlock();

        const uint64_t serial =
            gHeartbeatSerial.load(std::memory_order_relaxed);
        const clock::time_point now = clock::now();
        if (serial != lastSerial) {
            lastSerial = serial;
            lastChange = now;
        } else if (std::chrono::duration<double>(now - lastChange)
                       .count() >= timeoutSec_) {
            stalls_.fetch_add(1, std::memory_order_relaxed);
            gStalls.fetch_add(1, std::memory_order_relaxed);
            const uint64_t step =
                gHeartbeatStep.load(std::memory_order_relaxed);
            logTagged(LogLevel::Warn, "watchdog",
                      "no step heartbeat for %.2f s (last step %llu)",
                      timeoutSec_,
                      static_cast<unsigned long long>(step));
            writeCrashDump("watchdog stall");
            if (policy_ == Policy::Abort) {
                std::fflush(nullptr);
                // _Exit: the stalled state we are reporting on may
                // hold locks that destructors would need.
                std::_Exit(kWatchdogExitCode);
            }
            lastChange = now; // re-arm under warn/report
        }

        lock.lock();
    }
}

void
setCrashDumpPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(dumpMutex());
    dumpPath() = path;
}

std::string
crashDumpPath()
{
    std::lock_guard<std::mutex> lock(dumpMutex());
    return dumpPath();
}

void
setCrashDumpRegistry(const telemetry::Registry *registry)
{
    gDumpRegistry.store(registry, std::memory_order_release);
}

void
clearCrashDumpRegistry(const telemetry::Registry *registry)
{
    const telemetry::Registry *expected = registry;
    gDumpRegistry.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel);
}

bool
writeCrashDump(const char *reason)
{
    // Reentrancy guard: a crash inside the dump writer (or a signal
    // landing while the watchdog dumps) must not recurse.
    static std::atomic<bool> writing{false};
    if (writing.exchange(true))
        return false;

    std::string path = crashDumpPath();
    if (path.empty())
        path = "flexon-crash-dump.json";
    std::ofstream os(path);
    if (!os) {
        writing.store(false);
        return false;
    }
    os << "{\n  \"schema\": \"flexon-crash-dump-v1\",\n"
       << "  \"reason\": " << telemetry::jsonQuoted(reason) << ",\n"
       << "  \"step\": "
       << gHeartbeatStep.load(std::memory_order_relaxed) << ",\n";
    const telemetry::Registry *registry =
        gDumpRegistry.load(std::memory_order_acquire);
    if (registry != nullptr) {
        os << "  \"metrics\": ";
        registry->writeJson(os, 2);
        os << ",\n";
    }
    os << "  \"global_metrics\": ";
    telemetry::Registry::global().writeJson(os, 2);
    os << ",\n  \"trace\": ";
    telemetry::writeTraceJson(os);
    os << "}\n";
    os.flush();
    const bool ok = os.good();
    writing.store(false);
    if (ok)
        logTagged(LogLevel::Warn, "health",
                  "crash dump written to %s (%s)", path.c_str(),
                  reason);
    return ok;
}

namespace {

volatile std::sig_atomic_t gInSignalHandler = 0;

/**
 * Best-effort: the dump writer allocates and locks, neither of which
 * is async-signal-safe — but the handler only runs when the process
 * is dying anyway, so a rare self-deadlock costs nothing beyond the
 * dump we could not have written either way.
 */
void
crashSignalHandler(int sig)
{
    if (gInSignalHandler == 0) {
        gInSignalHandler = 1;
        char reason[64];
        std::snprintf(reason, sizeof(reason), "fatal signal %d (%s)",
                      sig, strsignal(sig));
        writeCrashDump(reason);
    }
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

void
installCrashHandlers()
{
    std::signal(SIGSEGV, crashSignalHandler);
    std::signal(SIGBUS, crashSignalHandler);
    std::signal(SIGFPE, crashSignalHandler);
    std::signal(SIGABRT, crashSignalHandler);
}

namespace {

/** Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() ||
        (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** Prometheus label-value escape: backslash, quote, newline. */
std::string
promLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

MetricsExporter::MetricsExporter(std::string path, std::string label)
    : path_(std::move(path)), jsonlPath_(path_ + ".jsonl"),
      label_(std::move(label))
{
}

bool
MetricsExporter::exportNow(const telemetry::Registry &registry,
                           uint64_t step, const std::string &engine)
{
    const telemetry::MetricsSnapshot snap = registry.snapshot();
    const std::string labels = "{session=\"" +
                               promLabelValue(label_) +
                               "\",engine=\"" +
                               promLabelValue(engine) + "\"}";

    // Write-to-temp + rename: a scraper polling path_ never reads a
    // torn snapshot.
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::out | std::ios::trunc);
        if (!os) {
            if (!warned_) {
                warned_ = true;
                logTagged(LogLevel::Warn, "health",
                          "cannot write metrics snapshot '%s'",
                          tmp.c_str());
            }
            return false;
        }
        os << "# flexon live metrics: session \""
           << promLabelValue(label_) << "\", step " << step << "\n";
        os << "# TYPE flexon_export_step gauge\n";
        os << "flexon_export_step" << labels << " " << step << "\n";
        os << "# TYPE flexon_export_snapshots_total counter\n";
        os << "flexon_export_snapshots_total" << labels << " "
           << (snapshots_ + 1) << "\n";
        for (const auto &[name, value] : snap.counters) {
            const std::string metric =
                "flexon_" + promName(name) + "_total";
            os << "# TYPE " << metric << " counter\n";
            os << metric << labels << " " << value << "\n";
        }
        for (const auto &[name, value] : snap.gauges) {
            const std::string metric = "flexon_" + promName(name);
            os << "# TYPE " << metric << " gauge\n";
            os << metric << labels << " " << value << "\n";
        }
        for (const auto &[name, value] : snap.timers) {
            const std::string metric = "flexon_" + promName(name);
            os << "# TYPE " << metric << "_seconds_total counter\n";
            os << metric << "_seconds_total" << labels << " "
               << value.seconds << "\n";
            os << "# TYPE " << metric << "_count_total counter\n";
            os << metric << "_count_total" << labels << " "
               << value.count << "\n";
        }
        os.flush();
        if (!os.good()) {
            if (!warned_) {
                warned_ = true;
                logTagged(LogLevel::Warn, "health",
                          "short write on metrics snapshot '%s'",
                          tmp.c_str());
            }
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        if (!warned_) {
            warned_ = true;
            logTagged(LogLevel::Warn, "health",
                      "cannot rename metrics snapshot onto '%s'",
                      path_.c_str());
        }
        return false;
    }

    // JSONL history rides alongside the scrape file: one object per
    // snapshot, appended, for offline timeline reconstruction.
    std::ofstream jl(jsonlPath_, std::ios::out | std::ios::app);
    if (jl) {
        jl << "{\"step\":" << step << ",\"session\":"
           << telemetry::jsonQuoted(label_) << ",\"engine\":"
           << telemetry::jsonQuoted(engine) << ",\"counters\":{";
        bool first = true;
        for (const auto &[name, value] : snap.counters) {
            jl << (first ? "" : ",") << telemetry::jsonQuoted(name)
               << ":" << value;
            first = false;
        }
        jl << "},\"gauges\":{";
        first = true;
        for (const auto &[name, value] : snap.gauges) {
            jl << (first ? "" : ",") << telemetry::jsonQuoted(name)
               << ":" << telemetry::jsonNumber(value);
            first = false;
        }
        jl << "},\"timers\":{";
        first = true;
        for (const auto &[name, value] : snap.timers) {
            jl << (first ? "" : ",") << telemetry::jsonQuoted(name)
               << ":{\"seconds\":"
               << telemetry::jsonNumber(value.seconds)
               << ",\"count\":" << value.count << "}";
            first = false;
        }
        jl << "}}\n";
    }

    ++snapshots_;
    return true;
}

} // namespace health
} // namespace flexon
