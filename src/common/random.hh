/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All stochastic components of the simulator (stimulus generation,
 * network wiring, synthetic spike trains) draw from Rng so that a run is
 * exactly reproducible given a seed. The generator is xoshiro256**,
 * which is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef FLEXON_COMMON_RANDOM_HH
#define FLEXON_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace flexon {

/**
 * The complete stream state of an Rng: the xoshiro256** words plus
 * the Box-Muller pair cache (normal() hands out variates in pairs, so
 * the cached second half is part of the stream — dropping it would
 * desynchronize a restored stream by one normal draw).
 */
struct RngState
{
    std::array<uint64_t, 4> s{};
    double cachedNormal = 0.0;
    bool hasCachedNormal = false;
};

/**
 * A seedable, splittable pseudo-random number generator.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * used with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    uint64_t operator()() { return next(); }

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Exponential variate with the given rate (lambda). */
    double exponential(double rate);

    /** Poisson variate with the given mean (Knuth for small means). */
    uint64_t poisson(double mean);

    /**
     * Derive an independent child generator. Used to give each neuron
     * population / stimulus source its own stream.
     */
    Rng split();

    /**
     * Capture / restore the exact stream state: a generator restored
     * from state() continues the identical variate sequence across
     * every distribution, including in-flight Box-Muller pairs.
     */
    RngState state() const;
    void setState(const RngState &state);

  private:
    uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace flexon

#endif // FLEXON_COMMON_RANDOM_HH
