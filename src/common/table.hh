/**
 * @file
 * Plain-text table printer used by the benchmark harness to render the
 * paper's tables and figure series as aligned console output, plus an
 * optional CSV writer for downstream plotting.
 */

#ifndef FLEXON_COMMON_TABLE_HH
#define FLEXON_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace flexon {

/**
 * A simple column-aligned table.
 *
 * Usage:
 * @code
 *   Table t({"SNN", "CPU [ms]", "Flexon [ms]", "Speedup"});
 *   t.addRow({"Brunel", "12.1", "0.09", "134x"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format a ratio as e.g. "122.5x". */
    static std::string ratio(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace flexon

#endif // FLEXON_COMMON_TABLE_HH
