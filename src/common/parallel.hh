/**
 * @file
 * Minimal data-parallel helper: split an index range across worker
 * threads (the way NEST parallelizes its neuron-update loop across
 * the Xeon's cores). Deliberately simple — threads are joined before
 * returning, so callers need no synchronization.
 */

#ifndef FLEXON_COMMON_PARALLEL_HH
#define FLEXON_COMMON_PARALLEL_HH

#include <cstddef>
#include <thread>
#include <vector>

namespace flexon {

/**
 * Invoke fn(begin, end) on `threads` contiguous chunks of [0, n).
 * With threads <= 1 (or tiny n) the call runs inline.
 */
template <typename Fn>
void
parallelFor(size_t n, size_t threads, Fn &&fn)
{
    if (threads <= 1 || n < 2 * threads) {
        fn(size_t{0}, n);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const size_t chunk = (n + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
        const size_t begin = t * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end)
            break;
        pool.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    for (auto &worker : pool)
        worker.join();
}

} // namespace flexon

#endif // FLEXON_COMMON_PARALLEL_HH
