/**
 * @file
 * Minimal data-parallel helper: split an index range across worker
 * threads (the way NEST parallelizes its neuron-update loop across
 * the Xeon's cores). The range is executed by the persistent
 * ThreadPool — the original implementation spawned and joined fresh
 * std::threads on every call, which cost a thread create/destroy
 * pair per simulation step. Workers are joined-equivalent before
 * returning (barrier), so callers need no synchronization.
 */

#ifndef FLEXON_COMMON_PARALLEL_HH
#define FLEXON_COMMON_PARALLEL_HH

#include <cstddef>
#include <utility>

#include "common/thread_pool.hh"

namespace flexon {

/**
 * Invoke fn(begin, end) on `threads` contiguous chunks of [0, n).
 * With threads <= 1 (or tiny n) the call runs inline. Legacy shim:
 * new code should use ThreadPool::global().parallelFor directly,
 * whose callback also receives the lane index for per-lane scratch.
 */
template <typename Fn>
void
parallelFor(size_t n, size_t threads, Fn &&fn)
{
    ThreadPool::global().parallelFor(
        n, threads,
        [&fn](size_t /*lane*/, size_t begin, size_t end) {
            fn(begin, end);
        });
}

} // namespace flexon

#endif // FLEXON_COMMON_PARALLEL_HH
