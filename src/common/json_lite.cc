#include "common/json_lite.hh"

#include <cctype>
#include <cstdlib>

namespace flexon {

void
MiniJson::skipWs()
{
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
}

bool
MiniJson::expect(char c)
{
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c)
        return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
}

bool
MiniJson::peek(char c)
{
    skipWs();
    return pos_ < text_.size() && text_[pos_] == c;
}

bool
MiniJson::parseString(std::string &out)
{
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
        char c = text_[pos_++];
        if (c == '\\' && pos_ < text_.size())
            c = text_[pos_++];
        out.push_back(c);
    }
    if (pos_ >= text_.size())
        return fail("unterminated string");
    ++pos_; // closing quote
    return true;
}

bool
MiniJson::parseNumber(double &out)
{
    skipWs();
    const char *start = text_.c_str() + pos_;
    char *end = nullptr;
    out = std::strtod(start, &end);
    if (end == start)
        return fail("expected number");
    pos_ += static_cast<size_t>(end - start);
    return true;
}

bool
MiniJson::skipValue()
{
    skipWs();
    if (pos_ >= text_.size())
        return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '"') {
        std::string ignored;
        return parseString(ignored);
    }
    if (c == '{') {
        return parseObject([this](const std::string &) {
            return skipValue();
        });
    }
    if (c == 't' || c == 'f' || c == 'n') {
        while (pos_ < text_.size() &&
               std::isalpha(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        return true;
    }
    double ignored = 0.0;
    return parseNumber(ignored);
}

bool
MiniJson::atEnd()
{
    skipWs();
    if (pos_ != text_.size())
        return fail("trailing content after document");
    return true;
}

bool
MiniJson::fail(const std::string &why)
{
    if (!failed_) {
        failed_ = true;
        error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
}

std::string
jsonEscaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace flexon
