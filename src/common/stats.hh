/**
 * @file
 * Small statistics helpers used by the evaluation harness: running
 * summaries, geometric means (the paper reports geomean speedups), and a
 * histogram for spike-train statistics.
 */

#ifndef FLEXON_COMMON_STATS_HH
#define FLEXON_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flexon {

/** Running scalar summary: count / mean / variance / min / max. */
class Summary
{
  public:
    /** Add one sample (Welford update). */
    void add(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Geometric mean of a set of strictly positive values.
 * @pre every value > 0
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0 for an empty vector). */
double mean(const std::vector<double> &values);

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples land in the
 * first/last bin. Used to sanity-check inter-spike interval and Poisson
 * stimulus distributions.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);
    size_t bins() const { return counts_.size(); }
    uint64_t binCount(size_t i) const { return counts_.at(i); }
    uint64_t total() const { return total_; }
    /** Center value of bin i. */
    double binCenter(size_t i) const;
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /**
     * The value below which approximately p percent of the samples
     * fall, at bin-center resolution: the center of the first bin
     * whose cumulative count reaches p% of total(). p is clamped to
     * [0, 100]; an empty histogram reports 0.
     */
    double percentile(double p) const;

    /**
     * Fold another histogram's counts into this one. Both must have
     * the identical [lo, hi) range and bin count (asserted) — the
     * shape sharded telemetry aggregation produces.
     */
    void merge(const Histogram &other);

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace flexon

#endif // FLEXON_COMMON_STATS_HH
