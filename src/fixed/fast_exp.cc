#include "fixed/fast_exp.hh"

#include <cstdint>
#include <cstring>

namespace flexon {

double
fastExp(double y)
{
    // Schraudolph 1999: i = a*y + b written to the exponent/high
    // mantissa bits of an IEEE-754 double. EXP_A = 2^20 / ln(2);
    // EXP_B centres the 1023 exponent bias; EXP_C is Schraudolph's
    // mean-error-minimizing correction (60801).
    constexpr double EXP_A = 1048576.0 / 0.6931471805599453;
    constexpr double EXP_B = 1072693248.0;
    constexpr double EXP_C = 60801.0;

    // Clamp to keep the synthesized exponent in range.
    if (y > 700.0)
        y = 700.0;
    if (y < -700.0)
        y = -700.0;

    const auto hi = static_cast<int32_t>(EXP_A * y + (EXP_B - EXP_C));
    uint64_t bits = static_cast<uint64_t>(static_cast<uint32_t>(hi)) << 32;
    double result;
    std::memcpy(&result, &bits, sizeof(result));
    return result;
}

Fix
fixedExp(Fix x)
{
    return Fix::fromDouble(fastExp(x.toDouble()));
}

} // namespace flexon
