/**
 * @file
 * Signed saturating fixed-point arithmetic.
 *
 * Flexon stores per-neuron values in a 32-bit fixed-point representation
 * with 10 bits (including sign) for the integer portion and 22 fraction
 * bits (Section IV-B1 of the paper). Both the baseline and the spatially
 * folded Flexon models perform every arithmetic operation through this
 * type, which is what makes their bit-exact equivalence meaningful.
 *
 * Semantics chosen to model hardware datapaths:
 *  - multiplication truncates toward negative infinity (arithmetic
 *    right shift of the full-width product), as a shifter would;
 *  - addition/subtraction/multiplication saturate at the representable
 *    range instead of wrapping, modelling saturating adders;
 *  - conversion from double rounds to nearest.
 */

#ifndef FLEXON_FIXED_FIXED_POINT_HH
#define FLEXON_FIXED_FIXED_POINT_HH

#include <cstdint>
#include <limits>

namespace flexon {

/**
 * A signed fixed-point number with IntBits integer bits (including the
 * sign bit) and FracBits fraction bits, stored in an int64_t raw field
 * saturated to the (IntBits + FracBits)-bit two's-complement range.
 */
template <int IntBits, int FracBits>
class FixedPoint
{
    static_assert(IntBits >= 1, "need at least a sign bit");
    static_assert(FracBits >= 0, "fraction bits must be non-negative");
    static_assert(IntBits + FracBits <= 48,
                  "raw values must fit an int64 with headroom for sums");

  public:
    static constexpr int intBits = IntBits;
    static constexpr int fracBits = FracBits;
    static constexpr int totalBits = IntBits + FracBits;

    /** Smallest representable raw value. */
    static constexpr int64_t rawMin = -(int64_t(1) << (totalBits - 1));
    /** Largest representable raw value. */
    static constexpr int64_t rawMax = (int64_t(1) << (totalBits - 1)) - 1;
    /** Raw value of 1.0. */
    static constexpr int64_t rawOne = int64_t(1) << FracBits;

    constexpr FixedPoint() = default;

    /** Build from a raw (already scaled) integer value, saturating. */
    static constexpr FixedPoint
    fromRaw(int64_t raw)
    {
        FixedPoint f;
        f.raw_ = saturate(raw);
        return f;
    }

    /** Convert from double, rounding to nearest, saturating. */
    static FixedPoint
    fromDouble(double v)
    {
        const double scaled = v * static_cast<double>(rawOne);
        if (scaled >= static_cast<double>(rawMax))
            return fromRaw(rawMax);
        if (scaled <= static_cast<double>(rawMin))
            return fromRaw(rawMin);
        const double rounded =
            scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
        return fromRaw(static_cast<int64_t>(rounded));
    }

    /** The fixed-point constant 0. */
    static constexpr FixedPoint zero() { return fromRaw(0); }
    /** The fixed-point constant 1.0. */
    static constexpr FixedPoint one() { return fromRaw(rawOne); }

    constexpr int64_t raw() const { return raw_; }

    double
    toDouble() const
    {
        return static_cast<double>(raw_) / static_cast<double>(rawOne);
    }

    /** Saturating addition (models a saturating adder). */
    friend constexpr FixedPoint
    operator+(FixedPoint a, FixedPoint b)
    {
        return fromRaw(a.raw_ + b.raw_);
    }

    /** Saturating subtraction. */
    friend constexpr FixedPoint
    operator-(FixedPoint a, FixedPoint b)
    {
        return fromRaw(a.raw_ - b.raw_);
    }

    /** Negation (saturates for rawMin). */
    constexpr FixedPoint operator-() const { return fromRaw(-raw_); }

    /**
     * Saturating multiplication; the double-width product is shifted
     * right arithmetically (truncation toward negative infinity), as a
     * hardware multiplier followed by a fixed shifter would behave.
     */
    friend constexpr FixedPoint
    operator*(FixedPoint a, FixedPoint b)
    {
        const __int128 prod =
            static_cast<__int128>(a.raw_) * static_cast<__int128>(b.raw_);
        const __int128 shifted = prod >> FracBits;
        if (shifted > static_cast<__int128>(rawMax))
            return fromRaw(rawMax);
        if (shifted < static_cast<__int128>(rawMin))
            return fromRaw(rawMin);
        return fromRaw(static_cast<int64_t>(shifted));
    }

    FixedPoint &operator+=(FixedPoint o) { return *this = *this + o; }
    FixedPoint &operator-=(FixedPoint o) { return *this = *this - o; }
    FixedPoint &operator*=(FixedPoint o) { return *this = *this * o; }

    friend constexpr bool
    operator==(FixedPoint a, FixedPoint b)
    {
        return a.raw_ == b.raw_;
    }
    friend constexpr bool
    operator!=(FixedPoint a, FixedPoint b)
    {
        return a.raw_ != b.raw_;
    }
    friend constexpr bool
    operator<(FixedPoint a, FixedPoint b)
    {
        return a.raw_ < b.raw_;
    }
    friend constexpr bool
    operator<=(FixedPoint a, FixedPoint b)
    {
        return a.raw_ <= b.raw_;
    }
    friend constexpr bool
    operator>(FixedPoint a, FixedPoint b)
    {
        return a.raw_ > b.raw_;
    }
    friend constexpr bool
    operator>=(FixedPoint a, FixedPoint b)
    {
        return a.raw_ >= b.raw_;
    }

    /** Value of one least-significant bit. */
    static constexpr double
    epsilon()
    {
        return 1.0 / static_cast<double>(rawOne);
    }

  private:
    static constexpr int64_t
    saturate(int64_t raw)
    {
        if (raw > rawMax)
            return rawMax;
        if (raw < rawMin)
            return rawMin;
        return raw;
    }

    int64_t raw_ = 0;
};

/**
 * The Flexon word format: 32-bit fixed point, 10 integer bits (including
 * sign) and 22 fraction bits (Section IV-B1).
 */
using Fix = FixedPoint<10, 22>;

/**
 * Storage truncation for the membrane potential (Section IV-B1,
 * "Truncate"). With shift & scale enforcing v0 = 0 and theta = 1.0 the
 * stored membrane potential lies in [0, 1), so the integer portion can
 * be dropped: 22 bits per neuron instead of 32 (a 31.3 % reduction).
 *
 * Values outside [0, 1) are clamped on store; the datapath only ever
 * stores post-reset potentials, which satisfy the invariant.
 */
inline Fix
truncateMembrane(Fix v)
{
    if (v.raw() < 0)
        return Fix::zero();
    if (v.raw() >= Fix::rawOne)
        return Fix::fromRaw(Fix::rawOne - 1);
    return v;
}

} // namespace flexon

#endif // FLEXON_FIXED_FIXED_POINT_HH
