/**
 * @file
 * Fast exponential approximation (Schraudolph, Neural Computation 1999).
 *
 * The paper (Section IV-B1) uses this approximation for Flexon's
 * exponentiation unit to cut critical-path delay and power. The
 * approximation exploits the IEEE-754 layout: writing i = a*y + b into
 * the high 32 bits of a double yields approximately exp(y) when
 * a = 2^20 / ln(2) and b centres the exponent bias.
 *
 * Both the baseline and folded Flexon models call the same fixedExp()
 * so their results stay bit-identical.
 */

#ifndef FLEXON_FIXED_FAST_EXP_HH
#define FLEXON_FIXED_FAST_EXP_HH

#include "fixed/fixed_point.hh"

namespace flexon {

/**
 * Schraudolph's fast exp on doubles.
 *
 * Relative error is below ~4 % over the usable input range
 * (roughly [-700, 700]); out-of-range inputs are clamped.
 */
double fastExp(double y);

/**
 * The Flexon exponentiation unit: fixed-point in, fixed-point out.
 *
 * The hardware unit consumes a Q10.22 operand and produces a Q10.22
 * result; this model converts through double only as an implementation
 * detail of the approximation (the result is deterministic).
 */
Fix fixedExp(Fix x);

} // namespace flexon

#endif // FLEXON_FIXED_FAST_EXP_HH
