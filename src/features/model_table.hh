/**
 * @file
 * The neuron-model zoo of Table III: each published neuron model
 * expressed as a combination of the 12 biologically common features,
 * plus representative default parameters for each model.
 *
 * This table is the *seed* of the runtime model registry
 * (registry/registry.hh): at startup the registry registers one
 * descriptor per ModelKind from builtinModelSeeds(), and every
 * simulator layer resolves models through registry lookups from
 * there. The enum remains as the stable identity of the built-in
 * models (serialization, RTL generation, tests); new models are
 * registered by name and never extend it.
 */

#ifndef FLEXON_FEATURES_MODEL_TABLE_HH
#define FLEXON_FEATURES_MODEL_TABLE_HH

#include <optional>
#include <string>
#include <vector>

#include "features/feature.hh"
#include "features/params.hh"

namespace flexon {

/**
 * The neuron models of Table III, plus the baseline LIF model.
 *
 * LIF itself does not appear as a Table III row (it is the baseline the
 * features extend) but it is the CUB + EXD combination and every
 * simulator component supports it.
 */
enum class ModelKind {
    LIF,              ///< Leaky integrate-and-fire (baseline)
    LLIF,             ///< Linear-leak integrate-and-fire
    SLIF,             ///< LIF with step inputs
    DSRM0,            ///< Zeroth-order spike response model (digital)
    DLIF,             ///< LIF with decaying synaptic conductances
    QIF,              ///< Quadratic integrate-and-fire
    EIF,              ///< Exponential integrate-and-fire
    Izhikevich,       ///< Izhikevich's simple model
    AdEx,             ///< Adaptive exponential integrate-and-fire
    AdExCOBA,         ///< AdEx with alpha-function conductances
    IFPscAlpha,       ///< PyNN IF_psc_alpha
    IFCondExpGsfaGrr, ///< PyNN IF_cond_exp_gsfa_grr
    NumModels
};

/** Number of supported neuron models (including baseline LIF). */
constexpr size_t numModels = static_cast<size_t>(ModelKind::NumModels);

/** Printable model name ("AdEx", "IF_psc_alpha", ...). */
const char *modelName(ModelKind kind);

/**
 * Parse a built-in model name; nullopt on unknown names so callers
 * can report the failing token and list what is registered (the
 * strict-CLI convention) instead of dying inside the parser. Note
 * this sees only the Table III zoo — name lookups that should also
 * find runtime-registered models go through ModelRegistry::find().
 */
std::optional<ModelKind> modelFromName(const std::string &name);

/**
 * The Table III feature combination implementing a model.
 *
 * E.g. modelFeatures(ModelKind::DLIF) == {EXD, COBE, REV, AR}.
 */
FeatureSet modelFeatures(ModelKind kind);

/**
 * Representative normalized default parameters for a model, suitable
 * for a 0.1 ms time step. The values produce biologically plausible
 * firing behaviour and are used by tests, examples, and the Table I
 * network generators (which override selected fields).
 */
NeuronParams defaultParams(ModelKind kind);

/** All models, in Table III order (baseline LIF first). */
std::vector<ModelKind> allModels();

/** One-line provenance note per model (registry descriptors). */
const char *modelDoc(ModelKind kind);

/**
 * The registry seed: one row per built-in model, in Table III order.
 * registry/builtin.cc turns each row into a registered descriptor at
 * startup; nothing else should need this — consumers resolve models
 * through the registry.
 */
struct BuiltinModelSeed
{
    ModelKind kind;
    const char *name;
    const char *doc;
    NeuronParams params; ///< carries the feature set
};

std::vector<BuiltinModelSeed> builtinModelSeeds();

} // namespace flexon

#endif // FLEXON_FEATURES_MODEL_TABLE_HH
