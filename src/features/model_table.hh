/**
 * @file
 * The neuron-model zoo of Table III: each published neuron model
 * expressed as a combination of the 12 biologically common features,
 * plus representative default parameters for each model.
 */

#ifndef FLEXON_FEATURES_MODEL_TABLE_HH
#define FLEXON_FEATURES_MODEL_TABLE_HH

#include <string>
#include <vector>

#include "features/feature.hh"
#include "features/params.hh"

namespace flexon {

/**
 * The neuron models of Table III, plus the baseline LIF model.
 *
 * LIF itself does not appear as a Table III row (it is the baseline the
 * features extend) but it is the CUB + EXD combination and every
 * simulator component supports it.
 */
enum class ModelKind {
    LIF,              ///< Leaky integrate-and-fire (baseline)
    LLIF,             ///< Linear-leak integrate-and-fire
    SLIF,             ///< LIF with step inputs
    DSRM0,            ///< Zeroth-order spike response model (digital)
    DLIF,             ///< LIF with decaying synaptic conductances
    QIF,              ///< Quadratic integrate-and-fire
    EIF,              ///< Exponential integrate-and-fire
    Izhikevich,       ///< Izhikevich's simple model
    AdEx,             ///< Adaptive exponential integrate-and-fire
    AdExCOBA,         ///< AdEx with alpha-function conductances
    IFPscAlpha,       ///< PyNN IF_psc_alpha
    IFCondExpGsfaGrr, ///< PyNN IF_cond_exp_gsfa_grr
    NumModels
};

/** Number of supported neuron models (including baseline LIF). */
constexpr size_t numModels = static_cast<size_t>(ModelKind::NumModels);

/** Printable model name ("AdEx", "IF_psc_alpha", ...). */
const char *modelName(ModelKind kind);

/** Parse a model name; fatal() on unknown names. */
ModelKind modelFromName(const std::string &name);

/**
 * The Table III feature combination implementing a model.
 *
 * E.g. modelFeatures(ModelKind::DLIF) == {EXD, COBE, REV, AR}.
 */
FeatureSet modelFeatures(ModelKind kind);

/**
 * Representative normalized default parameters for a model, suitable
 * for a 0.1 ms time step. The values produce biologically plausible
 * firing behaviour and are used by tests, examples, and the Table I
 * network generators (which override selected fields).
 */
NeuronParams defaultParams(ModelKind kind);

/** All models, in Table III order (baseline LIF first). */
std::vector<ModelKind> allModels();

} // namespace flexon

#endif // FLEXON_FEATURES_MODEL_TABLE_HH
