#include "features/feature.hh"

#include <bit>

#include "common/logging.hh"

namespace flexon {

const char *
featureName(Feature f)
{
    switch (f) {
      case Feature::EXD: return "EXD";
      case Feature::LID: return "LID";
      case Feature::CUB: return "CUB";
      case Feature::COBE: return "COBE";
      case Feature::COBA: return "COBA";
      case Feature::REV: return "REV";
      case Feature::QDI: return "QDI";
      case Feature::EXI: return "EXI";
      case Feature::ADT: return "ADT";
      case Feature::SBT: return "SBT";
      case Feature::AR: return "AR";
      case Feature::RR: return "RR";
      default: panic("invalid feature %d", static_cast<int>(f));
    }
}

const char *
featureDescription(Feature f)
{
    switch (f) {
      case Feature::EXD: return "Exponential membrane decay";
      case Feature::LID: return "Linear membrane decay";
      case Feature::CUB: return "Current-based accumulation";
      case Feature::COBE: return "Conductance-based (exponential)";
      case Feature::COBA: return "Conductance-based (alpha function)";
      case Feature::REV: return "Reversal voltage";
      case Feature::QDI: return "Quadratic spike initiation";
      case Feature::EXI: return "Exponential spike initiation";
      case Feature::ADT: return "Adaptation";
      case Feature::SBT: return "Subthreshold oscillation";
      case Feature::AR: return "Absolute refractory";
      case Feature::RR: return "Relative refractory";
      default: panic("invalid feature %d", static_cast<int>(f));
    }
}

FeatureCategory
featureCategory(Feature f)
{
    switch (f) {
      case Feature::EXD:
      case Feature::LID:
        return FeatureCategory::MembraneDecay;
      case Feature::CUB:
      case Feature::COBE:
      case Feature::COBA:
      case Feature::REV:
        return FeatureCategory::InputSpikeAccumulation;
      case Feature::QDI:
      case Feature::EXI:
        return FeatureCategory::SpikeInitiation;
      case Feature::ADT:
      case Feature::SBT:
        return FeatureCategory::SpikeTriggeredCurrent;
      case Feature::AR:
      case Feature::RR:
        return FeatureCategory::Refractory;
      default: panic("invalid feature %d", static_cast<int>(f));
    }
}

const char *
categoryName(FeatureCategory c)
{
    switch (c) {
      case FeatureCategory::MembraneDecay:
        return "Membrane Decay";
      case FeatureCategory::InputSpikeAccumulation:
        return "Input Spike Accumulation";
      case FeatureCategory::SpikeInitiation:
        return "Spike Initiation";
      case FeatureCategory::SpikeTriggeredCurrent:
        return "Spike-Triggered Current";
      case FeatureCategory::Refractory:
        return "Refractory";
      default: panic("invalid category %d", static_cast<int>(c));
    }
}

std::optional<Feature>
featureFromName(const std::string &name)
{
    for (size_t i = 0; i < numFeatures; ++i) {
        auto f = static_cast<Feature>(i);
        if (name == featureName(f))
            return f;
    }
    return std::nullopt;
}

std::optional<FeatureSet>
featureSetFromString(const std::string &text, std::string *badToken)
{
    FeatureSet set;
    size_t start = 0;
    while (start <= text.size()) {
        const size_t plus = text.find('+', start);
        const size_t end =
            plus == std::string::npos ? text.size() : plus;
        const std::string token = text.substr(start, end - start);
        const std::optional<Feature> f = featureFromName(token);
        if (!f) {
            if (badToken != nullptr)
                *badToken = token;
            return std::nullopt;
        }
        set.add(*f);
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    return set;
}

FeatureSet::FeatureSet(std::initializer_list<Feature> features)
{
    for (Feature f : features)
        add(f);
}

FeatureSet &
FeatureSet::add(Feature f)
{
    flexon_assert(f < Feature::NumFeatures);
    bits_ |= bit(f);
    return *this;
}

FeatureSet &
FeatureSet::remove(Feature f)
{
    flexon_assert(f < Feature::NumFeatures);
    bits_ &= static_cast<uint16_t>(~bit(f));
    return *this;
}

size_t
FeatureSet::count() const
{
    return static_cast<size_t>(std::popcount(bits_));
}

std::string
FeatureSet::validate() const
{
    if (has(Feature::EXD) && has(Feature::LID))
        return "EXD and LID are mutually exclusive membrane decays";
    int accum = static_cast<int>(has(Feature::CUB)) +
                static_cast<int>(has(Feature::COBE)) +
                static_cast<int>(has(Feature::COBA));
    if (accum > 1)
        return "CUB, COBE and COBA are mutually exclusive";
    if (has(Feature::REV) && has(Feature::CUB))
        return "REV cannot be combined with CUB (Equation 4)";
    if (has(Feature::REV) && !has(Feature::COBE) && !has(Feature::COBA))
        return "REV requires conductance-based accumulation";
    if (has(Feature::QDI) && has(Feature::EXI))
        return "QDI and EXI are mutually exclusive spike initiations";
    if ((has(Feature::QDI) || has(Feature::EXI)) && has(Feature::LID))
        return "QDI/EXI replace the exponential leak and require EXD "
               "(Table V pairs them with EXD)";
    if (has(Feature::RR) && (has(Feature::ADT) || has(Feature::SBT)))
        return "RR drives the w state variable through Equation 8 and "
               "cannot combine with ADT/SBT (Equation 6)";
    return "";
}

std::vector<Feature>
FeatureSet::list() const
{
    std::vector<Feature> out;
    for (size_t i = 0; i < numFeatures; ++i) {
        auto f = static_cast<Feature>(i);
        if (has(f))
            out.push_back(f);
    }
    return out;
}

std::string
FeatureSet::toString() const
{
    std::string out;
    for (Feature f : list()) {
        if (!out.empty())
            out += "+";
        out += featureName(f);
    }
    return out.empty() ? "(none)" : out;
}

} // namespace flexon
