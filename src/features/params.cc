#include "features/params.hh"

#include <sstream>

namespace flexon {

std::string
NeuronParams::validate() const
{
    std::string fs = features.validate();
    if (!fs.empty())
        return fs;

    if (!features.has(Feature::CUB) && !features.has(Feature::COBE) &&
        !features.has(Feature::COBA)) {
        return "an input spike accumulation feature (CUB, COBE or "
               "COBA) is required";
    }
    if (numSynapseTypes < 1 || numSynapseTypes > maxSynapseTypes) {
        std::ostringstream oss;
        oss << "numSynapseTypes must be in [1, " << maxSynapseTypes
            << "], got " << numSynapseTypes;
        return oss.str();
    }
    if (epsM < 0.0 || epsM > 1.0)
        return "epsM (dt/tau) must be within [0, 1]";
    for (size_t i = 0; i < numSynapseTypes; ++i) {
        if (syn[i].epsG < 0.0 || syn[i].epsG > 1.0)
            return "epsG must be within [0, 1]";
    }
    if (features.has(Feature::EXI) && deltaT <= 0.0)
        return "EXI requires a positive sharpness factor deltaT";
    if ((features.has(Feature::QDI) || features.has(Feature::EXI)) &&
        vFiring <= 1.0) {
        return "firing voltage vFiring must exceed the threshold (1.0)";
    }
    if (epsW < 0.0 || epsW > 1.0)
        return "epsW must be within [0, 1]";
    if (epsR < 0.0 || epsR > 1.0)
        return "epsR must be within [0, 1]";
    if (features.has(Feature::AR) && arSteps == 0)
        return "AR requires arSteps (cnt_max) > 0";
    return "";
}

} // namespace flexon
