/**
 * @file
 * The 12 biologically common features (Table II of the paper) and the
 * FeatureSet type describing which features a neuron configuration
 * enables.
 *
 * Feature categories:
 *  - Membrane decay: EXD (exponential), LID (linear)
 *  - Input spike accumulation: CUB (current-based), COBE
 *    (conductance-based, exponential), COBA (conductance-based, alpha
 *    function), REV (reversal voltage)
 *  - Spike initiation: QDI (quadratic), EXI (exponential)
 *  - Spike-triggered current: ADT (adaptation), SBT (subthreshold
 *    oscillation)
 *  - Refractory: AR (absolute), RR (relative)
 */

#ifndef FLEXON_FEATURES_FEATURE_HH
#define FLEXON_FEATURES_FEATURE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace flexon {

/** One of the 12 biologically common features. */
enum class Feature : uint16_t {
    EXD,  ///< Exponential membrane decay
    LID,  ///< Linear membrane decay
    CUB,  ///< Current-based input spike accumulation
    COBE, ///< Conductance-based accumulation, exponential kernel
    COBA, ///< Conductance-based accumulation, alpha-function kernel
    REV,  ///< Reversal-voltage scaling of conductance contributions
    QDI,  ///< Quadratic spike initiation
    EXI,  ///< Exponential spike initiation
    ADT,  ///< Spike-triggered adaptation current
    SBT,  ///< Subthreshold oscillation
    AR,   ///< Absolute refractory period
    RR,   ///< Relative refractory period
    NumFeatures
};

/** Number of biologically common features. */
constexpr size_t numFeatures =
    static_cast<size_t>(Feature::NumFeatures);

/** The five feature categories of Table II. */
enum class FeatureCategory {
    MembraneDecay,
    InputSpikeAccumulation,
    SpikeInitiation,
    SpikeTriggeredCurrent,
    Refractory,
};

/** Short name from Table II ("EXD", "COBA", ...). */
const char *featureName(Feature f);

/** Long descriptive name ("Exponential membrane decay", ...). */
const char *featureDescription(Feature f);

/** The Table II category a feature belongs to. */
FeatureCategory featureCategory(Feature f);

/** Printable name of a category. */
const char *categoryName(FeatureCategory c);

/**
 * Parse a Table II abbreviation; nullopt on unknown names so callers
 * (CLI flags, descriptor files) can report *which* token failed and
 * list the valid names instead of dying inside the parser.
 */
std::optional<Feature> featureFromName(const std::string &name);

/**
 * A set of enabled biologically common features.
 *
 * Thin bitmask wrapper with validation of the paper's combination
 * rules (Section IV-A / Figure 10):
 *  - EXD and LID are mutually exclusive (one membrane-decay MUX);
 *  - QDI and EXI are mutually exclusive (one spike-initiation MUX);
 *  - CUB, COBE and COBA are mutually exclusive accumulation modes;
 *  - REV requires a conductance-based accumulation (cannot pair with
 *    CUB, Equation 4);
 *  - SBT implies the ADT state variable (its datapath embeds ADT's);
 *  - RR excludes ADT/SBT (both drive w, through different equations).
 */
class FeatureSet
{
  public:
    constexpr FeatureSet() = default;

    /** Build from an explicit list of features. */
    FeatureSet(std::initializer_list<Feature> features);

    constexpr bool
    has(Feature f) const
    {
        return bits_ & bit(f);
    }

    FeatureSet &add(Feature f);
    FeatureSet &remove(Feature f);

    constexpr uint16_t raw() const { return bits_; }
    static constexpr FeatureSet
    fromRaw(uint16_t bits)
    {
        FeatureSet s;
        s.bits_ = bits;
        return s;
    }

    constexpr bool empty() const { return bits_ == 0; }
    size_t count() const;

    friend constexpr bool
    operator==(FeatureSet a, FeatureSet b)
    {
        return a.bits_ == b.bits_;
    }

    /**
     * Check the combination rules listed above.
     * @return an empty string if valid, else a description of the
     *         first violated rule.
     */
    std::string validate() const;

    /** True iff validate() returns an empty string. */
    bool valid() const { return validate().empty(); }

    /** All features present, in Table II order. */
    std::vector<Feature> list() const;

    /** Comma-separated abbreviation string, e.g. "EXD+COBE+REV+AR". */
    std::string toString() const;

  private:
    static constexpr uint16_t
    bit(Feature f)
    {
        return static_cast<uint16_t>(1u << static_cast<uint16_t>(f));
    }

    uint16_t bits_ = 0;
};

/**
 * Parse a "+"-separated feature combination ("LID+CUB+AR", the
 * FeatureSet::toString format). Returns nullopt — with the offending
 * token in *badToken when given — on unknown names; the combination
 * rules are NOT checked here (call FeatureSet::validate()).
 */
std::optional<FeatureSet>
featureSetFromString(const std::string &text,
                     std::string *badToken = nullptr);

} // namespace flexon

#endif // FLEXON_FEATURES_FEATURE_HH
