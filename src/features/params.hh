/**
 * @file
 * Neuron parameterization shared by the reference models, the Flexon
 * digital-neuron models, and the backend code generator.
 *
 * All parameters are in *normalized* units after the paper's
 * shift & scale transformation (Section IV-B1): the resting voltage is
 * 0 and the threshold voltage is 1.0. Equations 3-8 of the paper are
 * written in terms of the per-step constants below (epsilon_m = dt/tau
 * etc.), so the parameter set stores the per-step constants directly.
 */

#ifndef FLEXON_FEATURES_PARAMS_HH
#define FLEXON_FEATURES_PARAMS_HH

#include <array>
#include <cstdint>
#include <string>

#include "features/feature.hh"

namespace flexon {

/** Maximum number of synapse types (Table IV: type[1:0], 4 values). */
constexpr size_t maxSynapseTypes = 4;

/**
 * Per-synapse-type constants (Equation 4).
 *
 * epsG is the conductance decay constant epsilon_{g,i}; vG is the
 * reversal-voltage constant v_{g,i} used when REV is enabled.
 */
struct SynapseTypeParams
{
    double epsG = 0.0;
    double vG = 0.0;
};

/**
 * The complete normalized parameter set for one neuron configuration.
 *
 * Only the fields relevant to the enabled features are consumed; the
 * rest are ignored. See Equations 3-8 for the symbol definitions.
 */
struct NeuronParams
{
    /** Enabled biologically common features. */
    FeatureSet features;

    /** Number of active synapse types (1..maxSynapseTypes). */
    size_t numSynapseTypes = 1;

    // --- Membrane decay (Equation 3) ---
    /** epsilon_m = dt / tau, the per-step membrane decay factor. */
    double epsM = 0.01;
    /** V_leak, the linear decay amount per step (LID). */
    double vLeak = 0.0;

    // --- Input spike accumulation (Equation 4) ---
    std::array<SynapseTypeParams, maxSynapseTypes> syn{};

    // --- Spike initiation (Equation 5) ---
    /** Delta_T, the sharpness factor (EXI). */
    double deltaT = 0.2;
    /** v_c, the critical voltage (QDI). */
    double vCrit = 0.5;
    /** v_theta, the firing voltage (> threshold 1.0) for QDI/EXI. */
    double vFiring = 1.3;

    // --- Spike-triggered current (Equation 6) ---
    /** epsilon_w, the adaptation decay constant. */
    double epsW = 0.0;
    /** a, the subthreshold coupling constant (SBT). */
    double a = 0.0;
    /** v_w, the oscillation voltage level (SBT). */
    double vW = 0.0;
    /** b, the spike-triggered jump size. */
    double b = 0.0;

    // --- Refractory (Equations 7/8) ---
    /** cnt_max, absolute refractory length in time steps (AR). */
    uint32_t arSteps = 0;
    /** epsilon_r, the relative refractory decay constant (RR). */
    double epsR = 0.0;
    /** v_rr, the relative refractory reversal voltage (RR). */
    double vRR = 0.0;
    /** v_ar, the adaptation reversal voltage (RR, Equation 8). */
    double vAR = 0.0;
    /** q_r, the relative refractory jump size (RR). */
    double qR = 0.0;

    /**
     * Validate feature-set rules and parameter ranges; returns an empty
     * string when valid, else a description of the problem.
     */
    std::string validate() const;

    /** The firing threshold used by the spike check (Equation 5). */
    double
    threshold() const
    {
        const bool soft = features.has(Feature::QDI) ||
                          features.has(Feature::EXI);
        return soft ? vFiring : 1.0;
    }
};

/**
 * Dynamic state of one simulated neuron, in normalized units.
 *
 * Which variables are live depends on the enabled features: y/g for
 * conductance accumulation, w for ADT/SBT/RR, r for RR, cnt for AR.
 */
struct NeuronState
{
    double v = 0.0;
    std::array<double, maxSynapseTypes> y{};
    std::array<double, maxSynapseTypes> g{};
    double w = 0.0;
    double r = 0.0;
    uint32_t cnt = 0;

    /** Reset to the resting state (all zeros). */
    void reset() { *this = NeuronState{}; }
};

} // namespace flexon

#endif // FLEXON_FEATURES_PARAMS_HH
