#include "features/model_table.hh"

#include "common/logging.hh"

namespace flexon {

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::LIF: return "LIF";
      case ModelKind::LLIF: return "LLIF";
      case ModelKind::SLIF: return "SLIF";
      case ModelKind::DSRM0: return "DSRM0";
      case ModelKind::DLIF: return "DLIF";
      case ModelKind::QIF: return "QIF";
      case ModelKind::EIF: return "EIF";
      case ModelKind::Izhikevich: return "Izhikevich";
      case ModelKind::AdEx: return "AdEx";
      case ModelKind::AdExCOBA: return "AdEx_COBA";
      case ModelKind::IFPscAlpha: return "IF_psc_alpha";
      case ModelKind::IFCondExpGsfaGrr: return "IF_cond_exp_gsfa_grr";
      default: panic("invalid model kind %d", static_cast<int>(kind));
    }
}

std::optional<ModelKind>
modelFromName(const std::string &name)
{
    for (size_t i = 0; i < numModels; ++i) {
        auto kind = static_cast<ModelKind>(i);
        if (name == modelName(kind))
            return kind;
    }
    return std::nullopt;
}

const char *
modelDoc(ModelKind kind)
{
    switch (kind) {
      case ModelKind::LIF:
        return "Leaky integrate-and-fire (baseline)";
      case ModelKind::LLIF:
        return "Linear-leak integrate-and-fire";
      case ModelKind::SLIF:
        return "LIF with step inputs";
      case ModelKind::DSRM0:
        return "Zeroth-order spike response model (digital)";
      case ModelKind::DLIF:
        return "LIF with decaying synaptic conductances";
      case ModelKind::QIF:
        return "Quadratic integrate-and-fire";
      case ModelKind::EIF:
        return "Exponential integrate-and-fire";
      case ModelKind::Izhikevich:
        return "Izhikevich's simple model";
      case ModelKind::AdEx:
        return "Adaptive exponential integrate-and-fire";
      case ModelKind::AdExCOBA:
        return "AdEx with alpha-function conductances";
      case ModelKind::IFPscAlpha:
        return "PyNN IF_psc_alpha";
      case ModelKind::IFCondExpGsfaGrr:
        return "PyNN IF_cond_exp_gsfa_grr";
      default: panic("invalid model kind %d", static_cast<int>(kind));
    }
}

FeatureSet
modelFeatures(ModelKind kind)
{
    using F = Feature;
    switch (kind) {
      case ModelKind::LIF:
        return {F::EXD, F::CUB};
      case ModelKind::LLIF:
        return {F::LID, F::CUB, F::AR};
      case ModelKind::SLIF:
        return {F::EXD, F::CUB, F::AR};
      case ModelKind::DSRM0:
        return {F::EXD, F::COBE, F::AR};
      case ModelKind::DLIF:
        return {F::EXD, F::COBE, F::REV, F::AR};
      case ModelKind::QIF:
        return {F::EXD, F::COBE, F::REV, F::QDI, F::AR};
      case ModelKind::EIF:
        return {F::EXD, F::COBE, F::REV, F::EXI, F::AR};
      case ModelKind::Izhikevich:
        return {F::EXD, F::COBE, F::REV, F::QDI, F::ADT, F::AR};
      case ModelKind::AdEx:
        return {F::EXD, F::COBE, F::REV, F::EXI, F::ADT, F::SBT, F::AR};
      case ModelKind::AdExCOBA:
        return {F::EXD, F::COBA, F::REV, F::EXI, F::ADT, F::SBT, F::AR};
      case ModelKind::IFPscAlpha:
        return {F::EXD, F::COBA, F::AR};
      case ModelKind::IFCondExpGsfaGrr:
        return {F::EXD, F::COBE, F::REV, F::AR, F::RR};
      default: panic("invalid model kind %d", static_cast<int>(kind));
    }
}

NeuronParams
defaultParams(ModelKind kind)
{
    NeuronParams p;
    p.features = modelFeatures(kind);

    // Common normalized constants for a 0.1 ms time step:
    // membrane tau = 10 ms -> epsM = dt/tau = 0.01;
    // synaptic tau = 5 ms -> epsG = 0.02;
    // absolute refractory = 2 ms -> 20 steps.
    p.epsM = 0.01;
    p.numSynapseTypes = 2;
    p.syn[0] = {0.02, 3.0};   // excitatory: reversal above threshold
    p.syn[1] = {0.02, -1.0};  // inhibitory: reversal below rest
    p.arSteps = 20;

    switch (kind) {
      case ModelKind::LIF:
        p.arSteps = 0;
        break;
      case ModelKind::LLIF:
        p.epsM = 0.0;
        p.vLeak = 0.002;
        break;
      case ModelKind::SLIF:
      case ModelKind::DSRM0:
      case ModelKind::DLIF:
        break;
      case ModelKind::QIF:
        p.vCrit = 0.5;
        p.vFiring = 1.3;
        break;
      case ModelKind::EIF:
        p.deltaT = 0.2;
        p.vFiring = 1.5;
        break;
      case ModelKind::Izhikevich:
        p.vCrit = 0.5;
        p.vFiring = 1.3;
        p.epsW = 0.002;   // tau_w = 50 ms
        p.b = 0.1;
        break;
      case ModelKind::AdEx:
      case ModelKind::AdExCOBA:
        p.deltaT = 0.2;
        p.vFiring = 1.5;
        p.epsW = 0.001;   // tau_w = 100 ms
        // Negative coupling: w opposes membrane excursions above v_w,
        // producing the damped subthreshold oscillation of Figure 7
        // (w enters v' additively in Equation 6).
        p.a = -0.01;
        p.vW = 0.1;
        p.b = 0.08;
        break;
      case ModelKind::IFPscAlpha:
        break;
      case ModelKind::IFCondExpGsfaGrr:
        // gsfa: conductance-form spike-frequency adaptation (w);
        // grr: relative refractory conductance (r). Negative jump
        // sizes make the post-spike conductances positive
        // (Equation 8 subtracts the jump on fire).
        p.epsW = 0.005;   // tau_gsfa = 20 ms
        p.vAR = -0.7;
        p.b = -0.1;
        p.epsR = 0.05;    // tau_grr = 2 ms
        p.vRR = -0.5;
        p.qR = -0.2;
        break;
      default:
        panic("invalid model kind %d", static_cast<int>(kind));
    }

    flexon_assert(p.validate().empty());
    return p;
}

std::vector<ModelKind>
allModels()
{
    std::vector<ModelKind> out;
    for (size_t i = 0; i < numModels; ++i)
        out.push_back(static_cast<ModelKind>(i));
    return out;
}

std::vector<BuiltinModelSeed>
builtinModelSeeds()
{
    std::vector<BuiltinModelSeed> seeds;
    seeds.reserve(numModels);
    for (const ModelKind kind : allModels()) {
        seeds.push_back({kind, modelName(kind), modelDoc(kind),
                         defaultParams(kind)});
    }
    return seeds;
}

} // namespace flexon
