/**
 * @file
 * Per-population, feature-specialized batch kernels over
 * structure-of-arrays Flexon state.
 *
 * A Flexon population shares one FlexonConfig (Section III: the
 * feature composition is a property of the population, not of the
 * neuron), yet the scalar path re-decides that composition per neuron
 * per step through ~15 FeatureSet::has() branches and drags a private
 * FlexonConfig copy through the cache for every neuron. This layer
 * hoists the model choice out of the inner loop: the state variables
 * v/y/g/w/r/cnt live in contiguous per-population arrays, and the
 * step kernel is instantiated from a compile-time feature mask —
 * dispatched once per population at build time — so the specialized
 * loop body contains only the datapaths the population actually
 * enables. A generic kernel (same source body, runtime feature
 * queries) covers feature combinations outside the dispatch table.
 *
 * Bit-exactness contract: every kernel performs the exact Fix
 * operation order of FlexonNeuron::step (the Table V microcode
 * order), so specialized, generic, and scalar paths produce identical
 * spikes, membrane trajectories, and preResetV at any thread count.
 * The double->Fix input scaling of the hardware backends is fused
 * into the kernel (the Table V convention: weights pre-scaled by
 * epsilon_m, CUB merging all synapse types into one signed input),
 * eliminating the dense per-step staging buffer.
 */

#ifndef FLEXON_FLEXON_KERNEL_HH
#define FLEXON_FLEXON_KERNEL_HH

#include <cstdint>
#include <vector>

#include "flexon/config.hh"

namespace flexon {

/**
 * Structure-of-arrays dynamic state of one Flexon population.
 *
 * y and g are row-major [neuron][synapseType] with stride
 * `synStride` = the population's active synapse-type count (not
 * maxSynapseTypes), so a COBE population with one type streams 1/4 of
 * the AoS footprint.
 */
struct PopulationSoA
{
    size_t count = 0;
    size_t synStride = 1;
    std::vector<Fix> v;
    std::vector<Fix> w;
    std::vector<Fix> r;
    std::vector<Fix> preResetV;
    std::vector<Fix> y; ///< count * synStride, COBA only
    std::vector<Fix> g; ///< count * synStride, COBE/COBA/CUB scratch
    std::vector<uint32_t> cnt;

    /** Size the arrays for `count` neurons at rest. */
    void resize(size_t count, size_t numSynapseTypes);

    /** Return every neuron to the resting state. */
    void reset();
};

/** One kernel invocation: a population slice and its data streams. */
struct KernelArgs
{
    const FlexonConfig *config; ///< the population's shared config
    PopulationSoA *soa;
    /**
     * Reference-unit double input, row-major stride maxSynapseTypes,
     * already offset to the population base (fused-scaling kernels);
     * null when fixInput is used.
     */
    const double *refInput = nullptr;
    /** Pre-scaled Fix input, same layout (legacy-path kernels). */
    const Fix *fixInput = nullptr;
    /** Fired flags, offset to the population base. */
    uint8_t *fired = nullptr;
};

/** Steps population-local neurons [begin, end). */
using StepKernelFn = void (*)(const KernelArgs &args, size_t begin,
                              size_t end);

/** The two input-mode variants of one population's step kernel. */
struct SelectedKernel
{
    /** Fused double->Fix scaling variant (reads KernelArgs::refInput). */
    StepKernelFn fused;
    /** Pre-scaled Fix variant (reads KernelArgs::fixInput). */
    StepKernelFn scaled;
    /** True iff a compile-time specialized instantiation was found. */
    bool specialized;
};

/**
 * Pick the step kernel for a feature set: a compile-time specialized
 * instantiation when the mask is in the dispatch table (the Table III
 * model combinations and their single-feature building blocks), else
 * the generic runtime-dispatch kernel. Both are bit-identical.
 */
SelectedKernel selectStepKernel(FeatureSet features);

/** Number of feature masks with compiled specializations (for tests). */
size_t numSpecializedKernels();

/**
 * Read-only view of one neuron inside a PopulationSoA, materializing
 * the AoS FlexonState probes and tests expect (y/g padded with zeros
 * to maxSynapseTypes).
 */
class FlexonNeuronView
{
  public:
    FlexonNeuronView(const FlexonConfig &config,
                     const PopulationSoA &soa, size_t idx)
        : config_(&config), soa_(&soa), idx_(idx)
    {
    }

    FlexonState state() const;
    Fix preResetV() const { return soa_->preResetV[idx_]; }
    const FlexonConfig &config() const { return *config_; }

  private:
    const FlexonConfig *config_;
    const PopulationSoA *soa_;
    size_t idx_;
};

} // namespace flexon

#endif // FLEXON_FLEXON_KERNEL_HH
