#include "flexon/array.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

FlexonArray::FlexonArray(size_t width, double clockHz)
    : width_(width), clockHz_(clockHz)
{
    flexon_assert(width > 0);
    flexon_assert(clockHz > 0.0);
}

PopulationId
FlexonArray::addPopulation(const FlexonConfig &config, size_t count)
{
    flexon_assert(count > 0);
    populations_.push_back({neurons_.size(), count, config});
    neurons_.reserve(neurons_.size() + count);
    for (size_t i = 0; i < count; ++i)
        neurons_.emplace_back(config);
    return populations_.size() - 1;
}

uint64_t
FlexonArray::cyclesPerStep() const
{
    // Single-cycle design: each lane evaluates one neuron per cycle.
    return (neurons_.size() + width_ - 1) / width_;
}

void
FlexonArray::step(std::span<const Fix> input,
                  std::vector<uint8_t> &fired)
{
    flexon_assert(input.size() >= neurons_.size() * maxSynapseTypes);
    fired.resize(neurons_.size());
    uint8_t *const flags = fired.data();
    ThreadPool::global().parallelFor(
        neurons_.size(), hostThreads_,
        [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                flags[i] = neurons_[i].step(input.subspan(
                    i * maxSynapseTypes, maxSynapseTypes));
            }
        });
    cycles_ += cyclesPerStep();
}

const FlexonNeuron &
FlexonArray::neuron(size_t idx) const
{
    flexon_assert(idx < neurons_.size());
    return neurons_[idx];
}

FlexonNeuron &
FlexonArray::neuron(size_t idx)
{
    flexon_assert(idx < neurons_.size());
    return neurons_[idx];
}

void
FlexonArray::resetState()
{
    for (auto &n : neurons_)
        n.reset();
}

} // namespace flexon
