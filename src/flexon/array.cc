#include "flexon/array.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

FlexonArray::FlexonArray(size_t width, double clockHz)
    : width_(width), clockHz_(clockHz)
{
    flexon_assert(width > 0);
    flexon_assert(clockHz > 0.0);
}

PopulationId
FlexonArray::addPopulation(const FlexonConfig &config, size_t count)
{
    flexon_assert(count > 0);
    flexon_assert(config.features.valid());
    populations_.push_back({numNeurons_, count, config});
    state_.emplace_back();
    state_.back().resize(count, config.numSynapseTypes);
    kernels_.push_back(selectStepKernel(config.features));
    numNeurons_ += count;
    return populations_.size() - 1;
}

uint64_t
FlexonArray::cyclesPerStep() const
{
    // Single-cycle design: each lane evaluates one neuron per cycle.
    return (numNeurons_ + width_ - 1) / width_;
}

template <typename InputT>
void
FlexonArray::stepImpl(const InputT *input, std::vector<uint8_t> &fired)
{
    fired.resize(numNeurons_);
    uint8_t *const flags = fired.data();
    // Chunks are intersected with population ranges, so every kernel
    // call stays inside one population and lane boundaries never
    // change which kernel touches which neuron.
    ThreadPool::global().parallelFor(
        numNeurons_, hostThreads_,
        [&](size_t, size_t begin, size_t end) {
            for (size_t p = 0; p < populations_.size(); ++p) {
                const PopulationInfo &pop = populations_[p];
                const size_t lo = std::max(begin, pop.base);
                const size_t hi = std::min(end, pop.base + pop.count);
                if (lo >= hi)
                    continue;
                KernelArgs args;
                args.config = &pop.config;
                args.soa = &state_[p];
                args.fired = flags + pop.base;
                if constexpr (std::is_same_v<InputT, double>) {
                    args.refInput =
                        input + pop.base * maxSynapseTypes;
                    kernels_[p].fused(args, lo - pop.base,
                                      hi - pop.base);
                } else {
                    args.fixInput =
                        input + pop.base * maxSynapseTypes;
                    kernels_[p].scaled(args, lo - pop.base,
                                       hi - pop.base);
                }
            }
        });
    cycles_ += cyclesPerStep();
}

void
FlexonArray::step(std::span<const Fix> input,
                  std::vector<uint8_t> &fired)
{
    flexon_assert(input.size() >= numNeurons_ * maxSynapseTypes);
    stepImpl(input.data(), fired);
}

void
FlexonArray::step(std::span<const double> input,
                  std::vector<uint8_t> &fired)
{
    flexon_assert(input.size() >= numNeurons_ * maxSynapseTypes);
    stepImpl(input.data(), fired);
}

FlexonNeuronView
FlexonArray::neuron(size_t idx) const
{
    flexon_assert(idx < numNeurons_);
    for (size_t p = 0; p < populations_.size(); ++p) {
        const PopulationInfo &pop = populations_[p];
        if (idx < pop.base + pop.count)
            return {pop.config, state_[p], idx - pop.base};
    }
    panic("neuron index %zu outside every population", idx);
}

bool
FlexonArray::populationSpecialized(PopulationId p) const
{
    flexon_assert(p < kernels_.size());
    return kernels_[p].specialized;
}

void
FlexonArray::resetState()
{
    for (auto &soa : state_)
        soa.reset();
}

} // namespace flexon
