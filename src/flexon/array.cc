#include "flexon/array.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

FlexonArray::FlexonArray(size_t width, double clockHz)
    : width_(width), clockHz_(clockHz)
{
    flexon_assert(width > 0);
    flexon_assert(clockHz > 0.0);
}

PopulationId
FlexonArray::addPopulation(const FlexonConfig &config, size_t count)
{
    flexon_assert(count > 0);
    flexon_assert(config.features.valid());
    populations_.push_back({numNeurons_, count, config});
    state_.emplace_back();
    state_.back().resize(count, config.numSynapseTypes);
    kernels_.push_back(selectStepKernel(config.features));

    // Dispatch-mix telemetry is keyed by feature mask, so every
    // population (and every array) with the same composition shares
    // one set of process-wide counters.
    auto &registry = telemetry::Registry::global();
    const std::string prefix =
        "kernel." + config.features.toString() +
        (kernels_.back().specialized ? "" : ".generic");
    popTelemetry_.push_back(
        {&registry.counter(prefix + ".calls",
                           "batch-kernel invocations"),
         &registry.counter(prefix + ".neurons",
                           "neuron slots stepped"),
         &registry.counter(prefix + ".blocked",
                           "refractory-blocked slots entering the "
                           "step"),
         &registry.counter(prefix + ".zero_input",
                           "all-zero input rows entering the fused "
                           "step")});

    numNeurons_ += count;
    return populations_.size() - 1;
}

uint64_t
FlexonArray::cyclesPerStep() const
{
    // Single-cycle design: each lane evaluates one neuron per cycle.
    return (numNeurons_ + width_ - 1) / width_;
}

template <typename InputT>
void
FlexonArray::notePopulationSlice(size_t p, const InputT *input,
                                 size_t lo, size_t hi) const
{
    const PopulationInfo &pop = populations_[p];
    const PopulationTelemetry &pt = popTelemetry_[p];
    pt.calls->add(1);
    pt.neurons->add(hi - lo);
    // Sampled before the kernel runs: the kernel itself decrements
    // the refractory counters of the slots it skips.
    if (pop.config.features.has(Feature::AR)) {
        const uint32_t *const cnt = state_[p].cnt.data();
        uint64_t blocked = 0;
        for (size_t i = lo - pop.base; i < hi - pop.base; ++i)
            blocked += cnt[i] > 0 ? 1 : 0;
        if (blocked > 0)
            pt.blocked->add(blocked);
    }
    if constexpr (std::is_same_v<InputT, double>) {
        // Fused-scaling path: rows whose live synapse-type cells are
        // all zero skip the double->Fix conversion in the kernel.
        const size_t types = pop.config.numSynapseTypes;
        uint64_t zeroRows = 0;
        for (size_t i = lo; i < hi; ++i) {
            const double *const row = input + i * maxSynapseTypes;
            bool zero = true;
            for (size_t s = 0; s < types; ++s)
                zero = zero && row[s] == 0.0;
            zeroRows += zero ? 1 : 0;
        }
        if (zeroRows > 0)
            pt.zeroInput->add(zeroRows);
    }
}

template <typename InputT>
void
FlexonArray::stepImpl(const InputT *input, std::vector<uint8_t> &fired)
{
    fired.resize(numNeurons_);
    uint8_t *const flags = fired.data();
    // Chunks are intersected with population ranges, so every kernel
    // call stays inside one population and lane boundaries never
    // change which kernel touches which neuron.
    ThreadPool::global().parallelFor(
        numNeurons_, hostThreads_,
        [&](size_t, size_t begin, size_t end) {
            for (size_t p = 0; p < populations_.size(); ++p) {
                const PopulationInfo &pop = populations_[p];
                const size_t lo = std::max(begin, pop.base);
                const size_t hi = std::min(end, pop.base + pop.count);
                if (lo >= hi)
                    continue;
                if (telemetry::detailEnabled())
                    notePopulationSlice<InputT>(p, input, lo, hi);
                KernelArgs args;
                args.config = &pop.config;
                args.soa = &state_[p];
                args.fired = flags + pop.base;
                if constexpr (std::is_same_v<InputT, double>) {
                    args.refInput =
                        input + pop.base * maxSynapseTypes;
                    kernels_[p].fused(args, lo - pop.base,
                                      hi - pop.base);
                } else {
                    args.fixInput =
                        input + pop.base * maxSynapseTypes;
                    kernels_[p].scaled(args, lo - pop.base,
                                       hi - pop.base);
                }
            }
        });
    cycles_ += cyclesPerStep();
}

void
FlexonArray::step(std::span<const Fix> input,
                  std::vector<uint8_t> &fired)
{
    flexon_assert(input.size() >= numNeurons_ * maxSynapseTypes);
    stepImpl(input.data(), fired);
}

void
FlexonArray::step(std::span<const double> input,
                  std::vector<uint8_t> &fired)
{
    flexon_assert(input.size() >= numNeurons_ * maxSynapseTypes);
    stepImpl(input.data(), fired);
}

FlexonNeuronView
FlexonArray::neuron(size_t idx) const
{
    flexon_assert(idx < numNeurons_);
    for (size_t p = 0; p < populations_.size(); ++p) {
        const PopulationInfo &pop = populations_[p];
        if (idx < pop.base + pop.count)
            return {pop.config, state_[p], idx - pop.base};
    }
    panic("neuron index %zu outside every population", idx);
}

bool
FlexonArray::populationSpecialized(PopulationId p) const
{
    flexon_assert(p < kernels_.size());
    return kernels_[p].specialized;
}

void
FlexonArray::resetState()
{
    for (auto &soa : state_)
        soa.reset();
}

namespace {

void
writeFixArray(std::ostream &os, const std::vector<Fix> &a)
{
    for (const Fix x : a)
        os << ' ' << x.raw();
}

void
readFixArray(std::istream &is, std::vector<Fix> &a)
{
    for (Fix &x : a) {
        int64_t raw = 0;
        is >> raw;
        x = Fix::fromRaw(raw);
    }
}

} // namespace

void
FlexonArray::saveState(std::ostream &os) const
{
    os << "flexon-array " << state_.size() << ' ' << cycles_ << '\n';
    for (const PopulationSoA &soa : state_) {
        os << "soa " << soa.count << ' ' << soa.synStride;
        writeFixArray(os, soa.v);
        writeFixArray(os, soa.w);
        writeFixArray(os, soa.r);
        writeFixArray(os, soa.preResetV);
        writeFixArray(os, soa.y);
        writeFixArray(os, soa.g);
        for (const uint32_t c : soa.cnt)
            os << ' ' << c;
        os << '\n';
    }
}

void
FlexonArray::loadState(std::istream &is)
{
    std::string tag;
    size_t pops = 0;
    is >> tag >> pops >> cycles_;
    if (tag != "flexon-array" || !is || pops != state_.size())
        fatal("checkpoint flexon-array shape mismatch (expected %zu "
              "populations)",
              state_.size());
    for (PopulationSoA &soa : state_) {
        size_t count = 0, stride = 0;
        is >> tag >> count >> stride;
        if (tag != "soa" || !is || count != soa.count ||
            stride != soa.synStride) {
            fatal("checkpoint population shape mismatch (expected "
                  "%zu x %zu)",
                  soa.count, soa.synStride);
        }
        readFixArray(is, soa.v);
        readFixArray(is, soa.w);
        readFixArray(is, soa.r);
        readFixArray(is, soa.preResetV);
        readFixArray(is, soa.y);
        readFixArray(is, soa.g);
        for (uint32_t &c : soa.cnt)
            is >> c;
    }
    if (!is)
        fatal("truncated flexon-array state in checkpoint");
}

} // namespace flexon
