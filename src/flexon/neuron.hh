/**
 * @file
 * The baseline Flexon digital neuron (Figure 10): a single-cycle
 * design integrating the ten per-feature data paths of Figure 9
 * through MUXes, evaluated here as a bit-accurate fixed-point
 * functional model.
 *
 * The arithmetic is performed in the exact operation order the folded
 * microcode uses (see folded/program.hh), which is what makes the
 * baseline-vs-folded bit-exactness property testable.
 */

#ifndef FLEXON_FLEXON_NEURON_HH
#define FLEXON_FLEXON_NEURON_HH

#include <span>

#include "flexon/config.hh"

namespace flexon {

/** One baseline Flexon digital neuron. */
class FlexonNeuron
{
  public:
    explicit FlexonNeuron(const FlexonConfig &config);

    /**
     * Evaluate one simulation time step (one hardware cycle for the
     * single-cycle baseline design).
     *
     * @param input pre-scaled accumulated weights, one per synapse
     *              type (see FlexonConfig::scaleWeight); missing
     *              entries are treated as zero
     * @return true iff the neuron fired an output spike
     */
    bool step(std::span<const Fix> input);

    /** Convenience overload for single-synapse-type configurations. */
    bool
    step(Fix input)
    {
        return step(std::span<const Fix>(&input, 1));
    }

    const FlexonState &state() const { return state_; }
    FlexonState &state() { return state_; }
    const FlexonConfig &config() const { return config_; }

    /** The v' value of the last step before any firing reset. */
    Fix preResetV() const { return preResetV_; }

    void reset() { state_.reset(); }

  private:
    FlexonConfig config_;
    FlexonState state_;
    Fix preResetV_;
};

} // namespace flexon

#endif // FLEXON_FLEXON_NEURON_HH
