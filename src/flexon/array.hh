/**
 * @file
 * A baseline Flexon digital-neuron array (Section VI-C).
 *
 * The array instantiates `width` single-cycle Flexon neurons that
 * operate in lock step; a network with more neurons than lanes is
 * time-multiplexed across cycles, with per-neuron state and constants
 * streamed from the array's SRAMs. The paper's evaluation array has 12
 * lanes (matching the baseline CPU's core count) and runs at 250 MHz.
 *
 * Functionally the array is exact: each population's state lives in
 * structure-of-arrays form (flexon/kernel.hh) and is stepped by a
 * batch kernel specialized at addPopulation() time for the
 * population's feature composition, bit-identical to stepping real
 * FlexonNeuron instances. The timing model counts ceil(N / width)
 * cycles per simulation time step, the throughput of a single-cycle
 * design.
 */

#ifndef FLEXON_FLEXON_ARRAY_HH
#define FLEXON_FLEXON_ARRAY_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/telemetry.hh"
#include "flexon/kernel.hh"
#include "flexon/neuron.hh"

namespace flexon {

/** Identifier of a population added to an array. */
using PopulationId = size_t;

/** A time-multiplexed array of baseline Flexon neurons. */
class FlexonArray
{
  public:
    /** Default lane count and clock of the paper's evaluation array. */
    static constexpr size_t defaultWidth = 12;
    static constexpr double defaultClockHz = 250.0e6;

    explicit FlexonArray(size_t width = defaultWidth,
                         double clockHz = defaultClockHz);

    /**
     * Add `count` neurons sharing one hardware configuration. The
     * configuration is stored once for the population (not copied per
     * neuron) and its step kernel is dispatched here, once.
     * @return the population id (neurons are indexed globally in
     *         insertion order)
     */
    PopulationId addPopulation(const FlexonConfig &config, size_t count);

    size_t numNeurons() const { return numNeurons_; }
    size_t width() const { return width_; }
    double clockHz() const { return clockHz_; }

    /**
     * Simulate one SNN time step from pre-scaled hardware inputs.
     *
     * @param input row-major [neuron][synapseType] pre-scaled
     *              accumulated weights; stride is maxSynapseTypes
     * @param fired output spike flags (0/1 bytes), one per neuron
     */
    void step(std::span<const Fix> input, std::vector<uint8_t> &fired);

    /**
     * Simulate one SNN time step from reference-unit (double) inputs:
     * the double->Fix scaling of the synapse-calculation stage is
     * fused into the batch kernel, so no dense staging buffer exists
     * and refractory-blocked / all-zero slots skip conversion.
     */
    void step(std::span<const double> input,
              std::vector<uint8_t> &fired);

    /**
     * Host worker threads evaluating the functional neuron loop
     * (neurons are independent within a step, so threading does not
     * change results). Purely a host-simulation knob: the modelled
     * hardware timing (cyclesPerStep) is unaffected.
     */
    void setHostThreads(size_t threads)
    {
        hostThreads_ = threads == 0 ? 1 : threads;
    }
    size_t hostThreads() const { return hostThreads_; }

    /** Hardware cycles consumed so far. */
    uint64_t cycles() const { return cycles_; }

    /** Simulated wall-clock seconds consumed so far. */
    double seconds() const
    {
        return static_cast<double>(cycles_) / clockHz_;
    }

    /** Cycles one time step costs for the current occupancy. */
    uint64_t cyclesPerStep() const;

    /** Read-only view of one neuron's state (probes and tests). */
    FlexonNeuronView neuron(size_t idx) const;

    /** Population base index and size. */
    struct PopulationInfo
    {
        size_t base;
        size_t count;
        FlexonConfig config;
    };
    const std::vector<PopulationInfo> &populations() const
    {
        return populations_;
    }

    /** True iff population p runs a compile-time specialized kernel. */
    bool populationSpecialized(PopulationId p) const;

    void resetState();
    void resetCycles() { cycles_ = 0; }

    /**
     * Checkpoint the array's dynamic state: the cycle counter and
     * every population's SoA arrays, Fix values as raw fixed-point
     * integers (exact by construction). loadState fatal()s when the
     * recorded shape does not match this array.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    template <typename InputT>
    void stepImpl(const InputT *input, std::vector<uint8_t> &fired);

    /** Dispatch-mix sampling for one population slice (detail only,
     *  called before the kernel: the kernel mutates cnt). */
    template <typename InputT>
    void notePopulationSlice(size_t p, const InputT *input,
                             size_t lo, size_t hi) const;

    size_t width_;
    double clockHz_;
    size_t hostThreads_ = 1;
    size_t numNeurons_ = 0;
    std::vector<PopulationInfo> populations_;
    std::vector<PopulationSoA> state_;
    std::vector<SelectedKernel> kernels_;
    uint64_t cycles_ = 0;

    /**
     * Per-population handles into Registry::global(), keyed by the
     * population's feature mask (the process-wide kernel dispatch
     * mix). Sampled only while telemetry::detailEnabled().
     */
    struct PopulationTelemetry
    {
        telemetry::Counter *calls;
        telemetry::Counter *neurons;
        telemetry::Counter *blocked;
        telemetry::Counter *zeroInput;
    };
    std::vector<PopulationTelemetry> popTelemetry_;
};

} // namespace flexon

#endif // FLEXON_FLEXON_ARRAY_HH
