/**
 * @file
 * Flexon hardware configuration: the per-neuron-model constant set and
 * MUX selections that program a Flexon (or spatially folded Flexon)
 * digital neuron.
 *
 * The constants follow the conventions of Table V: contributions are
 * accumulated into the next membrane potential v' directly, so the
 * code generator folds the per-step scale factor epsilon_m = dt/tau
 * into the stored constants and into the synaptic weights
 * (inputScale). Examples:
 *  - CUB + EXD executes v' += eps'_m * v + I with I pre-scaled by
 *    epsilon_m, which equals Equation 2;
 *  - QDI stores qdiAdd = epsilon_m * (1 - v_c) so that
 *    v' += eps'_m * v + (epsilon_m * v + qdiAdd) * v equals
 *    Equation 5's quadratic initiation.
 */

#ifndef FLEXON_FLEXON_CONFIG_HH
#define FLEXON_FLEXON_CONFIG_HH

#include <array>
#include <cstdint>

#include "features/params.hh"
#include "fixed/fixed_point.hh"

namespace flexon {

/**
 * The fixed-point constant buffer of one Flexon configuration.
 *
 * These are the values the synthesized design would keep in its
 * per-neuron constant SRAM; the spatially folded Flexon addresses
 * them through the ca[3:0] / cb[2:0] fields of its control signals.
 */
struct FlexonConstants
{
    Fix one;        ///< 1.0 (LID multiplies v by 1.0)
    Fix epsM;       ///< epsilon_m = dt/tau
    Fix epsMp;      ///< eps'_m = 1 - epsilon_m
    Fix vLeakNeg;   ///< -V_leak (LID additive constant)
    Fix minusOne;   ///< -1 (REV/RR compute v_x - v as -1*v + v_x)

    /** eps'_{g,i} = 1 - epsilon_{g,i}, per synapse type. */
    std::array<Fix, maxSynapseTypes> epsGp{};
    /** e * epsilon_{g,i} (COBA alpha-kernel gain), per synapse type. */
    std::array<Fix, maxSynapseTypes> eEpsG{};
    /** Reversal-voltage constants v_{g,i}, per synapse type. */
    std::array<Fix, maxSynapseTypes> vG{};

    Fix qdiAdd;     ///< epsilon_m * (1 - v_c) (QDI additive constant)
    Fix exiInvDt;   ///< 1 / Delta_T (EXI exponent gain)
    Fix exiB;       ///< -theta / Delta_T = -1 / Delta_T (EXI bias)
    Fix exiScale;   ///< epsilon_m * Delta_T (EXI contribution gain)

    Fix epsWp;      ///< eps'_w = 1 - epsilon_w
    Fix epsMA;      ///< epsilon_m * a (SBT coupling gain)
    Fix negEpsMAvW; ///< -epsilon_m * a * v_w (SBT coupling bias)
    Fix b;          ///< spike-triggered jump size (w -= b on fire)

    Fix epsRp;      ///< eps'_r = 1 - epsilon_r
    Fix vRR;        ///< relative refractory reversal voltage
    Fix vAR;        ///< adaptation reversal voltage (Equation 8)
    Fix qR;         ///< relative refractory jump (r -= q_r on fire)

    Fix threshold;  ///< firing comparison level (1.0, or v_theta)
};

/**
 * A complete Flexon programming: enabled features (the MUX settings of
 * Figure 10), synapse-type count, fixed-point constants, the absolute
 * refractory length, and the storage-truncation option.
 */
struct FlexonConfig
{
    FeatureSet features;
    size_t numSynapseTypes = 1;
    FlexonConstants consts;
    uint32_t arSteps = 0;

    /**
     * Scale factor the synapse-calculation stage applies to synaptic
     * weights before they reach the neuron (epsilon_m, or 1 for LID).
     * Kept here so network compilation and tests share one definition.
     */
    Fix inputScale;

    /**
     * Apply the paper's 22-bit membrane-potential storage truncation
     * (Section IV-B1). Only meaningful for hard-threshold feature sets
     * where v stays within [0, 1); defaults to off so that the
     * reference-equivalence tests see unclamped dynamics. The
     * abl_truncation benchmark quantifies its effect.
     */
    bool truncateStorage = false;

    /**
     * Derive a hardware configuration from normalized neuron
     * parameters. fatal() if the parameters are invalid or the
     * feature set lacks a membrane-decay feature.
     */
    static FlexonConfig fromParams(const NeuronParams &params);

    /** Pre-scale one synaptic weight into the hardware convention. */
    Fix
    scaleWeight(double weight) const
    {
        return Fix::fromDouble(weight) * inputScale;
    }
};

/**
 * Dynamic state of one Flexon neuron, as held in the array's state
 * SRAM between time steps.
 */
struct FlexonState
{
    Fix v;
    std::array<Fix, maxSynapseTypes> y{};
    std::array<Fix, maxSynapseTypes> g{};
    Fix w;
    Fix r;
    uint32_t cnt = 0;

    void reset() { *this = FlexonState{}; }
};

/**
 * Storage footprint in bits of one neuron's state for the given
 * configuration (used by the hardware model to size the state SRAM).
 * The membrane potential costs 22 bits when truncation applies and 32
 * otherwise; each live y/g/w/r variable costs 32 bits; the AR counter
 * costs 8 bits.
 */
size_t stateBits(const FlexonConfig &config);

} // namespace flexon

#endif // FLEXON_FLEXON_CONFIG_HH
