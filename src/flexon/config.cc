#include "flexon/config.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexon {

FlexonConfig
FlexonConfig::fromParams(const NeuronParams &p)
{
    const std::string err = p.validate();
    if (!err.empty())
        fatal("invalid neuron parameters: %s", err.c_str());
    if (!p.features.has(Feature::EXD) && !p.features.has(Feature::LID)) {
        fatal("Flexon requires a membrane-decay feature (EXD or LID); "
              "got %s", p.features.toString().c_str());
    }

    FlexonConfig c;
    c.features = p.features;
    // CUB has no per-type dynamics (g_i = I_i), so the synapse stage
    // merges all types into one signed accumulated weight and the
    // datapath sees a single input (the Table V CUB + EXD fusion).
    c.numSynapseTypes =
        p.features.has(Feature::CUB) ? 1 : p.numSynapseTypes;
    c.arSteps = p.features.has(Feature::AR) ? p.arSteps : 0;

    FlexonConstants &k = c.consts;
    k.one = Fix::one();
    k.epsM = Fix::fromDouble(p.epsM);
    k.epsMp = Fix::fromDouble(1.0 - p.epsM);
    k.vLeakNeg = Fix::fromDouble(-p.vLeak);
    k.minusOne = Fix::fromDouble(-1.0);

    for (size_t i = 0; i < p.numSynapseTypes; ++i) {
        k.epsGp[i] = Fix::fromDouble(1.0 - p.syn[i].epsG);
        k.eEpsG[i] = Fix::fromDouble(M_E * p.syn[i].epsG);
        k.vG[i] = Fix::fromDouble(p.syn[i].vG);
    }

    // Table V computes QDI + EXD in two control signals as
    // v' = (epsilon_m * v + qdiAdd) * v; expanding Equation 5 with
    // v0 = 0 shows qdiAdd = 1 - epsilon_m * v_c absorbs both the old-v
    // term and the critical-voltage term.
    k.qdiAdd = Fix::fromDouble(1.0 - p.epsM * p.vCrit);
    if (p.features.has(Feature::EXI)) {
        k.exiInvDt = Fix::fromDouble(1.0 / p.deltaT);
        k.exiB = Fix::fromDouble(-1.0 / p.deltaT);
        k.exiScale = Fix::fromDouble(p.epsM * p.deltaT);
    }

    k.epsWp = Fix::fromDouble(1.0 - p.epsW);
    k.epsMA = Fix::fromDouble(p.epsM * p.a);
    k.negEpsMAvW = Fix::fromDouble(-p.epsM * p.a * p.vW);
    k.b = Fix::fromDouble(p.b);

    k.epsRp = Fix::fromDouble(1.0 - p.epsR);
    k.vRR = Fix::fromDouble(p.vRR);
    k.vAR = Fix::fromDouble(p.vAR);
    k.qR = Fix::fromDouble(p.qR);

    k.threshold = Fix::fromDouble(p.threshold());

    // Table V convention: contributions enter v' unscaled, so the
    // synapse stage pre-scales weights by epsilon_m. LID (Equation 3)
    // adds the input directly.
    c.inputScale = p.features.has(Feature::LID)
                       ? Fix::one()
                       : Fix::fromDouble(p.epsM);
    return c;
}

size_t
stateBits(const FlexonConfig &config)
{
    const FeatureSet &f = config.features;
    size_t bits = config.truncateStorage ? 22 : 32; // membrane v

    const bool conductance =
        f.has(Feature::COBE) || f.has(Feature::COBA);
    if (conductance)
        bits += 32 * config.numSynapseTypes; // g_i
    if (f.has(Feature::COBA))
        bits += 32 * config.numSynapseTypes; // y_i
    if (f.has(Feature::ADT) || f.has(Feature::SBT) || f.has(Feature::RR))
        bits += 32; // w
    if (f.has(Feature::RR))
        bits += 32; // r
    if (f.has(Feature::AR))
        bits += 8; // cnt
    return bits;
}

} // namespace flexon
