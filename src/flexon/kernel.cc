#include "flexon/kernel.hh"

#include <array>
#include <utility>

#include "common/health.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "fixed/fast_exp.hh"

namespace flexon {

void
PopulationSoA::resize(size_t n, size_t numSynapseTypes)
{
    count = n;
    synStride = numSynapseTypes == 0 ? 1 : numSynapseTypes;
    v.assign(n, Fix::zero());
    w.assign(n, Fix::zero());
    r.assign(n, Fix::zero());
    preResetV.assign(n, Fix::zero());
    y.assign(n * synStride, Fix::zero());
    g.assign(n * synStride, Fix::zero());
    cnt.assign(n, 0);
}

void
PopulationSoA::reset()
{
    resize(count, synStride);
}

FlexonState
FlexonNeuronView::state() const
{
    flexon_assert(idx_ < soa_->count);
    FlexonState s;
    s.v = soa_->v[idx_];
    s.w = soa_->w[idx_];
    s.r = soa_->r[idx_];
    s.cnt = soa_->cnt[idx_];
    const size_t stride = soa_->synStride;
    for (size_t t = 0; t < stride && t < maxSynapseTypes; ++t) {
        s.y[t] = soa_->y[idx_ * stride + t];
        s.g[t] = soa_->g[idx_ * stride + t];
    }
    return s;
}

namespace {

/** Compile-time feature query: has() folds to a constant. */
template <uint16_t Mask>
struct StaticFeatures
{
    static constexpr bool
    has(Feature f)
    {
        return (Mask >> static_cast<uint16_t>(f)) & 1u;
    }
};

/** Runtime feature query for the generic fallback kernel. */
struct RuntimeFeatures
{
    uint16_t mask;
    bool
    has(Feature f) const
    {
        return (mask >> static_cast<uint16_t>(f)) & 1u;
    }
};

/**
 * Fused-scaling input policy: reference-unit doubles converted to the
 * hardware convention inside the kernel (scale by epsilon_m; CUB
 * merges all synapse types into one signed input). Refractory-blocked
 * neurons and all-zero slots skip the fromDouble/multiply entirely —
 * bit-exact, since Fix::fromDouble(0.0) * scale == Fix::zero() and
 * blocked neurons see a zeroed input bus (Equation 7).
 */
struct FusedInput
{
    const double *p; ///< population base, stride maxSynapseTypes
    Fix inputScale;

    /**
     * Bit-exact scaling with a saturation tap: reports when the
     * double->Fix conversion or the scaled product pins at a
     * representation rail. The intermediate check matters because an
     * inputScale <= 1 can pull a railed conversion back inside the
     * range, hiding the clip from a product-only check.
     */
    Fix
    scaled(double d) const
    {
        const Fix w = Fix::fromDouble(d);
        const Fix f = w * inputScale;
        if (w.raw() == Fix::rawMax || w.raw() == Fix::rawMin ||
            f.raw() == Fix::rawMax || f.raw() == Fix::rawMin)
            health::noteFixSaturation();
        return f;
    }

    Fix
    get(size_t i, size_t t, bool blocked) const
    {
        if (blocked)
            return Fix::zero();
        const double d = p[i * maxSynapseTypes + t];
        return d == 0.0 ? Fix::zero() : scaled(d);
    }

    Fix
    cub(size_t i, bool blocked) const
    {
        if (blocked)
            return Fix::zero();
        const double *row = p + i * maxSynapseTypes;
        double sum = 0.0;
        for (size_t s = 0; s < maxSynapseTypes; ++s)
            sum += row[s];
        return sum == 0.0 ? Fix::zero() : scaled(sum);
    }
};

/** Pre-scaled Fix input policy (the legacy FlexonArray::step path). */
struct ScaledInput
{
    const Fix *p; ///< population base, stride maxSynapseTypes

    Fix
    get(size_t i, size_t t, bool blocked) const
    {
        return blocked ? Fix::zero() : p[i * maxSynapseTypes + t];
    }

    Fix
    cub(size_t i, bool blocked) const
    {
        return get(i, 0, blocked);
    }
};

/**
 * The one step body every kernel shares, in the exact Fix operation
 * order of FlexonNeuron::step (the Table V microcode order) — which
 * is what makes specialized, generic, and scalar paths bit-identical.
 * With a StaticFeatures query the feature branches fold away at
 * compile time and only the population's datapaths remain.
 */
template <typename FQ, typename In>
inline void
stepRange(FQ f, const In in, const KernelArgs &a, size_t begin,
          size_t end)
{
    const FlexonConfig &c = *a.config;
    const FlexonConstants &k = c.consts;
    PopulationSoA &s = *a.soa;
    const size_t nTypes = c.numSynapseTypes;
    const size_t stride = s.synStride;
    const bool conductance =
        f.has(Feature::COBE) || f.has(Feature::COBA);

    for (size_t i = begin; i < end; ++i) {
        const Fix v = s.v[i]; // previous-step membrane potential

        // --- Absolute refractory gating (Equation 7).
        bool blocked = false;
        if (f.has(Feature::AR) && s.cnt[i] > 0) {
            blocked = true;
            --s.cnt[i];
        }

        Fix v_acc = Fix::zero();

        // --- Input spike accumulation (Equation 4).
        if (conductance) {
            Fix *const y = s.y.data() + i * stride;
            Fix *const g = s.g.data() + i * stride;
            for (size_t t = 0; t < nTypes; ++t) {
                const Fix in_t = in.get(i, t, blocked);
                if (f.has(Feature::COBA)) {
                    y[t] = k.epsGp[t] * y[t] + in_t;
                    const Fix tmp = k.eEpsG[t] * y[t];
                    g[t] = k.epsGp[t] * g[t] + tmp;
                } else {
                    g[t] = k.epsGp[t] * g[t] + in_t;
                }
                if (f.has(Feature::REV)) {
                    const Fix tmp = k.minusOne * v + k.vG[t];
                    v_acc += tmp * g[t];
                } else {
                    v_acc += g[t];
                }
            }
        }

        // --- Spike-triggered current (Equation 6) / relative
        // refractory (Equation 8).
        if (f.has(Feature::SBT)) {
            const Fix tmp = k.epsMA * v + k.negEpsMAvW;
            s.w[i] = k.epsWp * s.w[i] + tmp;
            v_acc += s.w[i];
        } else if (f.has(Feature::ADT)) {
            s.w[i] = k.epsWp * s.w[i];
            v_acc += s.w[i];
        } else if (f.has(Feature::RR)) {
            s.w[i] = k.epsWp * s.w[i];
            Fix tmp = k.minusOne * v + k.vAR;
            v_acc += tmp * s.w[i];
            s.r[i] = k.epsRp * s.r[i];
            tmp = k.minusOne * v + k.vRR;
            v_acc += tmp * s.r[i];
        }

        // --- Membrane decay / spike initiation (Equations 3 and 5).
        if (f.has(Feature::LID)) {
            v_acc += k.one * v + k.vLeakNeg;
            if (f.has(Feature::CUB))
                v_acc += in.cub(i, blocked);
            if (v_acc < Fix::zero())
                v_acc = Fix::zero();
        } else if (f.has(Feature::QDI)) {
            const Fix tmp = k.epsM * v + k.qdiAdd;
            v_acc += tmp * v;
            if (f.has(Feature::CUB))
                v_acc += in.cub(i, blocked);
        } else if (f.has(Feature::EXI)) {
            v_acc += k.epsMp * v;
            const Fix e = fixedExp(k.exiInvDt * v + k.exiB);
            v_acc += k.exiScale * e;
            if (f.has(Feature::CUB))
                v_acc += in.cub(i, blocked);
        } else {
            if (f.has(Feature::CUB))
                v_acc += k.epsMp * v + in.cub(i, blocked);
            else
                v_acc += k.epsMp * v;
        }

        // --- Firing check and post-fire adjustments.
        s.preResetV[i] = v_acc;
        const bool fired = v_acc > k.threshold;
        if (fired) {
            v_acc = Fix::zero();
            if (f.has(Feature::ADT) || f.has(Feature::SBT) ||
                f.has(Feature::RR)) {
                s.w[i] -= k.b;
            }
            if (f.has(Feature::RR))
                s.r[i] -= k.qR;
            if (f.has(Feature::AR))
                s.cnt[i] = c.arSteps;
        }

        s.v[i] = c.truncateStorage ? truncateMembrane(v_acc) : v_acc;
        a.fired[i] = fired;
    }
}

template <uint16_t Mask>
void
stepSpecializedFused(const KernelArgs &a, size_t begin, size_t end)
{
    stepRange(StaticFeatures<Mask>{},
              FusedInput{a.refInput, a.config->inputScale}, a, begin,
              end);
}

template <uint16_t Mask>
void
stepSpecializedScaled(const KernelArgs &a, size_t begin, size_t end)
{
    stepRange(StaticFeatures<Mask>{}, ScaledInput{a.fixInput}, a,
              begin, end);
}

/**
 * Neuron-steps taken through the generic (runtime feature dispatch)
 * fallback. Registered models are expected to hit a compiled
 * specialization; a non-zero count flags the per-step branching cost
 * of an out-of-table feature combination (e.g. a --model-file model
 * whose mask has no compiled kernel).
 */
telemetry::Counter &
fallbackCounter()
{
    static telemetry::Counter &counter =
        telemetry::Registry::global().counter(
            "kernel_fallback_steps",
            "neuron steps taken by the generic fallback kernel");
    return counter;
}

void
stepGenericFused(const KernelArgs &a, size_t begin, size_t end)
{
    fallbackCounter().add(end - begin);
    stepRange(RuntimeFeatures{a.config->features.raw()},
              FusedInput{a.refInput, a.config->inputScale}, a, begin,
              end);
}

void
stepGenericScaled(const KernelArgs &a, size_t begin, size_t end)
{
    fallbackCounter().add(end - begin);
    stepRange(RuntimeFeatures{a.config->features.raw()},
              ScaledInput{a.fixInput}, a, begin, end);
}

constexpr uint16_t
featureBit(Feature f)
{
    return static_cast<uint16_t>(1u << static_cast<uint16_t>(f));
}

template <typename... Fs>
constexpr uint16_t
featureMask(Fs... fs)
{
    return static_cast<uint16_t>((featureBit(fs) | ... | 0u));
}

using enum Feature;

/**
 * The masks with compiled specializations: the Table III model
 * combinations (which cover every Table I network) plus the
 * single-feature building blocks the kernel-equivalence suite
 * exercises. Anything else falls back to the generic kernel.
 */
constexpr uint16_t kSpecializedMasks[] = {
    // Minimal valid hosts for each single feature (a membrane decay
    // plus an accumulation feature is the smallest legal config).
    featureMask(EXD, CUB),                             // LIF / EXD / CUB
    featureMask(LID, CUB),
    featureMask(EXD, COBE),
    featureMask(EXD, COBA),
    featureMask(EXD, COBE, REV),
    featureMask(EXD, CUB, QDI),
    featureMask(EXD, CUB, EXI),
    featureMask(EXD, CUB, ADT),
    featureMask(EXD, CUB, SBT),
    featureMask(EXD, CUB, AR),                         // also SLIF
    featureMask(EXD, CUB, RR),
    // The Table III model combinations (covering every Table I net).
    featureMask(LID, CUB, AR),                         // LLIF
    featureMask(EXD, COBE, AR),                        // DSRM0
    featureMask(EXD, COBE, REV, AR),                   // DLIF
    featureMask(EXD, COBE, REV, QDI, AR),              // QIF
    featureMask(EXD, COBE, REV, EXI, AR),              // EIF
    featureMask(EXD, COBE, REV, QDI, ADT, AR),         // Izhikevich
    featureMask(EXD, COBE, REV, EXI, ADT, SBT, AR),    // AdEx
    featureMask(EXD, COBA, REV, EXI, ADT, SBT, AR),    // AdEx_COBA
    featureMask(EXD, COBA, AR),                        // IF_psc_alpha
    featureMask(EXD, COBE, REV, AR, RR), // IF_cond_exp_gsfa_grr
};

constexpr size_t kNumSpecialized = std::size(kSpecializedMasks);

struct KernelEntry
{
    uint16_t mask;
    StepKernelFn fused;
    StepKernelFn scaled;
};

template <size_t... I>
constexpr std::array<KernelEntry, sizeof...(I)>
makeKernelTable(std::index_sequence<I...>)
{
    return {KernelEntry{kSpecializedMasks[I],
                        &stepSpecializedFused<kSpecializedMasks[I]>,
                        &stepSpecializedScaled<kSpecializedMasks[I]>}...};
}

constexpr auto kKernelTable =
    makeKernelTable(std::make_index_sequence<kNumSpecialized>{});

} // namespace

SelectedKernel
selectStepKernel(FeatureSet features)
{
    const uint16_t mask = features.raw();
    for (const KernelEntry &entry : kKernelTable) {
        if (entry.mask == mask)
            return {entry.fused, entry.scaled, true};
    }
    return {&stepGenericFused, &stepGenericScaled, false};
}

size_t
numSpecializedKernels()
{
    return kNumSpecialized;
}

} // namespace flexon
