#include "flexon/neuron.hh"

#include "common/logging.hh"
#include "fixed/fast_exp.hh"

namespace flexon {

FlexonNeuron::FlexonNeuron(const FlexonConfig &config)
    : config_(config)
{
    flexon_assert(config_.features.valid());
}

bool
FlexonNeuron::step(std::span<const Fix> input)
{
    const FlexonConfig &c = config_;
    const FlexonConstants &k = c.consts;
    const FeatureSet &f = c.features;
    FlexonState &s = state_;

    const Fix v = s.v; // the stored (previous-step) membrane potential

    // --- Absolute refractory gating (Equation 7): zero the input bus
    // while the counter is non-zero; decrement every step.
    const bool blocked = f.has(Feature::AR) && s.cnt > 0;
    if (f.has(Feature::AR) && s.cnt > 0)
        --s.cnt;

    auto in = [&](size_t i) {
        return (blocked || i >= input.size()) ? Fix::zero() : input[i];
    };

    // v' accumulates feature contributions, starting from zero
    // (Table V convention); the operation order below matches the
    // canonical microcode order emitted by the folded code generator.
    Fix v_acc = Fix::zero();

    // --- Input spike accumulation (Equation 4), grouped per synapse
    // type; REV replaces the direct v' accumulation of the
    // conductance with its reversal-scaled form.
    const bool conductance =
        f.has(Feature::COBE) || f.has(Feature::COBA);
    for (size_t i = 0; i < c.numSynapseTypes; ++i) {
        if (f.has(Feature::COBA)) {
            s.y[i] = k.epsGp[i] * s.y[i] + in(i);
            const Fix tmp = k.eEpsG[i] * s.y[i];
            s.g[i] = k.epsGp[i] * s.g[i] + tmp;
        } else if (f.has(Feature::COBE)) {
            s.g[i] = k.epsGp[i] * s.g[i] + in(i);
        }
        if (conductance) {
            if (f.has(Feature::REV)) {
                const Fix tmp = k.minusOne * v + k.vG[i];
                v_acc += tmp * s.g[i];
            } else {
                v_acc += s.g[i];
            }
        }
    }

    // --- Spike-triggered current (Equation 6) / relative refractory
    // (Equation 8).
    if (f.has(Feature::SBT)) {
        const Fix tmp = k.epsMA * v + k.negEpsMAvW;
        s.w = k.epsWp * s.w + tmp;
        v_acc += s.w;
    } else if (f.has(Feature::ADT)) {
        s.w = k.epsWp * s.w;
        v_acc += s.w;
    } else if (f.has(Feature::RR)) {
        s.w = k.epsWp * s.w;
        Fix tmp = k.minusOne * v + k.vAR;
        v_acc += tmp * s.w;
        s.r = k.epsRp * s.r;
        tmp = k.minusOne * v + k.vRR;
        v_acc += tmp * s.r;
    }

    // --- Membrane decay / spike initiation (Equations 3 and 5),
    // evaluated last: the EXI path reuses the v register for the
    // exponentiation result (Table V), so every other reader of the
    // old v runs first.
    if (f.has(Feature::LID)) {
        // v' += 1.0 * v + (-V_leak), with the CUB input fused when
        // present; the LID datapath floors v' at the resting voltage.
        v_acc += k.one * v + k.vLeakNeg;
        if (f.has(Feature::CUB))
            v_acc += in(0);
        if (v_acc < Fix::zero())
            v_acc = Fix::zero();
    } else if (f.has(Feature::QDI)) {
        // Two control signals: tmp = eps_m*v + qdiAdd; v' += tmp*v.
        const Fix tmp = k.epsM * v + k.qdiAdd;
        v_acc += tmp * v;
        if (f.has(Feature::CUB))
            v_acc += in(0);
    } else if (f.has(Feature::EXI)) {
        // Three control signals: the decayed old v, then the
        // exponentiation written back through the v register, then
        // the scaled exponential contribution.
        v_acc += k.epsMp * v;
        const Fix e = fixedExp(k.exiInvDt * v + k.exiB);
        v_acc += k.exiScale * e;
        if (f.has(Feature::CUB))
            v_acc += in(0);
    } else {
        // Plain EXD; CUB input fused into the same control signal
        // (Table V row "CUB + EXD"). The fused add must happen before
        // the v' accumulation, exactly as the single micro-op does,
        // so the two implementations saturate identically.
        if (f.has(Feature::CUB))
            v_acc += k.epsMp * v + in(0);
        else
            v_acc += k.epsMp * v;
    }

    // --- Firing check and post-fire state adjustments (the second
    // pipeline stage of the folded design).
    preResetV_ = v_acc;
    const bool fired = v_acc > k.threshold;
    if (fired) {
        v_acc = Fix::zero();
        if (f.has(Feature::ADT) || f.has(Feature::SBT) ||
            f.has(Feature::RR)) {
            s.w -= k.b;
        }
        if (f.has(Feature::RR))
            s.r -= k.qR;
        if (f.has(Feature::AR))
            s.cnt = c.arSteps;
    }

    s.v = c.truncateStorage ? truncateMembrane(v_acc) : v_acc;
    return fired;
}

} // namespace flexon
