/**
 * @file
 * Execution planner: calibrated per-strategy step-cost prediction.
 *
 * The ExecutionPlanner turns a CalibrationData into decisions the
 * session layer used to hard-code: which engine (dense vs
 * event-driven) a given firing rate favors, where the adaptive
 * crossover sits, and how many worker lanes a population is worth.
 * Every prediction is a pure function of (calibration, NetworkStats,
 * rate, threads) — no clocks, no sampling — so planner-driven runs
 * are reproducible and bit-identical to the corresponding
 * fixed-strategy runs: the planner only ever changes *which* engine
 * steps, never what an engine computes.
 *
 * Cost model (all times per step, rate r = fired fraction):
 *
 *   eff(T)       = 1 + (T - 1) * parallelEfficiency
 *   dispatch(T)  = (T > 1) ? T * dispatchNsPerLane : 0
 *   dense(r, T)  = stepOverhead + dispatch(T)
 *                  + N * denseNs / eff(T)                 [phase 2]
 *                  + r * N * K * (deliveryNs / eff(T)
 *                                 + ringClearNs)          [phase 3]
 *   event(r)     = stepOverhead
 *                  + r * N * ((K + 1) * eventNs
 *                             + K * (deliveryNs + ringClearNs))
 *
 * The event-driven engine is serial (one shard), so event() takes no
 * T. Both engines pay the same per-record delivery + ring-clear cost
 * once a spike fires; at T = 1 those terms cancel out of the
 * crossover, which reduces to denseNs / ((K + 1) * eventNs) — with
 * the builtin calibration exactly the tuned 1 / (K + 1) crossover
 * PR 6's AutoSession shipped with (kBuiltinEventCostFactor = 1).
 */

#ifndef FLEXON_PLAN_PLANNER_HH
#define FLEXON_PLAN_PLANNER_HH

#include "plan/calibration.hh"

#include <cstdint>
#include <string>

namespace flexon {
namespace plan {

/**
 * Relative switch margin for the rate-adaptive engine: the engine
 * flips only when the EWMA rate clears the crossover by this factor
 * (event->dense at r > r* x (1 + h), dense->event at
 * r x (1 + h) < r*), leaving a dead band of (1 + h)^2 ~ 1.44x so a
 * rate hovering at the crossover cannot thrash hand-off costs.
 */
inline constexpr double kSwitchHysteresis = 0.2;

/**
 * Steps between engine-switch decisions. Spike output is
 * decision-window invariant (decisions land on absolute step
 * boundaries), so this only trades reaction latency against hand-off
 * frequency.
 */
inline constexpr uint64_t kDecisionWindow = 256;

/**
 * EWMA decay for the session firing-rate estimate
 * (SimulationSession::ewmaRate): rate += (observed - rate) / 64.
 * Time constant ~64 steps — long enough to ride out synchronous
 * bursts, short enough that a regime change registers within a
 * decision window.
 */
inline constexpr double kEwmaAlpha = 1.0 / 64.0;

/**
 * Default rate prior for planning before any steps have run (no EWMA
 * yet): a mid-activity guess biased toward dense, matching the
 * engines' pre-PR 8 default.
 */
inline constexpr double kDefaultRatePrior = 0.02;

/** What the planner needs to know about a network. Cheap to copy. */
struct NetworkStats
{
    uint64_t neurons = 0;
    uint64_t synapses = 0;

    /** Mean fan-out K (synapses per neuron); 0 for an empty net. */
    double meanFanOut() const
    {
        return neurons == 0
                   ? 0.0
                   : static_cast<double>(synapses) /
                         static_cast<double>(neurons);
    }
};

/** Execution strategies the planner chooses among. */
enum class Strategy
{
    Dense,      ///< dense per-step engine (Simulator)
    EventDriven,///< event-driven engine (EventDrivenSimulator)
    Adaptive,   ///< AutoSession switching at the planned crossover
};

const char *strategyName(Strategy s);

/** A concrete plan for one run: strategy + tuning + provenance. */
struct EnginePlan
{
    Strategy strategy = Strategy::Dense;
    /** Worker lanes the planner predicts are worth their dispatch. */
    unsigned threads = 1;
    /** Planned crossover rate for the adaptive engine. */
    double crossoverRate = 0.0;
    double hysteresis = kSwitchHysteresis;
    uint64_t decisionWindow = kDecisionWindow;
    /** Predicted seconds per step for the chosen strategy. */
    double predictedStepSec = 0.0;
    /** Per-strategy predictions backing the choice (diagnostics). */
    double predictedDenseStepSec = 0.0;
    double predictedEventStepSec = 0.0;
    /** Version of the calibration the plan was derived from. */
    std::string calibrationVersion;
};

/**
 * Predicts per-strategy step cost from a calibration and picks the
 * cheapest. Holds a copy of the calibration: a planner's decisions
 * never change behind its back.
 */
class ExecutionPlanner
{
  public:
    /** Plans from activeCalibration(). */
    ExecutionPlanner();
    explicit ExecutionPlanner(const CalibrationData &cal);

    const CalibrationData &calibration() const { return cal_; }

    /** Predicted dense-engine seconds per step at rate r, T lanes. */
    double predictDenseStepSec(const NetworkStats &net, double rate,
                               unsigned threads) const;
    /** Predicted event-driven seconds per step at rate r (serial). */
    double predictEventStepSec(const NetworkStats &net,
                               double rate) const;

    /**
     * Rate at which predicted dense and event-driven step costs tie
     * at T = 1, clamped to [0, 1]. Below it the event-driven engine
     * is predicted cheaper; above it the dense engine is. Returns 0
     * (never favor event-driven) when the model says dense wins at
     * every rate.
     */
    double crossoverRate(const NetworkStats &net) const;

    /**
     * Worker lanes predicted to be worth their dispatch overhead for
     * a dense step at `rate`, searched over 1..maxThreads: the T
     * minimizing predictDenseStepSec, preferring the smallest T
     * within 2% of the optimum so marginal lanes are not engaged on
     * noise.
     */
    unsigned planThreads(const NetworkStats &net, double rate,
                         unsigned maxThreads) const;

    /**
     * Full plan for a run: per-strategy predictions at `rate` (use
     * kDefaultRatePrior before any steps have run), thread choice,
     * and the adaptive crossover. `maxThreads` caps the thread
     * search (e.g. a --threads flag or hardware_concurrency).
     */
    EnginePlan plan(const NetworkStats &net, double rate,
                    unsigned maxThreads) const;

  private:
    CalibrationData cal_;
};

} // namespace plan
} // namespace flexon

#endif // FLEXON_PLAN_PLANNER_HH
