#include "plan/calibration.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json_lite.hh"

namespace flexon {
namespace plan {

const CalibrationData &
builtinCalibration()
{
    static const CalibrationData builtin = [] {
        CalibrationData cal;
        cal.version = kBuiltinCalibrationVersion;
        cal.host = "hand-anchored defaults";
        cal.model.eventNsPerUnit =
            cal.model.denseNsPerNeuron * kBuiltinEventCostFactor;
        return cal;
    }();
    return builtin;
}

namespace {

CalibrationData &
activeSlot()
{
    static CalibrationData active = builtinCalibration();
    return active;
}

// The JSON-subset parser used to live here; it moved to
// common/json_lite.{hh,cc} when the model-descriptor loader became
// its second consumer.

bool
finitePositive(double v)
{
    return std::isfinite(v) && v > 0.0;
}

void
writeMap(std::ostream &os, const char *name,
         const std::vector<std::pair<std::string, double>> &entries,
         bool trailingComma)
{
    os << "  \"" << name << "\": {";
    for (size_t i = 0; i < entries.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << '"'
           << jsonEscaped(entries[i].first)
           << "\": " << entries[i].second;
    }
    os << (entries.empty() ? "}" : "\n  }")
       << (trailingComma ? ",\n" : "\n");
}

} // namespace

const CalibrationData &
activeCalibration()
{
    return activeSlot();
}

void
setActiveCalibration(const CalibrationData &cal)
{
    activeSlot() = cal;
}

void
writeCalibrationJson(std::ostream &os, const CalibrationData &cal)
{
    os.precision(17);
    os << "{\n";
    os << "  \"schema\": \"" << kCalibrationSchema << "\",\n";
    os << "  \"version\": \"" << jsonEscaped(cal.version) << "\",\n";
    os << "  \"host\": \"" << jsonEscaped(cal.host) << "\",\n";
    os << "  \"model\": {\n";
    os << "    \"dense_ns_per_neuron\": " << cal.model.denseNsPerNeuron
       << ",\n";
    os << "    \"event_ns_per_unit\": " << cal.model.eventNsPerUnit
       << ",\n";
    os << "    \"delivery_ns_per_record\": "
       << cal.model.deliveryNsPerRecord << ",\n";
    os << "    \"ring_clear_ns_per_cell\": "
       << cal.model.ringClearNsPerCell << ",\n";
    os << "    \"step_overhead_ns\": " << cal.model.stepOverheadNs
       << ",\n";
    os << "    \"dispatch_ns_per_lane\": "
       << cal.model.dispatchNsPerLane << ",\n";
    os << "    \"parallel_efficiency\": "
       << cal.model.parallelEfficiency << "\n";
    os << "  },\n";
    os << "  \"fit\": {\n";
    os << "    \"max_residual\": " << cal.maxResidual << ",\n";
    os << "    \"grid_points\": " << cal.gridPoints << "\n";
    os << "  },\n";
    writeMap(os, "mask_ns_per_neuron", cal.maskNsPerNeuron, true);
    writeMap(os, "provider_delivery_ns", cal.providerDeliveryNs,
             false);
    os << "}\n";
}

bool
saveCalibrationFile(const std::string &path,
                    const CalibrationData &cal)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeCalibrationJson(os, cal);
    os.flush();
    return os.good();
}

bool
validateCalibration(const CalibrationData &cal, double maxResidual,
                    std::string *error)
{
    auto reject = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    const CostModel &m = cal.model;
    struct Named
    {
        const char *name;
        double value;
    };
    const Named coefficients[] = {
        {"dense_ns_per_neuron", m.denseNsPerNeuron},
        {"event_ns_per_unit", m.eventNsPerUnit},
        {"delivery_ns_per_record", m.deliveryNsPerRecord},
        {"ring_clear_ns_per_cell", m.ringClearNsPerCell},
        {"step_overhead_ns", m.stepOverheadNs},
        {"dispatch_ns_per_lane", m.dispatchNsPerLane},
    };
    for (const Named &c : coefficients) {
        if (!finitePositive(c.value))
            return reject(std::string(c.name) + " must be a finite "
                          "positive number (got " +
                          std::to_string(c.value) + ")");
    }
    if (!std::isfinite(m.parallelEfficiency) ||
        m.parallelEfficiency <= 0.0 || m.parallelEfficiency > 1.0)
        return reject("parallel_efficiency must be in (0, 1]");
    if (cal.version.empty())
        return reject("version must be non-empty");
    if (!std::isfinite(cal.maxResidual) || cal.maxResidual < 0.0)
        return reject("max_residual must be a non-negative number");
    if (cal.maxResidual > maxResidual)
        return reject("fit residual " +
                      std::to_string(cal.maxResidual) +
                      " exceeds the acceptance bound " +
                      std::to_string(maxResidual) +
                      " — the sweep was too noisy to trust");
    return true;
}

bool
loadCalibrationFile(const std::string &path, CalibrationData &out,
                    std::string *error)
{
    auto reject = [error, &path](const std::string &why) {
        if (error != nullptr)
            *error = path + ": " + why;
        return false;
    };

    std::ifstream is(path);
    if (!is)
        return reject("cannot open file");
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string text = buffer.str();

    CalibrationData cal;
    std::string schema;
    MiniJson json(text);

    auto parseNumberMap =
        [&json](std::vector<std::pair<std::string, double>> &map) {
            return json.parseObject([&](const std::string &key) {
                double v = 0.0;
                if (!json.parseNumber(v))
                    return false;
                map.emplace_back(key, v);
                return true;
            });
        };

    const bool ok = json.parseObject([&](const std::string &key) {
        if (key == "schema")
            return json.parseString(schema);
        if (key == "version")
            return json.parseString(cal.version);
        if (key == "host")
            return json.parseString(cal.host);
        if (key == "model") {
            return json.parseObject([&](const std::string &field) {
                double *slot = nullptr;
                CostModel &m = cal.model;
                if (field == "dense_ns_per_neuron")
                    slot = &m.denseNsPerNeuron;
                else if (field == "event_ns_per_unit")
                    slot = &m.eventNsPerUnit;
                else if (field == "delivery_ns_per_record")
                    slot = &m.deliveryNsPerRecord;
                else if (field == "ring_clear_ns_per_cell")
                    slot = &m.ringClearNsPerCell;
                else if (field == "step_overhead_ns")
                    slot = &m.stepOverheadNs;
                else if (field == "dispatch_ns_per_lane")
                    slot = &m.dispatchNsPerLane;
                else if (field == "parallel_efficiency")
                    slot = &m.parallelEfficiency;
                if (slot == nullptr)
                    return json.skipValue();
                return json.parseNumber(*slot);
            });
        }
        if (key == "fit") {
            return json.parseObject([&](const std::string &field) {
                if (field == "max_residual")
                    return json.parseNumber(cal.maxResidual);
                if (field == "grid_points") {
                    double v = 0.0;
                    if (!json.parseNumber(v))
                        return false;
                    cal.gridPoints = static_cast<uint64_t>(v);
                    return true;
                }
                return json.skipValue();
            });
        }
        if (key == "mask_ns_per_neuron")
            return parseNumberMap(cal.maskNsPerNeuron);
        if (key == "provider_delivery_ns")
            return parseNumberMap(cal.providerDeliveryNs);
        return json.skipValue();
    });

    if (!ok)
        return reject("malformed JSON: " + json.error());
    if (schema != kCalibrationSchema)
        return reject("schema is '" + schema + "', expected '" +
                      kCalibrationSchema + "'");
    // Load-time validation accepts any recorded residual; the
    // acceptance bound is calibrate --check's business.
    std::string why;
    if (!validateCalibration(cal, 1e9, &why))
        return reject(why);
    out = std::move(cal);
    return true;
}

std::string
installCalibrationFromEnv()
{
    const char *const path = std::getenv("FLEXON_CALIBRATION");
    if (path != nullptr && path[0] != '\0') {
        CalibrationData cal;
        std::string error;
        if (!loadCalibrationFile(path, cal, &error)) {
            std::fprintf(stderr,
                         "FLEXON_CALIBRATION: %s\n", error.c_str());
            std::exit(2);
        }
        setActiveCalibration(cal);
    }
    return activeCalibration().version;
}

} // namespace plan
} // namespace flexon
