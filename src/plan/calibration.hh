/**
 * @file
 * Calibrated per-operation cost data for the execution planner.
 *
 * Every adaptive decision the simulator makes — dense vs
 * event-driven delivery, worker-lane count, the Figure 13 CPU
 * baseline — ultimately rests on per-operation cost constants:
 * nanoseconds per neuron update, per delivery record, per ring-cell
 * clear, per pool dispatch. Hand-anchored constants are only honest
 * on the machine they were tuned on; this module holds the measured
 * replacement (the Hyrise cost-model-calibration idea ported to the
 * simulator).
 *
 * `tools/calibrate` sweeps parametrized microbenches (feature mask x
 * population size x firing rate x connectivity provider x thread
 * count), fits the cost curves by least squares, and writes a
 * versioned `calibration.json`. This module loads that document (a
 * deliberately tiny JSON subset parser — flat objects of numbers,
 * strings and string->number maps — so no third-party dependency is
 * needed) and exposes it process-wide via activeCalibration().
 * When no calibration file has been installed, builtinCalibration()
 * supplies hand-anchored defaults chosen to reproduce the pre-PR 8
 * behavior exactly (the tuned auto-engine crossover and the paper's
 * Figure 13 anchoring), so an uncalibrated run is never worse than
 * before.
 *
 * Planner decisions derived from a CalibrationData are pure
 * functions of (this data, network stats, the session's EWMA rate),
 * so runs stay reproducible and bit-identical per strategy: the
 * calibration changes *when* the engine switches, never *what* any
 * engine computes.
 */

#ifndef FLEXON_PLAN_CALIBRATION_HH
#define FLEXON_PLAN_CALIBRATION_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace flexon {
namespace plan {

/** Schema tag written into (and required of) calibration files. */
inline constexpr const char *kCalibrationSchema =
    "flexon-calibration-v1";

/** Version string of the hand-anchored defaults. */
inline constexpr const char *kBuiltinCalibrationVersion = "builtin";

/**
 * Modelled cost of touching one event-driven fan-out unit (record
 * append + accumulator fold + sparse update) relative to one dense
 * neuron update — the builtin eventNsPerUnit / denseNsPerNeuron
 * ratio. The default is tuned so the predicted crossover (with the
 * switch-out hysteresis margin) sits just below the measured
 * dense/event tie on the microcircuit scenario's driven regime
 * (bench/sci_microcircuit.cc, ~6.5e-3 fired fraction per step at
 * K ~ 194): full-step times there tie near 5.5e-3, where the sparse
 * delivery path's probe-free streaming has already eaten most of the
 * event-driven engine's low-rate advantage. A measured calibration
 * replaces this ratio with the two fitted slopes.
 */
inline constexpr double kBuiltinEventCostFactor = 1.0;

/**
 * Fitted per-operation costs, all in nanoseconds on the calibrated
 * host. The builtin defaults are the hand anchors described on each
 * field; tools/calibrate overwrites every one of them with a
 * least-squares fit over its sweep grid.
 */
struct CostModel
{
    /**
     * Serial reference LLIF neuron update (phase 2), per neuron per
     * step. Also anchors the Figure 13 CPU baseline: the modelled
     * NEST/Xeon per-neuron cost is this value times a per-benchmark
     * complexity factor (hwmodel/baselines.cc). The builtin 4.0
     * reproduces the paper-anchored 12 ns Brunel figure through the
     * 3x host-to-NEST factor.
     */
    double denseNsPerNeuron = 4.0;
    /**
     * Event-driven cost per touched fan-out unit (one active neuron
     * contributes K + 1 units: its own update plus K deliveries).
     * Builtin: denseNsPerNeuron x kBuiltinEventCostFactor.
     */
    double eventNsPerUnit = 4.0;
    /** One routed delivery record (ring accumulate), phase 3. */
    double deliveryNsPerRecord = 1.0;
    /** One ring cell zeroed by the slot-clear sweep. */
    double ringClearNsPerCell = 0.25;
    /** Fixed per-step orchestration cost (phase setup, serial). */
    double stepOverheadNs = 400.0;
    /**
     * Added per-step cost per engaged worker lane (pool dispatch +
     * barrier). This is what makes the planner keep small
     * populations serial.
     */
    double dispatchNsPerLane = 1500.0;
    /**
     * Marginal yield of each added worker lane: effective lanes of T
     * workers = 1 + (T - 1) x this. 1.0 = perfect scaling.
     */
    double parallelEfficiency = 0.7;
};

/** A calibration document: the fitted model plus its provenance. */
struct CalibrationData
{
    /**
     * "builtin" for the defaults, the schema tag (plus whatever
     * tools/calibrate appends) for measured documents. Echoed into
     * run reports and bench-record contexts so mismatched
     * comparisons are detectable.
     */
    std::string version = kBuiltinCalibrationVersion;
    /** Free-form host identification (informational). */
    std::string host;
    CostModel model;
    /** Worst relative residual across the least-squares fits. */
    double maxResidual = 0.0;
    /** Sweep-grid points the fits were computed from. */
    uint64_t gridPoints = 0;
    /**
     * Measured ns/neuron-update per neuron model (the feature-mask
     * sweep dimension), informational: name -> ns.
     */
    std::vector<std::pair<std::string, double>> maskNsPerNeuron;
    /**
     * Measured ns/delivery-record per connectivity provider
     * (materialized / compressed / procedural), informational.
     */
    std::vector<std::pair<std::string, double>> providerDeliveryNs;
};

/** The hand-anchored defaults (see CostModel field docs). */
const CalibrationData &builtinCalibration();

/**
 * Parse a calibration JSON document. Returns false (with a
 * diagnostic in *error when non-null) on I/O failure, malformed
 * JSON, a wrong schema tag, or non-finite / non-positive
 * coefficients.
 */
bool loadCalibrationFile(const std::string &path,
                         CalibrationData &out,
                         std::string *error = nullptr);

/** Serialize `cal` as a calibration JSON document. */
void writeCalibrationJson(std::ostream &os,
                          const CalibrationData &cal);

/** writeCalibrationJson to a file; false on I/O failure. */
bool saveCalibrationFile(const std::string &path,
                         const CalibrationData &cal);

/**
 * Structural validation shared by the loader and `calibrate
 * --check`: every coefficient finite and positive,
 * parallelEfficiency in (0, 1], residual below `maxResidual`.
 * Returns false with a diagnostic in *error.
 */
bool validateCalibration(const CalibrationData &cal,
                         double maxResidual,
                         std::string *error = nullptr);

/**
 * The process-wide calibration consumed by default-constructed
 * planners and the hwmodel CPU baseline. builtinCalibration() until
 * setActiveCalibration() installs a measured one (flexon_sim
 * --calibration, FLEXON_CALIBRATION in the bench mains). Not
 * thread-safe against concurrent simulation — install before
 * building sessions.
 */
const CalibrationData &activeCalibration();
void setActiveCalibration(const CalibrationData &cal);

/**
 * Convenience for tool/bench mains: when the FLEXON_CALIBRATION
 * environment variable names a file, load and install it; a bad file
 * terminates the process with a diagnostic (benchmarking under a
 * silently-ignored calibration would poison the record). Returns the
 * active calibration's version either way — "builtin" when the
 * variable is unset — for echoing into record contexts.
 */
std::string installCalibrationFromEnv();

} // namespace plan
} // namespace flexon

#endif // FLEXON_PLAN_CALIBRATION_HH
