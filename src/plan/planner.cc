#include "plan/planner.hh"

#include <algorithm>
#include <cmath>

namespace flexon {
namespace plan {

namespace {

constexpr double kNsToSec = 1e-9;

double
effectiveLanes(unsigned threads, double parallelEfficiency)
{
    if (threads <= 1)
        return 1.0;
    return 1.0 + (threads - 1) * parallelEfficiency;
}

} // namespace

const char *
strategyName(Strategy s)
{
    switch (s) {
    case Strategy::Dense:
        return "dense";
    case Strategy::EventDriven:
        return "event";
    case Strategy::Adaptive:
        return "auto";
    }
    return "unknown";
}

ExecutionPlanner::ExecutionPlanner()
    : ExecutionPlanner(activeCalibration())
{
}

ExecutionPlanner::ExecutionPlanner(const CalibrationData &cal)
    : cal_(cal)
{
}

double
ExecutionPlanner::predictDenseStepSec(const NetworkStats &net,
                                      double rate,
                                      unsigned threads) const
{
    const CostModel &m = cal_.model;
    const double n = static_cast<double>(net.neurons);
    const double eff =
        effectiveLanes(threads, m.parallelEfficiency);
    const double dispatch =
        threads > 1 ? threads * m.dispatchNsPerLane : 0.0;
    const double neuronPhase = n * m.denseNsPerNeuron / eff;
    const double synapsePhase =
        rate * n * net.meanFanOut() *
        (m.deliveryNsPerRecord / eff + m.ringClearNsPerCell);
    return (m.stepOverheadNs + dispatch + neuronPhase +
            synapsePhase) *
           kNsToSec;
}

double
ExecutionPlanner::predictEventStepSec(const NetworkStats &net,
                                      double rate) const
{
    const CostModel &m = cal_.model;
    const double n = static_cast<double>(net.neurons);
    const double k = net.meanFanOut();
    const double perSpike =
        (k + 1.0) * m.eventNsPerUnit +
        k * (m.deliveryNsPerRecord + m.ringClearNsPerCell);
    return (m.stepOverheadNs + rate * n * perSpike) * kNsToSec;
}

double
ExecutionPlanner::crossoverRate(const NetworkStats &net) const
{
    // Solve dense(r, 1) = event(r) for r. With
    //   dense(r, 1) = A + B r,  A = overhead + N * denseNs,
    //                           B = N K (deliveryNs + ringClearNs)
    //   event(r)    = C + D r,  C = overhead,
    //                           D = N ((K+1) eventNs
    //                                  + K (deliveryNs + ringClearNs))
    // the common-mode delivery terms cancel:
    //   r* = (A - C) / (D - B) = denseNs / ((K + 1) * eventNs).
    const double k = net.meanFanOut();
    const double denom = (k + 1.0) * cal_.model.eventNsPerUnit;
    if (denom <= 0.0)
        return 0.0;
    const double r = cal_.model.denseNsPerNeuron / denom;
    return std::clamp(r, 0.0, 1.0);
}

unsigned
ExecutionPlanner::planThreads(const NetworkStats &net, double rate,
                              unsigned maxThreads) const
{
    maxThreads = std::max(1u, maxThreads);
    unsigned best = 1;
    double bestSec = predictDenseStepSec(net, rate, 1);
    for (unsigned t = 2; t <= maxThreads; ++t) {
        const double sec = predictDenseStepSec(net, rate, t);
        // Prefer fewer lanes unless the gain clears 2%: predicted
        // near-ties go to the cheaper (serial-ward) configuration.
        if (sec < bestSec * 0.98) {
            best = t;
            bestSec = sec;
        }
    }
    return best;
}

EnginePlan
ExecutionPlanner::plan(const NetworkStats &net, double rate,
                       unsigned maxThreads) const
{
    EnginePlan p;
    p.calibrationVersion = cal_.version;
    p.crossoverRate = crossoverRate(net);
    p.threads = planThreads(net, rate, maxThreads);
    p.predictedDenseStepSec =
        predictDenseStepSec(net, rate, p.threads);
    p.predictedEventStepSec = predictEventStepSec(net, rate);

    // A rate inside the hysteresis dead band around the crossover is
    // expected to wander across it; the adaptive engine is the right
    // choice there. Outside the band one engine dominates, and
    // pinning it avoids the auto layer's decision bookkeeping.
    const double margin = 1.0 + p.hysteresis;
    const double r = std::max(rate, 0.0);
    if (p.crossoverRate > 0.0 && r < p.crossoverRate * margin &&
        r * margin > p.crossoverRate) {
        p.strategy = Strategy::Adaptive;
        p.predictedStepSec = std::min(p.predictedDenseStepSec,
                                      p.predictedEventStepSec);
    } else if (p.predictedEventStepSec < p.predictedDenseStepSec) {
        p.strategy = Strategy::EventDriven;
        p.predictedStepSec = p.predictedEventStepSec;
    } else {
        p.strategy = Strategy::Dense;
        p.predictedStepSec = p.predictedDenseStepSec;
    }
    return p;
}

} // namespace plan
} // namespace flexon
