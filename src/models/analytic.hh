/**
 * @file
 * Closed-form predictions for the discrete neuron dynamics
 * (Equations 2-8) — the analytic ground truths the test suite and
 * users validate simulations against.
 */

#ifndef FLEXON_MODELS_ANALYTIC_HH
#define FLEXON_MODELS_ANALYTIC_HH

#include <cstdint>

#include "features/params.hh"

namespace flexon {
namespace analytic {

/**
 * Fixed point of the discrete LIF update under constant input I:
 * v* = I (Equation 2 with v' = v).
 */
double lifSteadyState(double input);

/**
 * Steps for the discrete LIF to cross threshold 1.0 from rest under
 * constant input I > 1: the smallest n with
 * I * (1 - (1 - epsM)^n) > 1. Returns 0 for subthreshold input.
 */
uint64_t lifStepsToThreshold(double input, double eps_m);

/** v after n input-free steps of exponential decay (EXD). */
double exdDecay(double v0, double eps_m, uint64_t steps);

/** v after n input-free steps of linear decay (LID, floored at 0). */
double lidDecay(double v0, double v_leak, uint64_t steps);

/**
 * Peak time (in steps) of the discrete alpha kernel (COBA): the
 * conductance after a single impulse peaks near 1/epsG steps.
 */
uint64_t alphaPeakStep(double eps_g);

/**
 * The QDI separatrix: with no input, initial v below this decays to
 * rest; above it the quadratic initiation drives a spike
 * (Equation 5: the unstable fixed point v = v_c).
 */
double qdiSeparatrix(const NeuronParams &params);

/**
 * The EXI rheobase: the unstable fixed point of
 * -v + Delta_T * exp((v - 1) / Delta_T) = 0 above the threshold,
 * found by bisection. Membrane values above it run away to the
 * firing voltage with no input.
 */
double exiRheobase(const NeuronParams &params);

/**
 * Steady-state conductance for COBE under a constant per-step
 * input I: g* = I / epsG.
 */
double cobeSteadyState(double input, double eps_g);

} // namespace analytic
} // namespace flexon

#endif // FLEXON_MODELS_ANALYTIC_HH
