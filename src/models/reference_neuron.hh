/**
 * @file
 * Double-precision reference neuron implementing the paper's discrete
 * update equations (Equations 3 through 8) for any valid combination
 * of the 12 biologically common features.
 *
 * This is the golden model: Flexon and spatially folded Flexon are
 * validated against it (with fixed-point error bounds), playing the
 * role Brian plays in the paper's methodology (Section VI-A).
 *
 * All quantities are normalized (shift & scale): resting voltage 0,
 * threshold voltage 1.0.
 */

#ifndef FLEXON_MODELS_REFERENCE_NEURON_HH
#define FLEXON_MODELS_REFERENCE_NEURON_HH

#include <span>

#include "features/params.hh"

namespace flexon {

/**
 * One reference neuron evaluating the discrete feature equations.
 *
 * Per time step the caller supplies the accumulated synaptic weight
 * I_{t,i} for each synapse type (the output of the synapse-calculation
 * phase); step() updates the internal state and reports whether the
 * neuron fired.
 */
class ReferenceNeuron
{
  public:
    /** @param params validated neuron parameters (fatal on invalid). */
    explicit ReferenceNeuron(const NeuronParams &params);

    /**
     * Advance one time step with the given per-synapse-type inputs.
     *
     * @param input accumulated weights, one per synapse type; missing
     *              entries are treated as zero
     * @return true iff the neuron fired an output spike this step
     */
    bool step(std::span<const double> input);

    /** Convenience overload for single-synapse-type configurations. */
    bool
    step(double input)
    {
        return step(std::span<const double>(&input, 1));
    }

    const NeuronState &state() const { return state_; }
    NeuronState &state() { return state_; }
    const NeuronParams &params() const { return params_; }

    /**
     * The membrane potential the last step reached *before* any
     * firing reset — what a testbench scope probe would see.
     */
    double preResetV() const { return preResetV_; }

    /** Reset all state variables to the resting state. */
    void reset() { state_.reset(); }

  private:
    NeuronParams params_;
    NeuronState state_;
    double preResetV_ = 0.0;
};

} // namespace flexon

#endif // FLEXON_MODELS_REFERENCE_NEURON_HH
