/**
 * @file
 * The Hodgkin-Huxley neuron model (Hodgkin & Huxley 1952).
 *
 * HH is the paper's biological-accuracy gold standard (Section II-B):
 * a four-dimensional conductance model whose computational cost makes
 * it impractical for large simulations — which is why the LIF-derived
 * models Flexon targets exist. This implementation serves two
 * purposes here:
 *
 *  1. quantify the HH-vs-LIF cost gap (derivative evaluations per
 *     step) that motivates the whole paper;
 *  2. play the "unsupported custom model" in the Section VII-A
 *     hybrid-offload scenario: an SNN mixing AdEx (offloaded to
 *     Flexon) with HH (kept on the CPU).
 *
 * Standard squid-axon parameters, voltages in mV, time in ms,
 * currents in uA/cm^2.
 */

#ifndef FLEXON_MODELS_HH_HH
#define FLEXON_MODELS_HH_HH

#include <cstdint>

#include "solvers/solver.hh"

namespace flexon {

/** Hodgkin-Huxley membrane parameters (squid axon defaults). */
struct HHParams
{
    double cM = 1.0;      ///< membrane capacitance, uF/cm^2
    double gNa = 120.0;   ///< sodium conductance, mS/cm^2
    double gK = 36.0;     ///< potassium conductance, mS/cm^2
    double gL = 0.3;      ///< leak conductance, mS/cm^2
    double eNa = 50.0;    ///< sodium reversal, mV
    double eK = -77.0;    ///< potassium reversal, mV
    double eL = -54.387;  ///< leak reversal, mV
    /** Simulation time step in ms (matches the SNN step). */
    double dtMs = 0.1;
    /** Euler sub-steps per simulation step (stability). */
    int eulerSubsteps = 20;
    /** Spike detection level, mV (upward crossing). */
    double spikeThresholdMv = 0.0;
};

/** One Hodgkin-Huxley neuron. */
class HHNeuron
{
  public:
    explicit HHNeuron(const HHParams &params = {},
                      SolverKind solver = SolverKind::Euler);

    /**
     * Advance one simulation time step under the given injected
     * current (uA/cm^2, held constant over the step).
     *
     * @return true iff the membrane crossed the spike threshold
     *         upward during this step
     */
    bool step(double current);

    double v() const { return v_; }
    double m() const { return m_; }
    double h() const { return h_; }
    double n() const { return n_; }

    /** Total derivative evaluations so far (the cost metric). */
    uint64_t rhsEvaluations() const { return rhsEvals_; }

    /** Reset to the resting state. */
    void reset();

    /** Channel gate steady-state values at voltage v (for tests). */
    static double mInf(double v);
    static double hInf(double v);
    static double nInf(double v);

  private:
    void derivatives(double current, const double y[4],
                     double dydt[4]) const;

    HHParams params_;
    SolverKind solver_;
    double v_;
    double m_;
    double h_;
    double n_;
    uint64_t rhsEvals_ = 0;
};

} // namespace flexon

#endif // FLEXON_MODELS_HH_HH
