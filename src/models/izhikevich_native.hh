/**
 * @file
 * Izhikevich's original simple model (Izhikevich 2003) in its native
 * millivolt formulation:
 *
 *     v' = 0.04 v^2 + 5 v + 140 - u + I
 *     u' = a (b v - u)
 *     if v >= 30 mV: v <- c, u <- u + d
 *
 * The paper claims "Flexon fully supports Izhikevich's model"
 * (Section VIII) through the EXD+COBE+REV+QDI+ADT+AR combination.
 * The feature composition resets v to the resting voltage (v0),
 * whereas the native model resets to the free parameter c — so the
 * support is behavioural, not algebraic. This reference
 * implementation exists to *quantify* that claim: the
 * abl_izhikevich_fidelity benchmark compares f-I curves and
 * adaptation signatures of the native model against the Flexon
 * composition.
 */

#ifndef FLEXON_MODELS_IZHIKEVICH_NATIVE_HH
#define FLEXON_MODELS_IZHIKEVICH_NATIVE_HH

#include <string>
#include <vector>

namespace flexon {

/** The four Izhikevich parameters plus the integration step. */
struct IzhikevichParams
{
    double a = 0.02;  ///< recovery time scale
    double b = 0.2;   ///< recovery sensitivity to v
    double c = -65.0; ///< post-spike reset voltage, mV
    double d = 8.0;   ///< post-spike recovery jump
    /** Integration step in ms (two half-steps of dt/2 for v, as in
     *  Izhikevich's reference code). */
    double dtMs = 0.1;
};

/** Named parameter sets from Izhikevich 2003, Figure 2. */
IzhikevichParams izhikevichRegularSpiking();
IzhikevichParams izhikevichFastSpiking();
IzhikevichParams izhikevichChattering();
IzhikevichParams izhikevichIntrinsicallyBursting();
IzhikevichParams izhikevichLowThreshold();

/** One native Izhikevich neuron. */
class IzhikevichNative
{
  public:
    explicit IzhikevichNative(const IzhikevichParams &params = {});

    /**
     * Advance one dt step under injected current I (the model's
     * dimensionless current units; ~10 gives regular spiking).
     * @return true iff the neuron spiked (v crossed +30 mV)
     */
    bool step(double current);

    double v() const { return v_; }
    double u() const { return u_; }
    void reset();

  private:
    IzhikevichParams params_;
    double v_;
    double u_;
};

/**
 * Firing rate (spikes per step) under constant drive over `steps`
 * steps, discarding a transient. Works for any neuron with a
 * bool step(double) method — the f-I curve utility shared by the
 * fidelity study and the tests.
 */
template <typename Neuron>
double
firingRate(Neuron &neuron, double current, int steps,
           int transient = 1000)
{
    for (int t = 0; t < transient; ++t)
        neuron.step(current);
    int spikes = 0;
    for (int t = 0; t < steps; ++t)
        spikes += neuron.step(current);
    return static_cast<double>(spikes) / static_cast<double>(steps);
}

} // namespace flexon

#endif // FLEXON_MODELS_IZHIKEVICH_NATIVE_HH
