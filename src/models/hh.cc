#include "models/hh.hh"

#include <cmath>

#include "common/logging.hh"
#include "solvers/rkf45.hh"

namespace flexon {

namespace {

// Hodgkin-Huxley rate functions (V in mV, rates in 1/ms), with the
// standard removable-singularity guards at V = -40 and V = -55.
double
alphaM(double v)
{
    const double x = v + 40.0;
    if (std::abs(x) < 1e-7)
        return 1.0;
    return 0.1 * x / (1.0 - std::exp(-x / 10.0));
}

double
betaM(double v)
{
    return 4.0 * std::exp(-(v + 65.0) / 18.0);
}

double
alphaH(double v)
{
    return 0.07 * std::exp(-(v + 65.0) / 20.0);
}

double
betaH(double v)
{
    return 1.0 / (1.0 + std::exp(-(v + 35.0) / 10.0));
}

double
alphaN(double v)
{
    const double x = v + 55.0;
    if (std::abs(x) < 1e-7)
        return 0.1;
    return 0.01 * x / (1.0 - std::exp(-x / 10.0));
}

double
betaN(double v)
{
    return 0.125 * std::exp(-(v + 65.0) / 80.0);
}

constexpr double restingV = -65.0;

} // namespace

double
HHNeuron::mInf(double v)
{
    return alphaM(v) / (alphaM(v) + betaM(v));
}

double
HHNeuron::hInf(double v)
{
    return alphaH(v) / (alphaH(v) + betaH(v));
}

double
HHNeuron::nInf(double v)
{
    return alphaN(v) / (alphaN(v) + betaN(v));
}

HHNeuron::HHNeuron(const HHParams &params, SolverKind solver)
    : params_(params), solver_(solver)
{
    flexon_assert(params_.dtMs > 0.0);
    flexon_assert(params_.eulerSubsteps >= 1);
    reset();
}

void
HHNeuron::reset()
{
    v_ = restingV;
    m_ = mInf(restingV);
    h_ = hInf(restingV);
    n_ = nInf(restingV);
    rhsEvals_ = 0;
}

void
HHNeuron::derivatives(double current, const double y[4],
                      double dydt[4]) const
{
    const double v = y[0], m = y[1], h = y[2], n = y[3];
    const HHParams &p = params_;

    const double i_na = p.gNa * m * m * m * h * (v - p.eNa);
    const double i_k = p.gK * n * n * n * n * (v - p.eK);
    const double i_l = p.gL * (v - p.eL);

    dydt[0] = (current - i_na - i_k - i_l) / p.cM;
    dydt[1] = alphaM(v) * (1.0 - m) - betaM(v) * m;
    dydt[2] = alphaH(v) * (1.0 - h) - betaH(v) * h;
    dydt[3] = alphaN(v) * (1.0 - n) - betaN(v) * n;
}

bool
HHNeuron::step(double current)
{
    const double v_before = v_;
    double y[4] = {v_, m_, h_, n_};

    if (solver_ == SolverKind::Euler) {
        const double h_sub =
            params_.dtMs / static_cast<double>(params_.eulerSubsteps);
        double dydt[4];
        for (int s = 0; s < params_.eulerSubsteps; ++s) {
            derivatives(current, y, dydt);
            ++rhsEvals_;
            for (int i = 0; i < 4; ++i)
                y[i] += h_sub * dydt[i];
        }
    } else {
        OdeRhs rhs = [this, current](double,
                                     std::span<const double> yy,
                                     std::span<double> dd) {
            double yl[4] = {yy[0], yy[1], yy[2], yy[3]};
            double dl[4];
            derivatives(current, yl, dl);
            for (int i = 0; i < 4; ++i)
                dd[i] = dl[i];
        };
        Rkf45Workspace ws(4);
        Rkf45Options opts;
        opts.tolerance = 1e-5;
        std::span<double> span(y, 4);
        auto result = rkf45Integrate(rhs, 0.0, params_.dtMs, span, ws,
                                     opts);
        rhsEvals_ += result.rhsEvaluations;
    }

    v_ = y[0];
    m_ = y[1];
    h_ = y[2];
    n_ = y[3];

    return v_before < params_.spikeThresholdMv &&
           v_ >= params_.spikeThresholdMv;
}

} // namespace flexon
