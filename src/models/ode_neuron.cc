#include "models/ode_neuron.hh"

#include <cmath>

#include "common/logging.hh"
#include "solvers/euler.hh"

namespace flexon {

OdeNeuron::OdeNeuron(const NeuronParams &params, SolverKind solver)
    : params_(params), solver_(solver),
      ws_(3 + 2 * params.numSynapseTypes)
{
    const std::string err = params_.validate();
    if (!err.empty())
        fatal("invalid neuron parameters: %s", err.c_str());
    if (params_.features.has(Feature::LID)) {
        // Linear decay is inherently discrete/event-driven; the paper's
        // LLIF benchmarks use the discrete form. Model it as a constant
        // drain in the RHS instead.
        warn("OdeNeuron used with LID; linear decay is integrated as a "
             "constant drain");
    }
    y_.resize(dim());
    scratch_.resize(dim());
}

void
OdeNeuron::pack(std::vector<double> &y) const
{
    y[0] = state_.v;
    y[1] = state_.w;
    y[2] = state_.r;
    for (size_t i = 0; i < params_.numSynapseTypes; ++i) {
        y[3 + i] = state_.y[i];
        y[3 + params_.numSynapseTypes + i] = state_.g[i];
    }
}

void
OdeNeuron::unpack(std::span<const double> y)
{
    state_.v = y[0];
    state_.w = y[1];
    state_.r = y[2];
    for (size_t i = 0; i < params_.numSynapseTypes; ++i) {
        state_.y[i] = y[3 + i];
        state_.g[i] = y[3 + params_.numSynapseTypes + i];
    }
}

void
OdeNeuron::rhs(std::span<const double> y, std::span<double> dydt) const
{
    const NeuronParams &p = params_;
    const FeatureSet &f = p.features;
    const size_t st = p.numSynapseTypes;

    const double v = y[0];
    const double w = y[1];
    const double r = y[2];

    // Synaptic contribution.
    double acc = 0.0;
    for (size_t i = 0; i < st; ++i) {
        const double yi = y[3 + i];
        const double gi = y[3 + st + i];
        const double eps_g = p.syn[i].epsG;

        dydt[3 + i] = -eps_g * yi;
        if (f.has(Feature::COBA)) {
            dydt[3 + st + i] = -eps_g * gi + M_E * eps_g * yi;
        } else {
            // COBE decays; CUB conductance is an impulse handled at
            // the step boundary and simply decays to nothing here.
            dydt[3 + st + i] = -eps_g * gi;
        }

        const double v_rev = f.has(Feature::REV) ? (p.syn[i].vG - v)
                                                 : 1.0;
        acc += v_rev * gi;
    }

    // Membrane leak / spike initiation.
    double leak = 0.0;
    if (f.has(Feature::EXI)) {
        // Clamp the exponent so the upswing past the firing voltage
        // stays integrable (the firing check truncates it anyway).
        const double z = std::min((v - 1.0) / p.deltaT, 8.0);
        leak = -v + p.deltaT * std::exp(z);
    } else if (f.has(Feature::QDI)) {
        leak = (-v) * (p.vCrit - v);
    } else if (f.has(Feature::EXD)) {
        leak = -v;
    }

    // Spike-triggered current / relative refractory.
    double w_term = 0.0;
    double r_term = 0.0;
    dydt[1] = 0.0;
    dydt[2] = 0.0;
    if (f.has(Feature::SBT)) {
        dydt[1] = -p.epsW * w + p.epsM * p.a * (v - p.vW);
        w_term = w;
    } else if (f.has(Feature::ADT)) {
        dydt[1] = -p.epsW * w;
        w_term = w;
    } else if (f.has(Feature::RR)) {
        dydt[1] = -p.epsW * w;
        dydt[2] = -p.epsR * r;
        w_term = w * (p.vAR - v);
        r_term = r * (p.vRR - v);
    }

    if (f.has(Feature::LID)) {
        dydt[0] = acc - p.vLeak;
    } else {
        dydt[0] = p.epsM * (leak + acc) + w_term + r_term;
    }
}

bool
OdeNeuron::step(std::span<const double> input)
{
    const NeuronParams &p = params_;
    const FeatureSet &f = p.features;

    // Refractory gating, as in the discrete model (Equation 7).
    const bool blocked = f.has(Feature::AR) && state_.cnt > 0;
    if (f.has(Feature::AR) && state_.cnt > 0)
        --state_.cnt;

    // Apply input impulses at the step boundary.
    for (size_t i = 0; i < p.numSynapseTypes; ++i) {
        const double in = (blocked || i >= input.size()) ? 0.0
                                                         : input[i];
        if (f.has(Feature::COBA))
            state_.y[i] += in;
        else if (f.has(Feature::COBE))
            state_.g[i] += in;
        else
            state_.g[i] = in; // CUB: instantaneous current this step
    }

    pack(y_);
    auto rhs_fn = [this](double, std::span<const double> y,
                         std::span<double> dydt) { rhs(y, dydt); };

    if (solver_ == SolverKind::Euler) {
        eulerStep(rhs_fn, 0.0, 1.0, std::span<double>(y_), scratch_);
        rhsEvals_ += 1;
    } else {
        OdeRhs fn = rhs_fn;
        auto result = rkf45Integrate(fn, 0.0, 1.0, y_, ws_);
        rhsEvals_ += result.rhsEvaluations;
        if (!result.converged)
            warn("RKF45 failed to converge within the step");
    }
    unpack(y_);

    const bool fired = state_.v > p.threshold();
    if (fired) {
        state_.v = 0.0;
        if (f.has(Feature::ADT) || f.has(Feature::SBT) ||
            f.has(Feature::RR)) {
            state_.w -= p.b;
        }
        if (f.has(Feature::RR))
            state_.r -= p.qR;
        if (f.has(Feature::AR))
            state_.cnt = p.arSteps;
    }
    return fired;
}

void
OdeNeuron::reset()
{
    state_.reset();
    rhsEvals_ = 0;
}

} // namespace flexon
