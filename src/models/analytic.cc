#include "models/analytic.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexon {
namespace analytic {

double
lifSteadyState(double input)
{
    return input;
}

uint64_t
lifStepsToThreshold(double input, double eps_m)
{
    if (input <= 1.0)
        return 0;
    flexon_assert(eps_m > 0.0 && eps_m < 1.0);
    const double n_real = std::log(1.0 - 1.0 / input) /
                          std::log(1.0 - eps_m);
    auto v_at = [&](uint64_t n) {
        return input * (1.0 - std::pow(1.0 - eps_m,
                                       static_cast<double>(n)));
    };
    // The firing condition is a strict comparison (v > theta), so
    // an exact touch of the threshold does not fire; correct the
    // rounded estimate by direct evaluation.
    auto n = static_cast<uint64_t>(std::ceil(n_real));
    while (n > 1 && v_at(n - 1) > 1.0)
        --n;
    while (v_at(n) <= 1.0)
        ++n;
    return n;
}

double
exdDecay(double v0, double eps_m, uint64_t steps)
{
    return v0 * std::pow(1.0 - eps_m,
                         static_cast<double>(steps));
}

double
lidDecay(double v0, double v_leak, uint64_t steps)
{
    const double v = v0 - v_leak * static_cast<double>(steps);
    return v > 0.0 ? v : 0.0;
}

uint64_t
alphaPeakStep(double eps_g)
{
    flexon_assert(eps_g > 0.0 && eps_g < 1.0);
    // The discrete alpha kernel g_t ~ t * (1-epsG)^t peaks where
    // d/dt [t * exp(t * ln(1-epsG))] = 0 -> t = -1 / ln(1 - epsG).
    return static_cast<uint64_t>(
        std::llround(-1.0 / std::log(1.0 - eps_g)));
}

double
qdiSeparatrix(const NeuronParams &params)
{
    return params.vCrit;
}

double
exiRheobase(const NeuronParams &params)
{
    const double dt = params.deltaT;
    flexon_assert(dt > 0.0);
    auto f = [dt](double v) {
        return -v + dt * std::exp((v - 1.0) / dt);
    };
    // The unstable root lies between the threshold and the firing
    // voltage when the model is well posed.
    double lo = 1.0;
    double hi = params.vFiring;
    if (f(lo) >= 0.0 || f(hi) <= 0.0) {
        fatal("EXI rheobase not bracketed in (1, vFiring); "
              "check deltaT/vFiring");
    }
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (f(mid) < 0.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
}

double
cobeSteadyState(double input, double eps_g)
{
    flexon_assert(eps_g > 0.0);
    return input / eps_g;
}

} // namespace analytic
} // namespace flexon
