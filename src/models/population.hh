/**
 * @file
 * Homogeneous neuron populations for the reference (software) backend.
 *
 * A population owns N neurons sharing one parameter set — mirroring
 * PyNN's sim.Population() abstraction (Section VII-B) — and steps them
 * either with the discrete reference equations or with a continuous
 * solver. The reference SNN simulator and the CPU-baseline cost
 * measurements are built on top of this.
 */

#ifndef FLEXON_MODELS_POPULATION_HH
#define FLEXON_MODELS_POPULATION_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "features/params.hh"
#include "models/ode_neuron.hh"
#include "models/reference_neuron.hh"
#include "solvers/solver.hh"

namespace flexon {

/** How a reference population integrates its neurons. */
enum class IntegrationMode {
    Discrete,   ///< exact discrete equations (Equations 3-8)
    Continuous, ///< hybrid ODE integration with a SolverKind
};

/** A homogeneous population of reference neurons. */
class ReferencePopulation
{
  public:
    /**
     * @param params shared neuron parameters
     * @param count number of neurons
     * @param mode discrete or continuous integration
     * @param solver solver used in continuous mode
     */
    ReferencePopulation(const NeuronParams &params, size_t count,
                        IntegrationMode mode = IntegrationMode::Discrete,
                        SolverKind solver = SolverKind::Euler);

    size_t size() const { return size_; }
    const NeuronParams &params() const { return params_; }

    /**
     * Step every neuron once.
     *
     * @param input row-major [neuron][synapseType] accumulated
     *              weights; size must be size() * numSynapseTypes
     * @param fired output flags (0/1 bytes), one per neuron
     */
    void step(std::span<const double> input,
              std::vector<uint8_t> &fired);

    /** Read one neuron's state. */
    const NeuronState &state(size_t idx) const;

    /** Total solver derivative evaluations (continuous mode only). */
    uint64_t rhsEvaluations() const;

    void reset();

  private:
    NeuronParams params_;
    size_t size_;
    IntegrationMode mode_;
    std::vector<ReferenceNeuron> discrete_;
    std::vector<OdeNeuron> continuous_;
};

} // namespace flexon

#endif // FLEXON_MODELS_POPULATION_HH
