/**
 * @file
 * Structure-of-arrays batch stepper for the discrete reference model.
 *
 * The reference backend used to keep one ReferenceNeuron per network
 * neuron, each dragging a private NeuronParams copy (hundreds of
 * bytes) through the cache on every step. A ReferenceBatch stores the
 * parameter set once per population, hoists the feature decisions out
 * of the inner loop, and streams the state variables v/y/g/w/r/cnt as
 * contiguous arrays — the same per-population SoA treatment the
 * Flexon batch kernels apply (flexon/kernel.hh).
 *
 * Bit-exactness contract: step() performs the exact double-precision
 * operation order of ReferenceNeuron::step (Equations 3-8), so the
 * batch path is bit-identical to the scalar golden model.
 */

#ifndef FLEXON_MODELS_REFERENCE_BATCH_HH
#define FLEXON_MODELS_REFERENCE_BATCH_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "features/params.hh"

namespace flexon {

/** A population of discrete reference neurons in SoA form. */
class ReferenceBatch
{
  public:
    /** @param params validated shared parameters (fatal on invalid). */
    ReferenceBatch(const NeuronParams &params, size_t count);

    size_t size() const { return count_; }
    const NeuronParams &params() const { return params_; }

    /**
     * Step neurons [begin, end) of this batch.
     *
     * @param input row-major [neuron][synapseType] accumulated
     *              weights with stride maxSynapseTypes, already
     *              offset to this batch's first neuron
     * @param fired 0/1 flags, offset to this batch's first neuron
     */
    void step(const double *input, uint8_t *fired, size_t begin,
              size_t end);

    double membrane(size_t idx) const { return v_[idx]; }
    double preResetV(size_t idx) const { return preResetV_[idx]; }

    /**
     * LLIF hand-off views: for a {LID, CUB, AR} parameter set the
     * (v, cnt) pair is the batch's complete forward state — y/g are
     * rewritten from the input every step and w/r/preResetV are
     * unused — so these arrays alone move a population between
     * delivery engines bit-exactly.
     */
    std::span<const double> membraneArray() const { return v_; }
    std::span<const uint32_t> refractoryArray() const
    {
        return cnt_;
    }

    /** Seed (v, cnt) on a freshly reset batch (sizes must match). */
    void setLlifState(std::span<const double> v,
                      std::span<const uint32_t> cnt);

    /** Materialized AoS state of one neuron (probes and tests). */
    NeuronState state(size_t idx) const;

    /**
     * Intrinsic-excitability support: per-neuron firing-threshold
     * offset added to params().threshold() in the spike check. The
     * offset array is allocated lazily on the first write, so
     * populations that never adapt keep the exact pre-existing step
     * path (and bit-exact results). Offsets are *parameters*, not
     * dynamic state: saveState/loadState deliberately exclude them —
     * the plasticity rule that wrote them owns their persistence and
     * re-applies them on restore. reset() zeroes them (a fresh batch
     * has no adaptation history).
     */
    void setThresholdOffset(size_t idx, double offset);
    double
    thresholdOffset(size_t idx) const
    {
        return thrOffset_.empty() ? 0.0 : thrOffset_[idx];
    }

    void reset();

    /**
     * Checkpoint the batch's dynamic state (v/w/r/preResetV/y/g/cnt
     * arrays). Text, exact round trip; the stream must carry 17
     * significant digits (snn/serialize.hh checkpoint framing).
     * loadState fatal()s when the recorded shape does not match.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    /**
     * The neuron loop, compiled once without the per-neuron threshold
     * lookup (the common path, byte-for-byte the pre-IE loop) and
     * once with it (populations under intrinsic excitability).
     */
    template <bool kThresholdOffsets>
    void stepImpl(const double *input, uint8_t *fired, size_t begin,
                  size_t end);

    NeuronParams params_;
    size_t count_;
    size_t stride_; ///< params_.numSynapseTypes

    std::vector<double> v_;
    std::vector<double> w_;
    std::vector<double> r_;
    std::vector<double> preResetV_;
    std::vector<double> y_; ///< count * stride
    std::vector<double> g_; ///< count * stride
    std::vector<uint32_t> cnt_;
    /** Per-neuron threshold offsets; empty until the first write. */
    std::vector<double> thrOffset_;
};

} // namespace flexon

#endif // FLEXON_MODELS_REFERENCE_BATCH_HH
