#include "models/reference_neuron.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexon {

ReferenceNeuron::ReferenceNeuron(const NeuronParams &params)
    : params_(params)
{
    const std::string err = params_.validate();
    if (!err.empty())
        fatal("invalid neuron parameters: %s", err.c_str());
}

bool
ReferenceNeuron::step(std::span<const double> input)
{
    const NeuronParams &p = params_;
    const FeatureSet &f = p.features;
    NeuronState &s = state_;

    const double v_prev = s.v;

    // --- Refractory gating (Equation 7): while cnt > 0 the neuron
    // receives no input; the counter decrements every step.
    const bool blocked = f.has(Feature::AR) && s.cnt > 0;
    if (f.has(Feature::AR) && s.cnt > 0)
        --s.cnt;

    // --- Input spike accumulation (Equation 4).
    double acc = 0.0;
    for (size_t i = 0; i < p.numSynapseTypes; ++i) {
        const double in =
            (blocked || i >= input.size()) ? 0.0 : input[i];
        const double eps_g = p.syn[i].epsG;

        if (f.has(Feature::COBA)) {
            s.y[i] = (1.0 - eps_g) * s.y[i] + in;
            s.g[i] = (1.0 - eps_g) * s.g[i] +
                     M_E * eps_g * s.y[i];
        } else if (f.has(Feature::COBE)) {
            s.g[i] = (1.0 - eps_g) * s.g[i] + in;
        } else {
            // CUB (or no accumulation feature): instantaneous current.
            s.g[i] = in;
        }

        const double v_rev =
            f.has(Feature::REV) ? (p.syn[i].vG - v_prev) : 1.0;
        acc += v_rev * s.g[i];
    }

    // --- Membrane decay / spike initiation term (Equations 3 and 5).
    // With shift & scale (v0 = 0, theta = 1), EXD contributes -v;
    // QDI/EXI replace the leak with their initiation functions.
    double leak = 0.0;
    if (f.has(Feature::EXI)) {
        leak = -v_prev +
               p.deltaT * std::exp((v_prev - 1.0) / p.deltaT);
    } else if (f.has(Feature::QDI)) {
        leak = (-v_prev) * (p.vCrit - v_prev);
    } else if (f.has(Feature::EXD)) {
        leak = -v_prev;
    }

    // --- Spike-triggered current (Equation 6) and relative
    // refractory (Equation 8) state updates.
    double w_term = 0.0;
    double r_term = 0.0;
    if (f.has(Feature::SBT)) {
        s.w = (1.0 - p.epsW) * s.w +
              p.epsM * p.a * (v_prev - p.vW);
        w_term = s.w;
    } else if (f.has(Feature::ADT)) {
        s.w = (1.0 - p.epsW) * s.w;
        w_term = s.w;
    } else if (f.has(Feature::RR)) {
        s.w = (1.0 - p.epsW) * s.w;
        s.r = (1.0 - p.epsR) * s.r;
        w_term = s.w * (p.vAR - v_prev);
        r_term = s.r * (p.vRR - v_prev);
    }

    // --- Membrane potential update (Equations 3 through 8 composed).
    if (f.has(Feature::LID)) {
        // Linear decay (Equation 3); the potential decays toward the
        // resting level and saturates there (Figure 4) — the LID
        // datapath floors v' at the resting voltage.
        s.v = std::max(0.0, v_prev + acc - p.vLeak);
    } else {
        s.v = v_prev + p.epsM * (leak + acc) + w_term + r_term;
    }

    // --- Firing check. QDI/EXI fire at the firing voltage v_theta;
    // everything else at the threshold (1.0 after shift & scale).
    preResetV_ = s.v;
    const bool fired = s.v > p.threshold();
    if (fired) {
        s.v = 0.0;
        if (f.has(Feature::ADT) || f.has(Feature::SBT) ||
            f.has(Feature::RR)) {
            s.w -= p.b;
        }
        if (f.has(Feature::RR))
            s.r -= p.qR;
        if (f.has(Feature::AR))
            s.cnt = p.arSteps;
    }
    return fired;
}

} // namespace flexon
