/**
 * @file
 * Continuous-time reference neuron integrated with Euler or RKF45.
 *
 * The Table I SNNs solve their neuron ODEs either with the Euler
 * method or with RKF45 (Section III-A); the solver choice changes the
 * neuron-computation cost per time step, which is what Figure 3
 * measures. This class exposes the same feature semantics as
 * ReferenceNeuron but integrates the smooth part of the dynamics over
 * each time step with a pluggable solver, treating input spikes as
 * impulses at step boundaries (standard hybrid integration, as NEST
 * does).
 *
 * Time is measured in units of one simulation step, so the Euler mode
 * with one sub-step reproduces the discrete equations exactly for the
 * linear features.
 */

#ifndef FLEXON_MODELS_ODE_NEURON_HH
#define FLEXON_MODELS_ODE_NEURON_HH

#include <span>
#include <vector>

#include "features/params.hh"
#include "solvers/rkf45.hh"
#include "solvers/solver.hh"

namespace flexon {

/** A continuous-time neuron with a per-step hybrid integration. */
class OdeNeuron
{
  public:
    OdeNeuron(const NeuronParams &params, SolverKind solver);

    /**
     * Advance one time step: apply input impulses, integrate the
     * smooth dynamics over one step, then evaluate the firing
     * condition.
     *
     * @return true iff the neuron fired this step
     */
    bool step(std::span<const double> input);

    /** Convenience overload for single-synapse-type configurations. */
    bool
    step(double input)
    {
        return step(std::span<const double>(&input, 1));
    }

    const NeuronState &state() const { return state_; }
    const NeuronParams &params() const { return params_; }
    SolverKind solver() const { return solver_; }

    /**
     * Overwrite the dynamic state (checkpoint restore). The solver
     * workspace is pure per-step scratch and rhsEvals_ is a cost
     * metric, not dynamics, so NeuronState is the complete restart
     * state: stepping from a restored state is bit-identical to an
     * uninterrupted run.
     */
    void setState(const NeuronState &state) { state_ = state; }

    /** Total derivative evaluations so far (the solver cost metric). */
    uint64_t rhsEvaluations() const { return rhsEvals_; }

    void reset();

  private:
    /** Dimension of the packed ODE state vector. */
    size_t dim() const { return 3 + 2 * params_.numSynapseTypes; }

    void pack(std::vector<double> &y) const;
    void unpack(std::span<const double> y);

    /** Derivatives of the smooth (between-spike) dynamics. */
    void rhs(std::span<const double> y, std::span<double> dydt) const;

    NeuronParams params_;
    SolverKind solver_;
    NeuronState state_;
    Rkf45Workspace ws_;
    std::vector<double> y_;
    std::vector<double> scratch_;
    uint64_t rhsEvals_ = 0;
};

} // namespace flexon

#endif // FLEXON_MODELS_ODE_NEURON_HH
