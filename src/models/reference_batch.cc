#include "models/reference_batch.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace flexon {

ReferenceBatch::ReferenceBatch(const NeuronParams &params, size_t count)
    : params_(params), count_(count),
      stride_(params.numSynapseTypes == 0 ? 1 : params.numSynapseTypes)
{
    const std::string err = params_.validate();
    if (!err.empty())
        fatal("invalid neuron parameters: %s", err.c_str());
    flexon_assert(count > 0);
    v_.assign(count, 0.0);
    w_.assign(count, 0.0);
    r_.assign(count, 0.0);
    preResetV_.assign(count, 0.0);
    y_.assign(count * stride_, 0.0);
    g_.assign(count * stride_, 0.0);
    cnt_.assign(count, 0);
}

void
ReferenceBatch::step(const double *input, uint8_t *fired, size_t begin,
                     size_t end)
{
    // Dispatch once per call so the (overwhelmingly common) no-offset
    // instantiation compiles to the exact pre-IE loop — populations
    // that never adapt pay nothing for the feature.
    if (thrOffset_.empty())
        stepImpl<false>(input, fired, begin, end);
    else
        stepImpl<true>(input, fired, begin, end);
}

template <bool kThresholdOffsets>
void
ReferenceBatch::stepImpl(const double *input, uint8_t *fired,
                         size_t begin, size_t end)
{
    const NeuronParams &p = params_;
    const FeatureSet &f = p.features;

    // Feature decisions hoisted out of the neuron loop: one branch
    // pattern per population instead of per neuron.
    const bool hasAR = f.has(Feature::AR);
    const bool hasCOBA = f.has(Feature::COBA);
    const bool hasCOBE = f.has(Feature::COBE);
    const bool hasREV = f.has(Feature::REV);
    const bool hasEXI = f.has(Feature::EXI);
    const bool hasQDI = f.has(Feature::QDI);
    const bool hasEXD = f.has(Feature::EXD);
    const bool hasLID = f.has(Feature::LID);
    const bool hasSBT = f.has(Feature::SBT);
    const bool hasADT = f.has(Feature::ADT);
    const bool hasRR = f.has(Feature::RR);
    const bool wFeature = hasADT || hasSBT || hasRR;
    const double threshold = p.threshold();
    const double *const thrOffset =
        kThresholdOffsets ? thrOffset_.data() : nullptr;

    for (size_t i = begin; i < end; ++i) {
        const double v_prev = v_[i];
        const double *const in_row = input + i * maxSynapseTypes;
        double *const y = y_.data() + i * stride_;
        double *const g = g_.data() + i * stride_;

        // --- Refractory gating (Equation 7).
        const bool blocked = hasAR && cnt_[i] > 0;
        if (blocked)
            --cnt_[i];

        // --- Input spike accumulation (Equation 4), in the exact
        // operation order of ReferenceNeuron::step.
        double acc = 0.0;
        for (size_t t = 0; t < stride_; ++t) {
            const double in = blocked ? 0.0 : in_row[t];
            const double eps_g = p.syn[t].epsG;

            if (hasCOBA) {
                y[t] = (1.0 - eps_g) * y[t] + in;
                g[t] = (1.0 - eps_g) * g[t] + M_E * eps_g * y[t];
            } else if (hasCOBE) {
                g[t] = (1.0 - eps_g) * g[t] + in;
            } else {
                g[t] = in;
            }

            const double v_rev =
                hasREV ? (p.syn[t].vG - v_prev) : 1.0;
            acc += v_rev * g[t];
        }

        // --- Membrane decay / spike initiation (Equations 3 and 5).
        double leak = 0.0;
        if (hasEXI) {
            leak = -v_prev +
                   p.deltaT * std::exp((v_prev - 1.0) / p.deltaT);
        } else if (hasQDI) {
            leak = (-v_prev) * (p.vCrit - v_prev);
        } else if (hasEXD) {
            leak = -v_prev;
        }

        // --- Spike-triggered current (Equation 6) / relative
        // refractory (Equation 8).
        double w_term = 0.0;
        double r_term = 0.0;
        if (hasSBT) {
            w_[i] = (1.0 - p.epsW) * w_[i] +
                    p.epsM * p.a * (v_prev - p.vW);
            w_term = w_[i];
        } else if (hasADT) {
            w_[i] = (1.0 - p.epsW) * w_[i];
            w_term = w_[i];
        } else if (hasRR) {
            w_[i] = (1.0 - p.epsW) * w_[i];
            r_[i] = (1.0 - p.epsR) * r_[i];
            w_term = w_[i] * (p.vAR - v_prev);
            r_term = r_[i] * (p.vRR - v_prev);
        }

        // --- Membrane potential update.
        double v_next;
        if (hasLID) {
            v_next = std::max(0.0, v_prev + acc - p.vLeak);
        } else {
            v_next =
                v_prev + p.epsM * (leak + acc) + w_term + r_term;
        }

        // --- Firing check.
        preResetV_[i] = v_next;
        const double th = kThresholdOffsets
                              ? threshold + thrOffset[i]
                              : threshold;
        const bool spike = v_next > th;
        if (spike) {
            v_next = 0.0;
            if (wFeature)
                w_[i] -= p.b;
            if (hasRR)
                r_[i] -= p.qR;
            if (hasAR)
                cnt_[i] = p.arSteps;
        }
        v_[i] = v_next;
        fired[i] = spike;
    }
}

NeuronState
ReferenceBatch::state(size_t idx) const
{
    flexon_assert(idx < count_);
    NeuronState s;
    s.v = v_[idx];
    s.w = w_[idx];
    s.r = r_[idx];
    s.cnt = cnt_[idx];
    for (size_t t = 0; t < stride_ && t < maxSynapseTypes; ++t) {
        s.y[t] = y_[idx * stride_ + t];
        s.g[t] = g_[idx * stride_ + t];
    }
    return s;
}

void
ReferenceBatch::setLlifState(std::span<const double> v,
                             std::span<const uint32_t> cnt)
{
    if (v.size() != count_ || cnt.size() != count_)
        fatal("LLIF state size mismatch (batch has %zu neurons)",
              count_);
    std::copy(v.begin(), v.end(), v_.begin());
    std::copy(cnt.begin(), cnt.end(), cnt_.begin());
}

void
ReferenceBatch::setThresholdOffset(size_t idx, double offset)
{
    flexon_assert(idx < count_);
    if (thrOffset_.empty())
        thrOffset_.assign(count_, 0.0);
    thrOffset_[idx] = offset;
}

void
ReferenceBatch::reset()
{
    std::fill(thrOffset_.begin(), thrOffset_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 0.0);
    std::fill(w_.begin(), w_.end(), 0.0);
    std::fill(r_.begin(), r_.end(), 0.0);
    std::fill(preResetV_.begin(), preResetV_.end(), 0.0);
    std::fill(y_.begin(), y_.end(), 0.0);
    std::fill(g_.begin(), g_.end(), 0.0);
    std::fill(cnt_.begin(), cnt_.end(), 0);
}

namespace {

void
writeArray(std::ostream &os, const std::vector<double> &a)
{
    for (const double x : a)
        os << ' ' << x;
}

void
readArray(std::istream &is, std::vector<double> &a)
{
    for (double &x : a)
        is >> x;
}

} // namespace

void
ReferenceBatch::saveState(std::ostream &os) const
{
    os << "batch " << count_ << ' ' << stride_;
    writeArray(os, v_);
    writeArray(os, w_);
    writeArray(os, r_);
    writeArray(os, preResetV_);
    writeArray(os, y_);
    writeArray(os, g_);
    for (const uint32_t c : cnt_)
        os << ' ' << c;
    os << '\n';
}

void
ReferenceBatch::loadState(std::istream &is)
{
    std::string tag;
    size_t count = 0, stride = 0;
    is >> tag >> count >> stride;
    if (tag != "batch" || !is || count != count_ || stride != stride_)
        fatal("checkpoint batch shape mismatch (expected %zu x %zu)",
              count_, stride_);
    readArray(is, v_);
    readArray(is, w_);
    readArray(is, r_);
    readArray(is, preResetV_);
    readArray(is, y_);
    readArray(is, g_);
    for (uint32_t &c : cnt_)
        is >> c;
    if (!is)
        fatal("truncated reference-batch state in checkpoint");
}

} // namespace flexon
