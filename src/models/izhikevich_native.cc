#include "models/izhikevich_native.hh"

#include "common/logging.hh"

namespace flexon {

IzhikevichParams
izhikevichRegularSpiking()
{
    return {0.02, 0.2, -65.0, 8.0, 0.1};
}

IzhikevichParams
izhikevichFastSpiking()
{
    return {0.1, 0.2, -65.0, 2.0, 0.1};
}

IzhikevichParams
izhikevichChattering()
{
    return {0.02, 0.2, -50.0, 2.0, 0.1};
}

IzhikevichParams
izhikevichIntrinsicallyBursting()
{
    return {0.02, 0.2, -55.0, 4.0, 0.1};
}

IzhikevichParams
izhikevichLowThreshold()
{
    return {0.02, 0.25, -65.0, 2.0, 0.1};
}

IzhikevichNative::IzhikevichNative(const IzhikevichParams &params)
    : params_(params)
{
    flexon_assert(params_.dtMs > 0.0);
    reset();
}

void
IzhikevichNative::reset()
{
    v_ = params_.c;
    u_ = params_.b * v_;
}

bool
IzhikevichNative::step(double current)
{
    const double dt = params_.dtMs;
    // Izhikevich's reference integration: two v half-steps for
    // numerical stability, then one u step.
    for (int half = 0; half < 2; ++half) {
        v_ += 0.5 * dt *
              (0.04 * v_ * v_ + 5.0 * v_ + 140.0 - u_ + current);
    }
    u_ += dt * params_.a * (params_.b * v_ - u_);

    if (v_ >= 30.0) {
        v_ = params_.c;
        u_ += params_.d;
        return true;
    }
    return false;
}

} // namespace flexon
