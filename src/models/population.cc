#include "models/population.hh"

#include "common/logging.hh"

namespace flexon {

ReferencePopulation::ReferencePopulation(const NeuronParams &params,
                                         size_t count,
                                         IntegrationMode mode,
                                         SolverKind solver)
    : params_(params), size_(count), mode_(mode)
{
    flexon_assert(count > 0);
    if (mode_ == IntegrationMode::Discrete) {
        discrete_.reserve(count);
        for (size_t i = 0; i < count; ++i)
            discrete_.emplace_back(params);
    } else {
        continuous_.reserve(count);
        for (size_t i = 0; i < count; ++i)
            continuous_.emplace_back(params, solver);
    }
}

void
ReferencePopulation::step(std::span<const double> input,
                          std::vector<uint8_t> &fired)
{
    const size_t st = params_.numSynapseTypes;
    flexon_assert(input.size() >= size_ * st);
    fired.assign(size_, 0);

    if (mode_ == IntegrationMode::Discrete) {
        for (size_t i = 0; i < size_; ++i)
            fired[i] = discrete_[i].step(input.subspan(i * st, st));
    } else {
        for (size_t i = 0; i < size_; ++i)
            fired[i] = continuous_[i].step(input.subspan(i * st, st));
    }
}

const NeuronState &
ReferencePopulation::state(size_t idx) const
{
    flexon_assert(idx < size_);
    return mode_ == IntegrationMode::Discrete
               ? discrete_[idx].state()
               : continuous_[idx].state();
}

uint64_t
ReferencePopulation::rhsEvaluations() const
{
    uint64_t total = 0;
    for (const auto &n : continuous_)
        total += n.rhsEvaluations();
    return total;
}

void
ReferencePopulation::reset()
{
    for (auto &n : discrete_)
        n.reset();
    for (auto &n : continuous_)
        n.reset();
}

} // namespace flexon
