/**
 * @file
 * Text rendering of simulation activity: ASCII spike rasters and
 * rate sparklines for terminal inspection, plus CSV export of spike
 * events for external plotting.
 */

#ifndef FLEXON_ANALYSIS_RASTER_HH
#define FLEXON_ANALYSIS_RASTER_HH

#include <ostream>
#include <string>
#include <vector>

#include "snn/simulator.hh"

namespace flexon {

/** Options for renderRaster(). */
struct RasterOptions
{
    /** Output width in character columns (time bins). */
    size_t columns = 72;
    /** Max neuron rows rendered (neurons are subsampled evenly). */
    size_t maxRows = 20;
};

/**
 * Render a spike raster: one text row per (subsampled) neuron, one
 * column per time bin; '.' = silent, '|' = 1 spike, '#' = several.
 */
std::string renderRaster(const std::vector<SpikeEvent> &events,
                         size_t num_neurons, uint64_t steps,
                         const RasterOptions &options = {});

/**
 * Render a one-line population-rate sparkline using the eight-level
 * block characters (' ', 1/8 .. 7/8, full).
 */
std::string renderRateSparkline(const std::vector<double> &rate);

/** Write spike events as CSV ("step,neuron") for external tools. */
void writeSpikesCsv(std::ostream &os,
                    const std::vector<SpikeEvent> &events);

} // namespace flexon

#endif // FLEXON_ANALYSIS_RASTER_HH
