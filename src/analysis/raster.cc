#include "analysis/raster.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexon {

std::string
renderRaster(const std::vector<SpikeEvent> &events, size_t num_neurons,
             uint64_t steps, const RasterOptions &options)
{
    flexon_assert(num_neurons > 0);
    flexon_assert(steps > 0);
    flexon_assert(options.columns > 0);
    flexon_assert(options.maxRows > 0);

    const size_t rows = std::min(options.maxRows, num_neurons);
    const size_t stride = num_neurons / rows; // even subsampling
    const uint64_t bin =
        std::max<uint64_t>(1, steps / options.columns);

    // counts[row][col]
    std::vector<std::vector<int>> counts(
        rows, std::vector<int>(options.columns, 0));
    for (const SpikeEvent &e : events) {
        if (e.neuron % stride != 0)
            continue;
        const size_t row = e.neuron / stride;
        const size_t col =
            std::min(options.columns - 1,
                     static_cast<size_t>(e.step / bin));
        if (row < rows)
            ++counts[row][col];
    }

    std::string out;
    for (size_t r = 0; r < rows; ++r) {
        std::string label = "n" + std::to_string(r * stride);
        label.resize(8, ' ');
        out += label;
        for (size_t c = 0; c < options.columns; ++c) {
            const int n = counts[r][c];
            out += n == 0 ? '.' : (n == 1 ? '|' : '#');
        }
        out += '\n';
    }
    return out;
}

std::string
renderRateSparkline(const std::vector<double> &rate)
{
    static const char *levels[] = {" ",      "▁", "▂",
                                   "▃", "▄", "▅",
                                   "▆", "▇", "█"};
    double max = 0.0;
    for (double r : rate)
        max = std::max(max, r);
    std::string out;
    for (double r : rate) {
        const int level =
            max > 0.0
                ? static_cast<int>(std::min(8.0, 8.0 * r / max + 0.5))
                : 0;
        out += levels[level];
    }
    return out;
}

void
writeSpikesCsv(std::ostream &os, const std::vector<SpikeEvent> &events)
{
    os << "step,neuron\n";
    for (const SpikeEvent &e : events)
        os << e.step << ',' << e.neuron << '\n';
}

} // namespace flexon
