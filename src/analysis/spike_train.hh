/**
 * @file
 * Spike-train analysis: the statistics neuroscientists read off a
 * simulation — inter-spike intervals, irregularity (CV), Fano
 * factor, population rates, and train-similarity metrics used to
 * compare backends (the quantitative version of the paper's "compare
 * the output spikes with Brian" methodology).
 *
 * Times are in simulation steps throughout; multiply by the time
 * step (e.g. 0.1 ms) for biological units.
 */

#ifndef FLEXON_ANALYSIS_SPIKE_TRAIN_HH
#define FLEXON_ANALYSIS_SPIKE_TRAIN_HH

#include <cstdint>
#include <vector>

#include "snn/simulator.hh"

namespace flexon {

/** Summary statistics of one neuron's spike train. */
struct TrainStats
{
    size_t spikes = 0;
    /** Mean inter-spike interval in steps (0 if < 2 spikes). */
    double meanIsi = 0.0;
    /** Coefficient of variation of the ISIs (0 = clock-regular,
     *  ~1 = Poisson-irregular). */
    double cvIsi = 0.0;
    /** Mean firing rate in spikes per step. */
    double rate = 0.0;
};

/** Compute TrainStats from sorted spike times over `steps` steps. */
TrainStats trainStats(const std::vector<uint64_t> &times,
                      uint64_t steps);

/**
 * Group a recorded spike-event stream by neuron.
 * @return per-neuron sorted spike-time lists (size = numNeurons)
 */
std::vector<std::vector<uint64_t>>
groupByNeuron(const std::vector<SpikeEvent> &events,
              size_t num_neurons);

/**
 * Population rate histogram: spikes per neuron per step, binned.
 * @param bin_steps width of each bin in steps
 */
std::vector<double>
populationRate(const std::vector<SpikeEvent> &events,
               size_t num_neurons, uint64_t steps,
               uint64_t bin_steps);

/**
 * Fano factor of the population spike count over windows of
 * `window_steps`: variance / mean of the per-window counts
 * (1 = Poisson; > 1 = bursty/synchronized).
 */
double fanoFactor(const std::vector<SpikeEvent> &events,
                  uint64_t steps, uint64_t window_steps);

/**
 * Population synchrony index: the variance of the instantaneous
 * population rate divided by the mean single-neuron count variance
 * over `bin_steps` windows (Golomb's chi^2). ~0 for asynchronous
 * populations, -> 1 for fully synchronized ones.
 */
double synchronyIndex(const std::vector<SpikeEvent> &events,
                      size_t num_neurons, uint64_t steps,
                      uint64_t bin_steps);

/**
 * Spike-train coincidence: the fraction of spikes in `a` that have a
 * matching spike in `b` within +/- `tolerance_steps`, symmetrized
 * (the gamma coincidence measure with the Poisson correction
 * omitted). 1.0 = identical trains.
 */
double coincidence(const std::vector<uint64_t> &a,
                   const std::vector<uint64_t> &b,
                   uint64_t tolerance_steps);

/**
 * Mean pairwise coincidence between two recorded simulations of the
 * same network (per-neuron, averaged over neurons that spiked in
 * either run). Used to quantify backend agreement.
 */
double compareRuns(const std::vector<SpikeEvent> &a,
                   const std::vector<SpikeEvent> &b,
                   size_t num_neurons, uint64_t tolerance_steps);

} // namespace flexon

#endif // FLEXON_ANALYSIS_SPIKE_TRAIN_HH
