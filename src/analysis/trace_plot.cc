#include "analysis/trace_plot.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexon {

namespace {

/** Bin a trace down to `columns` samples (mean per bin). */
std::vector<double>
binTrace(const std::vector<double> &values, size_t columns)
{
    std::vector<double> binned(columns, 0.0);
    if (values.empty())
        return binned;
    const double per_bin =
        static_cast<double>(values.size()) /
        static_cast<double>(columns);
    for (size_t c = 0; c < columns; ++c) {
        const size_t lo = static_cast<size_t>(c * per_bin);
        const size_t hi = std::min(
            values.size(),
            std::max(lo + 1,
                     static_cast<size_t>((c + 1) * per_bin)));
        double sum = 0.0;
        for (size_t i = lo; i < hi; ++i)
            sum += values[i];
        binned[c] = sum / static_cast<double>(hi - lo);
    }
    return binned;
}

struct Range
{
    double lo;
    double hi;
};

Range
autoRange(const std::vector<std::vector<double>> &traces,
          const TracePlotOptions &options)
{
    if (options.yMin < options.yMax)
        return {options.yMin, options.yMax};
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const auto &t : traces) {
        for (double v : t) {
            if (first) {
                lo = hi = v;
                first = false;
            }
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    if (hi - lo < 1e-12)
        hi = lo + 1.0;
    return {lo, hi};
}

} // namespace

std::string
renderTraces(const std::vector<std::vector<double>> &traces,
             const std::vector<std::string> &labels,
             const TracePlotOptions &options)
{
    flexon_assert(!traces.empty());
    flexon_assert(options.columns > 0 && options.rows >= 2);

    std::vector<std::vector<double>> binned;
    binned.reserve(traces.size());
    for (const auto &t : traces)
        binned.push_back(binTrace(t, options.columns));
    const Range range = autoRange(binned, options);

    // grid[row][col]; row 0 is the top.
    std::vector<std::string> grid(options.rows,
                                  std::string(options.columns, ' '));
    for (size_t k = 0; k < binned.size(); ++k) {
        const char glyph =
            binned.size() == 1 ? '*'
                               : static_cast<char>('a' + (k % 26));
        for (size_t c = 0; c < options.columns; ++c) {
            const double norm = (binned[k][c] - range.lo) /
                                (range.hi - range.lo);
            const double clamped = std::clamp(norm, 0.0, 1.0);
            const size_t row =
                options.rows - 1 -
                static_cast<size_t>(clamped *
                                    static_cast<double>(
                                        options.rows - 1));
            grid[row][c] = glyph;
        }
    }

    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%10.3f |", range.hi);
    out += buf;
    out += grid[0] + "\n";
    for (size_t r = 1; r + 1 < options.rows; ++r) {
        out += "           |";
        out += grid[r] + "\n";
    }
    std::snprintf(buf, sizeof(buf), "%10.3f |", range.lo);
    out += buf;
    out += grid[options.rows - 1] + "\n";
    out += "           +" + std::string(options.columns, '-') + "\n";

    if (!labels.empty() && traces.size() > 1) {
        out += "            ";
        for (size_t k = 0; k < labels.size(); ++k) {
            out += static_cast<char>('a' + (k % 26));
            out += "=" + labels[k];
            if (k + 1 < labels.size())
                out += "  ";
        }
        out += "\n";
    }
    return out;
}

std::string
renderTrace(const std::vector<double> &values,
            const std::vector<size_t> &events,
            const TracePlotOptions &options)
{
    std::string out = renderTraces({values}, {}, options);
    if (options.markEvents && !events.empty() && !values.empty()) {
        std::string marks(options.columns, ' ');
        const double per_bin =
            static_cast<double>(values.size()) /
            static_cast<double>(options.columns);
        for (size_t e : events) {
            const size_t c = std::min(
                options.columns - 1,
                static_cast<size_t>(
                    static_cast<double>(e) / per_bin));
            marks[c] = '*';
        }
        out = "    spikes  " + marks + "\n" + out;
    }
    return out;
}

} // namespace flexon
