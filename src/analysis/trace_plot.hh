/**
 * @file
 * ASCII line plots of scalar traces (membrane potentials,
 * conductances) for terminal output — used by the Figure 4-8
 * reproductions to show the characteristic shape of each
 * biologically common feature.
 */

#ifndef FLEXON_ANALYSIS_TRACE_PLOT_HH
#define FLEXON_ANALYSIS_TRACE_PLOT_HH

#include <string>
#include <vector>

namespace flexon {

/** Options for renderTrace(). */
struct TracePlotOptions
{
    size_t columns = 72; ///< plot width (samples are binned)
    size_t rows = 12;    ///< plot height
    /** Fixed y-range; if min >= max the range is auto-scaled. */
    double yMin = 0.0;
    double yMax = 0.0;
    /** Marker for event (spike) positions along the top row. */
    bool markEvents = true;
};

/**
 * Render one trace as an ASCII plot. `events` (optional) marks time
 * indices (e.g. spikes) with '*' on the top border.
 */
std::string renderTrace(const std::vector<double> &values,
                        const std::vector<size_t> &events = {},
                        const TracePlotOptions &options = {});

/**
 * Render several traces overlaid in one frame, each with its own
 * glyph ('a', 'b', 'c', ...); a legend line maps glyphs to labels.
 */
std::string
renderTraces(const std::vector<std::vector<double>> &traces,
             const std::vector<std::string> &labels,
             const TracePlotOptions &options = {});

} // namespace flexon

#endif // FLEXON_ANALYSIS_TRACE_PLOT_HH
