#include "analysis/spike_train.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace flexon {

TrainStats
trainStats(const std::vector<uint64_t> &times, uint64_t steps)
{
    flexon_assert(steps > 0);
    flexon_assert(std::is_sorted(times.begin(), times.end()));

    TrainStats stats;
    stats.spikes = times.size();
    stats.rate =
        static_cast<double>(times.size()) / static_cast<double>(steps);
    if (times.size() < 2)
        return stats;

    Summary isi;
    for (size_t i = 1; i < times.size(); ++i)
        isi.add(static_cast<double>(times[i] - times[i - 1]));
    stats.meanIsi = isi.mean();
    stats.cvIsi = isi.mean() > 0.0 ? isi.stddev() / isi.mean() : 0.0;
    return stats;
}

std::vector<std::vector<uint64_t>>
groupByNeuron(const std::vector<SpikeEvent> &events,
              size_t num_neurons)
{
    std::vector<std::vector<uint64_t>> trains(num_neurons);
    for (const SpikeEvent &e : events) {
        flexon_assert(e.neuron < num_neurons);
        trains[e.neuron].push_back(e.step);
    }
    for (auto &t : trains)
        std::sort(t.begin(), t.end());
    return trains;
}

std::vector<double>
populationRate(const std::vector<SpikeEvent> &events,
               size_t num_neurons, uint64_t steps, uint64_t bin_steps)
{
    flexon_assert(num_neurons > 0);
    flexon_assert(bin_steps > 0);
    const size_t bins =
        static_cast<size_t>((steps + bin_steps - 1) / bin_steps);
    std::vector<double> rate(bins, 0.0);
    for (const SpikeEvent &e : events) {
        const size_t b = static_cast<size_t>(e.step / bin_steps);
        if (b < bins)
            rate[b] += 1.0;
    }
    const double denom = static_cast<double>(num_neurons) *
                         static_cast<double>(bin_steps);
    for (double &r : rate)
        r /= denom;
    return rate;
}

double
fanoFactor(const std::vector<SpikeEvent> &events, uint64_t steps,
           uint64_t window_steps)
{
    flexon_assert(window_steps > 0);
    const size_t windows =
        static_cast<size_t>(steps / window_steps);
    if (windows < 2)
        return 0.0;
    std::vector<double> counts(windows, 0.0);
    for (const SpikeEvent &e : events) {
        const size_t w = static_cast<size_t>(e.step / window_steps);
        if (w < windows)
            counts[w] += 1.0;
    }
    Summary s;
    for (double c : counts)
        s.add(c);
    return s.mean() > 0.0 ? s.variance() / s.mean() : 0.0;
}

double
synchronyIndex(const std::vector<SpikeEvent> &events,
               size_t num_neurons, uint64_t steps,
               uint64_t bin_steps)
{
    flexon_assert(num_neurons > 0);
    flexon_assert(bin_steps > 0);
    const size_t bins = static_cast<size_t>(steps / bin_steps);
    if (bins < 2)
        return 0.0;

    // counts[neuron][bin] is too large for big runs; accumulate the
    // population trace and per-neuron variances streaming instead.
    std::vector<std::vector<double>> counts(
        num_neurons, std::vector<double>(bins, 0.0));
    for (const SpikeEvent &e : events) {
        const size_t b = static_cast<size_t>(e.step / bin_steps);
        if (b < bins)
            counts[e.neuron][b] += 1.0;
    }

    Summary population;
    std::vector<double> pop_trace(bins, 0.0);
    double mean_neuron_var = 0.0;
    size_t active = 0;
    for (size_t n = 0; n < num_neurons; ++n) {
        Summary per;
        for (size_t b = 0; b < bins; ++b) {
            per.add(counts[n][b]);
            pop_trace[b] += counts[n][b];
        }
        if (per.variance() > 0.0) {
            mean_neuron_var += per.variance();
            ++active;
        }
    }
    if (active == 0)
        return 0.0;
    mean_neuron_var /= static_cast<double>(active);

    for (size_t b = 0; b < bins; ++b)
        population.add(pop_trace[b] / static_cast<double>(num_neurons));
    return population.variance() / mean_neuron_var;
}

double
coincidence(const std::vector<uint64_t> &a,
            const std::vector<uint64_t> &b,
            uint64_t tolerance_steps)
{
    if (a.empty() && b.empty())
        return 1.0;
    if (a.empty() || b.empty())
        return 0.0;

    auto matches = [&](const std::vector<uint64_t> &from,
                       const std::vector<uint64_t> &in) {
        size_t hits = 0;
        for (uint64_t t : from) {
            const uint64_t lo =
                t >= tolerance_steps ? t - tolerance_steps : 0;
            auto it = std::lower_bound(in.begin(), in.end(), lo);
            if (it != in.end() && *it <= t + tolerance_steps)
                ++hits;
        }
        return static_cast<double>(hits) /
               static_cast<double>(from.size());
    };
    return 0.5 * (matches(a, b) + matches(b, a));
}

double
compareRuns(const std::vector<SpikeEvent> &a,
            const std::vector<SpikeEvent> &b, size_t num_neurons,
            uint64_t tolerance_steps)
{
    const auto trains_a = groupByNeuron(a, num_neurons);
    const auto trains_b = groupByNeuron(b, num_neurons);
    Summary per_neuron;
    for (size_t n = 0; n < num_neurons; ++n) {
        if (trains_a[n].empty() && trains_b[n].empty())
            continue;
        per_neuron.add(
            coincidence(trains_a[n], trains_b[n], tolerance_steps));
    }
    return per_neuron.count() ? per_neuron.mean() : 1.0;
}

} // namespace flexon
