#include "backend/codegen.hh"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "folded/neuron.hh"
#include "models/reference_neuron.hh"

namespace flexon {

CompiledNeuron
compile(const NeuronParams &params)
{
    CompiledNeuron out;
    out.params = params;
    out.config = FlexonConfig::fromParams(params);
    out.program = buildProgram(out.config);
    return out;
}

CompiledNeuron
compile(const BioParams &bio)
{
    return compile(normalize(bio));
}

CompiledNeuron
compileModel(ModelKind kind)
{
    return compile(defaultParams(kind));
}

std::string
describe(const CompiledNeuron &compiled)
{
    std::ostringstream oss;
    oss << "features: " << compiled.params.features.toString() << '\n';
    oss << "synapse types: " << compiled.config.numSynapseTypes
        << '\n';
    oss << "input scale (epsilon_m): "
        << compiled.config.inputScale.toDouble() << '\n';
    oss << "threshold: "
        << compiled.config.consts.threshold.toDouble() << '\n';

    oss << "MUL constants:";
    for (const Fix &c : compiled.program.mulConstants())
        oss << ' ' << c.toDouble();
    oss << '\n';
    oss << "ADD constants:";
    for (const Fix &c : compiled.program.addConstants())
        oss << ' ' << c.toDouble();
    oss << '\n';

    oss << "control signals (" << compiled.program.length()
        << ", latency " << compiled.program.latencyCycles()
        << " cycles):\n";
    oss << compiled.program.disassemble();
    return oss.str();
}

double
verifyCompiled(const CompiledNeuron &compiled, int steps,
               uint64_t seed)
{
    ReferenceNeuron ref(compiled.params);
    FoldedFlexonNeuron hw(compiled.config, compiled.program);
    Rng rng(seed);

    const NeuronParams &p = compiled.params;
    const bool cub = p.features.has(Feature::CUB);
    uint64_t ref_spikes = 0, hw_spikes = 0;
    std::vector<double> raw(p.numSynapseTypes, 0.0);
    std::vector<Fix> scaled(compiled.config.numSynapseTypes,
                            Fix::zero());

    for (int t = 0; t < steps; ++t) {
        for (auto &x : raw)
            x = 0.0;
        if (rng.bernoulli(0.2))
            raw[0] = cub ? rng.uniform(2.0, 6.0)
                         : rng.uniform(0.2, 0.7);

        if (cub) {
            double sum = 0.0;
            for (double x : raw)
                sum += x;
            scaled[0] = compiled.config.scaleWeight(sum);
        } else {
            for (size_t i = 0; i < scaled.size(); ++i)
                scaled[i] = compiled.config.scaleWeight(raw[i]);
        }

        ref_spikes += ref.step(std::span<const double>(raw));
        hw_spikes += hw.step(std::span<const Fix>(scaled));
    }

    if (ref_spikes == 0 && hw_spikes == 0)
        return 0.0;
    const double denom =
        static_cast<double>(std::max(ref_spikes, hw_spikes));
    return std::abs(static_cast<double>(ref_spikes) -
                    static_cast<double>(hw_spikes)) /
           denom;
}

} // namespace flexon
