/**
 * @file
 * Biological-unit neuron descriptions and the shift & scale
 * normalizer (Section IV-B1).
 *
 * SNN front-ends such as PyNN describe neurons in physical units
 * (millivolts, milliseconds). Flexon's hardware works in normalized
 * units with the resting voltage at 0 and the threshold at 1.0. This
 * module performs the normalization:
 *
 *     v_norm = (v - v_rest) / (v_thresh - v_rest)
 *
 * and converts time constants to per-step decay factors
 * (epsilon = dt / tau). Synaptic weights (in mV of instantaneous
 * depolarization, or conductance increments) pass through
 * weightScale().
 */

#ifndef FLEXON_BACKEND_BIO_PARAMS_HH
#define FLEXON_BACKEND_BIO_PARAMS_HH

#include <array>

#include "features/model_table.hh"
#include "features/params.hh"

namespace flexon {

/** Per-synapse-type description in biological units. */
struct BioSynapseType
{
    /** Synaptic (conductance) time constant, ms. */
    double tauSynMs = 5.0;
    /** Reversal potential, mV (used with REV). */
    double eRevMv = 0.0;
};

/**
 * A neuron description in biological units, as a PyNN-style
 * front-end would provide it.
 */
struct BioParams
{
    /** Which Table III model (fixes the feature combination). */
    ModelKind kind = ModelKind::LIF;

    double dtMs = 0.1;        ///< simulation time step
    double tauMMs = 10.0;     ///< membrane time constant
    double vRestMv = -65.0;   ///< resting potential
    double vThreshMv = -50.0; ///< threshold potential
    double vResetMv = -65.0;  ///< post-spike reset potential

    size_t numSynapseTypes = 2;
    std::array<BioSynapseType, maxSynapseTypes> syn{
        BioSynapseType{5.0, 0.0},    // excitatory (AMPA-like)
        BioSynapseType{10.0, -80.0}, // inhibitory (GABA-like)
    };

    /** Linear leak per step, mV (LID models). */
    double vLeakMvPerStep = 0.0;

    double deltaTMv = 2.0;    ///< EXI sharpness, mV
    double vCritMv = -55.0;   ///< QDI critical voltage, mV
    double vFiringMv = -40.0; ///< QDI/EXI firing voltage, mV

    double tauWMs = 100.0;    ///< adaptation time constant
    double aCoupling = 0.0;   ///< SBT coupling (normalized gain)
    double vWMv = -60.0;      ///< SBT oscillation level, mV
    double bMv = 0.5;         ///< spike-triggered jump, mV

    double tRefMs = 2.0;      ///< absolute refractory period
    double tauRMs = 2.0;      ///< relative refractory time constant
    double vRrMv = -75.0;     ///< RR reversal potential
    double vArMv = -80.0;     ///< RR adaptation reversal potential
    double qR = -0.2;         ///< RR jump (normalized conductance)
};

/**
 * Shift & scale a biological description into the normalized
 * NeuronParams consumed by every simulator component. fatal() if the
 * description is inconsistent (e.g. vReset != vRest, which the
 * Flexon reset path cannot express, or vThresh <= vRest).
 */
NeuronParams normalize(const BioParams &bio);

/**
 * The factor converting biological synaptic weights (mV) into
 * normalized weight units: 1 / (vThresh - vRest).
 */
double weightScale(const BioParams &bio);

} // namespace flexon

#endif // FLEXON_BACKEND_BIO_PARAMS_HH
