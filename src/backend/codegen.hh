/**
 * @file
 * The Flexon back-end code generator (Section VII-B): translates a
 * neuron-model description into the artifacts that program the
 * hardware — the MUX configuration and constant buffer of a baseline
 * Flexon, and the control-signal program of a spatially folded
 * Flexon.
 *
 * This is the integration point an SNN front-end (PyNN-style) would
 * call: describe the model, get back a deployable programming.
 */

#ifndef FLEXON_BACKEND_CODEGEN_HH
#define FLEXON_BACKEND_CODEGEN_HH

#include <string>

#include "backend/bio_params.hh"
#include "flexon/config.hh"
#include "folded/program.hh"

namespace flexon {

/** Everything needed to program either Flexon variant. */
struct CompiledNeuron
{
    /** Normalized parameters (for reference-model cross-checks). */
    NeuronParams params;
    /** Baseline Flexon programming (MUXes + constants). */
    FlexonConfig config;
    /** Spatially folded Flexon control-signal program. */
    MicrocodeProgram program;

    /** Control signals per neuron evaluation on folded Flexon. */
    size_t programLength() const { return program.length(); }
};

/** Compile normalized parameters. */
CompiledNeuron compile(const NeuronParams &params);

/** Compile a biological-unit description (shift & scale first). */
CompiledNeuron compile(const BioParams &bio);

/** Compile a Table III model with its default parameters. */
CompiledNeuron compileModel(ModelKind kind);

/**
 * Human-readable compilation report: the feature set, the constant
 * buffers and the disassembled control-signal program (Table V
 * style). Used by the tab05 benchmark and the quickstart example.
 */
std::string describe(const CompiledNeuron &compiled);

/**
 * Self-check: run the compiled program and the reference model side
 * by side on a pseudo-random input train and report the spike-count
 * divergence (fraction, 0 = identical counts). Used by tests and by
 * the tab03 coverage benchmark to demonstrate that every Table III
 * model is simulatable.
 */
double verifyCompiled(const CompiledNeuron &compiled, int steps,
                      uint64_t seed);

} // namespace flexon

#endif // FLEXON_BACKEND_CODEGEN_HH
