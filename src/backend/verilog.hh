/**
 * @file
 * Verilog emission for spatially folded Flexon.
 *
 * The paper's artifact is RTL ("we wrote Verilog code for Flexon and
 * synthesized it at register-transfer level"). This module closes the
 * loop: it lowers a compiled neuron into a synthesizable-style
 * Verilog module — the Table IV control signals packed into a
 * microcode ROM, the constant buffers as localparams, and the
 * two-stage folded datapath around one multiplier, one adder and one
 * exponentiation unit.
 *
 * The companion packControlWord()/unpackControlWord() pair defines
 * the ROM encoding and is round-trip tested in C++, so the encoding
 * the RTL consumes is the encoding the functional model verified.
 */

#ifndef FLEXON_BACKEND_VERILOG_HH
#define FLEXON_BACKEND_VERILOG_HH

#include <cstdint>
#include <string>

#include "backend/codegen.hh"
#include "folded/isa.hh"

namespace flexon {

/** Width of one packed control word, in bits. */
constexpr int controlWordBits = 19;

/**
 * Pack a control signal into the ROM encoding:
 *
 *   [18]    a        MUL operand select
 *   [17:14] ca       MUL constant index
 *   [13:12] b        ADD operand select
 *   [11:9]  cb       ADD constant index
 *   [8:7]   type     synapse-type select
 *   [6:3]   s        state-variable select
 *   [2]     exp
 *   [1]     s_wr
 *   [0]     v_acc
 */
uint32_t packControlWord(const MicroOp &op);

/** Inverse of packControlWord (comment is not representable). */
MicroOp unpackControlWord(uint32_t word);

/**
 * Emit a Verilog module implementing the compiled neuron on the
 * folded datapath.
 *
 * @param compiled the neuron programming (constants + microcode)
 * @param module_name Verilog module name
 */
std::string emitFoldedVerilog(const CompiledNeuron &compiled,
                              const std::string &module_name =
                                  "flexon_folded_neuron");

/**
 * Emit a self-checking Verilog testbench for the emitted module:
 * `steps` pseudo-random input vectors are run through the C++
 * functional model (the golden reference) and the expected
 * pre-reset membrane value and spike flag of every step are baked
 * into the testbench, which compares them against the DUT and
 * reports PASS/FAIL. Run with any Verilog simulator, e.g.:
 *
 *     flexon_rtl AdEx > adex.v
 *     flexon_rtl --testbench AdEx > adex_tb.v
 *     iverilog -o sim adex.v adex_tb.v && ./sim
 */
std::string emitFoldedTestbench(const CompiledNeuron &compiled,
                                int steps, uint64_t seed,
                                const std::string &module_name =
                                    "flexon_folded_neuron");

/**
 * Emit the fast_exp_q10_22 unit the neuron module instantiates: a
 * behavioural (simulation-only) implementation of the Schraudolph
 * approximation that reproduces the C++ fixedExp() bit for bit —
 * Verilog `real` is an IEEE-754 double, and $bitstoreal exposes the
 * exponent-splicing trick directly. A synthesis flow would replace
 * it with a shift-add implementation verified against the same
 * golden vectors.
 */
std::string emitFastExpVerilog();

} // namespace flexon

#endif // FLEXON_BACKEND_VERILOG_HH
