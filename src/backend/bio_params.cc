#include "backend/bio_params.hh"

#include "common/logging.hh"

namespace flexon {

double
weightScale(const BioParams &bio)
{
    return 1.0 / (bio.vThreshMv - bio.vRestMv);
}

NeuronParams
normalize(const BioParams &bio)
{
    if (bio.vThreshMv <= bio.vRestMv) {
        fatal("shift & scale requires vThresh (%f mV) > vRest (%f mV)",
              bio.vThreshMv, bio.vRestMv);
    }
    if (bio.vResetMv != bio.vRestMv) {
        fatal("Flexon resets the membrane to the resting voltage; "
              "vReset (%f mV) must equal vRest (%f mV)",
              bio.vResetMv, bio.vRestMv);
    }
    if (bio.dtMs <= 0.0 || bio.tauMMs <= 0.0)
        fatal("time step and membrane tau must be positive");

    const double scale = weightScale(bio);
    auto norm_v = [&](double mv) {
        return (mv - bio.vRestMv) * scale;
    };

    NeuronParams p;
    p.features = modelFeatures(bio.kind);
    p.numSynapseTypes = bio.numSynapseTypes;
    p.epsM = bio.dtMs / bio.tauMMs;
    p.vLeak = bio.vLeakMvPerStep * scale;

    for (size_t i = 0; i < bio.numSynapseTypes; ++i) {
        if (bio.syn[i].tauSynMs <= 0.0)
            fatal("synaptic tau must be positive (type %zu)", i);
        p.syn[i].epsG = bio.dtMs / bio.syn[i].tauSynMs;
        p.syn[i].vG = norm_v(bio.syn[i].eRevMv);
    }

    p.deltaT = bio.deltaTMv * scale;
    p.vCrit = norm_v(bio.vCritMv);
    p.vFiring = norm_v(bio.vFiringMv);

    p.epsW = bio.tauWMs > 0.0 ? bio.dtMs / bio.tauWMs : 0.0;
    p.a = bio.aCoupling;
    p.vW = norm_v(bio.vWMv);
    p.b = bio.bMv * scale;

    p.arSteps = static_cast<uint32_t>(bio.tRefMs / bio.dtMs + 0.5);
    p.epsR = bio.tauRMs > 0.0 ? bio.dtMs / bio.tauRMs : 0.0;
    p.vRR = norm_v(bio.vRrMv);
    p.vAR = norm_v(bio.vArMv);
    p.qR = bio.qR;

    const std::string err = p.validate();
    if (!err.empty())
        fatal("normalized parameters invalid: %s", err.c_str());
    return p;
}

} // namespace flexon
