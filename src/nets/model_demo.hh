/**
 * @file
 * Demo network for an arbitrary registered neuron model.
 *
 * The Table I benchmarks hard-wire their published model names; this
 * builder is the registry-first counterpart used by
 * `flexon_sim --model NAME`: it takes any ModelDescriptor — builtin
 * or loaded from a --model-file — and wraps it in a small
 * inhibition-stabilized random network with Poisson background, so a
 * newly registered model can be simulated end to end without writing
 * a generator.
 */

#ifndef FLEXON_NETS_MODEL_DEMO_HH
#define FLEXON_NETS_MODEL_DEMO_HH

#include <cstdint>

#include "nets/table1.hh"
#include "registry/registry.hh"

namespace flexon {

/**
 * Build a demo instance for a registered model: `neurons` cells in a
 * standard 80/20 excitatory/inhibitory split, 5% random
 * connectivity, gain-derived weights and a suprathreshold Poisson
 * background. Returned as a BenchmarkInstance whose synthesized spec
 * is named "model:<name>", so the whole benchmark tool chain
 * (sessions, probes, checkpoints) applies unchanged.
 */
BenchmarkInstance buildModelDemo(const ModelDescriptor &desc,
                                 size_t neurons, uint64_t seed);

} // namespace flexon

#endif // FLEXON_NETS_MODEL_DEMO_HH
