/**
 * @file
 * The Potjans–Diesmann cortical microcircuit as a scalable LLIF
 * scenario (Potjans & Diesmann 2014, "The cell-type specific
 * cortical microcircuit").
 *
 * The model is the standard full-density cortical column: eight
 * populations (excitatory and inhibitory pairs for layers 2/3, 4, 5
 * and 6, ~77k neurons and ~0.3G synapses at full scale), wired with
 * the published layer-to-layer connection probabilities as fixed
 * in-degrees, layer-specific external Poisson drive, and distance-
 * distributed delays (excitatory ~1.5 ms, inhibitory ~0.75 ms at the
 * 0.1 ms step).
 *
 * Unlike the synthetic Table I instance of the same name
 * (nets/table1.hh), this generator reproduces the population
 * *structure* — the anisotropic in-degree matrix is exactly what
 * makes spike delivery activity-sparse and shard-skippable — and
 * uses the LLIF neuron ({LID, CUB, AR}) so the dense, event-driven
 * and rate-adaptive engines can all run it bit-identically. It is
 * the driving scenario for the sparse-delivery work: at the model's
 * few-Hz rates most (target-shard x delay-bucket) streams are empty
 * on any given step.
 *
 * Scaling divides every population and every in-degree by `scale`;
 * per-synapse weights are derived from fixed per-neuron gains
 * divided by the scaled in-degree, so the recurrent drive (and thus
 * the firing regime) is approximately scale-invariant. `rateScale`
 * multiplies the external drive only — the knob the experiments use
 * to move the network between firing-rate regimes.
 */

#ifndef FLEXON_NETS_POTJANS_DIESMANN_HH
#define FLEXON_NETS_POTJANS_DIESMANN_HH

#include <array>
#include <cstdint>
#include <string>

#include "snn/network.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** Number of microcircuit populations (4 layers x E/I). */
constexpr size_t microcircuitPopulations = 8;

/** Population names, in model order (L2/3E ... L6I). */
const std::array<std::string, microcircuitPopulations> &
microcircuitPopulationNames();

/** Full-scale population sizes (77169 neurons total). */
const std::array<size_t, microcircuitPopulations> &
microcircuitFullSizes();

/** Tunables of a microcircuit instance. */
struct MicrocircuitOptions
{
    /** Divide populations and in-degrees by this factor (>= 1). */
    double scale = 20.0;
    /** Wiring and stimulus seed (deterministic). */
    uint64_t seed = 1;
    /**
     * Multiplies the external Poisson drive; 1.0 is the model's
     * background regime (a few Hz), larger values push the network
     * into higher-rate regimes.
     */
    double rateScale = 1.0;
    /**
     * Summed recurrent excitatory weight onto one neuron
     * (normalized threshold units); per-synapse weights divide it
     * by the scaled excitatory in-degree. Large values make the
     * downscaled column fluctuation-driven and bursty; small values
     * with compensating external drive (extGain) give the model's
     * asynchronous-irregular regime.
     */
    double gain = 4.0;
    /** Relative inhibitory synapse strength (the model's -4). */
    double inhibition = -4.0;
    /**
     * External kick weight relative to the recurrent excitatory
     * weight.
     */
    double extGain = 0.5;
};

/** A generated microcircuit. */
struct MicrocircuitInstance
{
    Network network;
    StimulusGenerator stimulus;
    /** Scaled population sizes, model order. */
    std::array<size_t, microcircuitPopulations> popSizes;
    /** Scaled in-degrees: inDegrees[target][source]. */
    std::array<std::array<size_t, microcircuitPopulations>,
               microcircuitPopulations>
        inDegrees;
    MicrocircuitOptions options;
};

/**
 * The scaled in-degree matrix ([target][source]) the generator
 * wires, derived from the published connection-probability map
 * (exposed separately so tests can assert the wiring against it).
 */
std::array<std::array<size_t, microcircuitPopulations>,
           microcircuitPopulations>
microcircuitInDegrees(double scale);

/** Build a microcircuit instance. */
MicrocircuitInstance
buildMicrocircuit(const MicrocircuitOptions &options = {});

/**
 * Build a microcircuit from a generative wiring spec
 * (Network::buildFromSpec) — the form the compressed and procedural
 * connectivity providers require.
 *
 * Structure (populations, in-degree matrix, weights, delays,
 * external drive) matches buildMicrocircuit, but the fixed
 * *in-degree* rule becomes a fixed *out-degree* projection per
 * (source, target) pair — K_out(s -> t) = K_in(t <- s) * Nt / Ns —
 * since procedural rows are generated source-major. Expected synapse
 * counts per projection are preserved; in-degrees become binomial
 * around the published values rather than exact.
 *
 * @param procedural when true, store no synapses — rows regenerate
 *        on demand (Network::rowFor)
 */
MicrocircuitInstance
buildMicrocircuitSpec(const MicrocircuitOptions &options,
                      bool procedural);

} // namespace flexon

#endif // FLEXON_NETS_POTJANS_DIESMANN_HH
