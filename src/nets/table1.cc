#include "nets/table1.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "registry/registry.hh"

namespace flexon {

const std::vector<BenchmarkSpec> &
table1Benchmarks()
{
    // Gains are tuned for sustained, inhibition-stabilized activity
    // (the absolute refractory periods cap the rate at 0.05
    // spikes/neuron/step); the Poisson background delivers
    // suprathreshold conductance kicks that keep the network out of
    // the silent state at any scale.
    static const std::vector<BenchmarkSpec> specs = {
        {"Brette", 2400, 2400000, "DLIF", SolverKind::RKF45,
         false, 5.0, -20.0, 0.010, 2.0},
        {"Brunel", 5000, 2500000, "IF_psc_alpha",
         SolverKind::Euler, false, 5.0, -20.0, 0.010, 2.0},
        {"Destexhe-LTS", 500, 20000, "AdEx",
         SolverKind::RKF45, false, 3.0, -18.0, 0.008, 1.5},
        {"Destexhe-UpDown", 2500, 100000, "AdEx",
         SolverKind::RKF45, false, 3.0, -18.0, 0.008, 1.5},
        {"Izhikevich", 10000, 10000000, "Izhikevich",
         SolverKind::Euler, true, 5.0, -20.0, 0.010, 2.0},
        {"Muller", 1728, 762000, "IF_cond_exp_gsfa_grr",
         SolverKind::RKF45, false, 5.0, -20.0, 0.012, 2.5},
        {"Nowotny", 1220, 202000, "Izhikevich",
         SolverKind::Euler, true, 5.0, -20.0, 0.010, 2.0},
        {"Potjans-Diesmann", 8000, 3000000, "DSRM0",
         SolverKind::Euler, false, 4.0, -16.0, 0.012, 2.5},
        {"Vogels", 10000, 1920000, "DLIF", SolverKind::RKF45,
         false, 5.0, -20.0, 0.010, 2.0},
        {"Vogels-Abbott", 4000, 320000, "DLIF",
         SolverKind::RKF45, false, 5.0, -20.0, 0.010, 2.0},
    };
    return specs;
}

const BenchmarkSpec &
findBenchmark(const std::string &name)
{
    for (const BenchmarkSpec &spec : table1Benchmarks())
        if (spec.name == name)
            return spec;
    fatal("unknown Table I benchmark '%s'", name.c_str());
}

NeuronParams
benchmarkParams(const BenchmarkSpec &spec)
{
    const ModelDescriptor *desc =
        ModelRegistry::instance().find(spec.model);
    if (desc == nullptr)
        fatal("benchmark '%s' references unregistered model '%s'",
              spec.name.c_str(), spec.model.c_str());
    NeuronParams params = desc->params;
    if (spec.name == "Destexhe-LTS" ||
        spec.name == "Destexhe-UpDown") {
        // Destexhe's thalamocortical AdEx networks distinguish AMPA,
        // GABA_A and GABA_B receptors: a third synapse type with a
        // slow inhibitory conductance.
        params.numSynapseTypes = 3;
        params.syn[2] = {0.005, -1.2}; // GABA_B: tau = 20 ms
    }
    if (spec.name == "Destexhe-UpDown") {
        // The Table I "variation of AdEx": stronger adaptation jump
        // and slower recovery for Up/Down state alternation.
        params.b = 0.15;
        params.epsW = 0.0005;
    }
    return params;
}

BenchmarkInstance
buildBenchmark(const BenchmarkSpec &spec, double scale, uint64_t seed)
{
    flexon_assert(scale >= 1.0);

    const auto neurons = std::max<size_t>(
        10, static_cast<size_t>(std::llround(spec.neurons / scale)));
    const size_t n_exc = (neurons * 4) / 5; // standard 80/20 split
    const size_t n_inh = neurons - n_exc;

    // Preserve the published connection density: p such that the
    // paper-scale network has spec.synapses connections.
    const double density =
        static_cast<double>(spec.synapses) /
        (static_cast<double>(spec.neurons) *
         static_cast<double>(spec.neurons));
    const double probability = std::min(1.0, density);

    const NeuronParams params = benchmarkParams(spec);

    Network net;
    const size_t exc =
        net.addPopulation(spec.name + "-exc", params, n_exc);
    const size_t inh =
        net.addPopulation(spec.name + "-inh", params, n_inh);

    // Derive per-synapse weights from the total gains and the scaled
    // fan-in, so the recurrent drive is scale-invariant.
    //
    // Sign convention: with REV (Equation 4) a synaptic weight is a
    // conductance increment and must be positive — the inhibitory
    // reversal voltage below rest supplies the sign. Without REV the
    // conductance enters v' directly, so inhibition needs a negative
    // weight.
    const double fanin_exc =
        std::max(1.0, probability * static_cast<double>(n_exc));
    const double fanin_inh =
        std::max(1.0, probability * static_cast<double>(n_inh));
    const double w_exc = spec.excGain / fanin_exc;
    const bool rev = params.features.has(Feature::REV);
    const double w_inh = rev ? -spec.inhGain / fanin_inh
                             : spec.inhGain / fanin_inh;

    Rng rng(seed);
    // Excitatory projections feed synapse type 0; inhibitory type 1.
    // Delays span 1..15 steps (up to 1.5 ms at the 0.1 ms step).
    net.connectRandom(exc, exc, probability, w_exc, 1, 15, 0, rng);
    net.connectRandom(exc, inh, probability, w_exc, 1, 15, 0, rng);
    net.connectRandom(inh, exc, probability, w_inh, 1, 15, 1, rng);
    net.connectRandom(inh, inh, probability, w_inh, 1, 15, 1, rng);
    net.finalize();

    StimulusGenerator stim(seed ^ 0x5f5f5f5fULL);
    stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), spec.stimulusRate,
        static_cast<float>(spec.stimulusWeight), 0));

    return {std::move(net), std::move(stim), spec, scale};
}

BenchmarkInstance
buildBenchmarkSpec(const BenchmarkSpec &spec, double growth,
                   uint64_t seed, bool procedural)
{
    flexon_assert(growth > 0.0);

    const auto neurons = std::max<size_t>(
        10,
        static_cast<size_t>(std::llround(spec.neurons * growth)));
    const size_t n_exc = (neurons * 4) / 5;
    const size_t n_inh = neurons - n_exc;

    const double density =
        static_cast<double>(spec.synapses) /
        (static_cast<double>(spec.neurons) *
         static_cast<double>(spec.neurons));
    const double probability = std::min(1.0, density);

    const NeuronParams params = benchmarkParams(spec);

    Network net;
    net.addPopulation(spec.name + "-exc", params, n_exc);
    net.addPopulation(spec.name + "-inh", params, n_inh);

    // Weight derivation as in buildBenchmark: gains over the
    // instance's fan-in, so the recurrent drive stays invariant
    // under growth.
    const double fanin_exc =
        std::max(1.0, probability * static_cast<double>(n_exc));
    const double fanin_inh =
        std::max(1.0, probability * static_cast<double>(n_inh));
    const double w_exc = spec.excGain / fanin_exc;
    const bool rev = params.features.has(Feature::REV);
    const double w_inh = rev ? -spec.inhGain / fanin_inh
                             : spec.inhGain / fanin_inh;

    ConnectivitySpec cs;
    cs.seed = seed;
    const auto project = [&](size_t srcBase, size_t srcCount,
                             size_t dstBase, size_t dstCount,
                             double weight, uint8_t type) {
        Projection p;
        p.rule = Projection::Rule::Bernoulli;
        p.srcBase = static_cast<uint32_t>(srcBase);
        p.srcCount = static_cast<uint32_t>(srcCount);
        p.dstBase = static_cast<uint32_t>(dstBase);
        p.dstCount = static_cast<uint32_t>(dstCount);
        p.probability = probability;
        p.weightMean = weight;
        p.delayMin = 1;
        p.delayMax = 15;
        p.type = type;
        cs.projections.push_back(p);
    };
    project(0, n_exc, 0, n_exc, w_exc, 0);
    project(0, n_exc, n_exc, n_inh, w_exc, 0);
    project(n_exc, n_inh, 0, n_exc, w_inh, 1);
    project(n_exc, n_inh, n_exc, n_inh, w_inh, 1);
    net.buildFromSpec(cs, procedural);

    StimulusGenerator stim(seed ^ 0x5f5f5f5fULL);
    stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), spec.stimulusRate,
        static_cast<float>(spec.stimulusWeight), 0));

    return {std::move(net), std::move(stim), spec, 1.0 / growth};
}

} // namespace flexon
