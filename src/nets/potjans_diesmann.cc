#include "nets/potjans_diesmann.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "features/model_table.hh"
#include "registry/registry.hh"

namespace flexon {

const std::array<std::string, microcircuitPopulations> &
microcircuitPopulationNames()
{
    static const std::array<std::string, microcircuitPopulations>
        names = {"L2/3E", "L2/3I", "L4E", "L4I",
                 "L5E",   "L5I",   "L6E", "L6I"};
    return names;
}

const std::array<size_t, microcircuitPopulations> &
microcircuitFullSizes()
{
    // Potjans & Diesmann 2014, Table 5 (77169 neurons).
    static const std::array<size_t, microcircuitPopulations> sizes = {
        20683, 5834, 21915, 5479, 4850, 1065, 14395, 2948};
    return sizes;
}

namespace {

/**
 * Published connection probabilities [target][source] (Table 5):
 * the probability that a given (source, target) pair is connected
 * by at least one synapse. Population order L2/3E ... L6I; even
 * indices are excitatory.
 */
constexpr double connProb[microcircuitPopulations]
                         [microcircuitPopulations] = {
    // from:  L2/3E  L2/3I  L4E    L4I    L5E    L5I     L6E    L6I
    /*L2/3E*/ {0.101, 0.169, 0.044, 0.082, 0.032, 0.0,    0.008, 0.0},
    /*L2/3I*/ {0.135, 0.137, 0.032, 0.052, 0.075, 0.0,    0.004, 0.0},
    /*L4E*/   {0.008, 0.006, 0.050, 0.135, 0.007, 0.0003, 0.045, 0.0},
    /*L4I*/   {0.069, 0.003, 0.079, 0.160, 0.003, 0.0,    0.106, 0.0},
    /*L5E*/   {0.100, 0.062, 0.051, 0.006, 0.083, 0.373,  0.020, 0.0},
    /*L5I*/   {0.055, 0.027, 0.026, 0.002, 0.060, 0.316,  0.009, 0.0},
    /*L6E*/   {0.016, 0.007, 0.021, 0.017, 0.057, 0.020,  0.040, 0.225},
    /*L6I*/   {0.036, 0.001, 0.003, 0.001, 0.028, 0.008,  0.066, 0.144},
};

/** External (thalamo-cortical + background) in-degrees, Table 5. */
constexpr size_t extInDegree[microcircuitPopulations] = {
    1600, 1500, 2100, 1900, 2000, 1900, 2900, 2100};

/** Background rate per external source: 8 Hz at the 0.1 ms step. */
constexpr double extRatePerStep = 8.0 * 1.0e-4;

/**
 * External kicks are folded kickFold-fold: the per-step Bernoulli
 * probability is mean/kickFold (capped) and the kick weight absorbs
 * the rest, preserving the mean drive while keeping the drive
 * fluctuation-driven — and the per-step stimulus touch set sparse,
 * which is what the event-driven engine's economics rely on.
 */
constexpr double kickFold = 16.0;

/** Delay ranges in steps: ~1.5 +- 0.75 ms exc, ~0.75 +- 0.375 ms
 *  inh at dt = 0.1 ms (uniform stand-in for the truncated
 *  normal). */
constexpr uint8_t excDelayMin = 8, excDelayMax = 23;
constexpr uint8_t inhDelayMin = 4, inhDelayMax = 11;

} // namespace

std::array<std::array<size_t, microcircuitPopulations>,
           microcircuitPopulations>
microcircuitInDegrees(double scale)
{
    flexon_assert(scale >= 1.0);
    const auto &sizes = microcircuitFullSizes();
    std::array<std::array<size_t, microcircuitPopulations>,
               microcircuitPopulations>
        k{};
    for (size_t t = 0; t < microcircuitPopulations; ++t) {
        for (size_t s = 0; s < microcircuitPopulations; ++s) {
            const double c = connProb[t][s];
            if (c <= 0.0) {
                k[t][s] = 0;
                continue;
            }
            // Invert the pair-connection probability into a total
            // synapse count (synapses are drawn with replacement, so
            // C = 1 - (1 - 1/(Ns*Nt))^K), then to a per-target
            // in-degree, then scale.
            const double ns = static_cast<double>(sizes[s]);
            const double nt = static_cast<double>(sizes[t]);
            const double total =
                std::log(1.0 - c) / std::log(1.0 - 1.0 / (ns * nt));
            const double perTarget = total / nt;
            k[t][s] = static_cast<size_t>(std::max(
                1.0, std::llround(perTarget / scale) * 1.0));
        }
    }
    return k;
}

MicrocircuitInstance
buildMicrocircuit(const MicrocircuitOptions &options)
{
    flexon_assert(options.scale >= 1.0);
    flexon_assert(options.rateScale > 0.0);

    MicrocircuitInstance inst;
    inst.options = options;
    inst.inDegrees = microcircuitInDegrees(options.scale);

    const auto &names = microcircuitPopulationNames();
    const auto &full = microcircuitFullSizes();
    const NeuronParams params =
        ModelRegistry::instance().find("LLIF")->params;

    std::array<size_t, microcircuitPopulations> pops{};
    for (size_t p = 0; p < microcircuitPopulations; ++p) {
        inst.popSizes[p] = std::max<size_t>(
            2, static_cast<size_t>(
                   std::llround(full[p] / options.scale)));
        pops[p] = inst.network.addPopulation(names[p], params,
                                             inst.popSizes[p]);
    }

    // Per-target excitatory weight from the gain (normalized LLIF
    // units: threshold 1, leak 0.002 per step) and the scaled
    // excitatory in-degree; inhibitory weight is options.inhibition
    // times that.
    Rng rng(options.seed);
    for (size_t t = 0; t < microcircuitPopulations; ++t) {
        size_t excIn = 0;
        for (size_t s = 0; s < microcircuitPopulations; s += 2)
            excIn += inst.inDegrees[t][s];
        const double wExc = options.gain /
                            static_cast<double>(
                                std::max<size_t>(1, excIn));
        const double wInh = options.inhibition * wExc;
        for (size_t s = 0; s < microcircuitPopulations; ++s) {
            const size_t fanin = inst.inDegrees[t][s];
            if (fanin == 0)
                continue;
            const bool excSrc = s % 2 == 0;
            // The model's one irregular weight: L4E -> L2/3E
            // synapses are twice the reference strength.
            double w = excSrc ? wExc : wInh;
            if (t == 0 && s == 2)
                w *= 2.0;
            inst.network.connectFixedFanin(
                pops[s], pops[t], fanin, w,
                excSrc ? excDelayMin : inhDelayMin,
                excSrc ? excDelayMax : inhDelayMax,
                excSrc ? 0 : 1, rng);
        }
    }
    inst.network.finalize();

    // Layer-specific external drive: kExt independent 8 Hz sources
    // per neuron, folded into one Bernoulli kick per neuron per step
    // with a mean-preserving weight (p capped below 1; the weight
    // absorbs the remainder). The kick strength uses the FULL-scale
    // excitatory weight — the external world does not shrink with
    // the column, so the absolute background drive (and with it the
    // firing regime) stays scale-invariant.
    const auto fullK = microcircuitInDegrees(1.0);
    inst.stimulus = StimulusGenerator(options.seed ^ 0x9e3779b9ULL);
    for (size_t t = 0; t < microcircuitPopulations; ++t) {
        size_t excIn = 0;
        for (size_t s = 0; s < microcircuitPopulations; s += 2)
            excIn += fullK[t][s];
        const double wExc = options.gain /
                            static_cast<double>(
                                std::max<size_t>(1, excIn));
        const double mean = static_cast<double>(extInDegree[t]) *
                            extRatePerStep * options.rateScale;
        const double p = std::min(0.95, mean / kickFold);
        const double weight = options.extGain * wExc * mean / p;
        const Population &pop =
            inst.network.population(pops[t]);
        inst.stimulus.addSource(StimulusSource::poisson(
            static_cast<uint32_t>(pop.base),
            static_cast<uint32_t>(pop.count), p,
            static_cast<float>(weight), 0));
    }
    return inst;
}

MicrocircuitInstance
buildMicrocircuitSpec(const MicrocircuitOptions &options,
                      bool procedural)
{
    flexon_assert(options.scale >= 1.0);
    flexon_assert(options.rateScale > 0.0);

    MicrocircuitInstance inst;
    inst.options = options;
    inst.inDegrees = microcircuitInDegrees(options.scale);

    const auto &names = microcircuitPopulationNames();
    const auto &full = microcircuitFullSizes();
    const NeuronParams params =
        ModelRegistry::instance().find("LLIF")->params;

    std::array<size_t, microcircuitPopulations> pops{};
    for (size_t p = 0; p < microcircuitPopulations; ++p) {
        inst.popSizes[p] = std::max<size_t>(
            2, static_cast<size_t>(
                   std::llround(full[p] / options.scale)));
        pops[p] = inst.network.addPopulation(names[p], params,
                                             inst.popSizes[p]);
    }

    // Same weight derivation as buildMicrocircuit; the fixed
    // in-degree K_in(t <- s) turns into a per-source fixed fanout
    // K_out(s -> t) = K_in * Nt / Ns, which preserves the expected
    // synapse count of every projection.
    ConnectivitySpec cs;
    cs.seed = options.seed;
    for (size_t t = 0; t < microcircuitPopulations; ++t) {
        size_t excIn = 0;
        for (size_t s = 0; s < microcircuitPopulations; s += 2)
            excIn += inst.inDegrees[t][s];
        const double wExc = options.gain /
                            static_cast<double>(
                                std::max<size_t>(1, excIn));
        const double wInh = options.inhibition * wExc;
        for (size_t s = 0; s < microcircuitPopulations; ++s) {
            const size_t fanin = inst.inDegrees[t][s];
            if (fanin == 0)
                continue;
            const bool excSrc = s % 2 == 0;
            double w = excSrc ? wExc : wInh;
            if (t == 0 && s == 2)
                w *= 2.0;
            const double ns =
                static_cast<double>(inst.popSizes[s]);
            const double nt =
                static_cast<double>(inst.popSizes[t]);
            const auto fanout = static_cast<uint32_t>(std::max<long long>(
                1, std::llround(static_cast<double>(fanin) * nt / ns)));
            const Population &srcPop =
                inst.network.population(pops[s]);
            const Population &dstPop =
                inst.network.population(pops[t]);
            Projection proj;
            proj.rule = Projection::Rule::FixedFanout;
            proj.srcBase = static_cast<uint32_t>(srcPop.base);
            proj.srcCount = static_cast<uint32_t>(srcPop.count);
            proj.dstBase = static_cast<uint32_t>(dstPop.base);
            proj.dstCount = static_cast<uint32_t>(dstPop.count);
            proj.fanout = fanout;
            proj.weightMean = w;
            proj.delayMin = excSrc ? excDelayMin : inhDelayMin;
            proj.delayMax = excSrc ? excDelayMax : inhDelayMax;
            proj.type = excSrc ? 0 : 1;
            cs.projections.push_back(proj);
        }
    }
    inst.network.buildFromSpec(cs, procedural);

    // External drive identical to buildMicrocircuit (full-scale
    // kick weights; see the notes there).
    const auto fullK = microcircuitInDegrees(1.0);
    inst.stimulus = StimulusGenerator(options.seed ^ 0x9e3779b9ULL);
    for (size_t t = 0; t < microcircuitPopulations; ++t) {
        size_t excIn = 0;
        for (size_t s = 0; s < microcircuitPopulations; s += 2)
            excIn += fullK[t][s];
        const double wExc = options.gain /
                            static_cast<double>(
                                std::max<size_t>(1, excIn));
        const double mean = static_cast<double>(extInDegree[t]) *
                            extRatePerStep * options.rateScale;
        const double p = std::min(0.95, mean / kickFold);
        const double weight = options.extGain * wExc * mean / p;
        const Population &pop =
            inst.network.population(pops[t]);
        inst.stimulus.addSource(StimulusSource::poisson(
            static_cast<uint32_t>(pop.base),
            static_cast<uint32_t>(pop.count), p,
            static_cast<float>(weight), 0));
    }
    return inst;
}

} // namespace flexon
