#include "nets/model_demo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexon {

BenchmarkInstance
buildModelDemo(const ModelDescriptor &desc, size_t neurons,
               uint64_t seed)
{
    neurons = std::max<size_t>(10, neurons);
    const size_t n_exc = (neurons * 4) / 5;
    const size_t n_inh = neurons - n_exc;
    const double probability = 0.05;

    // Synthesize a spec so the instance plugs into everything that
    // consumes Table I benchmarks. The gains mirror the Vogels rows
    // (sustained inhibition-stabilized activity).
    BenchmarkSpec spec;
    spec.name = "model:" + desc.name;
    spec.neurons = neurons;
    spec.synapses = static_cast<size_t>(
        probability * static_cast<double>(neurons) *
        static_cast<double>(neurons));
    spec.model = desc.name;
    spec.solver = SolverKind::Euler;
    spec.gpuNative = false;
    spec.excGain = 5.0;
    spec.inhGain = -20.0;
    spec.stimulusRate = 0.010;
    spec.stimulusWeight = 2.0;

    const NeuronParams &params = desc.params;

    Network net;
    const size_t exc =
        net.addPopulation(desc.name + "-exc", params, n_exc);
    const size_t inh =
        net.addPopulation(desc.name + "-inh", params, n_inh);

    // Weight signs follow the table1 convention: with REV the weight
    // is a conductance increment (always positive, the reversal
    // voltage carries the sign); without REV inhibition needs a
    // negative weight. Models with a single synapse type route
    // inhibition through type 0.
    const double fanin_exc =
        std::max(1.0, probability * static_cast<double>(n_exc));
    const double fanin_inh =
        std::max(1.0, probability * static_cast<double>(n_inh));
    const double w_exc = spec.excGain / fanin_exc;
    const bool rev = params.features.has(Feature::REV);
    const double w_inh = rev ? -spec.inhGain / fanin_inh
                             : spec.inhGain / fanin_inh;
    const uint8_t inhType = params.numSynapseTypes >= 2 ? 1 : 0;

    Rng rng(seed);
    net.connectRandom(exc, exc, probability, w_exc, 1, 15, 0, rng);
    net.connectRandom(exc, inh, probability, w_exc, 1, 15, 0, rng);
    net.connectRandom(inh, exc, probability, w_inh, 1, 15, inhType,
                      rng);
    net.connectRandom(inh, inh, probability, w_inh, 1, 15, inhType,
                      rng);
    net.finalize();

    StimulusGenerator stim(seed ^ 0x5f5f5f5fULL);
    stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), spec.stimulusRate,
        static_cast<float>(spec.stimulusWeight), 0));

    return {std::move(net), std::move(stim), spec, 1.0};
}

} // namespace flexon
