/**
 * @file
 * Generators for the ten SNN benchmarks of Table I, collected from
 * prior neuroscience publications. Each generator reproduces the
 * published structure — neuron count, synapse count, neuron model and
 * differential-equation solver — as a synthetic network with an
 * excitatory/inhibitory split and Poisson background stimulus.
 *
 * A scale factor shrinks the network for laptop-sized runs (neuron
 * count divides by `scale`; connection probability is preserved, so
 * synapses shrink by roughly scale^2). scale = 1 reproduces the
 * paper-size networks.
 */

#ifndef FLEXON_NETS_TABLE1_HH
#define FLEXON_NETS_TABLE1_HH

#include <string>
#include <vector>

#include "features/model_table.hh"
#include "snn/network.hh"
#include "snn/stimulus.hh"
#include "solvers/solver.hh"

namespace flexon {

/** Static description of one Table I benchmark. */
struct BenchmarkSpec
{
    std::string name;       ///< Table I row name
    size_t neurons;         ///< published neuron count
    size_t synapses;        ///< published synapse count
    /**
     * Neuron model (Table I column 3) as a ModelRegistry name. The
     * ten rows all reference builtin Table III models, but the field
     * is a registry key so file-registered models can reuse the
     * builders.
     */
    std::string model;
    SolverKind solver;      ///< Euler or RKF45 (Table I notes)
    bool gpuNative;         ///< collected from GeNN (GPU) per Table I
    /**
     * Total recurrent excitatory gain: the sum of a neuron's
     * incoming excitatory weights. Per-synapse weights are derived
     * as gain / fan-in, which keeps the network dynamics roughly
     * invariant under scaling.
     */
    double excGain;
    /** Total recurrent inhibitory gain (negative). */
    double inhGain;
    /** Poisson background probability per neuron per step. */
    double stimulusRate;
    /** Background stimulus weight per kick (conductance units). */
    double stimulusWeight;
};

/** The ten Table I benchmarks, in the paper's order. */
const std::vector<BenchmarkSpec> &table1Benchmarks();

/** Look up a benchmark by its Table I name; fatal() if unknown. */
const BenchmarkSpec &findBenchmark(const std::string &name);

/**
 * The neuron parameterization a benchmark uses: the model's defaults
 * plus per-benchmark overrides (the Destexhe SNNs model three
 * receptor types — AMPA, GABA_A, GABA_B — and the Up-Down variant
 * strengthens adaptation). Shared by the network builder and the
 * hardware timing models.
 */
NeuronParams benchmarkParams(const BenchmarkSpec &spec);

/** A generated benchmark instance. */
struct BenchmarkInstance
{
    Network network;
    StimulusGenerator stimulus;
    BenchmarkSpec spec;
    double scale;
};

/**
 * Build a scaled instance of a benchmark.
 *
 * @param scale divide neuron count by this factor (>= 1)
 * @param seed wiring and stimulus seed (deterministic)
 */
BenchmarkInstance buildBenchmark(const BenchmarkSpec &spec,
                                 double scale, uint64_t seed);

/**
 * Build a benchmark instance from a generative wiring spec
 * (Network::buildFromSpec) — the form the compressed and procedural
 * connectivity providers require, and the only way to instantiate
 * networks far beyond the materialized memory budget.
 *
 * Same structure as buildBenchmark (80/20 E/I split, published
 * density, gain-derived weights, delays 1..15), but parameterized by
 * a *growth* factor that multiplies the published neuron count
 * (growth = 1 / scale; synapses grow with roughly growth^2), and
 * wired as four Bernoulli projections drawn by the spec's
 * counter-based RNG rather than a shared sequential stream.
 *
 * @param growth multiply the published neuron count (> 0)
 * @param procedural when true, store no synapses at all — rows are
 *        regenerated on demand (Network::rowFor)
 */
BenchmarkInstance buildBenchmarkSpec(const BenchmarkSpec &spec,
                                     double growth, uint64_t seed,
                                     bool procedural);

} // namespace flexon

#endif // FLEXON_NETS_TABLE1_HH
