/**
 * @file
 * CACTI-lite: a simplified SRAM area/power model standing in for
 * CACTI 6.5 (Section VI-A). Area scales with capacity and port count;
 * power combines leakage (capacity-proportional) and dynamic access
 * energy (bits transferred per second).
 */

#ifndef FLEXON_HWMODEL_SRAM_HH
#define FLEXON_HWMODEL_SRAM_HH

#include <cstdint>

namespace flexon {

/** Configuration of one SRAM macro. */
struct SramConfig
{
    /** Storage capacity in bits. */
    uint64_t bits = 0;
    /** Read/write port count (>= 1); area grows ~27 % per extra port. */
    int ports = 1;
    /** Operating clock. */
    double clockHz = 250.0e6;
    /** Bits transferred per cycle (across all ports). */
    double accessBitsPerCycle = 0.0;
};

/** Resulting macro cost. */
struct SramCost
{
    double areaMm2 = 0.0;
    double powerW = 0.0;
};

/**
 * Evaluate the model. 45 nm coefficients: 0.435 um^2 per bit for a
 * single-port array including periphery, +26.5 % per extra port;
 * leakage 20 nW/bit-equivalent... see sram.cc for the calibrated
 * constants.
 */
SramCost sramCost(const SramConfig &config);

} // namespace flexon

#endif // FLEXON_HWMODEL_SRAM_HH
