#include "hwmodel/full_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flexon {

StepActivity
benchmarkActivity(const BenchmarkSpec &spec,
                  double rate_per_neuron_step)
{
    StepActivity a;
    a.neurons = spec.neurons;
    a.spikes = rate_per_neuron_step *
               static_cast<double>(spec.neurons);
    const double mean_fanout =
        static_cast<double>(spec.synapses) /
        static_cast<double>(spec.neurons);
    a.synapseEvents = a.spikes * mean_fanout;
    a.stimulusSpikes = spec.stimulusRate *
                       static_cast<double>(spec.neurons);
    return a;
}

double
synapseStageSeconds(const SynapseStageConfig &config,
                    double synapse_events)
{
    flexon_assert(config.lanes > 0);
    flexon_assert(config.clockHz > 0.0);
    flexon_assert(config.memoryBandwidth > 0.0);
    // Compute-bound: one event per lane per cycle. Memory-bound:
    // streaming the synapse records.
    const double compute_sec =
        synapse_events /
        (static_cast<double>(config.lanes) * config.clockHz);
    const double memory_sec = synapse_events *
                              config.bytesPerSynapse /
                              config.memoryBandwidth;
    return std::max(compute_sec, memory_sec);
}

double
stimulusStageSeconds(const StimulusStageConfig &config,
                     size_t neurons)
{
    flexon_assert(config.lanes > 0);
    // Every neuron's Bernoulli draw is evaluated once per step.
    return static_cast<double>(neurons) /
           (static_cast<double>(config.lanes) * config.clockHz);
}

FullSystemStep
fullSystemStep(const StepActivity &activity, double neuron_array_sec,
               const SynapseStageConfig &syn,
               const StimulusStageConfig &stim)
{
    FullSystemStep step;
    step.stimulusSec = stimulusStageSeconds(stim, activity.neurons);
    step.neuronSec = neuron_array_sec;
    step.synapseSec =
        synapseStageSeconds(syn, activity.synapseEvents +
                                     activity.stimulusSpikes);
    return step;
}

} // namespace flexon
