#include "hwmodel/timing.hh"

#include "common/logging.hh"

namespace flexon {

const UnitDelays &
tsmc45Delays()
{
    // Calibrated so the shipped designs close at the paper's clocks
    // (Flexon ~250 MHz, folded ~500 MHz) under the 20 % slack margin.
    static const UnitDelays delays = {
        .mul = 0.62,
        .add = 0.22,
        .exp = 0.85, // Schraudolph: affine transform + bit splice
        .mux = 0.06,
        .reg = 0.12,
        .cmp = 0.15,
    };
    return delays;
}

/** Delay of a naive (LUT + interpolation) exponential unit, ns. */
static constexpr double naiveExpDelayNs = 2.6;

double
pathDelayNs(const CriticalPath &path, const UnitDelays &d)
{
    double total = 0.0;
    for (const std::string &unit : path.units) {
        if (unit == "mul")
            total += d.mul;
        else if (unit == "add")
            total += d.add;
        else if (unit == "exp")
            total += d.exp;
        else if (unit == "exp_naive")
            total += naiveExpDelayNs;
        else if (unit == "mux")
            total += d.mux;
        else if (unit == "reg")
            total += d.reg;
        else if (unit == "cmp")
            total += d.cmp;
        else
            fatal("unknown unit '%s' in critical path", unit.c_str());
    }
    return total;
}

CriticalPath
flexonCriticalPath(bool fast_exp, bool exi_at_tree_top)
{
    // The two candidate longest paths through Figure 10:
    //  - the COBA + REV accumulation chain: three dependent
    //    multiplies (y update, alpha gain into g, reversal scale)
    //    plus two adder-tree levels;
    //  - the EXI chain: exponent multiply-add, the exp unit, then
    //    the adder tree — three levels if EXI enters at the bottom,
    //    one if the Section IV-B1 optimization places it at the top.
    const CriticalPath coba = {
        "COBA+REV accumulation",
        {"mux", "mul", "add", "mul", "add", "mul", "add", "add",
         "cmp", "reg"},
    };
    CriticalPath exi = {
        std::string("EXI (") + (fast_exp ? "fast exp" : "naive exp") +
            (exi_at_tree_top ? ", tree top)" : ", tree bottom)"),
        {"mux", "mul", "add", fast_exp ? "exp" : "exp_naive"},
    };
    const int tree_levels = exi_at_tree_top ? 1 : 3;
    for (int i = 0; i < tree_levels; ++i)
        exi.units.push_back("add");
    exi.units.push_back("cmp");
    exi.units.push_back("reg");

    const UnitDelays &d = tsmc45Delays();
    return pathDelayNs(coba, d) >= pathDelayNs(exi, d) ? coba : exi;
}

CriticalPath
foldedCriticalPath()
{
    // Stage 1 of the folded pipeline: operand muxes, the shared
    // multiplier and adder, the (fast) exponential bypassable on the
    // same path, and the tmp/pipeline latch.
    return {"folded stage 1", {"mux", "mul", "add", "exp", "reg"}};
}

double
maxClockHz(const CriticalPath &path, const UnitDelays &d,
           double slack_margin)
{
    const double period_ns = pathDelayNs(path, d) *
                             (1.0 + slack_margin);
    flexon_assert(period_ns > 0.0);
    return 1.0e9 / period_ns;
}

} // namespace flexon
