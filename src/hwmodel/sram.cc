#include "hwmodel/sram.hh"

#include "common/logging.hh"

namespace flexon {

namespace {

// Calibrated 45 nm coefficients (see DESIGN.md: chosen so the Table
// VI SRAM budgets of the two evaluation arrays are reproduced).
constexpr double bitAreaUm2 = 0.435;      // single-port, w/ periphery
constexpr double portAreaFactor = 0.265;  // per additional port
constexpr double leakagePerBitW = 18.0e-9;
constexpr double energyPerBitAccessJ = 3.7e-13;

} // namespace

SramCost
sramCost(const SramConfig &config)
{
    flexon_assert(config.ports >= 1);
    flexon_assert(config.clockHz > 0.0);

    SramCost cost;
    const double port_factor =
        1.0 + portAreaFactor * (config.ports - 1);
    cost.areaMm2 = static_cast<double>(config.bits) * bitAreaUm2 *
                   port_factor * 1e-6;

    const double leakage =
        static_cast<double>(config.bits) * leakagePerBitW;
    const double dynamic = config.accessBitsPerCycle *
                           config.clockHz * energyPerBitAccessJ;
    cost.powerW = leakage + dynamic;
    return cost;
}

} // namespace flexon
