/**
 * @file
 * Synthesis-style cost summaries for the evaluation arrays (Table
 * VI): the 12-neuron baseline Flexon array at 250 MHz and the
 * 72-neuron spatially folded Flexon array at 500 MHz, including the
 * state/constant SRAM sized for the largest supported network.
 */

#ifndef FLEXON_HWMODEL_ARRAY_COST_HH
#define FLEXON_HWMODEL_ARRAY_COST_HH

#include <cstddef>
#include <cstdint>

namespace flexon {

/** Area/power summary of one digital-neuron array (Table VI rows). */
struct ArrayCost
{
    const char *name;
    size_t lanes;
    double clockHz;

    double neuronAreaMm2;
    double sramAreaMm2;
    double totalAreaMm2;

    double neuronPowerW;
    double sramPowerW;
    double totalPowerW;

    /** Energy consumed by `cycles` of operation, in joules. */
    double
    energyJ(uint64_t cycles) const
    {
        return totalPowerW * static_cast<double>(cycles) / clockHz;
    }
};

/**
 * Shared array provisioning assumptions. Both arrays provision state
 * SRAM for 64 Ki neurons with the worst-case per-neuron state (all
 * features, two synapse types, 22-bit truncated membrane potential:
 * 222 bits).
 */
constexpr size_t arrayMaxNeurons = 65536;
constexpr size_t worstCaseStateBits = 222;

/** Table VI row 1: 12-neuron baseline Flexon array. */
ArrayCost flexonArrayCost(size_t lanes = 12,
                          double clock_hz = 250.0e6);

/** Table VI row 2: 72-neuron spatially folded Flexon array. */
ArrayCost foldedArrayCost(size_t lanes = 72,
                          double clock_hz = 500.0e6);

} // namespace flexon

#endif // FLEXON_HWMODEL_ARRAY_COST_HH
