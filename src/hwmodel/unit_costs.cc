#include "hwmodel/unit_costs.hh"

namespace flexon {

const UnitCosts &
tsmc45()
{
    // Areas in um^2; powers in mW at 250 MHz. The multiplier and the
    // exponentiation unit dominate, consistent with the paper's
    // observation that TrueNorth-style designs avoid multipliers
    // entirely (Section III-A).
    static const UnitCosts costs = {
        .mulArea = 4200.0,
        .addArea = 420.0,
        .expArea = 3800.0,
        .muxArea = 130.0,
        .regBitArea = 6.0,
        .counterArea = 250.0,
        .cmpArea = 300.0,

        .mulPower = 0.45,
        .addPower = 0.05,
        .expPower = 0.50,
        .muxPower = 0.008,
        .regBitPower = 0.0009,
        .counterPower = 0.02,
        .cmpPower = 0.03,

        .refClockHz = 250.0e6,
    };
    return costs;
}

UnitCosts
scaleToNode(const UnitCosts &base, double base_nm, double target_nm)
{
    const double ratio = target_nm / base_nm;
    const double area_scale = ratio * ratio;
    const double power_scale = ratio;

    UnitCosts scaled = base;
    scaled.mulArea *= area_scale;
    scaled.addArea *= area_scale;
    scaled.expArea *= area_scale;
    scaled.muxArea *= area_scale;
    scaled.regBitArea *= area_scale;
    scaled.counterArea *= area_scale;
    scaled.cmpArea *= area_scale;

    scaled.mulPower *= power_scale;
    scaled.addPower *= power_scale;
    scaled.expPower *= power_scale;
    scaled.muxPower *= power_scale;
    scaled.regBitPower *= power_scale;
    scaled.counterPower *= power_scale;
    scaled.cmpPower *= power_scale;
    return scaled;
}

} // namespace flexon
