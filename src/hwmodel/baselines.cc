#include "hwmodel/baselines.hh"

#include <string>

#include "common/logging.hh"
#include "plan/calibration.hh"

namespace flexon {

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::CpuXeon:
        return "CPU (Xeon E5-2630 v4, NEST)";
      case Platform::GpuTitanX:
        return "GPU (Titan X Pascal, GeNN)";
      default:
        panic("invalid platform %d", static_cast<int>(p));
    }
}

namespace {

/**
 * NEST/Xeon cost of one benchmark neuron-update relative to the
 * simplest Euler LIF network (Brunel). RKF45 benchmarks pay ~6x the
 * derivative evaluations of Euler; AdEx additionally pays for its
 * exponential. The ratios are scaled so the geomean Figure 13a CPU
 * ratio of the 12-neuron Flexon array lands at the paper's 87.4x.
 */
double
cpuComplexityFactor(const BenchmarkSpec &spec)
{
    if (spec.name == "Brette")
        return 41.0 / 12.0;
    if (spec.name == "Brunel")
        return 1.0;
    if (spec.name == "Destexhe-LTS")
        return 81.0 / 12.0;
    if (spec.name == "Destexhe-UpDown")
        return 81.0 / 12.0;
    if (spec.name == "Izhikevich")
        return 13.6 / 12.0;
    if (spec.name == "Muller")
        return 59.0 / 12.0;
    if (spec.name == "Nowotny")
        return 13.6 / 12.0;
    if (spec.name == "Potjans-Diesmann")
        return 7.6 / 12.0;
    if (spec.name == "Vogels")
        return 41.0 / 12.0;
    if (spec.name == "Vogels-Abbott")
        return 41.0 / 12.0;
    // Unlisted benchmark: estimate from the solver.
    return spec.solver == SolverKind::RKF45 ? 45.0 / 12.0 : 1.0;
}

/**
 * NEST on the paper's Xeon costs ~3x this host's calibrated dense
 * LLIF update for the Brunel anchor: NEST's ring-buffer bookkeeping
 * and virtual dispatch against our batch kernels. With the builtin
 * calibration (denseNsPerNeuron = 4.0) the product reproduces the
 * paper-anchored 12 ns Brunel figure exactly; a measured
 * calibration re-anchors the whole Figure 13 CPU column to the
 * actual machine.
 */
constexpr double hostToNestFactor = 3.0;

/** Calibration-anchored CPU cost in ns per neuron per step. */
double
cpuNsPerNeuron(const BenchmarkSpec &spec)
{
    const double base =
        plan::activeCalibration().model.denseNsPerNeuron;
    return base * hostToNestFactor * cpuComplexityFactor(spec);
}

/** GPU per-neuron throughput cost and fixed per-step launch cost. */
constexpr double gpuLaunchOverheadSec = 3.0e-6;
constexpr double gpuThroughputRatio = 14.0; // CPU-to-GPU per-neuron

} // namespace

double
neuronPhaseSeconds(Platform p, const BenchmarkSpec &spec,
                   size_t neurons)
{
    const double cpu_ns = cpuNsPerNeuron(spec);
    if (p == Platform::CpuXeon)
        return static_cast<double>(neurons) * cpu_ns * 1e-9;
    return gpuLaunchOverheadSec + static_cast<double>(neurons) *
                                      (cpu_ns / gpuThroughputRatio) *
                                      1e-9;
}

double
platformPowerW(Platform p)
{
    // Sustained package power under the SNN workloads (below TDP:
    // NEST is memory-bound on the Xeon; GeNN underutilizes the
    // Titan X on these network sizes).
    return p == Platform::CpuXeon ? 62.0 : 40.0;
}

PhaseShares
phaseShares(Platform p, const BenchmarkSpec &spec)
{
    const bool rkf = spec.solver == SolverKind::RKF45;
    if (p == Platform::CpuXeon) {
        // RKF45 spends most of the step in derivative evaluations;
        // Euler shifts the weight toward synapse accumulation.
        return rkf ? PhaseShares{0.02, 0.80, 0.18}
                   : PhaseShares{0.05, 0.45, 0.50};
    }
    // GPU: high-throughput neuron kernels leave synapse scatter
    // dominant; neuron computation still reaches ~1/3 (Figure 3).
    return rkf ? PhaseShares{0.05, 0.30, 0.65}
               : PhaseShares{0.07, 0.22, 0.71};
}

} // namespace flexon
