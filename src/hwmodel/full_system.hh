/**
 * @file
 * Full-system accelerator model: the paper accelerates only the
 * neuron-computation phase (Section II-C); this module models the
 * natural next step — adding a stimulus generator and a synapse
 * calculation stage next to the neuron array — to quantify the
 * end-to-end step time of a complete Flexon-based SNN accelerator.
 *
 * The synapse stage streams synapse records (target, weight, delay,
 * type) from off-chip memory and accumulates them into the per-type
 * input buffers: its throughput is the minimum of the accumulator
 * lanes and the memory bandwidth. The stimulus stage is an LFSR-based
 * Bernoulli source, one candidate neuron per lane per cycle.
 */

#ifndef FLEXON_HWMODEL_FULL_SYSTEM_HH
#define FLEXON_HWMODEL_FULL_SYSTEM_HH

#include <cstddef>

#include "nets/table1.hh"

namespace flexon {

/** Synapse-calculation stage parameters. */
struct SynapseStageConfig
{
    /** Parallel accumulate units (adders into the input buffer). */
    size_t lanes = 8;
    double clockHz = 500.0e6;
    /** Bytes per synapse record streamed from memory. */
    double bytesPerSynapse = 8.0;
    /** Off-chip memory bandwidth, bytes/s (one DDR4-3200 channel). */
    double memoryBandwidth = 25.6e9;
};

/** Stimulus-generation stage parameters. */
struct StimulusStageConfig
{
    /** Candidate neurons evaluated per cycle (LFSR + comparator). */
    size_t lanes = 16;
    double clockHz = 500.0e6;
};

/** Per-phase and total modelled time of one simulation step. */
struct FullSystemStep
{
    double stimulusSec = 0.0;
    double neuronSec = 0.0;
    double synapseSec = 0.0;

    double totalSec() const
    {
        return stimulusSec + neuronSec + synapseSec;
    }
};

/** Activity assumptions for one benchmark step. */
struct StepActivity
{
    size_t neurons = 0;
    /** Output spikes this step (rate x neurons). */
    double spikes = 0.0;
    /** Synapse events this step (spikes x mean fan-out). */
    double synapseEvents = 0.0;
    /** Stimulus spikes injected this step. */
    double stimulusSpikes = 0.0;
};

/** Derive typical per-step activity for a Table I benchmark. */
StepActivity benchmarkActivity(const BenchmarkSpec &spec,
                               double rate_per_neuron_step = 0.02);

/** Synapse-stage time for one step's events. */
double synapseStageSeconds(const SynapseStageConfig &config,
                           double synapse_events);

/** Stimulus-stage time for one step. */
double stimulusStageSeconds(const StimulusStageConfig &config,
                            size_t neurons);

/**
 * End-to-end step time of a complete accelerator: stimulus stage +
 * neuron array (caller supplies the array's seconds per step, from
 * FlexonArray/FoldedFlexonArray cyclesPerStep) + synapse stage.
 * The three stages run back to back within a time step (each phase
 * consumes the previous phase's output, Section II-C).
 */
FullSystemStep fullSystemStep(const StepActivity &activity,
                              double neuron_array_sec,
                              const SynapseStageConfig &syn = {},
                              const StimulusStageConfig &stim = {});

} // namespace flexon

#endif // FLEXON_HWMODEL_FULL_SYSTEM_HH
