#include "hwmodel/array_cost.hh"

#include "hwmodel/datapath_cost.hh"
#include "hwmodel/sram.hh"

namespace flexon {

ArrayCost
flexonArrayCost(size_t lanes, double clock_hz)
{
    const HwCost neuron = costOf(flexonUnits(), tsmc45(), clock_hz);

    // Single-cycle lanes read and write the full neuron state every
    // cycle: dual-ported state SRAM, full-state traffic per lane.
    SramConfig sram;
    sram.bits = static_cast<uint64_t>(arrayMaxNeurons) *
                worstCaseStateBits;
    sram.ports = 2;
    sram.clockHz = clock_hz;
    sram.accessBitsPerCycle =
        static_cast<double>(lanes) * 2.0 * worstCaseStateBits;
    const SramCost mem = sramCost(sram);

    ArrayCost cost;
    cost.name = "Flexon";
    cost.lanes = lanes;
    cost.clockHz = clock_hz;
    cost.neuronAreaMm2 = lanes * neuron.areaUm2 * 1e-6;
    cost.sramAreaMm2 = mem.areaMm2;
    cost.totalAreaMm2 = cost.neuronAreaMm2 + cost.sramAreaMm2;
    cost.neuronPowerW = lanes * neuron.powerMw * 1e-3;
    cost.sramPowerW = mem.powerW;
    cost.totalPowerW = cost.neuronPowerW + cost.sramPowerW;
    return cost;
}

ArrayCost
foldedArrayCost(size_t lanes, double clock_hz)
{
    const HwCost neuron = costOf(foldedUnits(), tsmc45(), clock_hz);

    // Folded lanes touch one 32-bit operand per control signal (plus
    // amortized write-back): single-ported banks, narrow traffic.
    SramConfig sram;
    sram.bits = static_cast<uint64_t>(arrayMaxNeurons) *
                worstCaseStateBits;
    sram.ports = 1;
    sram.clockHz = clock_hz;
    sram.accessBitsPerCycle = static_cast<double>(lanes) * 64.0;
    const SramCost mem = sramCost(sram);

    ArrayCost cost;
    cost.name = "Spatially Folded Flexon";
    cost.lanes = lanes;
    cost.clockHz = clock_hz;
    cost.neuronAreaMm2 = lanes * neuron.areaUm2 * 1e-6;
    cost.sramAreaMm2 = mem.areaMm2;
    cost.totalAreaMm2 = cost.neuronAreaMm2 + cost.sramAreaMm2;
    cost.neuronPowerW = lanes * neuron.powerMw * 1e-3;
    cost.sramPowerW = mem.powerW;
    cost.totalPowerW = cost.neuronPowerW + cost.sramPowerW;
    return cost;
}

} // namespace flexon
