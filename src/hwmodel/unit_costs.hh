/**
 * @file
 * Per-unit area and power coefficients for a 45 nm standard-cell
 * process.
 *
 * The paper synthesizes Flexon with Synopsys Design Compiler and the
 * TSMC 45 nm library; that tool chain is not available here, so this
 * module provides an additive gate-level cost model. The coefficients
 * are calibrated so that composing the Figure 10 / Figure 11 unit
 * inventories reproduces the paper's published totals (Table VI)
 * within tolerance; the per-feature and per-design *ratios* (Figure
 * 12) then follow structurally from the unit counts.
 */

#ifndef FLEXON_HWMODEL_UNIT_COSTS_HH
#define FLEXON_HWMODEL_UNIT_COSTS_HH

namespace flexon {

/**
 * Area (um^2) and dynamic power (mW, at refClockHz with typical
 * activity) per arithmetic/storage unit.
 */
struct UnitCosts
{
    // 32-bit fixed-point units.
    double mulArea;     ///< multiplier
    double addArea;     ///< adder / subtractor
    double expArea;     ///< Schraudolph-style exponentiation unit
    double muxArea;     ///< 32-bit 2:1 mux
    double regBitArea;  ///< one flip-flop bit
    double counterArea; ///< 8-bit refractory counter
    double cmpArea;     ///< 32-bit comparator

    double mulPower;
    double addPower;
    double expPower;
    double muxPower;
    double regBitPower;
    double counterPower;
    double cmpPower;

    /** Clock the power coefficients are quoted at. */
    double refClockHz;
};

/** The calibrated TSMC 45 nm coefficient set. */
const UnitCosts &tsmc45();

/**
 * First-order projection of a coefficient set to another process
 * node: area scales with the square of the feature-size ratio,
 * dynamic power (at fixed clock and voltage scaling trends) roughly
 * linearly. A planning aid, not a sign-off model — post-Dennard
 * leakage and wire effects are not captured.
 */
UnitCosts scaleToNode(const UnitCosts &base, double base_nm,
                      double target_nm);

} // namespace flexon

#endif // FLEXON_HWMODEL_UNIT_COSTS_HH
