#include "hwmodel/datapath_cost.hh"

#include "common/logging.hh"
#include "features/params.hh"
#include "folded/isa.hh"

namespace flexon {

UnitCounts &
UnitCounts::operator+=(const UnitCounts &o)
{
    mul += o.mul;
    add += o.add;
    exp += o.exp;
    mux += o.mux;
    regBits += o.regBits;
    counters += o.counters;
    cmps += o.cmps;
    return *this;
}

UnitCounts
operator+(UnitCounts a, const UnitCounts &b)
{
    a += b;
    return a;
}

UnitCounts
featureDatapathUnits(Feature f)
{
    // Inventories follow the Figure 9 data paths, with subtractions
    // (v_x - v) counted as adders and the on-fire jump adders
    // included in the feature that owns the jump.
    switch (f) {
      case Feature::CUB:
      case Feature::EXD:
      case Feature::LID:
        // Figure 9a: the shared decay/input path — one multiplier
        // (eps'_m * v or 1 * v), two adders (input fuse + leak), one
        // mode MUX.
        return {.mul = 1, .add = 2, .mux = 1};
      case Feature::COBE:
        // g = eps'_g * g + I.
        return {.mul = 1, .add = 1};
      case Feature::COBA:
        // Embeds COBE: y update, alpha gain, g update.
        return {.mul = 3, .add = 2};
      case Feature::REV:
        // (v_g - v) subtract, then scale the conductance.
        return {.mul = 1, .add = 1};
      case Feature::QDI:
        // tmp = eps_m*v + c, then tmp * v.
        return {.mul = 2, .add = 1};
      case Feature::EXI:
        // exponent argument, exp unit, contribution scale.
        return {.mul = 2, .add = 1, .exp = 1};
      case Feature::ADT:
        // w decay, plus the on-fire jump adder.
        return {.mul = 1, .add = 1};
      case Feature::SBT:
        // Coupling mul+add, w update mul+add, jump adder.
        return {.mul = 2, .add = 3};
      case Feature::RR:
        // w/r decays, two reversal subtracts, two scales, two jump
        // adders (split into the two sub data paths of Figure 9).
        return {.mul = 4, .add = 4};
      case Feature::AR:
        // Down-counter plus the gating compare.
        return {.counters = 1, .cmps = 1};
      default:
        panic("invalid feature %d", static_cast<int>(f));
    }
}

UnitCounts
flexonUnits(size_t synapse_types)
{
    flexon_assert(synapse_types >= 1 &&
                  synapse_types <= maxSynapseTypes);
    UnitCounts total;

    // Shared decay/input path (CUB + EXD + LID, Figure 9a).
    total += featureDatapathUnits(Feature::EXD);

    // One accumulation lane per synapse type: the COBA path (which
    // embeds COBE) plus the REV scaler.
    for (size_t i = 0; i < synapse_types; ++i) {
        total += featureDatapathUnits(Feature::COBA);
        total += featureDatapathUnits(Feature::REV);
    }

    // Spike initiation: QDI and EXI both present, MUX-selected.
    total += featureDatapathUnits(Feature::QDI);
    total += featureDatapathUnits(Feature::EXI);
    total.mux += 1;

    // Spike-triggered current (SBT embeds ADT) and RR.
    total += featureDatapathUnits(Feature::SBT);
    total += featureDatapathUnits(Feature::RR);

    // Refractory counter.
    total += featureDatapathUnits(Feature::AR);

    // v' adder tree: one adder per extra contribution (decay + per
    // type + initiation + w + r), firing comparator, feature-gating
    // latches (one 32-bit latch bank per data path) and output MUXes.
    const int contributions = 1 + static_cast<int>(synapse_types) + 3;
    total.add += contributions - 1;
    total.cmps += 1;
    total.regBits += 32 * (6 + static_cast<int>(synapse_types));
    total.mux += 6;
    return total;
}

UnitCounts
foldedUnits()
{
    UnitCounts total;
    // One multiplier, the MUL-ADD adder plus the v' accumulator.
    total.mul = 1;
    total.add = 2;
    total.exp = 1;
    // Operand-select MUXes (a, b, state variable read/write).
    total.mux = 4;
    // Constant buffers (Table IV: 16 MUL + 8 ADD slots, 32-bit),
    // tmp latch, two pipeline registers, v' register.
    total.regBits = 32 * (maxMulConstants + maxAddConstants) +
                    32 * 4;
    // Control decoder modelled as register-equivalent area.
    total.regBits += 160;
    // Refractory counter and firing comparator (stage 2).
    total.counters = 1;
    total.cmps = 2;
    return total;
}

HwCost
costOf(const UnitCounts &u, const UnitCosts &p, double clock_hz)
{
    HwCost cost;
    cost.areaUm2 = u.mul * p.mulArea + u.add * p.addArea +
                   u.exp * p.expArea + u.mux * p.muxArea +
                   u.regBits * p.regBitArea +
                   u.counters * p.counterArea + u.cmps * p.cmpArea;
    const double clock_scale = clock_hz / p.refClockHz;
    cost.powerMw = (u.mul * p.mulPower + u.add * p.addPower +
                    u.exp * p.expPower + u.mux * p.muxPower +
                    u.regBits * p.regBitPower +
                    u.counters * p.counterPower +
                    u.cmps * p.cmpPower) *
                   clock_scale;
    return cost;
}

HwCost
flexonNeuronCost()
{
    return costOf(flexonUnits(), tsmc45(), 250.0e6);
}

HwCost
flexonGatedCost(const FeatureSet &features, size_t synapse_types)
{
    flexon_assert(synapse_types >= 1 &&
                  synapse_types <= maxSynapseTypes);

    // Active unit inventory: only the enabled data paths toggle.
    UnitCounts active;
    active += featureDatapathUnits(Feature::EXD); // shared decay path

    const bool conductance = features.has(Feature::COBE) ||
                             features.has(Feature::COBA);
    for (size_t i = 0; i < synapse_types && conductance; ++i) {
        active += featureDatapathUnits(
            features.has(Feature::COBA) ? Feature::COBA
                                        : Feature::COBE);
        if (features.has(Feature::REV))
            active += featureDatapathUnits(Feature::REV);
    }
    if (features.has(Feature::QDI))
        active += featureDatapathUnits(Feature::QDI);
    if (features.has(Feature::EXI))
        active += featureDatapathUnits(Feature::EXI);
    if (features.has(Feature::SBT))
        active += featureDatapathUnits(Feature::SBT);
    else if (features.has(Feature::ADT))
        active += featureDatapathUnits(Feature::ADT);
    if (features.has(Feature::RR))
        active += featureDatapathUnits(Feature::RR);
    if (features.has(Feature::AR))
        active += featureDatapathUnits(Feature::AR);

    // Always-on shell: the v' adder tree, firing comparator, MUXes
    // and the gating latches themselves.
    const int contributions =
        1 + static_cast<int>(synapse_types) + 3;
    active.add += contributions - 1;
    active.cmps += 1;
    active.regBits += 32 * (6 + static_cast<int>(synapse_types));
    active.mux += 6;

    HwCost cost = costOf(active, tsmc45(), 250.0e6);
    // Area stays the full design's (gating does not remove silicon).
    cost.areaUm2 = flexonNeuronCost().areaUm2;
    return cost;
}

HwCost
foldedNeuronCost()
{
    return costOf(foldedUnits(), tsmc45(), 500.0e6);
}

} // namespace flexon
