/**
 * @file
 * Critical-path timing model: why the baseline Flexon closes at
 * 250 MHz while spatially folded Flexon reaches 500 MHz (Section
 * VI-A), and why the paper puts the EXI output at the top of the
 * adder tree (Section IV-B1, "Minimizing Critical Path Delay").
 *
 * The model sums per-unit propagation delays along a design's
 * longest combinational path and applies the paper's 20 % synthesis
 * slack margin.
 */

#ifndef FLEXON_HWMODEL_TIMING_HH
#define FLEXON_HWMODEL_TIMING_HH

#include <cstddef>
#include <string>
#include <vector>

namespace flexon {

/** Propagation delays of the datapath units at 45 nm, in ns. */
struct UnitDelays
{
    double mul;    ///< 32-bit multiplier
    double add;    ///< 32-bit adder
    double exp;    ///< fast-exp unit (Schraudolph shift/add network)
    double mux;    ///< 2:1 mux
    double reg;    ///< register clk-to-q + setup
    double cmp;    ///< comparator
};

/** The calibrated 45 nm delay set. */
const UnitDelays &tsmc45Delays();

/** A named combinational path: an ordered list of traversed units. */
struct CriticalPath
{
    std::string name;
    std::vector<std::string> units; ///< "mul", "add", "exp", ...
};

/** Total propagation delay of a path, in ns. */
double pathDelayNs(const CriticalPath &path, const UnitDelays &d);

/**
 * The binding (longest) path of baseline Flexon, under the two
 * Section IV-B1 optimizations: using the Schraudolph fast exp
 * instead of a naive LUT unit, and placing the EXI output at the
 * top level of the adder tree. With both enabled (the shipped
 * design) the COBA+REV accumulation chain binds instead of EXI.
 */
CriticalPath flexonCriticalPath(bool fast_exp = true,
                                bool exi_at_tree_top = true);

/** Stage 1 of the folded pipeline (MUL -> ADD -> EXP -> latch). */
CriticalPath foldedCriticalPath();

/**
 * Maximum clock frequency for a design with the given critical path,
 * applying the paper's 20 % timing-slack margin.
 */
double maxClockHz(const CriticalPath &path,
                  const UnitDelays &d = tsmc45Delays(),
                  double slack_margin = 0.20);

} // namespace flexon

#endif // FLEXON_HWMODEL_TIMING_HH
