/**
 * @file
 * Calibrated performance/energy models of the paper's baseline
 * general-purpose platforms: the Intel Xeon E5-2630 v4 running NEST
 * (or GeNN's CPU mode) and the NVIDIA Titan X (Pascal) running GeNN
 * (Section VI-A).
 *
 * The authors' testbed is not available, so the neuron-computation
 * phase of one simulation time step is modelled as
 *
 *     CPU: t = N * nsPerNeuron(benchmark)
 *     GPU: t = kernelLaunchOverhead + N * nsPerNeuron(benchmark)
 *
 * with per-benchmark coefficients calibrated so the geomean Figure 13
 * ratios of the paper are reproduced (87.4x / 8.19x for the 12-neuron
 * Flexon array, 122.5x / 9.83x for the 72-neuron folded array). The
 * per-benchmark spread follows the solver (RKF45 costs ~6x Euler in
 * derivative evaluations) and model complexity, mirroring Table I.
 *
 * The CPU column is anchored to the execution planner's calibration
 * (plan::activeCalibration): nsPerNeuron = measured dense LLIF
 * update cost x a NEST-overhead factor x a per-benchmark complexity
 * ratio. With the builtin calibration this reproduces the original
 * hand-coded table exactly; a measured calibration.json re-anchors
 * the Figure 13 comparison to the machine it actually ran on.
 */

#ifndef FLEXON_HWMODEL_BASELINES_HH
#define FLEXON_HWMODEL_BASELINES_HH

#include <cstddef>

#include "nets/table1.hh"

namespace flexon {

/** Which baseline platform. */
enum class Platform {
    CpuXeon,    ///< Intel Xeon E5-2630 v4 (12 cores, 2.2 GHz), NEST
    GpuTitanX,  ///< NVIDIA Titan X (Pascal), GeNN
};

/** Printable platform name. */
const char *platformName(Platform p);

/**
 * Modelled neuron-computation time for one simulation step of a
 * benchmark with `neurons` neurons, in seconds.
 */
double neuronPhaseSeconds(Platform p, const BenchmarkSpec &spec,
                          size_t neurons);

/** Sustained package power while simulating, in watts. */
double platformPowerW(Platform p);

/**
 * Modelled per-phase share of one full simulation step (Figure 3).
 * Shares sum to 1; the split depends on the solver and on whether
 * the benchmark is GPU-native (Table I).
 */
struct PhaseShares
{
    double stimulus;
    double neuron;
    double synapse;
};

PhaseShares phaseShares(Platform p, const BenchmarkSpec &spec);

} // namespace flexon

#endif // FLEXON_HWMODEL_BASELINES_HH
