/**
 * @file
 * Unit inventories of the per-feature data paths (Figure 9), the
 * baseline Flexon (Figure 10) and spatially folded Flexon (Figure
 * 11), and their composition into area/power costs — the Figure 12
 * reproduction.
 */

#ifndef FLEXON_HWMODEL_DATAPATH_COST_HH
#define FLEXON_HWMODEL_DATAPATH_COST_HH

#include <cstddef>

#include "features/feature.hh"
#include "hwmodel/unit_costs.hh"

namespace flexon {

/** Counts of hardware units in a circuit. */
struct UnitCounts
{
    int mul = 0;
    int add = 0;
    int exp = 0;
    int mux = 0;
    int regBits = 0;
    int counters = 0;
    int cmps = 0;

    UnitCounts &operator+=(const UnitCounts &o);
};

/** Element-wise sum of two inventories. */
UnitCounts operator+(UnitCounts a, const UnitCounts &b);

/** Area (um^2) and power (mW at the given clock) of a circuit. */
struct HwCost
{
    double areaUm2 = 0.0;
    double powerMw = 0.0;
};

/**
 * Unit inventory of one standalone per-feature data path (Figure 9).
 * The CUB/EXD/LID trio shares a single data path (Figure 9a), so all
 * three return the same inventory.
 */
UnitCounts featureDatapathUnits(Feature f);

/**
 * Unit inventory of the baseline Flexon (Figure 10): every
 * per-feature data path instantiated, with `synapse_types`
 * accumulation lanes, plus the v' adder tree, firing comparator,
 * MUXes and power-gating latches.
 */
UnitCounts flexonUnits(size_t synapse_types = 2);

/**
 * Unit inventory of spatially folded Flexon (Figure 11): one
 * multiplier, the MUL-ADD chain plus the v' accumulator, one
 * exponentiation unit, the constant buffers (16 MUL + 8 ADD slots),
 * tmp/pipeline latches and the control decoder.
 */
UnitCounts foldedUnits();

/** Compose an inventory into area/power at the given clock. */
HwCost costOf(const UnitCounts &units, const UnitCosts &process,
              double clock_hz);

/** Convenience: cost of one baseline Flexon neuron at 250 MHz. */
HwCost flexonNeuronCost();

/**
 * Dynamic power of one baseline Flexon neuron with the Figure 10
 * power gating applied: the latches in front of each per-feature
 * data path hold the inputs of *disabled* features stable, so only
 * the data paths a configuration enables toggle (Section IV-B).
 * Area is unchanged (the silicon is still there); power scales with
 * the enabled unit inventory plus the always-on v' tree, comparator
 * and gating latches.
 */
HwCost flexonGatedCost(const FeatureSet &features,
                       size_t synapse_types);

/** Convenience: cost of one folded Flexon neuron at 500 MHz. */
HwCost foldedNeuronCost();

} // namespace flexon

#endif // FLEXON_HWMODEL_DATAPATH_COST_HH
