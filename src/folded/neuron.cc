#include "folded/neuron.hh"

#include "common/debug.hh"
#include "common/logging.hh"
#include "fixed/fast_exp.hh"

namespace flexon {

FoldedFlexonNeuron::FoldedFlexonNeuron(const FlexonConfig &config)
    : FoldedFlexonNeuron(config, buildProgram(config))
{
}

FoldedFlexonNeuron::FoldedFlexonNeuron(const FlexonConfig &config,
                                       MicrocodeProgram program)
    : config_(config), program_(std::move(program))
{
    flexon_assert(config_.features.valid());
    const std::string err =
        program_.validate(config_.numSynapseTypes);
    if (!err.empty())
        fatal("invalid microcode program: %s", err.c_str());
}

Fix
FoldedFlexonNeuron::readState(StateVar s) const
{
    switch (s) {
      case StateVar::V: return state_.v;
      case StateVar::W: return state_.w;
      case StateVar::R: return state_.r;
      case StateVar::Y0: return state_.y[0];
      case StateVar::Y1: return state_.y[1];
      case StateVar::Y2: return state_.y[2];
      case StateVar::Y3: return state_.y[3];
      case StateVar::G0: return state_.g[0];
      case StateVar::G1: return state_.g[1];
      case StateVar::G2: return state_.g[2];
      case StateVar::G3: return state_.g[3];
      default: panic("invalid state var %d", static_cast<int>(s));
    }
}

void
FoldedFlexonNeuron::writeState(StateVar s, Fix value)
{
    switch (s) {
      case StateVar::V: state_.v = value; break;
      case StateVar::W: state_.w = value; break;
      case StateVar::R: state_.r = value; break;
      case StateVar::Y0: state_.y[0] = value; break;
      case StateVar::Y1: state_.y[1] = value; break;
      case StateVar::Y2: state_.y[2] = value; break;
      case StateVar::Y3: state_.y[3] = value; break;
      case StateVar::G0: state_.g[0] = value; break;
      case StateVar::G1: state_.g[1] = value; break;
      case StateVar::G2: state_.g[2] = value; break;
      case StateVar::G3: state_.g[3] = value; break;
      default: panic("invalid state var %d", static_cast<int>(s));
    }
}

bool
FoldedFlexonNeuron::step(std::span<const Fix> input)
{
    const FlexonConfig &c = config_;
    const FeatureSet &f = c.features;

    // Absolute refractory gating (Equation 7): the input bus reads
    // zero while the counter is non-zero.
    const bool blocked = f.has(Feature::AR) && state_.cnt > 0;
    if (f.has(Feature::AR) && state_.cnt > 0)
        --state_.cnt;

    const auto &mul_consts = program_.mulConstants();
    const auto &add_consts = program_.addConstants();

    // --- Pipeline stage 1: execute the control signals.
    Fix v_acc = Fix::zero();
    Fix tmp = Fix::zero();
    for (const MicroOp &op : program_.ops()) {
        const Fix mul_opnd = op.a == MulSel::Tmp
                                 ? tmp
                                 : mul_consts.at(op.ca);
        const Fix state_opnd = readState(op.s);

        Fix add_opnd;
        switch (op.b) {
          case AddSel::Zero:
            add_opnd = Fix::zero();
            break;
          case AddSel::Const:
            add_opnd = add_consts.at(op.cb);
            break;
          case AddSel::Input:
            add_opnd = (blocked || op.type >= input.size())
                           ? Fix::zero()
                           : input[op.type];
            break;
          case AddSel::Tmp:
            add_opnd = tmp;
            break;
          default:
            panic("invalid ADD select %d", static_cast<int>(op.b));
        }

        Fix out = mul_opnd * state_opnd + add_opnd;
        if (op.exp)
            out = fixedExp(out);
        tmp = out;
        if (op.sWr)
            writeState(op.s, out);
        if (op.vAcc)
            v_acc += out;
    }

    // The LID datapath floors v' at the resting voltage (Figure 4).
    if (f.has(Feature::LID) && v_acc < Fix::zero())
        v_acc = Fix::zero();

    // --- Pipeline stage 2: firing check and post-fire updates.
    preResetV_ = v_acc;
    const bool fired = v_acc > c.consts.threshold;
    FLEXON_DPRINTF(Folded, "v'=%f fired=%d", v_acc.toDouble(),
                   fired ? 1 : 0);
    if (fired) {
        v_acc = Fix::zero();
        if (f.has(Feature::ADT) || f.has(Feature::SBT) ||
            f.has(Feature::RR)) {
            state_.w -= c.consts.b;
        }
        if (f.has(Feature::RR))
            state_.r -= c.consts.qR;
        if (f.has(Feature::AR))
            state_.cnt = c.arSteps;
    }

    state_.v = c.truncateStorage ? truncateMembrane(v_acc) : v_acc;
    return fired;
}

} // namespace flexon
