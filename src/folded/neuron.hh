/**
 * @file
 * Spatially folded Flexon (Section V): a two-stage pipelined digital
 * neuron with one multiplier, one adder chain and one exponentiation
 * unit, driven by the Table IV control signals.
 *
 * Stage 1 executes the microcode program (one control signal per
 * cycle), updating state variables and accumulating v'. Stage 2
 * evaluates the firing condition and performs the post-fire state
 * adjustments. The model is cycle-accurate at the control-signal
 * granularity: per-neuron latency is length() + 1 cycles.
 */

#ifndef FLEXON_FOLDED_NEURON_HH
#define FLEXON_FOLDED_NEURON_HH

#include <span>

#include "flexon/config.hh"
#include "folded/program.hh"

namespace flexon {

/** One spatially folded Flexon digital neuron. */
class FoldedFlexonNeuron
{
  public:
    /**
     * @param config the hardware configuration (constants, features)
     * @param program microcode; defaults to buildProgram(config)
     */
    explicit FoldedFlexonNeuron(const FlexonConfig &config);
    FoldedFlexonNeuron(const FlexonConfig &config,
                       MicrocodeProgram program);

    /**
     * Evaluate one simulation time step by executing the microcode.
     *
     * @param input pre-scaled accumulated weights per synapse type
     * @return true iff the neuron fired an output spike
     */
    bool step(std::span<const Fix> input);

    /** Convenience overload for single-synapse-type configurations. */
    bool
    step(Fix input)
    {
        return step(std::span<const Fix>(&input, 1));
    }

    const FlexonState &state() const { return state_; }
    FlexonState &state() { return state_; }
    const FlexonConfig &config() const { return config_; }
    const MicrocodeProgram &program() const { return program_; }

    /** The v' value of the last step before any firing reset. */
    Fix preResetV() const { return preResetV_; }

    /** Overwrite the recorded pre-reset v (checkpoint restore). */
    void setPreResetV(Fix v) { preResetV_ = v; }

    /** Pipeline latency of one neuron evaluation, in cycles. */
    size_t latencyCycles() const { return program_.latencyCycles(); }

    void reset() { state_.reset(); }

  private:
    Fix readState(StateVar s) const;
    void writeState(StateVar s, Fix value);

    FlexonConfig config_;
    MicrocodeProgram program_;
    FlexonState state_;
    Fix preResetV_;
};

} // namespace flexon

#endif // FLEXON_FOLDED_NEURON_HH
