/**
 * @file
 * Microcode programs for spatially folded Flexon, and the program
 * builder that lowers a FlexonConfig to the Table V control-signal
 * sequences.
 *
 * The builder emits micro-operations in the library's canonical order
 * (the same order the baseline FlexonNeuron evaluates its datapaths),
 * which makes the two implementations bit-exact:
 *
 *   1. per synapse type: COBE/COBA conductance updates, then REV;
 *   2. spike-triggered current (SBT/ADT) or relative refractory (RR);
 *   3. membrane decay / spike initiation (LID, EXD+CUB, QDI, EXI) —
 *      last, because the EXI sequence reuses the v register for the
 *      exponentiation result (Table V).
 */

#ifndef FLEXON_FOLDED_PROGRAM_HH
#define FLEXON_FOLDED_PROGRAM_HH

#include <string>
#include <vector>

#include "fixed/fixed_point.hh"
#include "flexon/config.hh"
#include "folded/isa.hh"

namespace flexon {

/**
 * A complete microcode program: the control-signal sequence plus the
 * MUL/ADD constant-buffer images it addresses.
 */
class MicrocodeProgram
{
  public:
    const std::vector<MicroOp> &ops() const { return ops_; }
    const std::vector<Fix> &mulConstants() const { return mulConsts_; }
    const std::vector<Fix> &addConstants() const { return addConsts_; }

    /** Control signals per neuron evaluation. */
    size_t length() const { return ops_.size(); }

    /**
     * Per-neuron evaluation latency in cycles on the two-stage
     * pipeline: the ops occupy stage 1 back to back and the firing
     * stage adds one cycle (e.g. LIF: 1 signal -> 2 cycles; QDI:
     * 2 signals -> 3 cycles, as in Section V-B).
     */
    size_t latencyCycles() const { return ops_.size() + 1; }

    /** Human-readable listing in the style of Table V. */
    std::string disassemble() const;

    /**
     * Structural validation against the Table IV field widths and
     * this program's constant tables: every Const operand must
     * address an allocated slot, every state select must be legal,
     * and every input select must name a synapse type below
     * `num_synapse_types`. Returns an empty string when valid.
     */
    std::string validate(size_t num_synapse_types) const;

    /**
     * Allocate (or find) a MUL constant slot; fatal() when the 16-slot
     * buffer overflows (ca is a 4-bit field).
     */
    uint8_t mulConst(Fix value);

    /** Allocate (or find) an ADD constant slot (8 slots, cb[2:0]). */
    uint8_t addConst(Fix value);

    void append(MicroOp op) { ops_.push_back(std::move(op)); }

  private:
    std::vector<MicroOp> ops_;
    std::vector<Fix> mulConsts_;
    std::vector<Fix> addConsts_;
};

/**
 * Lower a Flexon hardware configuration to its microcode program
 * (the Table V control-signal sequences, composed per the enabled
 * features in canonical order).
 */
MicrocodeProgram buildProgram(const FlexonConfig &config);

} // namespace flexon

#endif // FLEXON_FOLDED_PROGRAM_HH
