#include "folded/program.hh"

#include <sstream>

#include "common/logging.hh"

namespace flexon {

const char *
stateVarName(StateVar s)
{
    switch (s) {
      case StateVar::V: return "v";
      case StateVar::W: return "w";
      case StateVar::R: return "r";
      case StateVar::Y0: return "y0";
      case StateVar::Y1: return "y1";
      case StateVar::Y2: return "y2";
      case StateVar::Y3: return "y3";
      case StateVar::G0: return "g0";
      case StateVar::G1: return "g1";
      case StateVar::G2: return "g2";
      case StateVar::G3: return "g3";
      default: panic("invalid state var %d", static_cast<int>(s));
    }
}

StateVar
gVar(size_t synapseType)
{
    flexon_assert(synapseType < maxSynapseTypes);
    return static_cast<StateVar>(static_cast<size_t>(StateVar::G0) +
                                 synapseType);
}

StateVar
yVar(size_t synapseType)
{
    flexon_assert(synapseType < maxSynapseTypes);
    return static_cast<StateVar>(static_cast<size_t>(StateVar::Y0) +
                                 synapseType);
}

uint8_t
MicrocodeProgram::mulConst(Fix value)
{
    for (size_t i = 0; i < mulConsts_.size(); ++i)
        if (mulConsts_[i] == value)
            return static_cast<uint8_t>(i);
    if (mulConsts_.size() >= maxMulConstants) {
        fatal("MUL constant buffer overflow: the folded datapath has "
              "%zu slots (ca[3:0])", maxMulConstants);
    }
    mulConsts_.push_back(value);
    return static_cast<uint8_t>(mulConsts_.size() - 1);
}

uint8_t
MicrocodeProgram::addConst(Fix value)
{
    for (size_t i = 0; i < addConsts_.size(); ++i)
        if (addConsts_[i] == value)
            return static_cast<uint8_t>(i);
    if (addConsts_.size() >= maxAddConstants) {
        fatal("ADD constant buffer overflow: the folded datapath has "
              "%zu slots (cb[2:0])", maxAddConstants);
    }
    addConsts_.push_back(value);
    return static_cast<uint8_t>(addConsts_.size() - 1);
}

std::string
MicrocodeProgram::disassemble() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < ops_.size(); ++i) {
        const MicroOp &op = ops_[i];
        oss << "  [" << i << "] a=" << static_cast<int>(op.a)
            << " ca=" << static_cast<int>(op.ca)
            << " b=" << static_cast<int>(op.b)
            << " cb=" << static_cast<int>(op.cb)
            << " type=" << static_cast<int>(op.type)
            << " s=" << stateVarName(op.s)
            << " exp=" << (op.exp ? 1 : 0)
            << " s_wr=" << (op.sWr ? 1 : 0)
            << " v_acc=" << (op.vAcc ? 1 : 0);
        if (!op.comment.empty())
            oss << "   ; " << op.comment;
        oss << '\n';
    }
    return oss.str();
}

std::string
MicrocodeProgram::validate(size_t num_synapse_types) const
{
    std::ostringstream oss;
    for (size_t i = 0; i < ops_.size(); ++i) {
        const MicroOp &op = ops_[i];
        if (op.a == MulSel::Const && op.ca >= mulConsts_.size()) {
            oss << "op " << i << ": MUL constant " << int(op.ca)
                << " not allocated";
            return oss.str();
        }
        if (op.b == AddSel::Const && op.cb >= addConsts_.size()) {
            oss << "op " << i << ": ADD constant " << int(op.cb)
                << " not allocated";
            return oss.str();
        }
        if (op.b == AddSel::Input && op.type >= num_synapse_types) {
            oss << "op " << i << ": input type " << int(op.type)
                << " out of range";
            return oss.str();
        }
        if (op.s >= StateVar::NumStateVars) {
            oss << "op " << i << ": invalid state select";
            return oss.str();
        }
    }
    return "";
}

namespace {

/** Convenience constructor for one control signal. */
MicroOp
makeOp(MulSel a, uint8_t ca, AddSel b, uint8_t cb, StateVar s,
       bool s_wr, bool v_acc, std::string comment, uint8_t type = 0,
       bool exp = false)
{
    MicroOp op;
    op.a = a;
    op.ca = ca;
    op.b = b;
    op.cb = cb;
    op.type = type;
    op.s = s;
    op.exp = exp;
    op.sWr = s_wr;
    op.vAcc = v_acc;
    op.comment = std::move(comment);
    return op;
}

} // namespace

MicrocodeProgram
buildProgram(const FlexonConfig &c)
{
    const FlexonConstants &k = c.consts;
    const FeatureSet &f = c.features;
    MicrocodeProgram p;

    const bool conductance =
        f.has(Feature::COBE) || f.has(Feature::COBA);
    const bool rev = f.has(Feature::REV);

    // --- 1. Input spike accumulation, per synapse type (Equation 4).
    for (size_t i = 0; i < c.numSynapseTypes && conductance; ++i) {
        const auto t = static_cast<uint8_t>(i);
        const uint8_t eps_gp = p.mulConst(k.epsGp[i]);
        if (f.has(Feature::COBA)) {
            p.append(makeOp(MulSel::Const, eps_gp, AddSel::Input, 0,
                            yVar(i), true, false,
                            "y = eps'_g*y + I", t));
            p.append(makeOp(MulSel::Const, p.mulConst(k.eEpsG[i]),
                            AddSel::Zero, 0, yVar(i), false, false,
                            "tmp = (e*eps_g)*y", t));
            p.append(makeOp(MulSel::Const, eps_gp, AddSel::Tmp, 0,
                            gVar(i), true, !rev,
                            rev ? "g = eps'_g*g + tmp"
                                : "g = eps'_g*g + tmp; v' += g", t));
        } else {
            p.append(makeOp(MulSel::Const, eps_gp, AddSel::Input, 0,
                            gVar(i), true, !rev,
                            rev ? "g = eps'_g*g + I"
                                : "g = eps'_g*g + I; v' += g", t));
        }
        if (rev) {
            p.append(makeOp(MulSel::Const, p.mulConst(k.minusOne),
                            AddSel::Const, p.addConst(k.vG[i]),
                            StateVar::V, false, false,
                            "tmp = -v + v_g", t));
            p.append(makeOp(MulSel::Tmp, 0, AddSel::Zero, 0, gVar(i),
                            false, true, "v' += tmp*g", t));
        }
    }

    // --- 2. Spike-triggered current (Equation 6) / relative
    // refractory (Equation 8).
    if (f.has(Feature::SBT)) {
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsMA),
                        AddSel::Const, p.addConst(k.negEpsMAvW),
                        StateVar::V, false, false,
                        "tmp = (eps_m*a)*v + (-eps_m*a*v_w)"));
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsWp),
                        AddSel::Tmp, 0, StateVar::W, true, true,
                        "w = eps'_w*w + tmp; v' += w"));
    } else if (f.has(Feature::ADT)) {
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsWp),
                        AddSel::Zero, 0, StateVar::W, true, true,
                        "w = eps'_w*w; v' += w"));
    } else if (f.has(Feature::RR)) {
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsWp),
                        AddSel::Zero, 0, StateVar::W, true, false,
                        "w = eps'_w*w"));
        p.append(makeOp(MulSel::Const, p.mulConst(k.minusOne),
                        AddSel::Const, p.addConst(k.vAR), StateVar::V,
                        false, false, "tmp = -v + v_ar"));
        p.append(makeOp(MulSel::Tmp, 0, AddSel::Zero, 0, StateVar::W,
                        false, true, "v' += tmp*w"));
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsRp),
                        AddSel::Zero, 0, StateVar::R, true, false,
                        "r = eps'_r*r"));
        p.append(makeOp(MulSel::Const, p.mulConst(k.minusOne),
                        AddSel::Const, p.addConst(k.vRR), StateVar::V,
                        false, false, "tmp = -v + v_rr"));
        p.append(makeOp(MulSel::Tmp, 0, AddSel::Zero, 0, StateVar::R,
                        false, true, "v' += tmp*r"));
    }

    // --- 3. Membrane decay / spike initiation, last (Equations 3/5).
    const bool cub = f.has(Feature::CUB);
    if (f.has(Feature::LID)) {
        p.append(makeOp(MulSel::Const, p.mulConst(k.one),
                        AddSel::Const, p.addConst(k.vLeakNeg),
                        StateVar::V, false, true,
                        "v' += v + (-V_leak)"));
        if (cub) {
            p.append(makeOp(MulSel::Const, p.mulConst(Fix::zero()),
                            AddSel::Input, 0, StateVar::V, false, true,
                            "v' += I"));
        }
    } else if (f.has(Feature::QDI)) {
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsM),
                        AddSel::Const, p.addConst(k.qdiAdd),
                        StateVar::V, false, false,
                        "tmp = eps_m*v + (1 - eps_m*v_c)"));
        p.append(makeOp(MulSel::Tmp, 0, AddSel::Zero, 0, StateVar::V,
                        false, true, "v' += tmp*v"));
        if (cub) {
            p.append(makeOp(MulSel::Const, p.mulConst(Fix::zero()),
                            AddSel::Input, 0, StateVar::V, false, true,
                            "v' += I"));
        }
    } else if (f.has(Feature::EXI)) {
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsMp),
                        AddSel::Zero, 0, StateVar::V, false, true,
                        "v' += eps'_m*v"));
        p.append(makeOp(MulSel::Const, p.mulConst(k.exiInvDt),
                        AddSel::Const, p.addConst(k.exiB), StateVar::V,
                        true, false,
                        "v = exp(v/Delta_T + (-theta/Delta_T))",
                        0, true));
        p.append(makeOp(MulSel::Const, p.mulConst(k.exiScale),
                        AddSel::Zero, 0, StateVar::V, false, true,
                        "v' += (Delta_T*eps_m)*v"));
        if (cub) {
            p.append(makeOp(MulSel::Const, p.mulConst(Fix::zero()),
                            AddSel::Input, 0, StateVar::V, false, true,
                            "v' += I"));
        }
    } else {
        // Plain EXD, with the CUB input fused (Table V "CUB + EXD").
        p.append(makeOp(MulSel::Const, p.mulConst(k.epsMp),
                        cub ? AddSel::Input : AddSel::Zero, 0,
                        StateVar::V, false, true,
                        cub ? "v' += eps'_m*v + I" : "v' += eps'_m*v"));
    }

    flexon_assert(!p.ops().empty());
    return p;
}

} // namespace flexon
