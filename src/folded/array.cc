#include "folded/array.hh"

#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

FoldedFlexonArray::FoldedFlexonArray(size_t width, double clockHz)
    : width_(width), clockHz_(clockHz)
{
    flexon_assert(width > 0);
    flexon_assert(clockHz > 0.0);
}

size_t
FoldedFlexonArray::addPopulation(const FlexonConfig &config,
                                 size_t count)
{
    flexon_assert(count > 0);
    MicrocodeProgram program = buildProgram(config);
    populations_.push_back(
        {neurons_.size(), count, config, program.length()});
    signalsPerStep_ +=
        static_cast<uint64_t>(count) * program.length();
    neurons_.reserve(neurons_.size() + count);
    for (size_t i = 0; i < count; ++i)
        neurons_.emplace_back(config, program);
    return populations_.size() - 1;
}

uint64_t
FoldedFlexonArray::cyclesPerStep() const
{
    // Stage 1 is occupied program-length cycles per neuron in a lane;
    // neurons pipeline back to back and the last drains one stage-2
    // cycle.
    uint64_t cycles = 0;
    for (const auto &pop : populations_) {
        const uint64_t rounds = (pop.count + width_ - 1) / width_;
        cycles += rounds * pop.programLength;
    }
    return cycles + (populations_.empty() ? 0 : 1);
}

void
FoldedFlexonArray::step(std::span<const Fix> input,
                        std::vector<uint8_t> &fired)
{
    flexon_assert(input.size() >= neurons_.size() * maxSynapseTypes);
    fired.resize(neurons_.size());
    uint8_t *const flags = fired.data();
    ThreadPool::global().parallelFor(
        neurons_.size(), hostThreads_,
        [&](size_t, size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) {
                flags[i] = neurons_[i].step(input.subspan(
                    i * maxSynapseTypes, maxSynapseTypes));
            }
        });
    // Every neuron executes its population's full program each step,
    // so the control-signal tally is a precomputed per-step constant
    // (also keeps the accounting off the parallel lanes).
    controlSignals_ += signalsPerStep_;
    cycles_ += cyclesPerStep();
}

const FoldedFlexonNeuron &
FoldedFlexonArray::neuron(size_t idx) const
{
    flexon_assert(idx < neurons_.size());
    return neurons_[idx];
}

FoldedFlexonNeuron &
FoldedFlexonArray::neuron(size_t idx)
{
    flexon_assert(idx < neurons_.size());
    return neurons_[idx];
}

void
FoldedFlexonArray::resetState()
{
    for (auto &n : neurons_)
        n.reset();
}

void
FoldedFlexonArray::saveState(std::ostream &os) const
{
    os << "folded-array " << neurons_.size() << ' ' << cycles_ << ' '
       << controlSignals_ << '\n';
    for (const FoldedFlexonNeuron &n : neurons_) {
        const FlexonState &s = n.state();
        os << s.v.raw();
        for (const Fix y : s.y)
            os << ' ' << y.raw();
        for (const Fix g : s.g)
            os << ' ' << g.raw();
        os << ' ' << s.w.raw() << ' ' << s.r.raw() << ' ' << s.cnt
           << ' ' << n.preResetV().raw() << '\n';
    }
}

void
FoldedFlexonArray::loadState(std::istream &is)
{
    std::string tag;
    size_t count = 0;
    is >> tag >> count >> cycles_ >> controlSignals_;
    if (tag != "folded-array" || !is || count != neurons_.size())
        fatal("checkpoint folded-array shape mismatch (expected %zu "
              "neurons)",
              neurons_.size());
    auto readFix = [&is]() {
        int64_t raw = 0;
        is >> raw;
        return Fix::fromRaw(raw);
    };
    for (FoldedFlexonNeuron &n : neurons_) {
        FlexonState &s = n.state();
        s.v = readFix();
        for (Fix &y : s.y)
            y = readFix();
        for (Fix &g : s.g)
            g = readFix();
        s.w = readFix();
        s.r = readFix();
        is >> s.cnt;
        n.setPreResetV(readFix());
    }
    if (!is)
        fatal("truncated folded-array state in checkpoint");
}

} // namespace flexon
