#include "folded/trace.hh"

#include <iomanip>

#include "common/logging.hh"
#include "fixed/fast_exp.hh"

namespace flexon {

namespace {

Fix
readVar(const FlexonState &s, StateVar var)
{
    switch (var) {
      case StateVar::V: return s.v;
      case StateVar::W: return s.w;
      case StateVar::R: return s.r;
      case StateVar::Y0: return s.y[0];
      case StateVar::Y1: return s.y[1];
      case StateVar::Y2: return s.y[2];
      case StateVar::Y3: return s.y[3];
      case StateVar::G0: return s.g[0];
      case StateVar::G1: return s.g[1];
      case StateVar::G2: return s.g[2];
      case StateVar::G3: return s.g[3];
      default: panic("invalid state var %d", static_cast<int>(var));
    }
}

void
writeVar(FlexonState &s, StateVar var, Fix value)
{
    switch (var) {
      case StateVar::V: s.v = value; break;
      case StateVar::W: s.w = value; break;
      case StateVar::R: s.r = value; break;
      case StateVar::Y0: s.y[0] = value; break;
      case StateVar::Y1: s.y[1] = value; break;
      case StateVar::Y2: s.y[2] = value; break;
      case StateVar::Y3: s.y[3] = value; break;
      case StateVar::G0: s.g[0] = value; break;
      case StateVar::G1: s.g[1] = value; break;
      case StateVar::G2: s.g[2] = value; break;
      case StateVar::G3: s.g[3] = value; break;
      default: panic("invalid state var %d", static_cast<int>(var));
    }
}

} // namespace

TracedFoldedNeuron::TracedFoldedNeuron(const FlexonConfig &config)
    : config_(config), program_(buildProgram(config)),
      shadow_(config)
{
}

bool
TracedFoldedNeuron::step(std::span<const Fix> input)
{
    const FeatureSet &f = config_.features;

    const bool blocked = f.has(Feature::AR) && state_.cnt > 0;
    if (f.has(Feature::AR) && state_.cnt > 0)
        --state_.cnt;

    Fix v_acc = Fix::zero();
    Fix tmp = Fix::zero();
    size_t index = 0;
    for (const MicroOp &op : program_.ops()) {
        TraceCycle cycle;
        cycle.step = step_;
        cycle.index = index++;
        cycle.op = op;
        cycle.mulOperand = op.a == MulSel::Tmp
                               ? tmp
                               : program_.mulConstants().at(op.ca);
        cycle.stateOperand = readVar(state_, op.s);
        switch (op.b) {
          case AddSel::Zero:
            cycle.addOperand = Fix::zero();
            break;
          case AddSel::Const:
            cycle.addOperand = program_.addConstants().at(op.cb);
            break;
          case AddSel::Input:
            cycle.addOperand = (blocked || op.type >= input.size())
                                   ? Fix::zero()
                                   : input[op.type];
            break;
          case AddSel::Tmp:
            cycle.addOperand = tmp;
            break;
          default:
            panic("invalid ADD select");
        }

        Fix out = cycle.mulOperand * cycle.stateOperand +
                  cycle.addOperand;
        if (op.exp)
            out = fixedExp(out);
        cycle.result = out;

        tmp = out;
        if (op.sWr)
            writeVar(state_, op.s, out);
        if (op.vAcc)
            v_acc += out;
        cycle.vAccAfter = v_acc;
        cycles_.push_back(cycle);
    }

    if (f.has(Feature::LID) && v_acc < Fix::zero())
        v_acc = Fix::zero();

    TraceFire fire;
    fire.step = step_;
    fire.preResetV = v_acc;
    fire.fired = v_acc > config_.consts.threshold;
    if (fire.fired) {
        v_acc = Fix::zero();
        if (f.has(Feature::ADT) || f.has(Feature::SBT) ||
            f.has(Feature::RR)) {
            state_.w -= config_.consts.b;
        }
        if (f.has(Feature::RR))
            state_.r -= config_.consts.qR;
        if (f.has(Feature::AR))
            state_.cnt = config_.arSteps;
    }
    state_.v = config_.truncateStorage ? truncateMembrane(v_acc)
                                       : v_acc;
    fires_.push_back(fire);
    ++step_;

    // Keep the untraced twin in lock step; any divergence is a bug in
    // one of the two interpreters.
    const bool shadow_fired = shadow_.step(input);
    flexon_assert(shadow_fired == fire.fired);
    flexon_assert(shadow_.state().v.raw() == state_.v.raw());

    return fire.fired;
}

void
TracedFoldedNeuron::clearTrace()
{
    cycles_.clear();
    fires_.clear();
}

void
TracedFoldedNeuron::write(std::ostream &os) const
{
    os << "# spatially folded Flexon execution trace\n";
    os << "# features: " << config_.features.toString() << '\n';
    size_t fire_idx = 0;
    uint64_t current_step = ~uint64_t{0};
    for (const TraceCycle &c : cycles_) {
        if (c.step != current_step) {
            current_step = c.step;
            os << "step " << current_step << ":\n";
        }
        os << "  [" << c.index << "] "
           << (c.op.a == MulSel::Tmp ? "tmp" : "const") << '('
           << std::setprecision(6) << c.mulOperand.toDouble()
           << ") * " << stateVarName(c.op.s) << '('
           << c.stateOperand.toDouble() << ") + "
           << c.addOperand.toDouble();
        if (c.op.exp)
            os << " |exp|";
        os << " -> " << c.result.toDouble();
        if (c.op.sWr)
            os << "  wr " << stateVarName(c.op.s);
        if (c.op.vAcc)
            os << "  v'=" << c.vAccAfter.toDouble();
        if (!c.op.comment.empty())
            os << "   ; " << c.op.comment;
        os << '\n';

        const bool last_of_step =
            c.index + 1 == program_.length();
        if (last_of_step && fire_idx < fires_.size()) {
            const TraceFire &f = fires_[fire_idx++];
            os << "  fire-stage: v'=" << f.preResetV.toDouble()
               << (f.fired ? "  SPIKE\n" : "\n");
        }
    }
}

} // namespace flexon
