/**
 * @file
 * A spatially folded Flexon array (Section VI-C): 72 folded lanes at
 * 500 MHz in the paper's evaluation configuration.
 *
 * Each lane is a two-stage pipelined folded Flexon; neurons are
 * time-multiplexed across lanes. For a population whose program has L
 * control signals, a lane spends L cycles of stage-1 occupancy per
 * neuron, and the final neuron drains one extra stage-2 cycle, so one
 * simulation time step costs sum over populations of
 * ceil(count / width) * L, plus 1.
 */

#ifndef FLEXON_FOLDED_ARRAY_HH
#define FLEXON_FOLDED_ARRAY_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "folded/neuron.hh"

namespace flexon {

/** A time-multiplexed array of spatially folded Flexon neurons. */
class FoldedFlexonArray
{
  public:
    /** The paper's evaluation configuration. */
    static constexpr size_t defaultWidth = 72;
    static constexpr double defaultClockHz = 500.0e6;

    explicit FoldedFlexonArray(size_t width = defaultWidth,
                               double clockHz = defaultClockHz);

    /**
     * Add `count` neurons sharing one configuration; the microcode is
     * built once and shared by the population.
     */
    size_t addPopulation(const FlexonConfig &config, size_t count);

    size_t numNeurons() const { return neurons_.size(); }
    size_t width() const { return width_; }
    double clockHz() const { return clockHz_; }

    /** Simulate one SNN time step (same contract as FlexonArray). */
    void step(std::span<const Fix> input, std::vector<uint8_t> &fired);

    /**
     * Host worker threads for the functional neuron loop; the
     * modelled hardware timing (cyclesPerStep) is unaffected.
     */
    void setHostThreads(size_t threads)
    {
        hostThreads_ = threads == 0 ? 1 : threads;
    }
    size_t hostThreads() const { return hostThreads_; }

    uint64_t cycles() const { return cycles_; }
    double seconds() const
    {
        return static_cast<double>(cycles_) / clockHz_;
    }

    /** Cycles one time step costs for the current occupancy. */
    uint64_t cyclesPerStep() const;

    /** Total control signals executed so far (for energy modelling). */
    uint64_t controlSignals() const { return controlSignals_; }

    const FoldedFlexonNeuron &neuron(size_t idx) const;
    FoldedFlexonNeuron &neuron(size_t idx);

    struct PopulationInfo
    {
        size_t base;
        size_t count;
        FlexonConfig config;
        size_t programLength;
    };
    const std::vector<PopulationInfo> &populations() const
    {
        return populations_;
    }

    void resetState();
    void resetCycles() { cycles_ = 0; controlSignals_ = 0; }

    /**
     * Checkpoint the array's dynamic state: cycle / control-signal
     * counters and every neuron's FlexonState, Fix values as raw
     * fixed-point integers (exact by construction). loadState
     * fatal()s when the recorded neuron count does not match.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    size_t width_;
    double clockHz_;
    size_t hostThreads_ = 1;
    std::vector<FoldedFlexonNeuron> neurons_;
    std::vector<PopulationInfo> populations_;
    uint64_t cycles_ = 0;
    uint64_t controlSignals_ = 0;
    /** Sum over populations of count * programLength. */
    uint64_t signalsPerStep_ = 0;
};

} // namespace flexon

#endif // FLEXON_FOLDED_ARRAY_HH
