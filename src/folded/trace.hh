/**
 * @file
 * Cycle-by-cycle execution tracing for spatially folded Flexon — the
 * functional-model analogue of dumping RTL waveforms. Each traced
 * cycle records the control signal, the resolved operands, and the
 * MUL-ADD(-EXP) result; the writer renders a testbench-style text
 * log for debugging microcode or cross-checking against a future
 * Verilog implementation.
 */

#ifndef FLEXON_FOLDED_TRACE_HH
#define FLEXON_FOLDED_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "fixed/fixed_point.hh"
#include "folded/neuron.hh"

namespace flexon {

/** One traced stage-1 cycle. */
struct TraceCycle
{
    uint64_t step;     ///< simulation time step
    size_t index;      ///< control-signal index within the step
    MicroOp op;        ///< the executed control signal
    Fix mulOperand;    ///< resolved MUL operand (constant or tmp)
    Fix stateOperand;  ///< the addressed state variable's value
    Fix addOperand;    ///< resolved ADD operand
    Fix result;        ///< out (post-EXP if op.exp)
    Fix vAccAfter;     ///< v' accumulator after this cycle
};

/** One traced stage-2 (firing) cycle. */
struct TraceFire
{
    uint64_t step;
    Fix preResetV;
    bool fired;
};

/**
 * Executes a folded Flexon neuron while recording every cycle.
 *
 * The traced execution re-implements the stage-1 semantics (it must:
 * the production interpreter does not pay for tracing); a self-check
 * against FoldedFlexonNeuron is part of the test suite.
 */
class TracedFoldedNeuron
{
  public:
    explicit TracedFoldedNeuron(const FlexonConfig &config);

    /** Step once, appending to the trace. @return fired */
    bool step(std::span<const Fix> input);

    bool
    step(Fix input)
    {
        return step(std::span<const Fix>(&input, 1));
    }

    const std::vector<TraceCycle> &cycles() const { return cycles_; }
    const std::vector<TraceFire> &fires() const { return fires_; }
    const FlexonState &state() const { return shadow_.state(); }

    /** Total stage-1 cycles executed (== cycles().size()). */
    uint64_t totalCycles() const { return cycles_.size(); }

    void clearTrace();

    /** Render the trace as a waveform-style text log. */
    void write(std::ostream &os) const;

  private:
    FlexonConfig config_;
    MicrocodeProgram program_;
    FoldedFlexonNeuron shadow_; ///< untraced twin for cross-checks
    FlexonState state_;
    uint64_t step_ = 0;
    std::vector<TraceCycle> cycles_;
    std::vector<TraceFire> fires_;
};

} // namespace flexon

#endif // FLEXON_FOLDED_TRACE_HH
