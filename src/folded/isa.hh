/**
 * @file
 * The control-signal ISA of spatially folded Flexon (Table IV).
 *
 * Each control signal (micro-operation) drives the folded datapath's
 * single multiplier, adder and exponentiation unit for one cycle:
 *
 *     out = (a ? tmp : mulConst[ca]) * state[s]
 *           + (b == 0 ? 0 : b == 1 ? addConst[cb]
 *                         : b == 2 ? input[type] : tmp)
 *     if (exp) out = fixedExp(out)
 *     tmp = out
 *     if (s_wr) state[s] = out
 *     if (v_acc) v' += out
 */

#ifndef FLEXON_FOLDED_ISA_HH
#define FLEXON_FOLDED_ISA_HH

#include <cstdint>
#include <string>

namespace flexon {

/** MUL operand select (signal `a`). */
enum class MulSel : uint8_t {
    Const = 0, ///< constant buffer entry ca[3:0]
    Tmp = 1,   ///< the tmp latch
};

/** ADD operand select (signal `b[1:0]`). */
enum class AddSel : uint8_t {
    Zero = 0,  ///< 0
    Const = 1, ///< constant buffer entry cb[2:0]
    Input = 2, ///< accumulated weight of synapse type `type`
    Tmp = 3,   ///< the tmp latch
};

/** State-variable select (signal `s[3:0]`). */
enum class StateVar : uint8_t {
    V = 0, ///< membrane potential
    W,     ///< spike-triggered current / adaptation conductance
    R,     ///< relative refractory conductance
    Y0, Y1, Y2, Y3, ///< alpha-function auxiliary variables
    G0, G1, G2, G3, ///< synaptic conductances
    NumStateVars
};

/** Number of addressable state variables (fits s[3:0]). */
constexpr size_t numStateVars =
    static_cast<size_t>(StateVar::NumStateVars);

/** Hardware constant-buffer capacities (Table IV field widths). */
constexpr size_t maxMulConstants = 16; ///< ca[3:0]
constexpr size_t maxAddConstants = 8;  ///< cb[2:0]

/** Printable state-variable name ("v", "w", "g0", ...). */
const char *stateVarName(StateVar s);

/** The i-th conductance / auxiliary state variable. */
StateVar gVar(size_t synapseType);
StateVar yVar(size_t synapseType);

/**
 * One control signal (Table IV). The `comment` field carries the
 * Table V style operation description for disassembly and has no
 * effect on execution.
 */
struct MicroOp
{
    MulSel a = MulSel::Const;
    uint8_t ca = 0;
    AddSel b = AddSel::Zero;
    uint8_t cb = 0;
    uint8_t type = 0;
    StateVar s = StateVar::V;
    bool exp = false;
    bool sWr = false;
    bool vAcc = false;
    std::string comment;
};

} // namespace flexon

#endif // FLEXON_FOLDED_ISA_HH
