#include "solvers/rkf45.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace flexon {

namespace {

// Fehlberg's classic Butcher tableau (4th/5th order embedded pair).
constexpr double A2 = 1.0 / 4.0;
constexpr double B21 = 1.0 / 4.0;

constexpr double A3 = 3.0 / 8.0;
constexpr double B31 = 3.0 / 32.0;
constexpr double B32 = 9.0 / 32.0;

constexpr double A4 = 12.0 / 13.0;
constexpr double B41 = 1932.0 / 2197.0;
constexpr double B42 = -7200.0 / 2197.0;
constexpr double B43 = 7296.0 / 2197.0;

constexpr double A5 = 1.0;
constexpr double B51 = 439.0 / 216.0;
constexpr double B52 = -8.0;
constexpr double B53 = 3680.0 / 513.0;
constexpr double B54 = -845.0 / 4104.0;

constexpr double A6 = 1.0 / 2.0;
constexpr double B61 = -8.0 / 27.0;
constexpr double B62 = 2.0;
constexpr double B63 = -3544.0 / 2565.0;
constexpr double B64 = 1859.0 / 4104.0;
constexpr double B65 = -11.0 / 40.0;

// 5th-order solution weights.
constexpr double C1 = 16.0 / 135.0;
constexpr double C3 = 6656.0 / 12825.0;
constexpr double C4 = 28561.0 / 56430.0;
constexpr double C5 = -9.0 / 50.0;
constexpr double C6 = 2.0 / 55.0;

// Error weights: difference between the 5th- and 4th-order solutions.
constexpr double E1 = C1 - 25.0 / 216.0;
constexpr double E3 = C3 - 1408.0 / 2565.0;
constexpr double E4 = C4 - 2197.0 / 4104.0;
constexpr double E5 = C5 - (-1.0 / 5.0);
constexpr double E6 = C6;

} // namespace

Rkf45Workspace::Rkf45Workspace(size_t dim)
    : dim_(dim), storage_(dim * 8, 0.0)
{
    flexon_assert(dim > 0);
}

std::span<double>
Rkf45Workspace::k(int i)
{
    flexon_assert(i >= 0 && i < 6);
    return {storage_.data() + static_cast<size_t>(i) * dim_, dim_};
}

std::span<double>
Rkf45Workspace::ytmp()
{
    return {storage_.data() + 6 * dim_, dim_};
}

std::span<double>
Rkf45Workspace::yerr()
{
    return {storage_.data() + 7 * dim_, dim_};
}

void
rkf45SingleStep(const OdeRhs &rhs, double t, double h,
                std::span<double> y, Rkf45Workspace &ws)
{
    const size_t n = y.size();
    flexon_assert(n == ws.dim());

    auto k1 = ws.k(0), k2 = ws.k(1), k3 = ws.k(2);
    auto k4 = ws.k(3), k5 = ws.k(4), k6 = ws.k(5);
    auto ytmp = ws.ytmp();
    auto yerr = ws.yerr();
    auto cy = [&](std::span<double> s) {
        return std::span<const double>(s.data(), s.size());
    };

    rhs(t, cy(y), k1);

    for (size_t i = 0; i < n; ++i)
        ytmp[i] = y[i] + h * B21 * k1[i];
    rhs(t + A2 * h, cy(ytmp), k2);

    for (size_t i = 0; i < n; ++i)
        ytmp[i] = y[i] + h * (B31 * k1[i] + B32 * k2[i]);
    rhs(t + A3 * h, cy(ytmp), k3);

    for (size_t i = 0; i < n; ++i)
        ytmp[i] = y[i] + h * (B41 * k1[i] + B42 * k2[i] + B43 * k3[i]);
    rhs(t + A4 * h, cy(ytmp), k4);

    for (size_t i = 0; i < n; ++i) {
        ytmp[i] = y[i] + h * (B51 * k1[i] + B52 * k2[i] + B53 * k3[i] +
                              B54 * k4[i]);
    }
    rhs(t + A5 * h, cy(ytmp), k5);

    for (size_t i = 0; i < n; ++i) {
        ytmp[i] = y[i] + h * (B61 * k1[i] + B62 * k2[i] + B63 * k3[i] +
                              B64 * k4[i] + B65 * k5[i]);
    }
    rhs(t + A6 * h, cy(ytmp), k6);

    for (size_t i = 0; i < n; ++i) {
        yerr[i] = h * (E1 * k1[i] + E3 * k3[i] + E4 * k4[i] +
                       E5 * k5[i] + E6 * k6[i]);
        y[i] += h * (C1 * k1[i] + C3 * k3[i] + C4 * k4[i] +
                     C5 * k5[i] + C6 * k6[i]);
    }
}

Rkf45Result
rkf45Integrate(const OdeRhs &rhs, double t0, double h,
               std::span<double> y, Rkf45Workspace &ws,
               const Rkf45Options &opts)
{
    flexon_assert(h > 0.0);
    Rkf45Result result;

    const double t_end = t0 + h;
    double t = t0;
    double step = h;
    std::vector<double> y_save(y.begin(), y.end());

    while (t < t_end) {
        if (result.stepsTaken + result.stepsRejected >= opts.maxSteps) {
            result.converged = false;
            return result;
        }
        step = std::min(step, t_end - t);
        std::copy(y.begin(), y.end(), y_save.begin());

        rkf45SingleStep(rhs, t, step, y, ws);
        result.rhsEvaluations += 6;

        double err = 0.0;
        auto yerr = ws.yerr();
        for (size_t i = 0; i < y.size(); ++i)
            err = std::max(err, std::abs(yerr[i]));

        const double tol = opts.tolerance * step / h;
        if (err <= tol || step <= opts.minStep) {
            // Accept.
            t += step;
            ++result.stepsTaken;
            if (err > 0.0) {
                const double factor =
                    opts.safety * std::pow(tol / err, 0.2);
                step *= std::clamp(factor, 0.2, 5.0);
            } else {
                step *= 5.0;
            }
            step = std::max(step, opts.minStep);
        } else {
            // Reject and retry with a smaller step.
            std::copy(y_save.begin(), y_save.end(), y.begin());
            ++result.stepsRejected;
            const double factor = opts.safety * std::pow(tol / err, 0.25);
            step *= std::clamp(factor, 0.1, 0.9);
            step = std::max(step, opts.minStep);
        }
    }
    return result;
}

} // namespace flexon
