/**
 * @file
 * Runge-Kutta-Fehlberg 4(5) integration with adaptive step control
 * (Fehlberg, NASA TR R-315, 1969) — the "RKF45" solver of Table I.
 */

#ifndef FLEXON_SOLVERS_RKF45_HH
#define FLEXON_SOLVERS_RKF45_HH

#include <cstdint>
#include <span>

#include "solvers/solver.hh"

namespace flexon {

/** Tuning and reporting for the adaptive RKF45 driver. */
struct Rkf45Options
{
    /** Absolute local error tolerance per unit step. */
    double tolerance = 1e-7;
    /** Smallest step the driver may take (guards stiff corners). */
    double minStep = 1e-6;
    /** Safety factor applied to the optimal-step estimate. */
    double safety = 0.9;
    /** Hard cap on internal sub-steps per integrate() call. */
    uint32_t maxSteps = 10000;
};

/** Result of one integrate() call. */
struct Rkf45Result
{
    /** Internal sub-steps accepted. */
    uint32_t stepsTaken = 0;
    /** Sub-steps rejected (error too large, step retried). */
    uint32_t stepsRejected = 0;
    /** Derivative (RHS) evaluations — the dominant cost metric. */
    uint32_t rhsEvaluations = 0;
    /** False if maxSteps was exhausted before reaching the end time. */
    bool converged = true;
};

/**
 * Scratch buffers for an RKF45 system of a fixed dimension; reusable
 * across calls to avoid per-step allocation.
 */
class Rkf45Workspace
{
  public:
    explicit Rkf45Workspace(size_t dim);

    size_t dim() const { return dim_; }
    std::span<double> k(int i);
    std::span<double> ytmp();
    std::span<double> yerr();

  private:
    size_t dim_;
    std::vector<double> storage_;
};

/**
 * Integrate y' = rhs(t, y) from t0 to t0 + h with adaptive internal
 * sub-stepping. On return, y holds the state at t0 + h.
 */
Rkf45Result rkf45Integrate(const OdeRhs &rhs, double t0, double h,
                           std::span<double> y, Rkf45Workspace &ws,
                           const Rkf45Options &opts = {});

/**
 * Take one fixed RKF45 step of size h (no adaptivity); fills y_err
 * with the embedded 4th/5th-order error estimate. Exposed for tests.
 */
void rkf45SingleStep(const OdeRhs &rhs, double t, double h,
                     std::span<double> y, Rkf45Workspace &ws);

} // namespace flexon

#endif // FLEXON_SOLVERS_RKF45_HH
