/**
 * @file
 * Common ODE-solver interface.
 *
 * The Table I SNNs integrate their neuron ODEs either with the Euler
 * method (cheap, fixed step) or with the adaptive Runge-Kutta-Fehlberg
 * 4(5) method (accurate, more derivative evaluations per step). The
 * reference simulator exposes both so that the Figure 3 latency
 * breakdown reflects the per-benchmark solver choice.
 */

#ifndef FLEXON_SOLVERS_SOLVER_HH
#define FLEXON_SOLVERS_SOLVER_HH

#include <cstddef>
#include <functional>
#include <span>

namespace flexon {

/** Which differential-equation solver a benchmark uses (Table I). */
enum class SolverKind {
    Euler,
    RKF45,
};

/** Printable solver name. */
inline const char *
solverName(SolverKind kind)
{
    return kind == SolverKind::Euler ? "Euler" : "RKF45";
}

/**
 * Right-hand side of an ODE system: given time t and state y, fill
 * dydt with the derivatives. Systems are small (a handful of state
 * variables per neuron), so a std::function is acceptable for the
 * reference path; hot paths use the templated free functions below.
 */
using OdeRhs = std::function<
    void(double t, std::span<const double> y, std::span<double> dydt)>;

} // namespace flexon

#endif // FLEXON_SOLVERS_SOLVER_HH
