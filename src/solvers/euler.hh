/**
 * @file
 * Forward Euler integration.
 */

#ifndef FLEXON_SOLVERS_EULER_HH
#define FLEXON_SOLVERS_EULER_HH

#include <span>

#include "common/logging.hh"

namespace flexon {

/**
 * Advance the state y by one forward-Euler step of size h.
 *
 * @param rhs callable (t, y, dydt) computing derivatives
 * @param t current time
 * @param h step size
 * @param y state vector, updated in place
 * @param scratch workspace of the same size as y
 */
template <typename Rhs>
void
eulerStep(Rhs &&rhs, double t, double h, std::span<double> y,
          std::span<double> scratch)
{
    flexon_assert(scratch.size() >= y.size());
    rhs(t, std::span<const double>(y.data(), y.size()),
        scratch.subspan(0, y.size()));
    for (size_t i = 0; i < y.size(); ++i)
        y[i] += h * scratch[i];
}

} // namespace flexon

#endif // FLEXON_SOLVERS_EULER_HH
