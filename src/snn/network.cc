#include "snn/network.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexon {

size_t
Network::addPopulation(std::string name, const NeuronParams &params,
                       size_t count)
{
    flexon_assert(!finalized_);
    flexon_assert(count > 0);
    const std::string err = params.validate();
    if (!err.empty()) {
        fatal("population '%s' has invalid parameters: %s",
              name.c_str(), err.c_str());
    }
    Population pop;
    pop.name = std::move(name);
    pop.params = params;
    pop.base = numNeurons_;
    pop.count = count;
    populations_.push_back(std::move(pop));
    numNeurons_ += count;
    return populations_.size() - 1;
}

namespace {

/** Draw a weight around the mean with 10 % sigma, preserving sign. */
float
drawWeight(double mean, Rng &rng)
{
    const double w = rng.normal(mean, 0.1 * std::abs(mean));
    if (mean >= 0.0)
        return static_cast<float>(std::max(0.0, w));
    return static_cast<float>(std::min(0.0, w));
}

uint8_t
drawDelay(uint8_t lo, uint8_t hi, Rng &rng)
{
    if (hi <= lo)
        return lo;
    return static_cast<uint8_t>(
        lo + rng.uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

} // namespace

void
Network::connectRandom(size_t src_pop, size_t dst_pop,
                       double probability, double weight_mean,
                       uint8_t delay_min, uint8_t delay_max,
                       uint8_t type, Rng &rng)
{
    flexon_assert(!finalized_);
    flexon_assert(src_pop < populations_.size());
    flexon_assert(dst_pop < populations_.size());
    flexon_assert(probability >= 0.0 && probability <= 1.0);
    flexon_assert(delay_min >= 1);
    flexon_assert(type < maxSynapseTypes);

    const Population &src = populations_[src_pop];
    const Population &dst = populations_[dst_pop];
    for (size_t s = 0; s < src.count; ++s) {
        const auto src_id = static_cast<uint32_t>(src.base + s);
        for (size_t d = 0; d < dst.count; ++d) {
            const auto dst_id = static_cast<uint32_t>(dst.base + d);
            if (src_id == dst_id)
                continue;
            if (!rng.bernoulli(probability))
                continue;
            staging_.push_back(
                {src_id,
                 {dst_id, drawWeight(weight_mean, rng),
                  drawDelay(delay_min, delay_max, rng), type}});
        }
    }
}

void
Network::connectFixedFanout(size_t src_pop, size_t dst_pop,
                            size_t fanout, double weight_mean,
                            uint8_t delay_min, uint8_t delay_max,
                            uint8_t type, Rng &rng)
{
    flexon_assert(!finalized_);
    flexon_assert(src_pop < populations_.size());
    flexon_assert(dst_pop < populations_.size());
    flexon_assert(delay_min >= 1);
    flexon_assert(type < maxSynapseTypes);

    const Population &src = populations_[src_pop];
    const Population &dst = populations_[dst_pop];
    flexon_assert(fanout <= dst.count);

    std::vector<uint32_t> candidates(dst.count);
    for (size_t s = 0; s < src.count; ++s) {
        const auto src_id = static_cast<uint32_t>(src.base + s);
        // Partial Fisher-Yates: pick `fanout` distinct targets.
        for (size_t i = 0; i < dst.count; ++i)
            candidates[i] = static_cast<uint32_t>(dst.base + i);
        size_t avail = candidates.size();
        for (size_t k = 0; k < fanout && avail > 0; ++k) {
            const size_t pick = rng.uniformInt(avail);
            const uint32_t dst_id = candidates[pick];
            candidates[pick] = candidates[--avail];
            if (dst_id == src_id)
                continue;
            staging_.push_back(
                {src_id,
                 {dst_id, drawWeight(weight_mean, rng),
                  drawDelay(delay_min, delay_max, rng), type}});
        }
    }
}

void
Network::connectFixedFanin(size_t src_pop, size_t dst_pop,
                           size_t fanin, double weight_mean,
                           uint8_t delay_min, uint8_t delay_max,
                           uint8_t type, Rng &rng)
{
    flexon_assert(!finalized_);
    flexon_assert(src_pop < populations_.size());
    flexon_assert(dst_pop < populations_.size());
    flexon_assert(delay_min >= 1);
    flexon_assert(type < maxSynapseTypes);

    const Population &src = populations_[src_pop];
    const Population &dst = populations_[dst_pop];
    for (size_t d = 0; d < dst.count; ++d) {
        const auto dst_id = static_cast<uint32_t>(dst.base + d);
        for (size_t k = 0; k < fanin; ++k) {
            const auto src_id = static_cast<uint32_t>(
                src.base + rng.uniformInt(src.count));
            if (src_id == dst_id)
                continue;
            staging_.push_back(
                {src_id,
                 {dst_id, drawWeight(weight_mean, rng),
                  drawDelay(delay_min, delay_max, rng), type}});
        }
    }
}

void
Network::addSynapse(uint32_t src, const Synapse &synapse)
{
    flexon_assert(!finalized_);
    flexon_assert(src < numNeurons_);
    flexon_assert(synapse.target < numNeurons_);
    flexon_assert(synapse.delay >= 1);
    flexon_assert(synapse.type < maxSynapseTypes);
    staging_.push_back({src, synapse});
}

void
Network::finalize()
{
    flexon_assert(!finalized_);
    // Stable: same-source synapses keep their insertion order, so
    // save/load round-trips reproduce the CSR exactly.
    std::stable_sort(staging_.begin(), staging_.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    rowPtr_.assign(numNeurons_ + 1, 0);
    synapses_.reserve(staging_.size());
    for (const auto &[src, syn] : staging_) {
        ++rowPtr_[src + 1];
        synapses_.push_back(syn);
        maxDelay_ = std::max(maxDelay_, syn.delay);
    }
    for (size_t i = 1; i <= numNeurons_; ++i)
        rowPtr_[i] += rowPtr_[i - 1];

    staging_.clear();
    staging_.shrink_to_fit();
    finalized_ = true;
}

const Population &
Network::population(size_t i) const
{
    flexon_assert(i < populations_.size());
    return populations_[i];
}

const Population &
Network::populationOf(size_t neuron) const
{
    flexon_assert(neuron < numNeurons_);
    for (const Population &pop : populations_) {
        if (neuron >= pop.base && neuron < pop.base + pop.count)
            return pop;
    }
    panic("neuron %zu not covered by any population", neuron);
}

std::span<const Synapse>
Network::outgoing(uint32_t src) const
{
    flexon_assert(finalized_);
    flexon_assert(src < numNeurons_);
    const uint64_t begin = rowPtr_[src];
    const uint64_t end = rowPtr_[src + 1];
    return {synapses_.data() + begin, end - begin};
}

uint64_t
Network::rowStart(uint32_t src) const
{
    flexon_assert(finalized_);
    flexon_assert(src < numNeurons_);
    return rowPtr_[src];
}

Synapse &
Network::synapseAt(uint64_t index)
{
    flexon_assert(finalized_);
    flexon_assert(index < synapses_.size());
    // Conservatively assume the caller writes the weight (mutable
    // access has no other legitimate use).
    if (weightLog_.empty())
        weightLog_.resize(weightLogCapacity);
    weightLog_[weightMutations_ % weightLogCapacity] = index;
    ++weightMutations_;
    return synapses_[index];
}

const Synapse &
Network::synapseAt(uint64_t index) const
{
    flexon_assert(finalized_);
    flexon_assert(index < synapses_.size());
    return synapses_[index];
}

} // namespace flexon
