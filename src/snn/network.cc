#include "snn/network.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexon {

size_t
Network::addPopulation(std::string name, const NeuronParams &params,
                       size_t count)
{
    flexon_assert(!finalized_);
    flexon_assert(count > 0);
    const std::string err = params.validate();
    if (!err.empty()) {
        fatal("population '%s' has invalid parameters: %s",
              name.c_str(), err.c_str());
    }
    Population pop;
    pop.name = std::move(name);
    pop.params = params;
    pop.base = numNeurons_;
    pop.count = count;
    populations_.push_back(std::move(pop));
    numNeurons_ += count;
    return populations_.size() - 1;
}

namespace {

/** Draw a weight around the mean with 10 % sigma, preserving sign. */
float
drawWeight(double mean, Rng &rng)
{
    const double w = rng.normal(mean, 0.1 * std::abs(mean));
    if (mean >= 0.0)
        return static_cast<float>(std::max(0.0, w));
    return static_cast<float>(std::min(0.0, w));
}

uint8_t
drawDelay(uint8_t lo, uint8_t hi, Rng &rng)
{
    if (hi <= lo)
        return lo;
    return static_cast<uint8_t>(
        lo + rng.uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

/**
 * Row seed for (spec seed, projection index, source id): one
 * splitmix64 finalization over the xored stream ids. The Rng ctor
 * runs its own splitmix expansion on top, so distinct inputs give
 * independent streams.
 */
uint64_t
rowSeed(uint64_t seed, uint64_t projection, uint64_t src)
{
    uint64_t x = seed ^ (projection * 0x9e3779b97f4a7c15ULL) ^
                 (src * 0xbf58476d1ce4e5b9ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

void
Network::connectRandom(size_t src_pop, size_t dst_pop,
                       double probability, double weight_mean,
                       uint8_t delay_min, uint8_t delay_max,
                       uint8_t type, Rng &rng)
{
    flexon_assert(!finalized_);
    flexon_assert(src_pop < populations_.size());
    flexon_assert(dst_pop < populations_.size());
    flexon_assert(probability >= 0.0 && probability <= 1.0);
    flexon_assert(delay_min >= 1);
    flexon_assert(type < maxSynapseTypes);

    const Population &src = populations_[src_pop];
    const Population &dst = populations_[dst_pop];
    for (size_t s = 0; s < src.count; ++s) {
        const auto src_id = static_cast<uint32_t>(src.base + s);
        for (size_t d = 0; d < dst.count; ++d) {
            const auto dst_id = static_cast<uint32_t>(dst.base + d);
            if (src_id == dst_id)
                continue;
            if (!rng.bernoulli(probability))
                continue;
            staging_.push_back(
                {src_id,
                 {dst_id, drawWeight(weight_mean, rng),
                  drawDelay(delay_min, delay_max, rng), type}});
        }
    }
}

void
Network::connectFixedFanout(size_t src_pop, size_t dst_pop,
                            size_t fanout, double weight_mean,
                            uint8_t delay_min, uint8_t delay_max,
                            uint8_t type, Rng &rng)
{
    flexon_assert(!finalized_);
    flexon_assert(src_pop < populations_.size());
    flexon_assert(dst_pop < populations_.size());
    flexon_assert(delay_min >= 1);
    flexon_assert(type < maxSynapseTypes);

    const Population &src = populations_[src_pop];
    const Population &dst = populations_[dst_pop];
    flexon_assert(fanout <= dst.count);

    std::vector<uint32_t> candidates(dst.count);
    for (size_t s = 0; s < src.count; ++s) {
        const auto src_id = static_cast<uint32_t>(src.base + s);
        // Partial Fisher-Yates: pick `fanout` distinct targets.
        for (size_t i = 0; i < dst.count; ++i)
            candidates[i] = static_cast<uint32_t>(dst.base + i);
        size_t avail = candidates.size();
        for (size_t k = 0; k < fanout && avail > 0; ++k) {
            const size_t pick = rng.uniformInt(avail);
            const uint32_t dst_id = candidates[pick];
            candidates[pick] = candidates[--avail];
            if (dst_id == src_id)
                continue;
            staging_.push_back(
                {src_id,
                 {dst_id, drawWeight(weight_mean, rng),
                  drawDelay(delay_min, delay_max, rng), type}});
        }
    }
}

void
Network::connectFixedFanin(size_t src_pop, size_t dst_pop,
                           size_t fanin, double weight_mean,
                           uint8_t delay_min, uint8_t delay_max,
                           uint8_t type, Rng &rng)
{
    flexon_assert(!finalized_);
    flexon_assert(src_pop < populations_.size());
    flexon_assert(dst_pop < populations_.size());
    flexon_assert(delay_min >= 1);
    flexon_assert(type < maxSynapseTypes);

    const Population &src = populations_[src_pop];
    const Population &dst = populations_[dst_pop];
    for (size_t d = 0; d < dst.count; ++d) {
        const auto dst_id = static_cast<uint32_t>(dst.base + d);
        for (size_t k = 0; k < fanin; ++k) {
            const auto src_id = static_cast<uint32_t>(
                src.base + rng.uniformInt(src.count));
            if (src_id == dst_id)
                continue;
            staging_.push_back(
                {src_id,
                 {dst_id, drawWeight(weight_mean, rng),
                  drawDelay(delay_min, delay_max, rng), type}});
        }
    }
}

void
Network::addSynapse(uint32_t src, const Synapse &synapse)
{
    flexon_assert(!finalized_);
    flexon_assert(src < numNeurons_);
    flexon_assert(synapse.target < numNeurons_);
    flexon_assert(synapse.delay >= 1);
    flexon_assert(synapse.type < maxSynapseTypes);
    staging_.push_back({src, synapse});
}

void
Network::finalize()
{
    flexon_assert(!finalized_);
    // Stable: same-source synapses keep their insertion order, so
    // save/load round-trips reproduce the CSR exactly.
    std::stable_sort(staging_.begin(), staging_.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });

    rowPtr_.assign(numNeurons_ + 1, 0);
    incomingCount_.assign(numNeurons_, 0);
    delayUsed_ = {};
    synapses_.reserve(staging_.size());
    for (const auto &[src, syn] : staging_) {
        ++rowPtr_[src + 1];
        synapses_.push_back(syn);
        maxDelay_ = std::max(maxDelay_, syn.delay);
        ++incomingCount_[syn.target];
        delayUsed_[syn.delay] = true;
    }
    for (size_t i = 1; i <= numNeurons_; ++i)
        rowPtr_[i] += rowPtr_[i - 1];

    staging_.clear();
    staging_.shrink_to_fit();
    finalized_ = true;
}

void
Network::buildFromSpec(const ConnectivitySpec &spec, bool procedural)
{
    flexon_assert(!finalized_);
    flexon_assert(staging_.empty());
    for (const Projection &p : spec.projections) {
        flexon_assert(static_cast<size_t>(p.srcBase) + p.srcCount <=
                      numNeurons_);
        flexon_assert(static_cast<size_t>(p.dstBase) + p.dstCount <=
                      numNeurons_);
        flexon_assert(p.delayMin >= 1);
        flexon_assert(p.delayMax >= p.delayMin);
        flexon_assert(p.type < maxSynapseTypes);
        if (p.rule == Projection::Rule::Bernoulli)
            flexon_assert(p.probability >= 0.0 &&
                          p.probability <= 1.0);
    }
    spec_ = spec;
    hasSpec_ = true;

    std::vector<Synapse> row;
    if (!procedural) {
        // Realize the spec into the ordinary CSR table. Rows are
        // generated per source in ascending order, so the staged
        // stream is already row-sorted and finalize()'s stable sort
        // preserves the generation order exactly.
        for (size_t src = 0; src < numNeurons_; ++src) {
            generateRow(static_cast<uint32_t>(src), row);
            for (const Synapse &syn : row)
                staging_.push_back(
                    {static_cast<uint32_t>(src), syn});
        }
        finalize();
        return;
    }

    // Procedural: one counting pass derives the geometry; the rows
    // themselves are regenerated on demand by rowFor().
    procedural_ = true;
    rowPtr_.assign(numNeurons_ + 1, 0);
    incomingCount_.assign(numNeurons_, 0);
    delayUsed_ = {};
    uint64_t total = 0;
    for (size_t src = 0; src < numNeurons_; ++src) {
        generateRow(static_cast<uint32_t>(src), row);
        rowPtr_[src + 1] = row.size();
        total += row.size();
        for (const Synapse &syn : row) {
            maxDelay_ = std::max(maxDelay_, syn.delay);
            ++incomingCount_[syn.target];
            delayUsed_[syn.delay] = true;
        }
    }
    for (size_t i = 1; i <= numNeurons_; ++i)
        rowPtr_[i] += rowPtr_[i - 1];
    synapseCount_ = total;
    finalized_ = true;
}

void
Network::generateRow(uint32_t src, std::vector<Synapse> &out) const
{
    flexon_assert(hasSpec_);
    out.clear();
    for (size_t pi = 0; pi < spec_.projections.size(); ++pi) {
        const Projection &p = spec_.projections[pi];
        if (src < p.srcBase || src >= p.srcBase + p.srcCount)
            continue;
        Rng rng(rowSeed(spec_.seed, pi, src));
        if (p.rule == Projection::Rule::Bernoulli) {
            if (p.probability <= 0.0 || p.dstCount == 0)
                continue;
            if (p.probability >= 1.0) {
                for (uint32_t d = 0; d < p.dstCount; ++d) {
                    const uint32_t dst = p.dstBase + d;
                    if (dst == src)
                        continue;
                    out.push_back(
                        {dst, drawWeight(p.weightMean, rng),
                         drawDelay(p.delayMin, p.delayMax, rng),
                         p.type});
                }
                continue;
            }
            // Geometric gap sampling: the number of misses before
            // the next Bernoulli(p) hit is floor(log(1-u)/log(1-p)),
            // one uniform per realized synapse instead of one per
            // candidate pair.
            const double logq = std::log1p(-p.probability);
            uint64_t idx = 0;
            while (idx < p.dstCount) {
                const double u = rng.uniform();
                const double gap = std::floor(std::log1p(-u) / logq);
                if (!(gap <
                      static_cast<double>(p.dstCount - idx)))
                    break;
                idx += static_cast<uint64_t>(gap);
                const uint32_t dst =
                    p.dstBase + static_cast<uint32_t>(idx);
                ++idx;
                if (dst == src)
                    continue; // autapse skipped, no extra draws
                out.push_back(
                    {dst, drawWeight(p.weightMean, rng),
                     drawDelay(p.delayMin, p.delayMax, rng),
                     p.type});
            }
        } else {
            if (p.dstCount == 0)
                continue;
            // Fixed out-degree with replacement (multapses kept, as
            // in the NEST fixed-degree rules); an autapse draw is
            // dropped without consuming the weight/delay draws.
            for (uint32_t k = 0; k < p.fanout; ++k) {
                const uint32_t dst =
                    p.dstBase + static_cast<uint32_t>(
                                    rng.uniformInt(p.dstCount));
                if (dst == src)
                    continue;
                out.push_back(
                    {dst, drawWeight(p.weightMean, rng),
                     drawDelay(p.delayMin, p.delayMax, rng),
                     p.type});
            }
        }
    }
}

std::span<const Synapse>
Network::rowFor(uint32_t src, std::vector<Synapse> &scratch) const
{
    if (!procedural_)
        return outgoing(src);
    flexon_assert(finalized_);
    flexon_assert(src < numNeurons_);
    generateRow(src, scratch);
    flexon_assert(scratch.size() ==
                  rowPtr_[src + 1] - rowPtr_[src]);
    if (!overlay_.empty()) {
        const uint64_t base = rowPtr_[src];
        for (size_t k = 0; k < scratch.size(); ++k) {
            const auto it = overlay_.find(base + k);
            if (it != overlay_.end())
                scratch[k].weight = it->second;
        }
    }
    return {scratch.data(), scratch.size()};
}

const ConnectivitySpec &
Network::connectivitySpec() const
{
    flexon_assert(hasSpec_);
    return spec_;
}

const Population &
Network::population(size_t i) const
{
    flexon_assert(i < populations_.size());
    return populations_[i];
}

const Population &
Network::populationOf(size_t neuron) const
{
    flexon_assert(neuron < numNeurons_);
    for (const Population &pop : populations_) {
        if (neuron >= pop.base && neuron < pop.base + pop.count)
            return pop;
    }
    panic("neuron %zu not covered by any population", neuron);
}

std::span<const Synapse>
Network::outgoing(uint32_t src) const
{
    flexon_assert(finalized_);
    flexon_assert(src < numNeurons_);
    if (procedural_)
        fatal("outgoing(): procedural networks store no synapse "
              "rows; use rowFor()");
    const uint64_t begin = rowPtr_[src];
    const uint64_t end = rowPtr_[src + 1];
    return {synapses_.data() + begin, end - begin};
}

uint64_t
Network::rowStart(uint32_t src) const
{
    flexon_assert(finalized_);
    flexon_assert(src < numNeurons_);
    return rowPtr_[src];
}

void
Network::logWeightMutation(uint64_t index)
{
    if (weightLog_.empty())
        weightLog_.resize(weightLogCapacity);
    weightLog_[weightMutations_ % weightLogCapacity] = index;
    ++weightMutations_;
}

Synapse &
Network::synapseAt(uint64_t index)
{
    flexon_assert(finalized_);
    if (procedural_)
        fatal("synapseAt(): procedural networks store no synapse "
              "rows; use setSynapseWeight()");
    flexon_assert(index < synapses_.size());
    // Conservatively assume the caller writes the weight (mutable
    // access has no other legitimate use).
    logWeightMutation(index);
    return synapses_[index];
}

const Synapse &
Network::synapseAt(uint64_t index) const
{
    flexon_assert(finalized_);
    if (procedural_)
        fatal("synapseAt(): procedural networks store no synapse "
              "rows; use rowFor()");
    flexon_assert(index < synapses_.size());
    return synapses_[index];
}

void
Network::setSynapseWeight(uint64_t index, float weight)
{
    flexon_assert(finalized_);
    flexon_assert(index < numSynapses());
    if (procedural_)
        overlay_[index] = weight;
    else
        synapses_[index].weight = weight;
    logWeightMutation(index);
}

bool
Network::overlayWeight(uint64_t index, float &weight) const
{
    const auto it = overlay_.find(index);
    if (it == overlay_.end())
        return false;
    weight = it->second;
    return true;
}

std::vector<std::pair<uint64_t, float>>
Network::sortedOverlay() const
{
    std::vector<std::pair<uint64_t, float>> entries(overlay_.begin(),
                                                    overlay_.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return entries;
}

void
Network::clearWeightOverlay()
{
    overlay_.clear();
    // Flood the log: anything holding a pre-clear watermark is now
    // more than a ring behind and must refresh every weight.
    weightMutations_ += weightLogCapacity + 1;
    if (weightLog_.empty() && weightMutations_ > 0)
        weightLog_.resize(weightLogCapacity);
}

uint32_t
Network::sourceOfSynapse(uint64_t index) const
{
    flexon_assert(finalized_);
    flexon_assert(index < numSynapses());
    // First row whose end exceeds `index`.
    const auto it = std::upper_bound(rowPtr_.begin() + 1,
                                     rowPtr_.end(), index);
    return static_cast<uint32_t>(it - (rowPtr_.begin() + 1));
}

size_t
Network::connectivityBytes() const
{
    // unordered_map heap estimate: one node (pair + hash link) per
    // entry plus the bucket array.
    const size_t overlayBytes =
        overlay_.size() *
            (sizeof(std::pair<uint64_t, float>) + 2 * sizeof(void *)) +
        overlay_.bucket_count() * sizeof(void *);
    return synapses_.capacity() * sizeof(Synapse) +
           staging_.capacity() * sizeof(staging_[0]) +
           rowPtr_.capacity() * sizeof(uint64_t) +
           incomingCount_.capacity() * sizeof(uint32_t) +
           weightLog_.capacity() * sizeof(uint64_t) + overlayBytes;
}

} // namespace flexon
