/**
 * @file
 * SNN topology: neuron populations and synapses.
 *
 * A network is a set of homogeneous populations (each sharing one
 * neuron parameterization, as in PyNN's sim.Population()) plus a
 * synapse table in compressed sparse row form: for every source
 * neuron, the list of (target, weight, delay, synapse type) entries.
 * Synaptic delays are expressed in whole time steps (Section II-C:
 * spikes propagate after a per-synapse delay).
 */

#ifndef FLEXON_SNN_NETWORK_HH
#define FLEXON_SNN_NETWORK_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.hh"
#include "features/params.hh"

namespace flexon {

/** One synapse: target neuron, weight, delay, and synapse type. */
struct Synapse
{
    uint32_t target;
    float weight;
    uint8_t delay;
    uint8_t type;
};

/** A homogeneous group of neurons sharing one parameter set. */
struct Population
{
    std::string name;
    NeuronParams params;
    size_t base = 0;  ///< global index of the first neuron
    size_t count = 0;
};

/**
 * An SNN: populations plus a CSR synapse table.
 *
 * Build with addPopulation() and the connect* methods, then call
 * finalize() to sort the synapse lists into CSR form. The network is
 * immutable after finalization.
 */
class Network
{
  public:
    /** Add a population; returns its index. */
    size_t addPopulation(std::string name, const NeuronParams &params,
                         size_t count);

    /**
     * Randomly connect two populations: every (src, dst) pair is
     * connected with the given probability (self-connections are
     * skipped when src == dst).
     *
     * @param weight_mean mean synaptic weight (weights are drawn from
     *        a normal distribution with 10 % relative sigma, clamped
     *        to keep the sign)
     * @param delay_min/delay_max synaptic delay range in time steps
     * @param type synapse type index the weight accumulates into
     */
    void connectRandom(size_t src_pop, size_t dst_pop,
                       double probability, double weight_mean,
                       uint8_t delay_min, uint8_t delay_max,
                       uint8_t type, Rng &rng);

    /**
     * Connect each source neuron to a fixed number of distinct random
     * targets (in-degree style wiring, as in the Brunel network).
     */
    void connectFixedFanout(size_t src_pop, size_t dst_pop,
                            size_t fanout, double weight_mean,
                            uint8_t delay_min, uint8_t delay_max,
                            uint8_t type, Rng &rng);

    /**
     * Connect each *target* neuron to a fixed number of random
     * sources drawn with replacement (fixed in-degree wiring with
     * multapses, the NEST fixed_indegree rule the Potjans–Diesmann
     * microcircuit is specified in). Self-connections are skipped
     * (the draw still consumes RNG state, so in-degrees of recurrent
     * projections may fall short by the few autapse draws).
     */
    void connectFixedFanin(size_t src_pop, size_t dst_pop,
                           size_t fanin, double weight_mean,
                           uint8_t delay_min, uint8_t delay_max,
                           uint8_t type, Rng &rng);

    /** Add one explicit synapse (for small hand-built examples). */
    void addSynapse(uint32_t src, const Synapse &synapse);

    /** Sort synapses into CSR form; no further mutation allowed. */
    void finalize();
    bool finalized() const { return finalized_; }

    size_t numPopulations() const { return populations_.size(); }
    const Population &population(size_t i) const;
    /** The population that owns a global neuron index. */
    const Population &populationOf(size_t neuron) const;

    size_t numNeurons() const { return numNeurons_; }
    size_t numSynapses() const { return synapses_.size(); }

    /** Largest synaptic delay in the network (steps); >= 1. */
    uint8_t maxDelay() const { return maxDelay_; }

    /** Outgoing synapses of a neuron (valid after finalize()). */
    std::span<const Synapse> outgoing(uint32_t src) const;

    /** Global index of the first synapse of `src`'s outgoing row. */
    uint64_t rowStart(uint32_t src) const;

    /**
     * Mutable synapse access by global index, for plasticity engines
     * (weights only should be modified; topology is immutable).
     * Every call is recorded in the weight-mutation log so packed
     * delivery tables (snn/routing.hh) can re-mirror the touched
     * weights instead of rebuilding.
     */
    Synapse &synapseAt(uint64_t index);
    const Synapse &synapseAt(uint64_t index) const;

    /** Ring capacity of the weight-mutation log (entries). */
    static constexpr size_t weightLogCapacity = 4096;

    /**
     * Monotone count of weight mutations (non-const synapseAt()
     * calls). Consumers snapshot this and later replay the entries
     * in (seen, current] from the log ring; a consumer more than
     * weightLogCapacity mutations behind must refresh every weight.
     */
    uint64_t weightMutations() const { return weightMutations_; }

    /** Synapse index of mutation number `mutation` (log ring). */
    uint64_t
    weightLogEntry(uint64_t mutation) const
    {
        return weightLog_[mutation % weightLogCapacity];
    }

  private:
    std::vector<Population> populations_;
    size_t numNeurons_ = 0;
    bool finalized_ = false;
    uint8_t maxDelay_ = 1;

    // Pre-finalize: (src, synapse) pairs; post-finalize: CSR.
    std::vector<std::pair<uint32_t, Synapse>> staging_;
    std::vector<Synapse> synapses_;
    std::vector<uint64_t> rowPtr_;

    // Weight-mutation log: ring of the last weightLogCapacity
    // mutated synapse indices (allocated on first mutation).
    std::vector<uint64_t> weightLog_;
    uint64_t weightMutations_ = 0;
};

} // namespace flexon

#endif // FLEXON_SNN_NETWORK_HH
