/**
 * @file
 * SNN topology: neuron populations and synapses.
 *
 * A network is a set of homogeneous populations (each sharing one
 * neuron parameterization, as in PyNN's sim.Population()) plus a
 * synapse table in compressed sparse row form: for every source
 * neuron, the list of (target, weight, delay, synapse type) entries.
 * Synaptic delays are expressed in whole time steps (Section II-C:
 * spikes propagate after a per-synapse delay).
 */

#ifndef FLEXON_SNN_NETWORK_HH
#define FLEXON_SNN_NETWORK_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "features/params.hh"

namespace flexon {

/** One synapse: target neuron, weight, delay, and synapse type. */
struct Synapse
{
    uint32_t target;
    float weight;
    uint8_t delay;
    uint8_t type;
};

/**
 * One generative wiring rule between two index ranges.
 *
 * A projection is the declarative form of a connect* call: instead
 * of staging every realized synapse, it records the rule plus the
 * distribution parameters, so a row can be regenerated on demand
 * from a counter-based per-source RNG (snn/connectivity.hh). The
 * realized topology of a projection is a pure function of
 * (spec seed, projection index, source id).
 */
struct Projection
{
    enum class Rule : uint8_t {
        /** Every (src, dst) pair connected with `probability`. */
        Bernoulli,
        /** `fanout` draws with replacement per source neuron. */
        FixedFanout,
    };

    Rule rule = Rule::Bernoulli;
    uint32_t srcBase = 0; ///< first source neuron (global id)
    uint32_t srcCount = 0;
    uint32_t dstBase = 0; ///< first target neuron (global id)
    uint32_t dstCount = 0;
    double probability = 0.0; ///< Bernoulli only
    uint32_t fanout = 0;      ///< FixedFanout only
    double weightMean = 0.0;  ///< normal(mean, 0.1|mean|), sign kept
    uint8_t delayMin = 1;     ///< delays uniform in [min, max]
    uint8_t delayMax = 1;
    uint8_t type = 0; ///< synapse type the weight accumulates into
};

/** A seeded list of projections — the generative network wiring. */
struct ConnectivitySpec
{
    uint64_t seed = 1;
    std::vector<Projection> projections;
};

/** A homogeneous group of neurons sharing one parameter set. */
struct Population
{
    std::string name;
    NeuronParams params;
    size_t base = 0;  ///< global index of the first neuron
    size_t count = 0;
};

/**
 * An SNN: populations plus a CSR synapse table.
 *
 * Build with addPopulation() and the connect* methods, then call
 * finalize() to sort the synapse lists into CSR form. The network is
 * immutable after finalization.
 */
class Network
{
  public:
    /** Add a population; returns its index. */
    size_t addPopulation(std::string name, const NeuronParams &params,
                         size_t count);

    /**
     * Randomly connect two populations: every (src, dst) pair is
     * connected with the given probability (self-connections are
     * skipped when src == dst).
     *
     * @param weight_mean mean synaptic weight (weights are drawn from
     *        a normal distribution with 10 % relative sigma, clamped
     *        to keep the sign)
     * @param delay_min/delay_max synaptic delay range in time steps
     * @param type synapse type index the weight accumulates into
     */
    void connectRandom(size_t src_pop, size_t dst_pop,
                       double probability, double weight_mean,
                       uint8_t delay_min, uint8_t delay_max,
                       uint8_t type, Rng &rng);

    /**
     * Connect each source neuron to a fixed number of distinct random
     * targets (in-degree style wiring, as in the Brunel network).
     */
    void connectFixedFanout(size_t src_pop, size_t dst_pop,
                            size_t fanout, double weight_mean,
                            uint8_t delay_min, uint8_t delay_max,
                            uint8_t type, Rng &rng);

    /**
     * Connect each *target* neuron to a fixed number of random
     * sources drawn with replacement (fixed in-degree wiring with
     * multapses, the NEST fixed_indegree rule the Potjans–Diesmann
     * microcircuit is specified in). Self-connections are skipped
     * (the draw still consumes RNG state, so in-degrees of recurrent
     * projections may fall short by the few autapse draws).
     */
    void connectFixedFanin(size_t src_pop, size_t dst_pop,
                           size_t fanin, double weight_mean,
                           uint8_t delay_min, uint8_t delay_max,
                           uint8_t type, Rng &rng);

    /** Add one explicit synapse (for small hand-built examples). */
    void addSynapse(uint32_t src, const Synapse &synapse);

    /**
     * Build the wiring from a generative spec (call after the
     * addPopulation() calls, instead of connect* + finalize()).
     *
     * With `procedural` false the spec is realized into the usual
     * CSR table (bit-identical to streaming the generated rows into
     * addSynapse + finalize()). With `procedural` true no synapses
     * are stored at all: a single counting pass derives the row
     * geometry (rowPtr, per-target in-degrees, realized delays) and
     * rows are regenerated on demand via rowFor(). Either way the
     * network is finalized on return and the spec is retained, so
     * the two modes describe the same topology.
     */
    void buildFromSpec(const ConnectivitySpec &spec, bool procedural);

    /** Sort synapses into CSR form; no further mutation allowed. */
    void finalize();
    bool finalized() const { return finalized_; }

    /** True when rows are regenerated on demand (no CSR storage). */
    bool procedural() const { return procedural_; }

    /** True when the wiring came from buildFromSpec(). */
    bool hasSpec() const { return hasSpec_; }

    /** The generative spec (valid when hasSpec()). */
    const ConnectivitySpec &connectivitySpec() const;

    size_t numPopulations() const { return populations_.size(); }
    const Population &population(size_t i) const;
    /** The population that owns a global neuron index. */
    const Population &populationOf(size_t neuron) const;

    size_t numNeurons() const { return numNeurons_; }
    size_t
    numSynapses() const
    {
        return procedural_ ? synapseCount_ : synapses_.size();
    }

    /** Largest synaptic delay in the network (steps); >= 1. */
    uint8_t maxDelay() const { return maxDelay_; }

    /** Outgoing synapses of a neuron (valid after finalize()).
     *  Materialized networks only — procedural rows are not stored;
     *  use rowFor(). */
    std::span<const Synapse> outgoing(uint32_t src) const;

    /**
     * Outgoing row of `src` in either storage mode. Materialized:
     * returns outgoing(src) (zero-copy; `scratch` untouched).
     * Procedural: regenerates the row into `scratch` — with the
     * weight-delta overlay applied, so callers always observe
     * current weights — and returns a span over it.
     */
    std::span<const Synapse> rowFor(uint32_t src,
                                    std::vector<Synapse> &scratch) const;

    /** Global index of the first synapse of `src`'s outgoing row. */
    uint64_t rowStart(uint32_t src) const;

    /** Source neuron owning global synapse index `index`. */
    uint32_t sourceOfSynapse(uint64_t index) const;

    /** Per-target incoming synapse counts (valid after finalize). */
    const std::vector<uint32_t> &
    incomingCounts() const
    {
        return incomingCount_;
    }

    /** delaysUsed()[d] is true iff some synapse has delay d. */
    const std::array<bool, 256> &
    delaysUsed() const
    {
        return delayUsed_;
    }

    /**
     * Bytes of heap devoted to connectivity storage: the CSR synapse
     * table (empty in procedural mode), row pointers, per-target
     * in-degrees and the weight overlay. Delivery-side structures
     * (routing tables, compressed blobs, row caches) are accounted
     * by their ConnectivityProvider.
     */
    size_t connectivityBytes() const;

    /**
     * Mutable synapse access by global index, for plasticity engines
     * (weights only should be modified; topology is immutable).
     * Every call is recorded in the weight-mutation log so packed
     * delivery tables (snn/routing.hh) can re-mirror the touched
     * weights instead of rebuilding.
     */
    Synapse &synapseAt(uint64_t index);
    const Synapse &synapseAt(uint64_t index) const;

    /**
     * Set a synapse weight by global index in either storage mode,
     * recording the mutation in the log. Materialized networks write
     * the CSR entry in place; procedural networks record the value
     * in the sparse weight-delta overlay that rowFor() applies on
     * regeneration.
     */
    void setSynapseWeight(uint64_t index, float weight);

    /**
     * Current overlay value of a synapse, if any. Returns false when
     * the synapse still carries its generated weight.
     */
    bool overlayWeight(uint64_t index, float &weight) const;

    /** Entries in the weight-delta overlay (procedural STDP). */
    size_t overlaySize() const { return overlay_.size(); }

    /** Overlay as (synapse index, weight), sorted by index — the
     *  canonical checkpoint form. */
    std::vector<std::pair<uint64_t, float>> sortedOverlay() const;

    /**
     * Drop every overlay entry (all synapses revert to generated
     * weights). Floods the mutation log so consumers holding a
     * watermark do a full refresh rather than a tail replay.
     */
    void clearWeightOverlay();

    /** Ring capacity of the weight-mutation log (entries). */
    static constexpr size_t weightLogCapacity = 4096;

    /**
     * Monotone count of weight mutations (non-const synapseAt()
     * calls). Consumers snapshot this and later replay the entries
     * in (seen, current] from the log ring; a consumer more than
     * weightLogCapacity mutations behind must refresh every weight.
     */
    uint64_t weightMutations() const { return weightMutations_; }

    /** Synapse index of mutation number `mutation` (log ring). */
    uint64_t
    weightLogEntry(uint64_t mutation) const
    {
        return weightLog_[mutation % weightLogCapacity];
    }

  private:
    /** Regenerate `src`'s row from the spec (no overlay applied). */
    void generateRow(uint32_t src, std::vector<Synapse> &out) const;
    void logWeightMutation(uint64_t index);

    std::vector<Population> populations_;
    size_t numNeurons_ = 0;
    bool finalized_ = false;
    uint8_t maxDelay_ = 1;

    // Pre-finalize: (src, synapse) pairs; post-finalize: CSR.
    std::vector<std::pair<uint32_t, Synapse>> staging_;
    std::vector<Synapse> synapses_;
    std::vector<uint64_t> rowPtr_;

    // Geometry caches filled at finalization (both storage modes) so
    // delivery structures can be sized without walking synapses.
    std::vector<uint32_t> incomingCount_;
    std::array<bool, 256> delayUsed_{};

    // Generative wiring (buildFromSpec). In procedural mode
    // synapses_ stays empty, synapseCount_ carries the realized
    // total, and overlay_ holds STDP weight deltas keyed by global
    // synapse index.
    ConnectivitySpec spec_;
    bool hasSpec_ = false;
    bool procedural_ = false;
    uint64_t synapseCount_ = 0;
    std::unordered_map<uint64_t, float> overlay_;

    // Weight-mutation log: ring of the last weightLogCapacity
    // mutated synapse indices (allocated on first mutation).
    std::vector<uint64_t> weightLog_;
    uint64_t weightMutations_ = 0;
};

} // namespace flexon

#endif // FLEXON_SNN_NETWORK_HH
