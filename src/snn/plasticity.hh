/**
 * @file
 * The plasticity-rule interface and the intrinsic-excitability rule.
 *
 * PlasticityRule abstracts what StdpEngine pioneered: an engine that
 * observes each step's fired flags after the simulation step and
 * mutates something the next steps see — synaptic weights (STDP,
 * through the Network's logging mutators) or per-neuron parameters
 * (intrinsic excitability, through NeuronBackend threshold offsets).
 * Rules attach to a SimulationSession (attachPlasticityRule), which
 * calls onStep() inside stepOnce() and carries each rule's state in
 * the v4 checkpoint's plasticity block, so a save/restore resumes
 * learning bit-identically. The pre-existing external calling
 * convention (construct an engine, call onStep() yourself after each
 * step, checkpoint its state beside the session's) keeps working —
 * attachment is a convenience, not a requirement.
 *
 * IntrinsicExcitabilityRule is the homeostatic IE rule of
 * LIFL-with-IE models (NEST's lifl_psc_exp_ie): each neuron tracks
 * its firing rate as an EWMA and drifts its firing threshold so the
 * rate approaches a target — neurons that fire too much become
 * harder to fire, silent neurons easier. With spike-latency coding
 * this implements the MNSD-style unsupervised tuning of which
 * neurons respond to which input patterns.
 */

#ifndef FLEXON_SNN_PLASTICITY_HH
#define FLEXON_SNN_PLASTICITY_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "registry/registry.hh"

namespace flexon {

class NeuronBackend;

/**
 * A learning rule driven by the per-step fired flags. See the file
 * comment; implementations must keep onStep() deterministic (pure
 * function of the spike history and its own state) so checkpointed
 * runs stay bit-exact.
 */
class PlasticityRule
{
  public:
    virtual ~PlasticityRule() = default;

    /** Stable tag written into checkpoints ("stdp", "ie", ...). */
    virtual const char *kind() const = 0;

    /**
     * Apply one step of the rule.
     * @param fired the step's 0/1 spike flags (session lastFired())
     */
    virtual void onStep(const std::vector<uint8_t> &fired) = 0;

    /**
     * Checkpoint the rule's complete dynamic state, exact text round
     * trip (17-significant-digit stream, snn/serialize.hh framing).
     * loadState must leave the rule — and anything it mutates, like
     * backend threshold offsets — exactly as it was at save time;
     * fatal() on shape mismatch.
     */
    virtual void saveState(std::ostream &os) const = 0;
    virtual void loadState(std::istream &is) = 0;
};

/**
 * Homeostatic intrinsic-excitability plasticity over a backend's
 * per-neuron threshold offsets:
 *
 *   rate[n]   += (fired[n] - rate[n]) / tau        (EWMA)
 *   offset[n]  = clamp(offset[n] + eta * (rate[n] - targetRate),
 *                      minOffset, maxOffset)
 *
 * The backend must support setThresholdOffset (the discrete
 * reference backend); construction fatal()s otherwise, so a
 * misconfigured run fails loudly instead of silently not learning.
 */
class IntrinsicExcitabilityRule : public PlasticityRule
{
  public:
    /**
     * @param backend the live neuron backend (kept by reference;
     *        must outlive the rule)
     * @param numNeurons network neuron count
     * @param config validated IE constants (registry descriptor)
     */
    IntrinsicExcitabilityRule(NeuronBackend &backend,
                              size_t numNeurons,
                              const IePlasticityConfig &config);

    const char *kind() const override { return "ie"; }
    void onStep(const std::vector<uint8_t> &fired) override;
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    const IePlasticityConfig &config() const { return config_; }
    double rate(size_t neuron) const { return rates_.at(neuron); }
    double offset(size_t neuron) const
    {
        return offsets_.at(neuron);
    }

    /** Mean threshold offset (learning diagnostics). */
    double meanOffset() const;

  private:
    NeuronBackend &backend_;
    IePlasticityConfig config_;
    double alpha_; ///< 1 / tau
    std::vector<double> rates_;
    std::vector<double> offsets_;
};

} // namespace flexon

#endif // FLEXON_SNN_PLASTICITY_HH
