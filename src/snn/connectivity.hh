/**
 * @file
 * Connectivity providers: one row-oriented interface over three
 * synapse-storage strategies.
 *
 * The delivery engine (snn/routing.hh) consumes connectivity as
 * *rows*: for a fired source neuron and a target shard, the list of
 * delay-bucket runs of {ring cell, weight} delivery records. A
 * ConnectivityProvider answers that query — rowSpan() — from one of
 * three representations:
 *
 *  - **materialized**: the precompiled RoutingTable CSR (PR 3/PR 6).
 *    rowSpan() is a zero-copy view of the source-major mirror; the
 *    SpikeRouter additionally keeps its direct fast paths over the
 *    table, so this mode is byte-for-byte the previous engine.
 *  - **compressed**: per-(source, shard) delta/varint-encoded blobs
 *    (see DESIGN.md §12 for the row format), decoded on delivery
 *    into a per-shard scratch buffer. ~6× smaller than the
 *    materialized records at microcircuit densities.
 *  - **procedural**: nothing stored per synapse at all. Rows are
 *    regenerated on demand from the network's ConnectivitySpec
 *    (counter-based per-source RNG, Network::rowFor), decoded
 *    through an LRU hot-row cache; STDP updates live in the
 *    network's sparse weight-delta overlay. Memory is O(neurons),
 *    so networks that OOM under materialized storage run.
 *
 * All three providers expose identical shard/bucket geometry (built
 * by buildConnectivityGeometry from the same inputs) and yield the
 * same per-cell weight-addition order, so spike trains are
 * bit-identical across providers at any thread count.
 */

#ifndef FLEXON_SNN_CONNECTIVITY_HH
#define FLEXON_SNN_CONNECTIVITY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "snn/network.hh"

namespace flexon {

namespace telemetry {
class Registry;
}

class RoutingTable;

/** One delivery: ring cell (target * maxSynapseTypes + type) and
 *  the weight to accumulate into it. */
struct DeliveryRecord
{
    uint32_t cell;
    float weight;
};

/** Available connectivity representations. */
enum class ConnectivityKind {
    Materialized, ///< precompiled CSR routing table (default)
    Compressed,   ///< delta/varint row blobs, decoded on delivery
    Procedural,   ///< rows regenerated from the spec'd RNG
};

/** Printable kind name ("materialized" / "compressed" /
 *  "procedural"). */
const char *connectivityKindName(ConnectivityKind kind);

/** Parse a kind name; returns false on anything else. */
bool parseConnectivityKind(const std::string &text,
                           ConnectivityKind &out);

/**
 * Packed bucket-run header: delay-bucket index in the top byte, run
 * length (record count) in the low 24 bits. Identical to the
 * RoutingTable source-major mirror's header packing, so materialized
 * views need no translation.
 */
constexpr uint32_t
packRunHeader(uint32_t bucket, uint32_t length)
{
    return (bucket << 24) | length;
}

constexpr uint32_t
runHeaderBucket(uint32_t header)
{
    return header >> 24;
}

constexpr uint32_t
runHeaderLength(uint32_t header)
{
    return header & 0xFFFFFFu;
}

/**
 * Shard/bucket layout shared by every provider (and by the
 * RoutingTable itself — it builds from the same function, which is
 * what makes cross-provider geometry equality structural rather
 * than coincidental).
 */
struct ConnectivityGeometry
{
    size_t shardCount = 1;
    /** Target-neuron boundary of each shard (size shardCount + 1),
     *  balanced by incoming synapse count. */
    std::vector<uint32_t> shardTargetBegin;
    /** Ascending list of delays actually used by some synapse. */
    std::vector<uint8_t> bucketDelay;
    /** delay -> bucket index (valid for delays in bucketDelay). */
    std::array<uint8_t, 256> bucketOf{};
    /** target neuron -> owning shard (O(1) shard lookup). */
    std::vector<uint32_t> shardOf;
};

/**
 * Build the delivery geometry for a finalized network: clamp the
 * shard request to the pool width and the neuron count, split
 * targets into contiguous shards of balanced incoming-synapse load,
 * and enumerate the realized delay buckets.
 */
ConnectivityGeometry
buildConnectivityGeometry(const Network &network, size_t shardCount);

/**
 * Per-shard scratch space rowSpan() may decode into. One instance
 * per target shard (never shared between lanes); a view returned by
 * rowSpan() is valid until the next rowSpan() call with the same
 * scratch instance.
 */
struct RowScratch
{
    std::vector<uint32_t> runs;           ///< packed run headers
    std::vector<DeliveryRecord> records;  ///< run-major records
    std::vector<Synapse> synapses;        ///< raw regenerated row
    std::vector<uint32_t> counts;         ///< counting-sort bins
};

/**
 * Decoded delivery row of one (source, shard): bucket runs in
 * ascending bucket order over a contiguous record array. Within a
 * run, records for the same ring cell appear in a fixed
 * provider-independent relative order, so floating-point
 * accumulation per cell is identical across providers.
 */
struct RowView
{
    std::span<const uint32_t> runs;
    const DeliveryRecord *records = nullptr;
};

/**
 * Abstract connectivity source. Geometry accessors are non-virtual
 * (they read the shared ConnectivityGeometry) so the router's hot
 * paths pay a virtual call only per fired row, not per record.
 *
 * Threading contract: rowSpan() is const and safe to call from
 * concurrent lanes as long as each lane passes its own RowScratch;
 * prepareStep() and refreshWeights() are serial (between lane
 * dispatches) and are where any internal caches may mutate.
 */
class ConnectivityProvider
{
  public:
    virtual ~ConnectivityProvider() = default;

    ConnectivityKind kind() const { return kind_; }
    const ConnectivityGeometry &geometry() const { return geo_; }
    size_t shardCount() const { return geo_.shardCount; }
    size_t bucketCount() const { return geo_.bucketDelay.size(); }
    uint8_t bucketDelay(size_t bucket) const
    {
        return geo_.bucketDelay[bucket];
    }
    const std::vector<uint32_t> &shardTargetBegin() const
    {
        return geo_.shardTargetBegin;
    }
    size_t shardOfCell(uint32_t cell) const
    {
        return geo_.shardOf[cell / maxSynapseTypes];
    }

    /** True when per-source masks are exact (bucketCount <= 64). */
    bool rowMasksExact() const { return masksExact_; }
    /** Per-shard activity masks of a source row (shardCount
     *  words; bit b set iff the row reaches bucket b there). */
    const uint64_t *rowMaskRow(uint32_t src) const
    {
        return maskData_ + static_cast<size_t>(src) * geo_.shardCount;
    }
    uint64_t rowMask(uint32_t src, size_t shard) const
    {
        return rowMaskRow(src)[shard];
    }

    /** Decode the delivery row of (src, shard). */
    virtual RowView rowSpan(uint32_t src, size_t shard,
                            RowScratch &scratch) const = 0;

    /** Serial pre-delivery hook (e.g. populate the hot-row cache
     *  for this step's fired set). */
    virtual void prepareStep(std::span<const uint32_t> fired)
    {
        (void)fired;
    }

    /** Mirror weight mutations from the network's log. */
    virtual void refreshWeights() = 0;

    /** Heap bytes owned by this provider (tables, blobs, caches). */
    virtual size_t connectivityBytes() const = 0;

    /** The wrapped RoutingTable, when this provider is the
     *  materialized one (the router's fast-path handle). */
    virtual const RoutingTable *materializedTable() const
    {
        return nullptr;
    }

    /** Forget cached rows / zero the cache counters (bit-exact
     *  session reset). */
    virtual void reset()
    {
        hits_.store(0, std::memory_order_relaxed);
        misses_.store(0, std::memory_order_relaxed);
    }

    uint64_t rowCacheHits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t rowCacheMisses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

  protected:
    ConnectivityProvider(ConnectivityKind kind,
                         ConnectivityGeometry geo)
        : kind_(kind), geo_(std::move(geo))
    {
    }

    ConnectivityKind kind_;
    ConnectivityGeometry geo_;
    const uint64_t *maskData_ = nullptr; ///< set by the subclass
    bool masksExact_ = false;
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
};

/**
 * Construct a provider over a finalized network.
 *
 * Materialized requires a materialized network (it builds the CSR
 * routing table from stored rows); procedural requires a network
 * built with buildFromSpec(procedural = true); compressed accepts
 * either storage mode (it encodes from regenerated or stored rows).
 */
std::unique_ptr<ConnectivityProvider>
makeConnectivityProvider(ConnectivityKind kind, const Network &network,
                         size_t shardCount,
                         telemetry::Registry *metrics);

} // namespace flexon

#endif // FLEXON_SNN_CONNECTIVITY_HH
