#include "snn/backend.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/health.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "flexon/array.hh"
#include "folded/array.hh"
#include "models/ode_neuron.hh"
#include "models/reference_batch.hh"

namespace flexon {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Reference: return "reference";
      case BackendKind::Flexon: return "flexon";
      case BackendKind::Folded: return "folded-flexon";
      default: panic("invalid backend kind %d", static_cast<int>(kind));
    }
}

void
NeuronBackend::healthProbe(size_t begin, size_t end,
                           health::HealthScan &scan) const
{
    for (size_t n = begin; n < end; ++n) {
        ++scan.checked;
        if (!std::isfinite(membrane(n))) {
            ++scan.nonFinite;
            if (scan.firstBad < 0)
                scan.firstBad = static_cast<int64_t>(n);
        }
    }
}

namespace {

/**
 * Scale one accumulated input exactly like FlexonConfig::scaleWeight
 * (bit-identical product), but report when either the double->Fix
 * conversion or the scaled product pins at a representation rail.
 * The intermediate matters: an inputScale <= 1 can shrink a railed
 * conversion back inside the range, hiding the clip from any check
 * on the product alone.
 */
inline Fix
scaleWeightChecked(const FlexonConfig &c, double in)
{
    const Fix w = Fix::fromDouble(in);
    const Fix f = w * c.inputScale;
    if (w.raw() == Fix::rawMax || w.raw() == Fix::rawMin ||
        f.raw() == Fix::rawMax || f.raw() == Fix::rawMin)
        health::noteFixSaturation();
    return f;
}

/** Rail check shared by the fixed-point backends' health probes. */
template <typename Array>
void
probeFixArray(const Array &array, size_t begin, size_t end,
              health::HealthScan &scan)
{
    for (size_t n = begin; n < end; ++n) {
        ++scan.checked;
        const int64_t raw = array.neuron(n).state().v.raw();
        if (raw == Fix::rawMax || raw == Fix::rawMin) {
            ++scan.saturated;
            if (scan.firstBad < 0)
                scan.firstBad = static_cast<int64_t>(n);
        }
    }
}

/**
 * Software backend. Discrete mode runs one ReferenceBatch per
 * population (shared parameters, SoA state — see
 * models/reference_batch.hh); continuous mode keeps per-neuron
 * OdeNeuron instances, whose solver state is inherently per-neuron.
 */
class ReferenceBackend : public NeuronBackend
{
  public:
    ReferenceBackend(const Network &network, IntegrationMode mode,
                     SolverKind solver, size_t threads)
        : mode_(mode), threads_(threads == 0 ? 1 : threads)
    {
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            if (mode_ == IntegrationMode::Discrete) {
                bases_.push_back(numNeurons_);
                batches_.emplace_back(pop.params, pop.count);
            } else {
                for (size_t i = 0; i < pop.count; ++i)
                    continuous_.emplace_back(pop.params, solver);
            }
            numNeurons_ += pop.count;
        }
    }

    const char *name() const override { return "reference"; }

    void
    step(std::span<const double> input,
         std::vector<uint8_t> &fired) override
    {
        flexon_assert(input.size() >= numNeurons_ * maxSynapseTypes);
        // Chunked parallel neuron update on the persistent pool.
        // Each neuron's state is private and every lane writes a
        // disjoint byte range of `fired`, so no intermediate
        // flag buffer (and no per-step allocation) is needed.
        fired.resize(numNeurons_);
        uint8_t *const flags = fired.data();
        const double *const in = input.data();
        ThreadPool::global().parallelFor(
            numNeurons_, threads_,
            [&](size_t, size_t begin, size_t end) {
                if (mode_ == IntegrationMode::Discrete) {
                    // Intersect the lane's chunk with each batch, so
                    // kernel calls never straddle populations.
                    for (size_t b = 0; b < batches_.size(); ++b) {
                        const size_t base = bases_[b];
                        const size_t lo = std::max(begin, base);
                        const size_t hi = std::min(
                            end, base + batches_[b].size());
                        if (lo >= hi)
                            continue;
                        batches_[b].step(
                            in + base * maxSynapseTypes,
                            flags + base, lo - base, hi - base);
                    }
                } else {
                    for (size_t i = begin; i < end; ++i) {
                        flags[i] = continuous_[i].step(
                            input.subspan(i * maxSynapseTypes,
                                          maxSynapseTypes));
                    }
                }
            });
    }

    void
    reset() override
    {
        for (auto &batch : batches_)
            batch.reset();
        for (auto &neuron : continuous_)
            neuron.reset();
    }

    double
    membrane(size_t neuron) const override
    {
        if (mode_ != IntegrationMode::Discrete)
            return continuous_.at(neuron).state().v;
        for (size_t b = 0; b < batches_.size(); ++b) {
            if (neuron < bases_[b] + batches_[b].size())
                return batches_[b].membrane(neuron - bases_[b]);
        }
        panic("neuron index %zu outside every population", neuron);
    }

    void
    saveState(std::ostream &os) const override
    {
        os << "backend reference "
           << (mode_ == IntegrationMode::Discrete ? "discrete"
                                                  : "continuous")
           << ' ' << numNeurons_ << '\n';
        for (const ReferenceBatch &batch : batches_)
            batch.saveState(os);
        for (const OdeNeuron &neuron : continuous_) {
            const NeuronState &s = neuron.state();
            os << s.v;
            for (const double y : s.y)
                os << ' ' << y;
            for (const double g : s.g)
                os << ' ' << g;
            os << ' ' << s.w << ' ' << s.r << ' ' << s.cnt << '\n';
        }
    }

    void
    loadState(std::istream &is) override
    {
        std::string tag, name, mode;
        size_t count = 0;
        is >> tag >> name >> mode >> count;
        const char *const expected =
            mode_ == IntegrationMode::Discrete ? "discrete"
                                               : "continuous";
        if (tag != "backend" || name != "reference" ||
            mode != expected || !is || count != numNeurons_) {
            fatal("checkpoint backend state is not a %s reference "
                  "backend with %zu neurons",
                  expected, numNeurons_);
        }
        for (ReferenceBatch &batch : batches_)
            batch.loadState(is);
        for (OdeNeuron &neuron : continuous_) {
            NeuronState s;
            is >> s.v;
            for (double &y : s.y)
                is >> y;
            for (double &g : s.g)
                is >> g;
            is >> s.w >> s.r >> s.cnt;
            neuron.setState(s);
        }
        if (!is)
            fatal("truncated reference-backend state in checkpoint");
    }

    bool
    exportLlifState(std::vector<double> &v,
                    std::vector<uint32_t> &refractory) const override
    {
        if (mode_ != IntegrationMode::Discrete)
            return false;
        v.clear();
        refractory.clear();
        v.reserve(numNeurons_);
        refractory.reserve(numNeurons_);
        for (const ReferenceBatch &batch : batches_) {
            const auto vs = batch.membraneArray();
            const auto cnts = batch.refractoryArray();
            v.insert(v.end(), vs.begin(), vs.end());
            refractory.insert(refractory.end(), cnts.begin(),
                              cnts.end());
        }
        return true;
    }

    bool
    importLlifState(std::span<const double> v,
                    std::span<const uint32_t> refractory) override
    {
        if (mode_ != IntegrationMode::Discrete ||
            v.size() != numNeurons_ ||
            refractory.size() != numNeurons_)
            return false;
        for (size_t b = 0; b < batches_.size(); ++b) {
            const size_t base = bases_[b];
            const size_t count = batches_[b].size();
            batches_[b].setLlifState(
                v.subspan(base, count),
                refractory.subspan(base, count));
        }
        return true;
    }

    bool
    setThresholdOffset(size_t neuron, double offset) override
    {
        if (mode_ != IntegrationMode::Discrete ||
            neuron >= numNeurons_)
            return false;
        for (size_t b = 0; b < batches_.size(); ++b) {
            if (neuron < bases_[b] + batches_[b].size()) {
                batches_[b].setThresholdOffset(neuron - bases_[b],
                                               offset);
                ++parameterMutations_;
                return true;
            }
        }
        return false;
    }

    double
    thresholdOffset(size_t neuron) const override
    {
        if (mode_ != IntegrationMode::Discrete ||
            neuron >= numNeurons_)
            return 0.0;
        for (size_t b = 0; b < batches_.size(); ++b) {
            if (neuron < bases_[b] + batches_[b].size())
                return batches_[b].thresholdOffset(neuron - bases_[b]);
        }
        return 0.0;
    }

    uint64_t
    parameterMutations() const override
    {
        return parameterMutations_;
    }

    bool
    debugPoisonMembrane(size_t neuron) override
    {
        if (neuron >= numNeurons_)
            return false;
        if (mode_ != IntegrationMode::Discrete) {
            OdeNeuron &target = continuous_[neuron];
            NeuronState s = target.state();
            s.v = std::numeric_limits<double>::quiet_NaN();
            target.setState(s);
            return true;
        }
        for (size_t b = 0; b < batches_.size(); ++b) {
            const size_t base = bases_[b];
            if (neuron >= base + batches_[b].size())
                continue;
            const auto vs = batches_[b].membraneArray();
            const auto cnts = batches_[b].refractoryArray();
            std::vector<double> v(vs.begin(), vs.end());
            std::vector<uint32_t> cnt(cnts.begin(), cnts.end());
            v[neuron - base] =
                std::numeric_limits<double>::quiet_NaN();
            batches_[b].setLlifState(v, cnt);
            return true;
        }
        return false;
    }

  private:
    IntegrationMode mode_;
    size_t threads_;
    size_t numNeurons_ = 0;
    uint64_t parameterMutations_ = 0;
    std::vector<size_t> bases_;
    std::vector<ReferenceBatch> batches_;
    std::vector<OdeNeuron> continuous_;
};

/**
 * Input conversion for the folded hardware backend: reference-unit
 * accumulated weights scaled into the hardware convention (epsilon_m
 * pre-scaling, CUB merging all synapse types into one signed input).
 * One configuration is stored per population — not per neuron — and
 * all-zero slots skip the double->Fix conversion (bit-exact:
 * scaleWeight(0.0) == Fix::zero()).
 *
 * The baseline Flexon backend no longer uses this: its batch kernels
 * fuse the scaling into the neuron step (flexon/kernel.hh).
 */
class HardwareInputScaler
{
  public:
    explicit HardwareInputScaler(const Network &network)
    {
        size_t base = 0;
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            pops_.push_back(
                {base, pop.count,
                 FlexonConfig::fromParams(pop.params)});
            base += pop.count;
        }
        scaled_.resize(base * maxSynapseTypes, Fix::zero());
    }

    std::span<const Fix>
    scale(std::span<const double> input)
    {
        for (const PopulationSlice &pop : pops_) {
            const FlexonConfig &c = pop.config;
            const bool cub = c.features.has(Feature::CUB);
            for (size_t i = pop.base; i < pop.base + pop.count; ++i) {
                const size_t base = i * maxSynapseTypes;
                if (cub) {
                    double sum = 0.0;
                    for (size_t s = 0; s < maxSynapseTypes; ++s)
                        sum += input[base + s];
                    scaled_[base] = sum == 0.0
                                        ? Fix::zero()
                                        : scaleWeightChecked(c, sum);
                    for (size_t s = 1; s < maxSynapseTypes; ++s)
                        scaled_[base + s] = Fix::zero();
                } else {
                    for (size_t s = 0; s < maxSynapseTypes; ++s) {
                        const double in = input[base + s];
                        scaled_[base + s] =
                            in == 0.0 ? Fix::zero()
                                      : scaleWeightChecked(c, in);
                    }
                }
            }
        }
        return scaled_;
    }

    const FlexonConfig &
    config(size_t neuron) const
    {
        for (const PopulationSlice &pop : pops_) {
            if (neuron < pop.base + pop.count)
                return pop.config;
        }
        panic("neuron index %zu outside every population", neuron);
    }

  private:
    struct PopulationSlice
    {
        size_t base;
        size_t count;
        FlexonConfig config;
    };
    std::vector<PopulationSlice> pops_;
    std::vector<Fix> scaled_;
};

/**
 * Baseline Flexon array backend. Input scaling is fused into the
 * array's per-population batch kernels, so the reference-unit input
 * goes straight to the array.
 */
class FlexonBackend : public NeuronBackend
{
  public:
    FlexonBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
        : array_(width, clock_hz)
    {
        array_.setHostThreads(threads);
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            array_.addPopulation(FlexonConfig::fromParams(pop.params),
                                 pop.count);
        }
    }

    const char *name() const override { return "flexon"; }

    void
    step(std::span<const double> input,
         std::vector<uint8_t> &fired) override
    {
        array_.step(input, fired);
    }

    void reset() override { array_.resetState(); }

    double
    modelSecondsPerStep() const override
    {
        return static_cast<double>(array_.cyclesPerStep()) /
               array_.clockHz();
    }

    double
    membrane(size_t neuron) const override
    {
        return array_.neuron(neuron).state().v.toDouble();
    }

    void
    saveState(std::ostream &os) const override
    {
        os << "backend flexon\n";
        array_.saveState(os);
    }

    void
    loadState(std::istream &is) override
    {
        std::string tag, name;
        is >> tag >> name;
        if (tag != "backend" || name != "flexon" || !is)
            fatal("checkpoint backend state is not a flexon backend");
        array_.loadState(is);
    }

    void
    healthProbe(size_t begin, size_t end,
                health::HealthScan &scan) const override
    {
        probeFixArray(array_, begin, end, scan);
    }

    FlexonArray &array() { return array_; }

  private:
    FlexonArray array_;
};

/** Spatially folded Flexon array backend. */
class FoldedBackend : public NeuronBackend
{
  public:
    FoldedBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
        : array_(width, clock_hz), scaler_(network)
    {
        array_.setHostThreads(threads);
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            array_.addPopulation(FlexonConfig::fromParams(pop.params),
                                 pop.count);
        }
    }

    const char *name() const override { return "folded-flexon"; }

    void
    step(std::span<const double> input,
         std::vector<uint8_t> &fired) override
    {
        array_.step(scaler_.scale(input), fired);
    }

    void reset() override { array_.resetState(); }

    double
    modelSecondsPerStep() const override
    {
        return static_cast<double>(array_.cyclesPerStep()) /
               array_.clockHz();
    }

    double
    membrane(size_t neuron) const override
    {
        return array_.neuron(neuron).state().v.toDouble();
    }

    void
    saveState(std::ostream &os) const override
    {
        os << "backend folded-flexon\n";
        array_.saveState(os);
    }

    void
    loadState(std::istream &is) override
    {
        std::string tag, name;
        is >> tag >> name;
        if (tag != "backend" || name != "folded-flexon" || !is)
            fatal("checkpoint backend state is not a folded-flexon "
                  "backend");
        array_.loadState(is);
    }

    void
    healthProbe(size_t begin, size_t end,
                health::HealthScan &scan) const override
    {
        probeFixArray(array_, begin, end, scan);
    }

    FoldedFlexonArray &array() { return array_; }

  private:
    FoldedFlexonArray array_;
    HardwareInputScaler scaler_;
};

} // namespace

std::unique_ptr<NeuronBackend>
makeReferenceBackend(const Network &network, IntegrationMode mode,
                     SolverKind solver, size_t threads)
{
    return std::make_unique<ReferenceBackend>(network, mode, solver,
                                              threads);
}

std::unique_ptr<NeuronBackend>
makeFlexonBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
{
    return std::make_unique<FlexonBackend>(network, width, clock_hz,
                                           threads);
}

std::unique_ptr<NeuronBackend>
makeFoldedBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
{
    return std::make_unique<FoldedBackend>(network, width, clock_hz,
                                           threads);
}

std::unique_ptr<NeuronBackend>
makeBackend(BackendKind kind, const Network &network,
            IntegrationMode mode, SolverKind solver, size_t threads)
{
    switch (kind) {
      case BackendKind::Reference:
        return makeReferenceBackend(network, mode, solver, threads);
      case BackendKind::Flexon:
        return makeFlexonBackend(network, FlexonArray::defaultWidth,
                                 FlexonArray::defaultClockHz, threads);
      case BackendKind::Folded:
        return makeFoldedBackend(network,
                                 FoldedFlexonArray::defaultWidth,
                                 FoldedFlexonArray::defaultClockHz,
                                 threads);
      default:
        panic("invalid backend kind %d", static_cast<int>(kind));
    }
}

} // namespace flexon
