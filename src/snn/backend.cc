#include "snn/backend.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "flexon/array.hh"
#include "folded/array.hh"
#include "models/ode_neuron.hh"
#include "models/reference_neuron.hh"

namespace flexon {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Reference: return "reference";
      case BackendKind::Flexon: return "flexon";
      case BackendKind::Folded: return "folded-flexon";
      default: panic("invalid backend kind %d", static_cast<int>(kind));
    }
}

namespace {

/** Software backend: one reference neuron per network neuron. */
class ReferenceBackend : public NeuronBackend
{
  public:
    ReferenceBackend(const Network &network, IntegrationMode mode,
                     SolverKind solver, size_t threads)
        : mode_(mode), threads_(threads == 0 ? 1 : threads)
    {
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            for (size_t i = 0; i < pop.count; ++i) {
                if (mode_ == IntegrationMode::Discrete)
                    discrete_.emplace_back(pop.params);
                else
                    continuous_.emplace_back(pop.params, solver);
            }
        }
    }

    const char *name() const override { return "reference"; }

    void
    step(std::span<const double> input,
         std::vector<uint8_t> &fired) override
    {
        const size_t n = mode_ == IntegrationMode::Discrete
                             ? discrete_.size()
                             : continuous_.size();
        flexon_assert(input.size() >= n * maxSynapseTypes);
        // Chunked parallel neuron update on the persistent pool.
        // Each neuron's state is private and every lane writes a
        // disjoint byte range of `fired`, so no intermediate
        // flag buffer (and no per-step allocation) is needed.
        fired.resize(n);
        uint8_t *const flags = fired.data();
        ThreadPool::global().parallelFor(
            n, threads_, [&](size_t, size_t begin, size_t end) {
                if (mode_ == IntegrationMode::Discrete) {
                    for (size_t i = begin; i < end; ++i) {
                        flags[i] = discrete_[i].step(
                            input.subspan(i * maxSynapseTypes,
                                          maxSynapseTypes));
                    }
                } else {
                    for (size_t i = begin; i < end; ++i) {
                        flags[i] = continuous_[i].step(
                            input.subspan(i * maxSynapseTypes,
                                          maxSynapseTypes));
                    }
                }
            });
    }

    void
    reset() override
    {
        for (auto &neuron : discrete_)
            neuron.reset();
        for (auto &neuron : continuous_)
            neuron.reset();
    }

    double
    membrane(size_t neuron) const override
    {
        return mode_ == IntegrationMode::Discrete
                   ? discrete_.at(neuron).state().v
                   : continuous_.at(neuron).state().v;
    }

  private:
    IntegrationMode mode_;
    size_t threads_;
    std::vector<ReferenceNeuron> discrete_;
    std::vector<OdeNeuron> continuous_;
};

/** Shared input-conversion logic for the two hardware backends. */
class HardwareInputScaler
{
  public:
    explicit HardwareInputScaler(const Network &network)
    {
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            const FlexonConfig config =
                FlexonConfig::fromParams(pop.params);
            for (size_t i = 0; i < pop.count; ++i)
                configs_.push_back(config);
        }
        scaled_.resize(configs_.size() * maxSynapseTypes, Fix::zero());
    }

    /**
     * Convert reference-unit accumulated weights into the hardware
     * convention: scale by epsilon_m (Table V) and, for CUB
     * configurations, merge all synapse types into one signed input.
     */
    std::span<const Fix>
    scale(std::span<const double> input, size_t ref_types_stride)
    {
        (void)ref_types_stride;
        for (size_t i = 0; i < configs_.size(); ++i) {
            const FlexonConfig &c = configs_[i];
            const size_t base = i * maxSynapseTypes;
            if (c.features.has(Feature::CUB)) {
                double sum = 0.0;
                for (size_t s = 0; s < maxSynapseTypes; ++s)
                    sum += input[base + s];
                scaled_[base] = c.scaleWeight(sum);
                for (size_t s = 1; s < maxSynapseTypes; ++s)
                    scaled_[base + s] = Fix::zero();
            } else {
                for (size_t s = 0; s < maxSynapseTypes; ++s)
                    scaled_[base + s] = c.scaleWeight(input[base + s]);
            }
        }
        return scaled_;
    }

    const FlexonConfig &config(size_t neuron) const
    {
        return configs_.at(neuron);
    }

  private:
    std::vector<FlexonConfig> configs_;
    std::vector<Fix> scaled_;
};

/** Baseline Flexon array backend. */
class FlexonBackend : public NeuronBackend
{
  public:
    FlexonBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
        : array_(width, clock_hz), scaler_(network)
    {
        array_.setHostThreads(threads);
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            array_.addPopulation(FlexonConfig::fromParams(pop.params),
                                 pop.count);
        }
    }

    const char *name() const override { return "flexon"; }

    void
    step(std::span<const double> input,
         std::vector<uint8_t> &fired) override
    {
        array_.step(scaler_.scale(input, maxSynapseTypes), fired);
    }

    void reset() override { array_.resetState(); }

    double
    modelSecondsPerStep() const override
    {
        return static_cast<double>(array_.cyclesPerStep()) /
               array_.clockHz();
    }

    double
    membrane(size_t neuron) const override
    {
        return array_.neuron(neuron).state().v.toDouble();
    }

    FlexonArray &array() { return array_; }

  private:
    FlexonArray array_;
    HardwareInputScaler scaler_;
};

/** Spatially folded Flexon array backend. */
class FoldedBackend : public NeuronBackend
{
  public:
    FoldedBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
        : array_(width, clock_hz), scaler_(network)
    {
        array_.setHostThreads(threads);
        for (size_t p = 0; p < network.numPopulations(); ++p) {
            const Population &pop = network.population(p);
            array_.addPopulation(FlexonConfig::fromParams(pop.params),
                                 pop.count);
        }
    }

    const char *name() const override { return "folded-flexon"; }

    void
    step(std::span<const double> input,
         std::vector<uint8_t> &fired) override
    {
        array_.step(scaler_.scale(input, maxSynapseTypes), fired);
    }

    void reset() override { array_.resetState(); }

    double
    modelSecondsPerStep() const override
    {
        return static_cast<double>(array_.cyclesPerStep()) /
               array_.clockHz();
    }

    double
    membrane(size_t neuron) const override
    {
        return array_.neuron(neuron).state().v.toDouble();
    }

    FoldedFlexonArray &array() { return array_; }

  private:
    FoldedFlexonArray array_;
    HardwareInputScaler scaler_;
};

} // namespace

std::unique_ptr<NeuronBackend>
makeReferenceBackend(const Network &network, IntegrationMode mode,
                     SolverKind solver, size_t threads)
{
    return std::make_unique<ReferenceBackend>(network, mode, solver,
                                              threads);
}

std::unique_ptr<NeuronBackend>
makeFlexonBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
{
    return std::make_unique<FlexonBackend>(network, width, clock_hz,
                                           threads);
}

std::unique_ptr<NeuronBackend>
makeFoldedBackend(const Network &network, size_t width,
                  double clock_hz, size_t threads)
{
    return std::make_unique<FoldedBackend>(network, width, clock_hz,
                                           threads);
}

std::unique_ptr<NeuronBackend>
makeBackend(BackendKind kind, const Network &network,
            IntegrationMode mode, SolverKind solver, size_t threads)
{
    switch (kind) {
      case BackendKind::Reference:
        return makeReferenceBackend(network, mode, solver, threads);
      case BackendKind::Flexon:
        return makeFlexonBackend(network, FlexonArray::defaultWidth,
                                 FlexonArray::defaultClockHz, threads);
      case BackendKind::Folded:
        return makeFoldedBackend(network,
                                 FoldedFlexonArray::defaultWidth,
                                 FoldedFlexonArray::defaultClockHz,
                                 threads);
      default:
        panic("invalid backend kind %d", static_cast<int>(kind));
    }
}

} // namespace flexon
