#include "snn/session.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/debug.hh"
#include "common/logging.hh"
#include "plan/planner.hh"
#include "snn/plasticity.hh"
#include "snn/serialize.hh"

namespace flexon {

SimulationSession::SimulationSession(const Network &network,
                                     StimulusGenerator stimulus,
                                     const SessionOptions &options)
    : network_(network), stimulus_(std::move(stimulus)),
      stimulusInitial_(stimulus_), options_(options),
      stimulusTimer_(metrics_.timer(
          "phase.stimulus", "host seconds in stimulus generation")),
      neuronTimer_(metrics_.timer(
          "phase.neuron", "host seconds in neuron computation")),
      synapseTimer_(metrics_.timer(
          "phase.synapse", "host seconds in synapse calculation")),
      routeTimer_(metrics_.timer(
          "phase.synapse.route",
          "host seconds in the delivery engine (clear + route)")),
      probeTimer_(metrics_.timer(
          "phase.probe", "host seconds sampling membrane probes")),
      stepsCounter_(
          metrics_.counter("sim.steps", "time steps simulated")),
      spikesCounter_(
          metrics_.counter("sim.spikes", "output spikes fired")),
      modelNeuronSecGauge_(metrics_.gauge(
          "hw.model_neuron_sec",
          "modelled hardware neuron-phase seconds"))
{
    if (!network_.finalized())
        fatal("network must be finalized before simulation");
    spikeCounts_.assign(network_.numNeurons(), 0);
    for (uint32_t probe : options_.probes)
        flexon_assert(probe < network_.numNeurons());
    probeTraces_.resize(options_.probes.size());
    firedList_.reserve(network_.numNeurons());

    // Health monitoring: resolve the effective switch once (the
    // per-step gate is then a single bool) and defend against
    // degenerate cadences.
    if (options_.health.samplePeriod == 0)
        options_.health.samplePeriod = 1;
    if (options_.metricsEvery == 0)
        options_.metricsEvery = 1;
    healthActive_ =
        options_.health.enabled && !health::globallyDisabled();
    lastFixSaturations_ = health::fixSaturations();
    if (!options_.metricsOut.empty())
        exporter_ = std::make_unique<health::MetricsExporter>(
            options_.metricsOut, options_.label);
}

SimulationSession::~SimulationSession()
{
    // If this session's registry was registered for crash dumps,
    // unregister it — a dump taken later must not read freed memory.
    health::clearCrashDumpRegistry(&metrics_);
}

const std::vector<double> &
SimulationSession::probeTrace(size_t probe) const
{
    flexon_assert(probe < probeTraces_.size());
    return probeTraces_[probe];
}

void
SimulationSession::attachPlasticityRule(PlasticityRule *rule)
{
    flexon_assert(rule != nullptr);
    plasticityRules_.push_back(rule);
}

void
SimulationSession::phaseStimulus()
{
    telemetry::ScopedTimer scope(stimulusTimer_, "sim.stimulus");
    engineInjectStimulus(t_, stimulus_.generate(t_));
}

void
SimulationSession::phaseNeuron()
{
    {
        telemetry::ScopedTimer scope(neuronTimer_, "sim.neuron");
        engineStepNeurons(t_, fired_);
    }
    modelNeuronSecGauge_.add(engineModelSecondsPerStep());
}

void
SimulationSession::phaseSynapse()
{
    telemetry::ScopedTimer scope(synapseTimer_, "sim.synapse");

    // Re-mirror any plasticity weight updates into the engine's
    // delivery structures (one counter compare when nothing changed).
    enginePrepareDelivery();

    // Serial bookkeeping sweep: spike counters, optional event
    // recording, and the ascending fired list delivery iterates.
    firedList_.clear();
    const uint32_t numNeurons =
        static_cast<uint32_t>(network_.numNeurons());
    for (uint32_t n = 0; n < numNeurons; ++n) {
        if (!fired_[n])
            continue;
        firedList_.push_back(n);
        ++spikeCounts_[n];
        if (options_.recordSpikes)
            spikeEvents_.push_back({t_, n});
    }
    spikesCounter_.add(firedList_.size());

    // Rate estimator for the auto engine switch: pure function of
    // the spike history, so it stays deterministic and restorable.
    if (numNeurons > 0) {
        const double inst = static_cast<double>(firedList_.size()) /
                            static_cast<double>(numNeurons);
        ewmaRate_ += (inst - ewmaRate_) * plan::kEwmaAlpha;
    }

    telemetry::ScopedTimer routeScope(routeTimer_,
                                      "sim.synapse.route");
    engineDeliverSpikes(t_, firedList_);
}

void
SimulationSession::stepOnce()
{
    telemetry::TraceScope step("sim.step");

    // Clear the previous step's fired flags before the engine runs:
    // only the neurons in firedList_ are set, so undoing those beats
    // an O(N) fill (sparse engines skip silent neurons entirely).
    if (fired_.size() != network_.numNeurons()) {
        fired_.assign(network_.numNeurons(), 0);
    } else {
        for (uint32_t n : firedList_)
            fired_[n] = 0;
    }

    phaseStimulus();
    phaseNeuron();
    phaseSynapse();
    // Plasticity observes the completed step: same ordering as the
    // external convention (run a step, then onStep(lastFired())), so
    // attached and hand-driven rules learn identically.
    for (PlasticityRule *rule : plasticityRules_)
        rule->onStep(fired_);
    FLEXON_DPRINTF(Simulator, "step %llu: %llu spikes so far",
                   static_cast<unsigned long long>(t_),
                   static_cast<unsigned long long>(
                       spikesCounter_.value()));
    ++t_;
    stepsCounter_.add(1);
    // Probes sample after the step counter advances so membrane()
    // implementations that reconstruct state from elapsed steps (the
    // event-driven engine) see t_ = completed steps, exactly as an
    // external caller between steps would.
    if (!options_.probes.empty()) {
        telemetry::ScopedTimer scope(probeTimer_);
        for (size_t i = 0; i < options_.probes.size(); ++i)
            probeTraces_[i].push_back(membrane(options_.probes[i]));
    }
    // Health layer: a sampled detector sweep, the watchdog
    // heartbeat, and the live exporter. All three gates are a bool
    // test / relaxed load on the default path.
    if (healthActive_ && t_ % options_.health.samplePeriod == 0)
        healthSweep();
    if (health::watchdogArmed())
        health::heartbeat(t_);
    if (exporter_ && t_ % options_.metricsEvery == 0)
        exporter_->exportNow(metrics_, t_, engineKind());
}

void
SimulationSession::healthApply(health::Policy policy,
                               const char *detector, uint64_t events,
                               const std::string &message)
{
    switch (policy) {
      case health::Policy::Off:
      case health::Policy::Report:
        break;
      case health::Policy::Warn:
        // Rate-limited: the first few firings in full, then every
        // 64th — a persistent fault must not flood stderr.
        if (events <= 5 || events % 64 == 0)
            logTagged(LogLevel::Warn, "health", "%s: %s", detector,
                      message.c_str());
        break;
      case health::Policy::Abort:
        logTagged(LogLevel::Warn, "health",
                  "%s: %s (policy abort, exit %d)", detector,
                  message.c_str(), health::kDetectorExitCode);
        health::heartbeat(t_);
        health::writeCrashDump(detector);
        std::exit(health::kDetectorExitCode);
    }
    if (telemetry::traceEnabled())
        telemetry::traceInstant("health.detector");
}

void
SimulationSession::healthSweep()
{
    const health::HealthOptions &ho = options_.health;
    ++healthCounters_.sweeps;

    // Engine state scan over a rotating window, so big populations
    // are covered incrementally at O(window) per sweep.
    health::HealthScan scan;
    const uint64_t numNeurons = network_.numNeurons();
    const bool wantScan = ho.nan != health::Policy::Off ||
                          ho.saturation != health::Policy::Off ||
                          ho.ring != health::Policy::Off;
    if (wantScan && numNeurons > 0) {
        uint64_t begin = 0;
        uint64_t end = numNeurons;
        if (ho.maxScanNeurons > 0 && numNeurons > ho.maxScanNeurons) {
            begin = healthCursor_;
            end = std::min(begin + ho.maxScanNeurons, numNeurons);
            healthCursor_ = end < numNeurons ? end : 0;
        }
        engineHealthScan(begin, end, scan);
        healthCounters_.neuronsChecked += scan.checked;
    }

    if (ho.nan != health::Policy::Off && scan.nonFinite > 0) {
        ++healthCounters_.nanEvents;
        std::ostringstream msg;
        msg << scan.nonFinite << " non-finite membrane value(s), "
            << "first at neuron " << scan.firstBad << ", step " << t_;
        healthApply(ho.nan, "nan", healthCounters_.nanEvents,
                    msg.str());
    }

    // Fix saturation: the kernels tally rails process-wide; the
    // sweep attributes the delta since the previous sweep, plus any
    // membranes the scan found pinned at a rail.
    const uint64_t satNow = health::fixSaturations();
    const uint64_t satDelta = satNow - lastFixSaturations_;
    lastFixSaturations_ = satNow;
    if (ho.saturation != health::Policy::Off &&
        (satDelta > 0 || scan.saturated > 0)) {
        healthCounters_.saturationHits += satDelta + scan.saturated;
        ++healthCounters_.saturationEvents;
        std::ostringstream msg;
        msg << satDelta << " fixed-point saturation(s)";
        if (scan.saturated > 0)
            msg << " + " << scan.saturated << " railed membrane(s)";
        msg << " since last sweep, step " << t_;
        healthApply(ho.saturation, "saturation",
                    healthCounters_.saturationEvents, msg.str());
    }

    // Rate anomalies engage after the warmup transient: the EWMA
    // needs history before "explosion" or "silence" means anything.
    if (ho.rate != health::Policy::Off && t_ >= ho.rateWarmupSteps) {
        if (ewmaRate_ > ho.rateExplosion) {
            ++healthCounters_.rateExplosions;
            std::ostringstream msg;
            msg << "EWMA firing rate " << ewmaRate_
                << " above explosion threshold " << ho.rateExplosion
                << ", step " << t_;
            healthApply(ho.rate, "rate-explosion",
                        healthCounters_.rateExplosions, msg.str());
        } else if (ewmaRate_ < ho.rateSilence) {
            ++healthCounters_.rateSilences;
            std::ostringstream msg;
            msg << "EWMA firing rate " << ewmaRate_
                << " below silence threshold " << ho.rateSilence
                << ", step " << t_;
            healthApply(ho.rate, "rate-silence",
                        healthCounters_.rateSilences, msg.str());
        }
    }

    // Ring watermark: only meaningful for bounded rings (capacity 0
    // = heap-backed, can't overflow). pendingWrites counts duplicate
    // cell writes separately, so clamp the fraction at 1.
    if (ho.ring != health::Policy::Off && scan.ringCapacity > 0) {
        const double fraction =
            std::min(1.0, static_cast<double>(scan.ringOccupancy) /
                              static_cast<double>(scan.ringCapacity));
        if (fraction > healthCounters_.ringPeakFraction)
            healthCounters_.ringPeakFraction = fraction;
        if (fraction >= ho.ringWatermark && scan.ringOccupancy > 0) {
            ++healthCounters_.ringHighWater;
            std::ostringstream msg;
            msg << "delay-ring occupancy " << scan.ringOccupancy
                << "/" << scan.ringCapacity << " ("
                << static_cast<int>(fraction * 100.0)
                << "%) at/above watermark, step " << t_;
            healthApply(ho.ring, "ring-watermark",
                        healthCounters_.ringHighWater, msg.str());
        }
    }
}

void
SimulationSession::recordPlanDecision(const PlanDecision &decision)
{
    ++planDecisionsTotal_;
    if (planDecisions_.size() < kPlanAuditCapacity)
        planDecisions_.push_back(decision);
    if (telemetry::traceEnabled())
        telemetry::traceInstant("plan.decision");
}

void
SimulationSession::run(uint64_t steps)
{
    if (steps == 0)
        return;
    // Reserve recording capacity up front so per-step push_backs do
    // not reallocate mid-run. Spike-event growth is estimated from
    // the observed rate (a modest prior on a fresh session) and
    // capped so absurd step counts cannot over-commit memory.
    if (options_.recordSpikes && network_.numNeurons() > 0) {
        constexpr uint64_t maxReserveAhead = uint64_t{1} << 22;
        const double rate =
            stepsCounter_.value() > 0 ? meanRate() : 0.02;
        const double expected =
            1.25 * rate * static_cast<double>(steps) *
            static_cast<double>(network_.numNeurons());
        const auto ahead = static_cast<uint64_t>(
            std::min(expected, 1e18));
        spikeEvents_.reserve(spikeEvents_.size() +
                             std::min(ahead, maxReserveAhead));
    }
    for (auto &trace : probeTraces_)
        trace.reserve(trace.size() + steps);

    for (uint64_t i = 0; i < steps; ++i)
        stepOnce();
}

double
SimulationSession::meanRate() const
{
    const uint64_t steps = stepsCounter_.value();
    if (steps == 0 || network_.numNeurons() == 0)
        return 0.0;
    return static_cast<double>(spikesCounter_.value()) /
           (static_cast<double>(steps) *
            static_cast<double>(network_.numNeurons()));
}

const PhaseStats &
SimulationSession::stats() const
{
    statsView_.stimulusSec = stimulusTimer_.seconds();
    statsView_.neuronSec = neuronTimer_.seconds();
    statsView_.synapseSec = synapseTimer_.seconds();
    statsView_.synapseRouteSec = routeTimer_.seconds();
    statsView_.probeSec = probeTimer_.seconds();
    statsView_.steps = stepsCounter_.value();
    statsView_.spikes = spikesCounter_.value();
    statsView_.modelNeuronSec = modelNeuronSecGauge_.value();
    statsView_.threadsUsed =
        options_.threads == 0 ? 1 : options_.threads;
    refreshEngineStats(statsView_);
    // The route interval is strictly nested inside the synapse-phase
    // interval on the same steady clock.
    flexon_debug_assert(statsView_.synapseRouteSec <=
                        statsView_.synapseSec);
    const uint64_t synapses = network_.numSynapses();
    statsView_.bytesPerSynapse =
        synapses == 0
            ? 0.0
            : static_cast<double>(statsView_.connectivityBytes) /
                  static_cast<double>(synapses);
    return statsView_;
}

void
SimulationSession::printStats(std::ostream &os) const
{
    const PhaseStats &view = stats();
    auto line = [&os](const char *name, double value,
                      const char *desc) {
        os << std::left << std::setw(34) << name << ' '
           << std::setprecision(9) << value << "  # " << desc
           << '\n';
    };
    os << "---------- simulation statistics ----------\n";
    line("sim.steps", static_cast<double>(view.steps),
         "time steps simulated");
    line("sim.neurons", static_cast<double>(network_.numNeurons()),
         "neurons in the network");
    line("sim.synapses", static_cast<double>(network_.numSynapses()),
         "synapses in the network");
    line("sim.spikes", static_cast<double>(view.spikes),
         "output spikes fired");
    line("sim.rate", meanRate(), "spikes per neuron per step");
    line("sim.synapse_events",
         static_cast<double>(view.synapseEvents),
         "synaptic weight deliveries");
    line("phase.stimulus_sec", view.stimulusSec,
         "host seconds in stimulus generation");
    line("phase.neuron_sec", view.neuronSec,
         "host seconds in neuron computation");
    line("phase.synapse_sec", view.synapseSec,
         "host seconds in synapse calculation");
    line("phase.synapse_route_sec", view.synapseRouteSec,
         "host seconds in parallel spike routing");
    line("phase.probe_sec", view.probeSec,
         "host seconds sampling membrane probes");
    if (view.totalSec() > 0.0) {
        line("sim.steps_per_sec",
             static_cast<double>(view.steps) / view.totalSec(),
             "simulated steps per host second");
        line("sim.synapse_events_per_sec",
             static_cast<double>(view.synapseEvents) /
                 view.totalSec(),
             "synaptic deliveries per host second");
    }
    line("engine.threads", static_cast<double>(view.threadsUsed),
         "worker lanes per phase (1 = serial)");
    if (view.synapseSec > 0.0) {
        line("engine.route_share",
             view.synapseRouteSec / view.synapseSec,
             "delivery-engine fraction of the synapse phase");
    }
    line("engine.routing_table_bytes",
         static_cast<double>(view.routingTableBytes),
         "precompiled spike-routing table footprint");
    line("engine.connectivity_bytes",
         static_cast<double>(view.connectivityBytes),
         "total connectivity footprint (provider + network)");
    line("engine.bytes_per_synapse", view.bytesPerSynapse,
         "connectivity bytes per synapse");
    line("engine.row_cache_hits",
         static_cast<double>(view.rowCacheHits),
         "procedural hot-row cache hits");
    line("engine.row_cache_misses",
         static_cast<double>(view.rowCacheMisses),
         "procedural hot-row cache misses (rows decoded)");
    line("engine.ring_dense_clears",
         static_cast<double>(view.ringDenseClears),
         "ring-slot clears via dense fill");
    line("engine.ring_sparse_clears",
         static_cast<double>(view.ringSparseClears),
         "ring-slot clears via tracked-write undo");
    line("engine.ring_cells_cleared",
         static_cast<double>(view.ringCellsCleared),
         "cells zeroed by sparse clears");
    line("engine.router_shards_skipped",
         static_cast<double>(view.routerShardsSkipped),
         "target shards skipped by sparse delivery");
    line("engine.router_buckets_visited",
         static_cast<double>(view.routerBucketsVisited),
         "(shard, delay-bucket) pairs streamed");
    if (view.totalSec() > 0.0) {
        line("phase.neuron_share",
             view.neuronSec / view.totalSec(),
             "neuron-computation fraction of the step (Figure 3)");
    }
    if (view.modelNeuronSec > 0.0) {
        line("hw.model_neuron_sec", view.modelNeuronSec,
             "modelled hardware neuron-phase seconds");
        line("hw.speedup_vs_host",
             view.neuronSec / view.modelNeuronSec,
             "modelled hardware speedup over this host");
    }
    os << "--------------------------------------------\n";
}

void
SimulationSession::reset()
{
    engineReset();
    std::fill(spikeCounts_.begin(), spikeCounts_.end(), 0);
    // Drop the previous run's fired flags too: lastFired() must
    // report "no step taken yet" after a reset, not stale spikes.
    fired_.clear();
    firedList_.clear();
    spikeEvents_.clear();
    for (auto &trace : probeTraces_)
        trace.clear();
    metrics_.reset();
    statsView_ = PhaseStats{};
    t_ = 0;
    ewmaRate_ = 0.0;
    stimulus_ = stimulusInitial_;
    restored_ = false;
    restoredStep_ = 0;
    healthCounters_ = health::HealthCounters{};
    healthCursor_ = 0;
    lastFixSaturations_ = health::fixSaturations();
    planDecisions_.clear();
    planDecisionsTotal_ = 0;
}

void
SimulationSession::adoptSessionCore(const SimulationSession &other)
{
    if (&network_ != &other.network_)
        fatal("adoptSessionCore requires the same network");
    if (options_.probes != other.options_.probes ||
        options_.recordSpikes != other.options_.recordSpikes ||
        options_.stimulusSeed != other.options_.stimulusSeed)
        fatal("adoptSessionCore requires identical session options");

    reset();
    t_ = other.t_;
    fired_ = other.fired_;
    firedList_ = other.firedList_;
    spikeCounts_ = other.spikeCounts_;
    spikeEvents_ = other.spikeEvents_;
    probeTraces_ = other.probeTraces_;
    stimulus_ = other.stimulus_;
    ewmaRate_ = other.ewmaRate_;
    // Simulation-meaningful counters continue; wall-clock timers
    // restart from zero, exactly as after a checkpoint restore.
    stepsCounter_.add(other.stepsCounter_.value());
    spikesCounter_.add(other.spikesCounter_.value());
    modelNeuronSecGauge_.add(other.modelNeuronSecGauge_.value());
    checkpointSaves_ = other.checkpointSaves_;
    restored_ = other.restored_;
    restoredStep_ = other.restoredStep_;
    checkpointEvery_ = other.checkpointEvery_;
    planInfo_ = other.planInfo_;
    // Health tallies and the plan audit describe the whole run, so
    // an engine hand-off carries them into the new session. The
    // saturation watermark re-anchors to the process counter's
    // current value (reset() already did, but the source session may
    // have consumed deltas since this session was constructed).
    healthCounters_ = other.healthCounters_;
    healthCursor_ = other.healthCursor_;
    lastFixSaturations_ = other.lastFixSaturations_;
    planDecisions_ = other.planDecisions_;
    planDecisionsTotal_ = other.planDecisionsTotal_;
}

bool
SimulationSession::writeRunReport(const std::string &path) const
{
    const PhaseStats &view = stats();
    telemetry::ReportContext context;
    auto &config = context.config;
    engineReportConfig(config);
    config.emplace_back("threads",
                        std::to_string(view.threadsUsed));
    config.emplace_back("stimulus_seed",
                        std::to_string(options_.stimulusSeed));
    config.emplace_back("neurons",
                        std::to_string(network_.numNeurons()));
    config.emplace_back("synapses",
                        std::to_string(network_.numSynapses()));
    config.emplace_back("probes",
                        std::to_string(options_.probes.size()));
    config.emplace_back("record_spikes",
                        options_.recordSpikes ? "true" : "false");

    auto &stats = context.stats;
    auto num = [](double x) { return telemetry::jsonNumber(x); };
    stats.emplace_back("steps", std::to_string(view.steps));
    stats.emplace_back("spikes", std::to_string(view.spikes));
    stats.emplace_back("synapse_events",
                       std::to_string(view.synapseEvents));
    stats.emplace_back("mean_rate", num(meanRate()));
    stats.emplace_back("stimulus_sec", num(view.stimulusSec));
    stats.emplace_back("neuron_sec", num(view.neuronSec));
    stats.emplace_back("synapse_sec", num(view.synapseSec));
    stats.emplace_back("synapse_route_sec",
                       num(view.synapseRouteSec));
    stats.emplace_back("probe_sec", num(view.probeSec));
    stats.emplace_back("total_sec", num(view.totalSec()));
    stats.emplace_back("model_neuron_sec",
                       num(view.modelNeuronSec));
    stats.emplace_back("routing_table_bytes",
                       std::to_string(view.routingTableBytes));
    stats.emplace_back("connectivity_bytes",
                       std::to_string(view.connectivityBytes));
    stats.emplace_back("bytes_per_synapse",
                       num(view.bytesPerSynapse));
    stats.emplace_back("row_cache_hits",
                       std::to_string(view.rowCacheHits));
    stats.emplace_back("row_cache_misses",
                       std::to_string(view.rowCacheMisses));
    stats.emplace_back("ring_dense_clears",
                       std::to_string(view.ringDenseClears));
    stats.emplace_back("ring_sparse_clears",
                       std::to_string(view.ringSparseClears));
    stats.emplace_back("ring_cells_cleared",
                       std::to_string(view.ringCellsCleared));
    stats.emplace_back("router_shards_skipped",
                       std::to_string(view.routerShardsSkipped));
    stats.emplace_back("router_buckets_visited",
                       std::to_string(view.routerBucketsVisited));
    stats.emplace_back("ewma_rate", num(ewmaRate_));
    if (view.totalSec() > 0.0) {
        stats.emplace_back(
            "steps_per_sec",
            num(static_cast<double>(view.steps) / view.totalSec()));
        stats.emplace_back(
            "synapse_events_per_sec",
            num(static_cast<double>(view.synapseEvents) /
                view.totalSec()));
    }
    engineReportStats(stats);

    telemetry::ReportFields checkpoint;
    checkpoint.emplace_back(
        "enabled", checkpointEvery_ > 0 ? "true" : "false");
    checkpoint.emplace_back("every",
                            std::to_string(checkpointEvery_));
    checkpoint.emplace_back("saves",
                            std::to_string(checkpointSaves_));
    checkpoint.emplace_back("restored",
                            restored_ ? "true" : "false");
    checkpoint.emplace_back("restored_step",
                            std::to_string(restoredStep_));
    context.sections.emplace_back("checkpoint",
                                  std::move(checkpoint));

    // Health section (always present in v5): what the detectors were
    // configured to do and what they saw.
    telemetry::ReportFields healthFields;
    healthFields.emplace_back("enabled",
                              healthActive_ ? "true" : "false");
    healthFields.emplace_back(
        "policy",
        telemetry::jsonQuoted(health::specString(options_.health)));
    healthFields.emplace_back(
        "sample_every", std::to_string(options_.health.samplePeriod));
    healthFields.emplace_back(
        "sweeps", std::to_string(healthCounters_.sweeps));
    healthFields.emplace_back(
        "neurons_checked",
        std::to_string(healthCounters_.neuronsChecked));
    healthFields.emplace_back(
        "nan_events", std::to_string(healthCounters_.nanEvents));
    healthFields.emplace_back(
        "saturation_events",
        std::to_string(healthCounters_.saturationEvents));
    healthFields.emplace_back(
        "saturation_hits",
        std::to_string(healthCounters_.saturationHits));
    healthFields.emplace_back(
        "rate_explosions",
        std::to_string(healthCounters_.rateExplosions));
    healthFields.emplace_back(
        "rate_silences",
        std::to_string(healthCounters_.rateSilences));
    healthFields.emplace_back(
        "ring_high_water",
        std::to_string(healthCounters_.ringHighWater));
    healthFields.emplace_back(
        "ring_peak_fraction",
        num(healthCounters_.ringPeakFraction));
    healthFields.emplace_back(
        "watchdog_stalls", std::to_string(health::watchdogStalls()));
    context.sections.emplace_back("health",
                                  std::move(healthFields));

    // Plan-decision audit trail (only when anyone recorded one).
    if (planDecisionsTotal_ > 0) {
        telemetry::ReportFields audit;
        audit.emplace_back("recorded",
                           std::to_string(planDecisions_.size()));
        audit.emplace_back(
            "dropped", std::to_string(planDecisionsTotal_ -
                                      planDecisions_.size()));
        std::string decisions = "[";
        for (size_t i = 0; i < planDecisions_.size(); ++i) {
            const PlanDecision &d = planDecisions_[i];
            if (i > 0)
                decisions += ", ";
            decisions += "{\"step\": " + std::to_string(d.step) +
                         ", \"ewma_rate\": " + num(d.ewmaRate) +
                         ", \"predicted_dense_sec\": " +
                         num(d.predictedDenseSec) +
                         ", \"predicted_event_sec\": " +
                         num(d.predictedEventSec) + ", \"chosen\": " +
                         telemetry::jsonQuoted(d.chosen) +
                         ", \"switched\": " +
                         (d.switched ? "true" : "false") + "}";
        }
        decisions += "]";
        audit.emplace_back("decisions", std::move(decisions));
        context.sections.emplace_back("plan_audit",
                                      std::move(audit));
    }

    if (planInfo_.present) {
        telemetry::ReportFields planFields;
        planFields.emplace_back(
            "strategy", telemetry::jsonQuoted(planInfo_.strategy));
        planFields.emplace_back("planned",
                                planInfo_.planned ? "true"
                                                  : "false");
        planFields.emplace_back(
            "predicted_step_sec", num(planInfo_.predictedStepSec));
        const double measured =
            view.steps > 0
                ? view.totalSec() / static_cast<double>(view.steps)
                : 0.0;
        planFields.emplace_back("measured_step_sec", num(measured));
        planFields.emplace_back("crossover_rate",
                                num(planInfo_.crossoverRate));
        planFields.emplace_back(
            "calibration_version",
            telemetry::jsonQuoted(planInfo_.calibrationVersion));
        context.sections.emplace_back("plan",
                                      std::move(planFields));
    }

    context.metrics = &metrics_;
    return telemetry::writeReportFile(path, context);
}

// ---- Checkpoint/restore ----------------------------------------

void
SimulationSession::saveCheckpoint(std::ostream &os) const
{
    // Arms the stream: 17 significant digits from here on.
    writeCheckpointHeader(os, engineKind());

    os << "session " << network_.numNeurons() << ' ' << t_ << '\n';
    // Only simulation-meaningful counters are captured; wall-clock
    // phase timers are host-specific and restart from zero. The EWMA
    // rate rides along so engine-selection decisions continue
    // deterministically after a restore.
    os << "counters " << stepsCounter_.value() << ' '
       << spikesCounter_.value() << ' '
       << modelNeuronSecGauge_.value() << ' ' << ewmaRate_ << '\n';

    os << "spike_counts";
    for (const uint64_t c : spikeCounts_)
        os << ' ' << c;
    os << '\n';

    os << "probes " << probeTraces_.size() << '\n';
    for (const auto &trace : probeTraces_) {
        os << "trace " << trace.size();
        for (const double v : trace)
            os << ' ' << v;
        os << '\n';
    }

    os << "spike_events " << spikeEvents_.size();
    for (const SpikeEvent &e : spikeEvents_)
        os << ' ' << e.step << ' ' << e.neuron;
    os << '\n';

    stimulus_.saveState(os);

    // Plasticity-mutated weights. The watermark is informational
    // (diagnostics); restore rewrites the weights through the
    // logging mutators, which floods the network's mutation log and
    // lets delivery providers re-mirror on their next
    // refreshWeights(). Materialized networks snapshot the full
    // weight vector (form 1); procedural networks snapshot the spec
    // seed plus the sparse overlay (form 2) — the generator
    // reproduces every untouched weight, so the checkpoint stays
    // O(mutated) instead of O(synapses).
    const bool haveWeights = network_.weightMutations() > 0;
    if (!haveWeights) {
        os << "weights 0\n";
    } else if (network_.procedural()) {
        const auto overlay = network_.sortedOverlay();
        os << "weights 2\n";
        os << network_.connectivitySpec().seed << ' '
           << overlay.size();
        for (const auto &[idx, w] : overlay)
            os << ' ' << idx << ' ' << w;
        os << '\n';
    } else {
        os << "weights 1\n";
        os << network_.weightMutations() << ' '
           << network_.numSynapses();
        for (uint64_t i = 0; i < network_.numSynapses(); ++i)
            os << ' ' << network_.synapseAt(i).weight;
        os << '\n';
    }

    // Attached plasticity rules (v4): one tagged state record per
    // rule, in attachment order. Rules driven externally (never
    // attached) keep checkpointing their state beside the session's,
    // as before.
    os << "plasticity " << plasticityRules_.size() << '\n';
    for (const PlasticityRule *rule : plasticityRules_) {
        os << "rule " << rule->kind() << '\n';
        rule->saveState(os);
    }

    os << "engine\n";
    engineSaveState(os);
    os << "end\n";

    ++checkpointSaves_;
}

void
SimulationSession::loadCheckpoint(std::istream &is,
                                  Network *mutableNetwork)
{
    // Restoring onto a used session must equal restoring onto a
    // fresh one: wipe everything first (also zeroes the registry the
    // counters below are re-seeded into).
    reset();

    const CheckpointHeader header = readCheckpointHeaderInfo(is);
    if (header.engine != engineKind()) {
        fatal("checkpoint was written by a '%s' engine, cannot "
              "restore into '%s'",
              header.engine.c_str(), engineKind());
    }

    std::string tag;
    uint64_t neurons = 0;
    is >> tag >> neurons >> t_;
    if (tag != "session" || !is)
        fatal("malformed checkpoint session line");
    if (neurons != network_.numNeurons()) {
        fatal("checkpoint is for %llu neurons, this network has "
              "%llu",
              static_cast<unsigned long long>(neurons),
              static_cast<unsigned long long>(
                  network_.numNeurons()));
    }

    uint64_t steps = 0, spikes = 0;
    double modelSec = 0.0;
    is >> tag >> steps >> spikes >> modelSec >> ewmaRate_;
    if (tag != "counters" || !is)
        fatal("malformed checkpoint counters line");
    stepsCounter_.add(steps);
    spikesCounter_.add(spikes);
    modelNeuronSecGauge_.add(modelSec);

    is >> tag;
    if (tag != "spike_counts")
        fatal("malformed checkpoint spike_counts block");
    for (uint64_t &c : spikeCounts_)
        is >> c;

    size_t numProbes = 0;
    is >> tag >> numProbes;
    if (tag != "probes" || !is)
        fatal("malformed checkpoint probes block");
    if (numProbes != probeTraces_.size()) {
        fatal("checkpoint has %zu probe traces, session is "
              "configured with %zu probes",
              numProbes, probeTraces_.size());
    }
    for (auto &trace : probeTraces_) {
        size_t len = 0;
        is >> tag >> len;
        if (tag != "trace" || !is)
            fatal("malformed checkpoint probe trace");
        trace.resize(len);
        for (double &v : trace)
            is >> v;
    }

    size_t numEvents = 0;
    is >> tag >> numEvents;
    if (tag != "spike_events" || !is)
        fatal("malformed checkpoint spike_events block");
    spikeEvents_.resize(numEvents);
    for (SpikeEvent &e : spikeEvents_)
        is >> e.step >> e.neuron;

    stimulus_.loadState(is);

    int haveWeights = 0;
    is >> tag >> haveWeights;
    if (tag != "weights" || !is)
        fatal("malformed checkpoint weights block");
    if (haveWeights != 0 && mutableNetwork != &network_) {
        fatal("checkpoint carries mutated synapse weights; "
              "loadCheckpoint needs the session's own Network "
              "passed as mutableNetwork");
    }
    if (haveWeights == 1) {
        if (network_.procedural())
            fatal("checkpoint carries a full weight vector "
                  "(materialized storage); this network is "
                  "procedural — restore with the connectivity mode "
                  "that wrote it");
        uint64_t watermark = 0, numSynapses = 0;
        is >> watermark >> numSynapses;
        if (!is || numSynapses != network_.numSynapses())
            fatal("checkpoint weight vector does not match the "
                  "network's synapse count");
        for (uint64_t i = 0; i < numSynapses; ++i) {
            float w = 0.0f;
            is >> w;
            // Through the logging mutator: delivery tables notice
            // and re-mirror on their next refreshWeights().
            mutableNetwork->synapseAt(i).weight = w;
        }
    } else if (haveWeights == 2) {
        if (!network_.procedural())
            fatal("checkpoint carries a procedural weight overlay; "
                  "this network stores its synapses — restore with "
                  "--connectivity=procedural");
        uint64_t seed = 0, count = 0;
        is >> seed >> count;
        if (!is || seed != network_.connectivitySpec().seed)
            fatal("checkpoint overlay was generated from spec seed "
                  "%llu, this network uses %llu",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(
                      network_.connectivitySpec().seed));
        // Start from generated weights, then re-apply the deltas
        // (both through log-flooding mutators, so caches refresh).
        mutableNetwork->clearWeightOverlay();
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t idx = 0;
            float w = 0.0f;
            is >> idx >> w;
            if (!is || idx >= network_.numSynapses())
                fatal("malformed checkpoint overlay entry %llu",
                      static_cast<unsigned long long>(i));
            mutableNetwork->setSynapseWeight(idx, w);
        }
    } else if (haveWeights != 0) {
        fatal("unknown checkpoint weights form %d", haveWeights);
    }

    // Plasticity block (v4+). Older snapshots have none: any rules
    // attached to this session keep their current state, matching
    // the historical external convention.
    if (header.version >= 4) {
        size_t numRules = 0;
        is >> tag >> numRules;
        if (tag != "plasticity" || !is)
            fatal("malformed checkpoint plasticity block");
        if (numRules != plasticityRules_.size()) {
            fatal("checkpoint carries %zu plasticity rules, this "
                  "session has %zu attached",
                  numRules, plasticityRules_.size());
        }
        for (PlasticityRule *rule : plasticityRules_) {
            std::string kind;
            is >> tag >> kind;
            if (tag != "rule" || !is || kind != rule->kind()) {
                fatal("checkpoint plasticity rule '%s' does not "
                      "match attached rule '%s'",
                      kind.c_str(), rule->kind());
            }
            rule->loadState(is);
        }
    }

    is >> tag;
    if (tag != "engine" || !is)
        fatal("malformed checkpoint engine block");
    engineLoadState(is);

    is >> tag;
    if (tag != "end" || !is)
        fatal("truncated checkpoint (missing end marker)");

    restored_ = true;
    restoredStep_ = t_;
}

bool
SimulationSession::saveCheckpointFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("cannot open checkpoint file '%s' for writing",
             path.c_str());
        return false;
    }
    saveCheckpoint(os);
    os.flush();
    if (!os) {
        warn("failed writing checkpoint file '%s'", path.c_str());
        return false;
    }
    return true;
}

void
SimulationSession::loadCheckpointFile(const std::string &path,
                                      Network *mutableNetwork)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open checkpoint file '%s'", path.c_str());
    loadCheckpoint(is, mutableNetwork);
}

} // namespace flexon
