#include "snn/routing.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

RoutingTable::RoutingTable(const Network &network, size_t shardCount,
                           telemetry::Registry *metrics)
    : network_(network)
{
    if (metrics != nullptr) {
        tailRefreshCounter_ = &metrics->counter(
            "route.refresh_tail",
            "weight refreshes replayed from the mutation-log tail");
        fullRefreshCounter_ = &metrics->counter(
            "route.refresh_full",
            "weight refreshes via a full-table mirror");
    }
    if (!network.finalized())
        fatal("network must be finalized before routing-table build");
    const size_t n = network.numNeurons();
    const uint64_t total = network.numSynapses();
    if (total >= std::numeric_limits<uint32_t>::max()) {
        fatal("routing table supports < 2^32 synapses (network has "
              "%llu)",
              static_cast<unsigned long long>(total));
    }
    if (n > std::numeric_limits<uint32_t>::max() / maxSynapseTypes)
        fatal("routing table cell offsets overflow at %zu neurons", n);
    rowStride_ = n + 1;

    shardCount_ = shardCount == 0 ? 1 : shardCount;
    shardCount_ = std::min(shardCount_, ThreadPool::maxLanes);
    if (shardCount_ > n)
        shardCount_ = n == 0 ? 1 : n;

    // Incoming delivery count per target neuron: the load-balancing
    // weight for the shard boundaries.
    std::vector<uint64_t> incoming(n, 0);
    for (uint32_t src = 0; src < n; ++src)
        for (const Synapse &syn : network.outgoing(src))
            ++incoming[syn.target];

    // Cut the target axis into shardCount_ contiguous ranges of
    // roughly equal incoming-synapse load.
    shardTargetBegin_.assign(shardCount_ + 1, 0);
    shardTargetBegin_[shardCount_] = static_cast<uint32_t>(n);
    uint64_t accum = 0;
    size_t shard = 1;
    for (uint32_t target = 0; target < n && shard < shardCount_;
         ++target) {
        accum += incoming[target];
        if (accum * shardCount_ >= total * shard) {
            shardTargetBegin_[shard] = target + 1;
            ++shard;
        }
    }
    for (; shard < shardCount_; ++shard)
        shardTargetBegin_[shard] = static_cast<uint32_t>(n);

    // Target neuron -> owning shard.
    std::vector<uint32_t> shardOf(n, 0);
    for (size_t s = 0; s < shardCount_; ++s)
        for (uint32_t t = shardTargetBegin_[s];
             t < shardTargetBegin_[s + 1]; ++t)
            shardOf[t] = static_cast<uint32_t>(s);

    // Delay buckets cover only the delay values that occur, so the
    // CSR does not scale with the ring depth of sparse delay sets.
    std::array<bool, 256> delayUsed{};
    for (uint32_t src = 0; src < n; ++src)
        for (const Synapse &syn : network.outgoing(src))
            delayUsed[syn.delay] = true;
    std::array<uint8_t, 256> bucketOf{};
    for (size_t d = 0; d < delayUsed.size(); ++d) {
        if (delayUsed[d]) {
            bucketOf[d] = static_cast<uint8_t>(bucketDelay_.size());
            bucketDelay_.push_back(static_cast<uint8_t>(d));
        }
    }
    const size_t buckets = bucketDelay_.size();
    const size_t blocks = shardCount_ * buckets;

    // Counting sort into (shard, bucket, source-row) runs, keeping
    // row order within each run (the order-preservation invariant).
    rowPtr_.assign(blocks * rowStride_, 0);
    for (uint32_t src = 0; src < n; ++src) {
        for (const Synapse &syn : network.outgoing(src)) {
            const size_t block =
                shardOf[syn.target] * buckets + bucketOf[syn.delay];
            ++rowPtr_[block * rowStride_ + src + 1];
        }
    }
    uint32_t running = 0;
    for (size_t block = 0; block < blocks; ++block) {
        uint32_t *ptr = rowPtr_.data() + block * rowStride_;
        ptr[0] = running;
        for (size_t r = 1; r <= n; ++r) {
            running += ptr[r];
            ptr[r] = running;
        }
    }

    records_.resize(total);
    recordOf_.resize(total);
    std::vector<uint32_t> fill(rowPtr_.size());
    for (size_t block = 0; block < blocks; ++block)
        for (size_t r = 0; r < n; ++r)
            fill[block * rowStride_ + r] =
                rowPtr_[block * rowStride_ + r];
    for (uint32_t src = 0; src < n; ++src) {
        const uint64_t base = network.rowStart(src);
        const auto row = network.outgoing(src);
        for (size_t k = 0; k < row.size(); ++k) {
            const Synapse &syn = row[k];
            const size_t block =
                shardOf[syn.target] * buckets + bucketOf[syn.delay];
            const uint32_t pos = fill[block * rowStride_ + src]++;
            records_[pos] = {static_cast<uint32_t>(
                                 syn.target * maxSynapseTypes +
                                 syn.type),
                             syn.weight};
            recordOf_[base + k] = pos;
        }
    }
    weightsSeen_ = network.weightMutations();
}

void
RoutingTable::refreshWeights()
{
    const uint64_t total = network_.weightMutations();
    if (total == weightsSeen_)
        return;
    if (total - weightsSeen_ <= Network::weightLogCapacity) {
        // Replay just the logged mutations (idempotent, duplicates
        // and read-only accesses included).
        for (uint64_t m = weightsSeen_; m < total; ++m) {
            const uint64_t idx = network_.weightLogEntry(m);
            records_[recordOf_[idx]].weight =
                network_.synapseAt(idx).weight;
        }
        if (tailRefreshCounter_ != nullptr)
            tailRefreshCounter_->add(1);
    } else {
        // Too far behind the log ring: mirror every weight.
        const uint64_t count = network_.numSynapses();
        for (uint64_t idx = 0; idx < count; ++idx) {
            records_[recordOf_[idx]].weight =
                network_.synapseAt(idx).weight;
        }
        if (fullRefreshCounter_ != nullptr)
            fullRefreshCounter_->add(1);
    }
    weightsSeen_ = total;
}

size_t
RoutingTable::memoryBytes() const
{
    return records_.capacity() * sizeof(DeliveryRecord) +
           rowPtr_.capacity() * sizeof(uint32_t) +
           recordOf_.capacity() * sizeof(uint32_t) +
           shardTargetBegin_.capacity() * sizeof(uint32_t) +
           bucketDelay_.capacity();
}

SpikeRouter::SpikeRouter(const Network &network, size_t shardCount,
                         telemetry::Registry *metrics)
    : table_(network, shardCount, metrics),
      ringDepth_(static_cast<size_t>(network.maxDelay()) + 1),
      slotSize_(network.numNeurons() * maxSynapseTypes)
{
    if (metrics != nullptr && slotSize_ > 0) {
        touchedCellsCounter_ = &metrics->counter(
            "route.touched_cells",
            "ring cells tracked as written, summed over steps");
        occupancyHist_ = &metrics->histogram(
            "route.ring_occupancy", 0.0, 1.0, 20,
            "per-step fraction of the consumed slot's cells "
            "tracked as written (1.0 = saturated/dense)");
    }
    ring_.assign(ringDepth_ * slotSize_, 0.0);
    slotBase_.assign(ringDepth_, nullptr);
    laneEvents_.assign(table_.shardCount(), 0);

    // Crossover between undoing tracked writes and a dense fill: the
    // sequential std::fill streams ~4x faster per cell than scattered
    // zeroing, so clear sparsely only below a quarter of the slot.
    sparseClearBudget_ = slotSize_ / 4 + 1;
    touched_.assign(ringDepth_ * table_.shardCount(),
                    TouchList(sparseClearBudget_));
    stimTouched_.assign(ringDepth_, TouchList(sparseClearBudget_));
}

std::span<double>
SpikeRouter::slot(uint64_t t)
{
    return {ring_.data() + (t % ringDepth_) * slotSize_, slotSize_};
}

std::span<const double>
SpikeRouter::slot(uint64_t t) const
{
    return {ring_.data() + (t % ringDepth_) * slotSize_, slotSize_};
}

void
SpikeRouter::laneClear(size_t slotIdx, size_t shard, bool dense)
{
    double *const base = ring_.data() + slotIdx * slotSize_;
    const auto &targetBegin = table_.shardTargetBegin();
    const uint32_t cellLo = targetBegin[shard] * maxSynapseTypes;
    const uint32_t cellHi = targetBegin[shard + 1] * maxSynapseTypes;

    if (dense) {
        std::fill(base + cellLo, base + cellHi, 0.0);
    } else {
        // Undo the tracked writes of this shard's cell range only.
        // Every lane scans the (small) stimulus list and zeroes just
        // its own cells, so lanes never touch the same cell.
        for (const uint64_t cell : stimTouched_[slotIdx].keys()) {
            if (cell >= cellLo && cell < cellHi)
                base[cell] = 0.0;
        }
        for (const uint64_t key : touch(slotIdx, shard).keys()) {
            const size_t bucket = key >> 32;
            const auto src = static_cast<uint32_t>(key);
            for (const DeliveryRecord &rec :
                 table_.row(shard, bucket, src))
                base[rec.cell] = 0.0;
        }
    }
    touch(slotIdx, shard).clear();
}

void
SpikeRouter::laneRoute(uint64_t t, size_t shard,
                       std::span<const uint32_t> fired)
{
    const DeliveryRecord *const recs = table_.records();
    uint64_t events = 0;
    for (size_t b = 0; b < table_.bucketCount(); ++b) {
        if (table_.bucketEmpty(shard, b))
            continue;
        const uint32_t *const rows = table_.rowPtr(shard, b);
        const uint8_t delay = table_.bucketDelay(b);
        double *const base = slotBase_[delay];
        TouchList &pending =
            touch((t + delay) % ringDepth_, shard);
        if (pending.saturated()) {
            // The slot is already committed to a dense clear, so
            // tracking further writes buys nothing: stream only.
            for (const uint32_t n : fired) {
                uint32_t k = rows[n];
                const uint32_t end = rows[n + 1];
                events += end - k;
                for (; k < end; ++k)
                    base[recs[k].cell] += recs[k].weight;
            }
            continue;
        }
        for (const uint32_t n : fired) {
            uint32_t k = rows[n];
            const uint32_t end = rows[n + 1];
            if (k == end)
                continue;
            pending.add((static_cast<uint64_t>(b) << 32) | n,
                        end - k);
            events += end - k;
            for (; k < end; ++k)
                base[recs[k].cell] += recs[k].weight;
        }
    }
    laneEvents_[shard] = events;
}

void
SpikeRouter::routeStep(uint64_t t, std::span<const uint32_t> fired)
{
    const size_t slotIdx = t % ringDepth_;
    const size_t shards = table_.shardCount();

    // Dense/sparse decision for the consumed slot: total tracked
    // undo cost vs. the crossover budget. Saturated touch lists have
    // cost >= budget, so an incomplete key list always forces the
    // dense path.
    uint64_t cost = stimTouched_[slotIdx].cost();
    for (size_t s = 0; s < shards; ++s)
        cost += touch(slotIdx, s).cost();
    const bool dense = cost >= sparseClearBudget_;
    if (dense) {
        ++denseClears_;
    } else {
        ++sparseClears_;
        cellsCleared_ += cost;
    }
    if (occupancyHist_ != nullptr && telemetry::detailEnabled()) {
        touchedCellsCounter_->add(cost);
        occupancyHist_->sample(static_cast<double>(cost) /
                               static_cast<double>(slotSize_));
    }

    if (fired.empty() || table_.bucketCount() == 0) {
        // Quiet step: clear inline, no pool barrier.
        for (size_t s = 0; s < shards; ++s)
            laneClear(slotIdx, s, dense);
        stimTouched_[slotIdx].clear();
        return;
    }

    for (size_t d = 0; d < ringDepth_; ++d)
        slotBase_[d] =
            ring_.data() + ((t + d) % ringDepth_) * slotSize_;

    // Each lane clears its own shard's cells, then streams its own
    // shard's delivery records: contention-free, and every ring cell
    // receives its additions in exactly the serial order (see the
    // order-preservation argument in the file header) — results are
    // bit-identical for any shard count.
    ThreadPool::global().forEachLane(shards, [&](size_t s) {
        laneClear(slotIdx, s, dense);
        laneRoute(t, s, fired);
    });
    stimTouched_[slotIdx].clear();
    for (size_t s = 0; s < shards; ++s)
        events_ += laneEvents_[s];
}

namespace {

/**
 * Write `values` with runs of exact +0.0 encoded as `zN`. Only the
 * canonical positive zero is eligible: a negative zero (which the
 * delivery path never produces, but the encoder must not assume) is
 * written as a plain value so the bit pattern survives.
 */
void
writeRingRle(std::ostream &os, const std::vector<double> &values)
{
    size_t i = 0;
    while (i < values.size()) {
        const double x = values[i];
        if (x == 0.0 && !std::signbit(x)) {
            size_t run = 1;
            while (i + run < values.size() &&
                   values[i + run] == 0.0 &&
                   !std::signbit(values[i + run]))
                ++run;
            os << " z" << run;
            i += run;
        } else {
            os << ' ' << x;
            ++i;
        }
    }
}

void
readRingRle(std::istream &is, std::vector<double> &values)
{
    size_t i = 0;
    std::string token;
    while (i < values.size() && is >> token) {
        if (token[0] == 'z') {
            const size_t run = std::stoull(token.substr(1));
            if (run == 0 || run > values.size() - i)
                fatal("corrupt ring run length in checkpoint");
            std::fill(values.begin() + i, values.begin() + i + run,
                      0.0);
            i += run;
        } else {
            values[i++] = std::stod(token);
        }
    }
    if (i != values.size())
        fatal("truncated delay-ring data in checkpoint");
}

void
writeTouchList(std::ostream &os, const TouchList &list)
{
    const auto keys = list.keys();
    os << "touch " << list.cost() << ' ' << keys.size();
    for (const uint64_t key : keys)
        os << ' ' << key;
    os << '\n';
}

void
readTouchList(std::istream &is, TouchList &list)
{
    std::string tag;
    uint64_t cost = 0;
    size_t count = 0;
    is >> tag >> cost >> count;
    if (tag != "touch" || !is)
        fatal("malformed touch list in checkpoint");
    std::vector<uint64_t> keys(count);
    for (uint64_t &key : keys)
        is >> key;
    if (!is)
        fatal("truncated touch list in checkpoint");
    list.restore(std::move(keys), cost);
}

} // namespace

void
SpikeRouter::saveState(std::ostream &os) const
{
    os << "router " << ringDepth_ << ' ' << slotSize_ << ' '
       << table_.shardCount() << '\n';
    os << "ring";
    writeRingRle(os, ring_);
    os << '\n';
    for (const TouchList &list : touched_)
        writeTouchList(os, list);
    for (const TouchList &list : stimTouched_)
        writeTouchList(os, list);
    os << "counters " << events_ << ' ' << denseClears_ << ' '
       << sparseClears_ << ' ' << cellsCleared_ << '\n';
}

void
SpikeRouter::loadState(std::istream &is)
{
    std::string tag;
    size_t depth = 0, slot = 0, shards = 0;
    is >> tag >> depth >> slot >> shards;
    if (tag != "router" || !is || depth != ringDepth_ ||
        slot != slotSize_ || shards != table_.shardCount()) {
        fatal("checkpoint router geometry mismatch (expected "
              "%zu x %zu x %zu)",
              ringDepth_, slotSize_, table_.shardCount());
    }
    is >> tag;
    if (tag != "ring" || !is)
        fatal("malformed ring section in checkpoint");
    readRingRle(is, ring_);
    for (TouchList &list : touched_)
        readTouchList(is, list);
    for (TouchList &list : stimTouched_)
        readTouchList(is, list);
    is >> tag >> events_ >> denseClears_ >> sparseClears_ >>
        cellsCleared_;
    if (tag != "counters" || !is)
        fatal("truncated router counters in checkpoint");
}

void
SpikeRouter::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0.0);
    for (TouchList &list : touched_)
        list.clear();
    for (TouchList &list : stimTouched_)
        list.clear();
    events_ = 0;
    denseClears_ = 0;
    sparseClears_ = 0;
    cellsCleared_ = 0;
}

} // namespace flexon
