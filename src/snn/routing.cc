#include "snn/routing.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

namespace {

/**
 * Touch-key encodings for the delivery ring's undo lists. The PR 5
 * loops write `bucket << 32 | src` and the clear re-derives the
 * record span with a row probe; the sparse loops instead write the
 * span itself — kRangeKey | [kSourceMajorKey] | len << 32 | offset —
 * so the clear streams records with no probing. Bucket indices are
 * < 2^24, so bit 63 cleanly separates the two forms and mixed lists
 * (mode switches, restored checkpoints) stay interpretable.
 */
constexpr uint64_t kRangeKey = uint64_t{1} << 63;
/** Range key's offset addresses the source-major mirror. */
constexpr uint64_t kSourceMajorKey = uint64_t{1} << 62;

constexpr uint64_t
rangeKey(uint32_t offset, uint32_t len, bool sourceMajor)
{
    return kRangeKey | (sourceMajor ? kSourceMajorKey : 0) |
           (static_cast<uint64_t>(len) << 32) | offset;
}

} // namespace

RoutingTable::RoutingTable(const Network &network, size_t shardCount,
                           telemetry::Registry *metrics)
    : network_(network)
{
    if (metrics != nullptr) {
        tailRefreshCounter_ = &metrics->counter(
            "route.refresh_tail",
            "weight refreshes replayed from the mutation-log tail");
        fullRefreshCounter_ = &metrics->counter(
            "route.refresh_full",
            "weight refreshes via a full-table mirror");
    }
    if (!network.finalized())
        fatal("network must be finalized before routing-table build");
    const size_t n = network.numNeurons();
    const uint64_t total = network.numSynapses();
    if (total >= std::numeric_limits<uint32_t>::max()) {
        fatal("routing table supports < 2^32 synapses (network has "
              "%llu)",
              static_cast<unsigned long long>(total));
    }
    rowStride_ = n + 1;

    // Shard boundaries, delay buckets and the shard lookup come from
    // the shared geometry builder, so every ConnectivityProvider —
    // this table included — agrees on the layout structurally.
    geo_ = buildConnectivityGeometry(network, shardCount);
    const size_t shardTotal = geo_.shardCount;
    const std::vector<uint32_t> &shardOf = geo_.shardOf;
    const std::array<uint8_t, 256> &bucketOf = geo_.bucketOf;
    const size_t buckets = geo_.bucketDelay.size();
    const size_t blocks = shardTotal * buckets;

    // Activity bitmaps: which (shard, bucket) pairs each source row
    // can deliver into. One word per (source, shard) as long as the
    // bucket count fits; beyond 64 distinct delays the masks are
    // dropped and delivery scans buckets instead.
    masksExact_ = buckets <= 64;
    if (masksExact_)
        rowMask_.assign(n * shardTotal, 0);

    // Counting sort into (shard, bucket, source-row) runs, keeping
    // row order within each run (the order-preservation invariant).
    rowPtr_.assign(blocks * rowStride_, 0);
    for (uint32_t src = 0; src < n; ++src) {
        for (const Synapse &syn : network.outgoing(src)) {
            const size_t s = shardOf[syn.target];
            const size_t b = bucketOf[syn.delay];
            ++rowPtr_[(s * buckets + b) * rowStride_ + src + 1];
            if (masksExact_)
                rowMask_[src * shardTotal + s] |= uint64_t{1} << b;
        }
    }
    uint32_t running = 0;
    for (size_t block = 0; block < blocks; ++block) {
        uint32_t *ptr = rowPtr_.data() + block * rowStride_;
        ptr[0] = running;
        for (size_t r = 1; r <= n; ++r) {
            running += ptr[r];
            ptr[r] = running;
        }
    }

    records_.resize(total);
    recordOf_.resize(total);
    std::vector<uint32_t> fill(rowPtr_.size());
    for (size_t block = 0; block < blocks; ++block)
        for (size_t r = 0; r < n; ++r)
            fill[block * rowStride_ + r] =
                rowPtr_[block * rowStride_ + r];
    for (uint32_t src = 0; src < n; ++src) {
        const uint64_t base = network.rowStart(src);
        const auto row = network.outgoing(src);
        for (size_t k = 0; k < row.size(); ++k) {
            const Synapse &syn = row[k];
            const size_t block =
                shardOf[syn.target] * buckets + bucketOf[syn.delay];
            const uint32_t pos = fill[block * rowStride_ + src]++;
            records_[pos] = {static_cast<uint32_t>(
                                 syn.target * maxSynapseTypes +
                                 syn.type),
                             syn.weight};
            recordOf_[base + k] = pos;
        }
    }

    // Source-major mirror: copy each (src, shard)'s rows in
    // ascending-bucket order out of the bucket-major table, packing
    // one run header per populated bucket. srcPosOf_ keeps weight
    // refreshes O(1) per mutation for both layouts.
    srcRecords_.resize(total);
    srcPosOf_.resize(total);
    srcRunPtr_.assign(n * shardTotal + 1, 0);
    srcRecPtr_.assign(n * shardTotal + 1, 0);
    uint32_t runCount = 0, recCount = 0;
    for (uint32_t src = 0; src < n; ++src) {
        for (size_t s = 0; s < shardTotal; ++s) {
            const size_t at = src * shardTotal + s;
            srcRunPtr_[at] = runCount;
            srcRecPtr_[at] = recCount;
            for (size_t b = 0; b < buckets; ++b) {
                const uint32_t *ptr =
                    rowPtr(s, b); // block-local CSR, global offsets
                const uint32_t lo = ptr[src], hi = ptr[src + 1];
                if (lo == hi)
                    continue;
                flexon_assert(hi - lo < (uint32_t{1} << 24));
                ++runCount;
                for (uint32_t p = lo; p < hi; ++p) {
                    srcPosOf_[p] = recCount;
                    srcRecords_[recCount++] = records_[p];
                }
            }
        }
    }
    srcRunPtr_[n * shardTotal] = runCount;
    srcRecPtr_[n * shardTotal] = recCount;
    srcRuns_.resize(runCount);
    runCount = 0;
    for (uint32_t src = 0; src < n; ++src) {
        for (size_t s = 0; s < shardTotal; ++s) {
            for (size_t b = 0; b < buckets; ++b) {
                const uint32_t *ptr = rowPtr(s, b);
                if (ptr[src] == ptr[src + 1])
                    continue;
                srcRuns_[runCount++] =
                    (static_cast<uint32_t>(b) << 24) |
                    (ptr[src + 1] - ptr[src]);
            }
        }
    }

    weightsSeen_ = network.weightMutations();
}

void
RoutingTable::refreshWeights()
{
    const uint64_t total = network_.weightMutations();
    if (total == weightsSeen_)
        return;
    if (total - weightsSeen_ <= Network::weightLogCapacity) {
        // Replay just the logged mutations (idempotent, duplicates
        // and read-only accesses included).
        for (uint64_t m = weightsSeen_; m < total; ++m) {
            const uint64_t idx = network_.weightLogEntry(m);
            const uint32_t pos = recordOf_[idx];
            const float w = network_.synapseAt(idx).weight;
            records_[pos].weight = w;
            srcRecords_[srcPosOf_[pos]].weight = w;
        }
        if (tailRefreshCounter_ != nullptr)
            tailRefreshCounter_->add(1);
    } else {
        // Too far behind the log ring: mirror every weight.
        const uint64_t count = network_.numSynapses();
        for (uint64_t idx = 0; idx < count; ++idx) {
            const uint32_t pos = recordOf_[idx];
            const float w = network_.synapseAt(idx).weight;
            records_[pos].weight = w;
            srcRecords_[srcPosOf_[pos]].weight = w;
        }
        if (fullRefreshCounter_ != nullptr)
            fullRefreshCounter_->add(1);
    }
    weightsSeen_ = total;
}

size_t
RoutingTable::memoryBytes() const
{
    return records_.capacity() * sizeof(DeliveryRecord) +
           srcRecords_.capacity() * sizeof(DeliveryRecord) +
           rowPtr_.capacity() * sizeof(uint32_t) +
           recordOf_.capacity() * sizeof(uint32_t) +
           srcRuns_.capacity() * sizeof(uint32_t) +
           srcRunPtr_.capacity() * sizeof(uint32_t) +
           srcRecPtr_.capacity() * sizeof(uint32_t) +
           srcPosOf_.capacity() * sizeof(uint32_t) +
           rowMask_.capacity() * sizeof(uint64_t) +
           geo_.shardTargetBegin.capacity() * sizeof(uint32_t) +
           geo_.shardOf.capacity() * sizeof(uint32_t) +
           geo_.bucketDelay.capacity();
}

const RoutingTable &
SpikeRouter::table() const
{
    if (mat_ == nullptr)
        fatal("SpikeRouter::table(): the %s connectivity provider "
              "has no materialized routing table",
              connectivityKindName(conn_->kind()));
    return *mat_;
}

SpikeRouter::SpikeRouter(const Network &network, size_t shardCount,
                         telemetry::Registry *metrics,
                         ConnectivityKind kind)
    : conn_(makeConnectivityProvider(kind, network, shardCount,
                                     metrics)),
      mat_(conn_->materializedTable()),
      shards_(conn_->shardCount()),
      ringDepth_(static_cast<size_t>(network.maxDelay()) + 1),
      slotSize_(network.numNeurons() * maxSynapseTypes)
{
    if (metrics != nullptr) {
        shardsSkippedCounter_ = &metrics->counter(
            "snn.router.shards_skipped",
            "target shards skipped entirely by sparse delivery");
        bucketsVisitedCounter_ = &metrics->counter(
            "snn.router.buckets_visited",
            "(shard, delay-bucket) pairs streamed by delivery");
    }
    if (metrics != nullptr && slotSize_ > 0) {
        touchedCellsCounter_ = &metrics->counter(
            "route.touched_cells",
            "ring cells tracked as written, summed over steps");
        occupancyHist_ = &metrics->histogram(
            "route.ring_occupancy", 0.0, 1.0, 20,
            "per-step fraction of the consumed slot's cells "
            "tracked as written (1.0 = saturated/dense)");
    }
    ring_.assign(ringDepth_ * slotSize_, 0.0);
    slotBase_.assign(ringDepth_, nullptr);
    touchBase_.assign(ringDepth_, nullptr);
    const size_t shards = shards_;
    scratch_.resize(mat_ == nullptr ? shards : 0);
    laneEvents_.assign(shards, 0);
    laneBuckets_.assign(shards, 0);
    laneDense_.assign(shards, 0);
    routeMask_.assign(shards, 0);
    activeShards_.reserve(shards);

    // Crossover between undoing tracked writes and a dense fill: the
    // sequential std::fill streams ~4x faster per cell than scattered
    // zeroing, so clear sparsely only below a quarter of the shard's
    // cell range. The touch lists share the budget, so a saturated
    // list always implies a dense clear for its shard.
    shardClearBudget_.assign(shards, 1);
    const auto &targetBegin = conn_->shardTargetBegin();
    touched_.reserve(ringDepth_ * shards);
    stimTouched_.reserve(ringDepth_ * shards);
    for (size_t s = 0; s < shards; ++s) {
        const uint64_t cells =
            static_cast<uint64_t>(targetBegin[s + 1] -
                                  targetBegin[s]) *
            maxSynapseTypes;
        shardClearBudget_[s] = cells / 4 + 1;
    }
    for (size_t slot = 0; slot < ringDepth_; ++slot)
        for (size_t s = 0; s < shards; ++s)
            touched_.emplace_back(shardClearBudget_[s]);
    for (size_t slot = 0; slot < ringDepth_; ++slot)
        for (size_t s = 0; s < shards; ++s)
            stimTouched_.emplace_back(shardClearBudget_[s]);
}

std::span<double>
SpikeRouter::slot(uint64_t t)
{
    return {ring_.data() + (t % ringDepth_) * slotSize_, slotSize_};
}

std::span<const double>
SpikeRouter::slot(uint64_t t) const
{
    return {ring_.data() + (t % ringDepth_) * slotSize_, slotSize_};
}

void
SpikeRouter::laneClear(size_t slotIdx, size_t shard, bool dense)
{
    double *const base = ring_.data() + slotIdx * slotSize_;

    if (dense) {
        const auto &targetBegin = conn_->shardTargetBegin();
        const uint32_t cellLo = targetBegin[shard] * maxSynapseTypes;
        const uint32_t cellHi =
            targetBegin[shard + 1] * maxSynapseTypes;
        std::fill(base + cellLo, base + cellHi, 0.0);
    } else {
        // Undo the tracked writes of this shard only; lanes never
        // touch another shard's cells. Range keys (bit 63, written
        // by the sparse delivery loops) carry their record span
        // directly; legacy (bucket << 32 | src) keys re-derive it
        // with a row probe — against the materialized table when one
        // exists, or by re-decoding the source row through the
        // provider (topology is immutable, so the regenerated row
        // covers exactly the cells the original delivery wrote).
        // Mixed lists are fine — each key is self-describing, which
        // keeps checkpoints portable across delivery modes.
        for (const uint64_t cell : stimTouch(slotIdx, shard).keys())
            base[cell] = 0.0;
        for (const uint64_t key : touch(slotIdx, shard).keys()) {
            if ((key & kRangeKey) != 0) {
                if (mat_ == nullptr) {
                    // Record-range keys are offsets into the
                    // materialized arrays; they only appear here
                    // when a materialized-mode checkpoint is
                    // restored into a decoding provider.
                    fatal("checkpoint touch records reference a "
                          "materialized routing table; restore "
                          "with --connectivity=materialized");
                }
                const auto off = static_cast<uint32_t>(key);
                const uint32_t len = (key >> 32) & 0xFFFFFFu;
                const DeliveryRecord *rec =
                    (key & kSourceMajorKey) != 0
                        ? mat_->sourceRecordAt(off)
                        : mat_->recordAt(off);
                for (uint32_t k = 0; k < len; ++k, ++rec)
                    base[rec->cell] = 0.0;
                continue;
            }
            const size_t bucket = key >> 32;
            const auto src = static_cast<uint32_t>(key);
            if (mat_ != nullptr) {
                for (const DeliveryRecord &rec :
                     mat_->row(shard, bucket, src))
                    base[rec.cell] = 0.0;
                continue;
            }
            const RowView row =
                conn_->rowSpan(src, shard, scratch_[shard]);
            const DeliveryRecord *rec = row.records;
            for (const uint32_t header : row.runs) {
                const uint32_t len = runHeaderLength(header);
                if (runHeaderBucket(header) == bucket) {
                    for (uint32_t k = 0; k < len; ++k)
                        base[rec[k].cell] = 0.0;
                    break;
                }
                rec += len;
            }
        }
    }
    touch(slotIdx, shard).clear();
    stimTouch(slotIdx, shard).clear();
}

void
SpikeRouter::laneRoute(uint64_t t, size_t shard,
                       std::span<const uint32_t> fired)
{
    const DeliveryRecord *const recs = mat_->records();
    uint64_t events = 0;
    uint64_t buckets = 0;
    for (size_t b = 0; b < mat_->bucketCount(); ++b) {
        if (mat_->bucketEmpty(shard, b))
            continue;
        ++buckets;
        const uint32_t *const rows = mat_->rowPtr(shard, b);
        const uint8_t delay = mat_->bucketDelay(b);
        double *const base = slotBase_[delay];
        TouchList &pending =
            touch((t + delay) % ringDepth_, shard);
        if (pending.saturated()) {
            // The slot is already committed to a dense clear, so
            // tracking further writes buys nothing: stream only.
            for (const uint32_t n : fired) {
                uint32_t k = rows[n];
                const uint32_t end = rows[n + 1];
                events += end - k;
                for (; k < end; ++k)
                    base[recs[k].cell] += recs[k].weight;
            }
            continue;
        }
        for (const uint32_t n : fired) {
            uint32_t k = rows[n];
            const uint32_t end = rows[n + 1];
            if (k == end)
                continue;
            pending.add((static_cast<uint64_t>(b) << 32) | n,
                        end - k);
            events += end - k;
            for (; k < end; ++k)
                base[recs[k].cell] += recs[k].weight;
        }
    }
    laneEvents_[shard] = events;
    laneBuckets_[shard] = buckets;
}

void
SpikeRouter::laneRouteMasked(uint64_t t, size_t shard,
                             std::span<const uint32_t> fired)
{
    // Bucket-major like the scan loop — records of one (shard,
    // bucket) stream sequentially across the fired sources — but
    // directed by the OR of the fired rows' activity masks, so only
    // buckets some fired source actually feeds are visited at all.
    // The per-bucket fired scan is ascending as in the scan loop, so
    // every ring cell receives its additions in the identical order:
    // bit-identical results.
    const DeliveryRecord *const recs = mat_->records();
    uint64_t events = 0;
    uint64_t m = routeMask_[shard];
    laneBuckets_[shard] = static_cast<uint64_t>(std::popcount(m));
    while (m != 0) {
        const auto b = static_cast<size_t>(std::countr_zero(m));
        m &= m - 1;
        const uint32_t *const rows = mat_->rowPtr(shard, b);
        const uint8_t delay = mat_->bucketDelay(b);
        double *const base = slotBase_[delay];
        TouchList &pending = touchBase_[delay][shard];
        if (pending.saturated()) {
            for (const uint32_t n : fired) {
                uint32_t k = rows[n];
                const uint32_t end = rows[n + 1];
                events += end - k;
                for (; k < end; ++k)
                    base[recs[k].cell] += recs[k].weight;
            }
            continue;
        }
        for (const uint32_t n : fired) {
            uint32_t k = rows[n];
            const uint32_t end = rows[n + 1];
            if (k == end)
                continue;
            pending.add(rangeKey(k, end - k, false), end - k);
            events += end - k;
            for (; k < end; ++k)
                base[recs[k].cell] += recs[k].weight;
        }
    }
    laneEvents_[shard] = events;
}

void
SpikeRouter::laneRouteSourceMajor(uint64_t t, size_t shard,
                                  std::span<const uint32_t> fired)
{
    // One contiguous (headers, records) stream per fired row — the
    // probe-free walk sparse steps want. Addition order per cell is
    // identical to the bucket-major loops (see the table's
    // source-major notes), so results stay bit-identical.
    uint64_t events = 0;
    uint64_t streams = 0;
    for (const uint32_t n : fired) {
        const std::span<const uint32_t> runs =
            mat_->sourceRuns(n, shard);
        uint32_t off = mat_->sourceRecordOffset(n, shard);
        const DeliveryRecord *rec = mat_->sourceRecordAt(off);
        streams += runs.size();
        for (const uint32_t header : runs) {
            const size_t b = RoutingTable::runBucket(header);
            const uint32_t len = RoutingTable::runLength(header);
            const uint8_t delay = mat_->bucketDelay(b);
            double *const base = slotBase_[delay];
            TouchList &pending = touchBase_[delay][shard];
            if (!pending.saturated())
                pending.add(rangeKey(off, len, true), len);
            events += len;
            off += len;
            for (uint32_t k = 0; k < len; ++k, ++rec)
                base[rec->cell] += rec->weight;
        }
    }
    laneEvents_[shard] = events;
    laneBuckets_[shard] = streams;
}

void
SpikeRouter::laneRouteRows(uint64_t t, size_t shard,
                           std::span<const uint32_t> fired)
{
    // Decoding-provider delivery: stream each fired row through
    // rowSpan() — source-major over (this shard's) bucket runs, the
    // same walk order as laneRouteSourceMajor, so floating-point
    // accumulation per ring cell is bit-identical to the
    // materialized paths. Touch keys are the legacy self-describing
    // (bucket << 32 | src) form, which laneClear can undo by
    // re-decoding the row (record-offset range keys would dangle —
    // decoded records live in scratch, not in a stable array).
    (void)t;
    const bool exact = conn_->rowMasksExact();
    uint64_t events = 0;
    uint64_t streams = 0;
    RowScratch &scratch = scratch_[shard];
    for (const uint32_t n : fired) {
        if (exact && (conn_->rowMask(n, shard) == 0))
            continue;
        const RowView row = conn_->rowSpan(n, shard, scratch);
        const DeliveryRecord *rec = row.records;
        streams += row.runs.size();
        for (const uint32_t header : row.runs) {
            const size_t b = runHeaderBucket(header);
            const uint32_t len = runHeaderLength(header);
            const uint8_t delay = conn_->bucketDelay(b);
            double *const base = slotBase_[delay];
            TouchList &pending = touchBase_[delay][shard];
            if (!pending.saturated())
                pending.add((static_cast<uint64_t>(b) << 32) | n,
                            len);
            events += len;
            for (uint32_t k = 0; k < len; ++k, ++rec)
                base[rec->cell] += rec->weight;
        }
    }
    laneEvents_[shard] = events;
    laneBuckets_[shard] = streams;
}

void
SpikeRouter::legacyRouteStep(uint64_t t, size_t slotIdx,
                             std::span<const uint32_t> fired)
{
    const size_t shards = shards_;
    if (fired.empty() || conn_->bucketCount() == 0) {
        // Quiet step: clear inline, no pool barrier.
        for (size_t s = 0; s < shards; ++s)
            laneClear(slotIdx, s, laneDense_[s] != 0);
        return;
    }

    for (size_t d = 0; d < ringDepth_; ++d) {
        const size_t slot = (t + d) % ringDepth_;
        slotBase_[d] = ring_.data() + slot * slotSize_;
        touchBase_[d] = touched_.data() + slot * shards;
    }

    // Every shard clears and bucket-scans, every active step pays
    // the pool barrier: the PR 5 schedule, kept as the reference
    // point for the sparse path (and as the mask-overflow fallback
    // dispatch would behave without skipping). Decoding providers
    // have no bucket-major CSR to scan, so their lanes stream the
    // fired rows instead.
    ThreadPool::global().forEachLane(shards, [&](size_t s) {
        laneClear(slotIdx, s, laneDense_[s] != 0);
        if (mat_ != nullptr)
            laneRoute(t, s, fired);
        else
            laneRouteRows(t, s, fired);
    });
    for (size_t s = 0; s < shards; ++s)
        events_ += laneEvents_[s];
}

void
SpikeRouter::routeStep(uint64_t t, std::span<const uint32_t> fired)
{
    const size_t slotIdx = t % ringDepth_;
    const size_t shards = shards_;

    // Serial provider hook before any lane touches rowSpan(): the
    // procedural provider decodes this step's fired rows into its
    // hot-row cache here, where mutation is single-threaded.
    if (mat_ == nullptr && !fired.empty())
        conn_->prepareStep(fired);

    // Dense/sparse decision for the consumed slot, per shard:
    // tracked undo cost vs. the shard's crossover budget. Saturated
    // touch lists have cost >= budget, so an incomplete key list
    // always forces the dense path for its shard.
    uint64_t totalCost = 0;
    bool anyDense = false;
    for (size_t s = 0; s < shards; ++s) {
        const uint64_t cost =
            stimTouch(slotIdx, s).cost() + touch(slotIdx, s).cost();
        totalCost += cost;
        laneDense_[s] = cost >= shardClearBudget_[s] ? 1 : 0;
        anyDense = anyDense || laneDense_[s] != 0;
    }
    if (anyDense) {
        ++denseClears_;
    } else {
        ++sparseClears_;
        cellsCleared_ += totalCost;
    }
    if (occupancyHist_ != nullptr && telemetry::detailEnabled()) {
        touchedCellsCounter_->add(totalCost);
        occupancyHist_->sample(static_cast<double>(totalCost) /
                               static_cast<double>(slotSize_));
    }

    if (!sparseDelivery_) {
        legacyRouteStep(t, slotIdx, fired);
        return;
    }

    // Route-activity masks: OR the fired sources' per-shard bucket
    // bitmaps. Without exact masks (> 64 delay buckets) any firing
    // marks every shard for the bucket-scan fallback.
    const bool exact = conn_->rowMasksExact();
    const bool haveRoute =
        !fired.empty() && conn_->bucketCount() > 0;
    std::fill(routeMask_.begin(), routeMask_.end(), 0);
    if (haveRoute) {
        if (exact) {
            for (const uint32_t n : fired) {
                const uint64_t *const m = conn_->rowMaskRow(n);
                for (size_t s = 0; s < shards; ++s)
                    routeMask_[s] |= m[s];
            }
        } else {
            std::fill(routeMask_.begin(), routeMask_.end(),
                      ~uint64_t{0});
        }
    }

    // Compact the shards that have any work: route deliveries or a
    // non-empty consumed slot. The rest are skipped outright — their
    // slot region is already zero and nothing routes into them.
    activeShards_.clear();
    for (size_t s = 0; s < shards; ++s) {
        const bool clearWork =
            stimTouch(slotIdx, s).cost() + touch(slotIdx, s).cost() >
            0;
        if (clearWork || routeMask_[s] != 0)
            activeShards_.push_back(static_cast<uint32_t>(s));
    }
    const uint64_t skipped = shards - activeShards_.size();
    shardsSkipped_ += skipped;
    if (shardsSkippedCounter_ != nullptr)
        shardsSkippedCounter_->add(skipped);
    if (activeShards_.empty())
        return;

    if (haveRoute) {
        for (size_t d = 0; d < ringDepth_; ++d) {
            const size_t slot = (t + d) % ringDepth_;
            slotBase_[d] = ring_.data() + slot * slotSize_;
            touchBase_[d] = touched_.data() + slot * shards;
        }
    }

    // Per-step layout choice, deterministic in the fired count alone:
    // few sources -> stream each row's contiguous source-major runs
    // (no per-bucket probing, and no mask needed, so it also covers
    // the > 64-bucket case); many sources -> the bucket-major loops,
    // whose per-bucket streams amortize better during bursts.
    const bool sourceMajor =
        haveRoute && fired.size() < conn_->bucketCount();

    auto laneWork = [&](size_t i) {
        const size_t s = activeShards_[i];
        laneEvents_[s] = 0;
        laneBuckets_[s] = 0;
        laneClear(slotIdx, s, laneDense_[s] != 0);
        if (routeMask_[s] != 0) {
            if (mat_ == nullptr)
                laneRouteRows(t, s, fired);
            else if (sourceMajor)
                laneRouteSourceMajor(t, s, fired);
            else if (exact)
                laneRouteMasked(t, s, fired);
            else
                laneRoute(t, s, fired);
        }
    };
    if (!haveRoute) {
        // Clear-only step: stay inline regardless of shard count —
        // the undo work is tiny and never worth a pool barrier.
        for (size_t i = 0; i < activeShards_.size(); ++i)
            laneWork(i);
    } else {
        ThreadPool::global().forEachLane(activeShards_.size(),
                                         laneWork);
    }
    uint64_t visited = 0;
    for (const uint32_t s : activeShards_) {
        events_ += laneEvents_[s];
        visited += laneBuckets_[s];
    }
    bucketsVisited_ += visited;
    if (bucketsVisitedCounter_ != nullptr)
        bucketsVisitedCounter_->add(visited);
}

namespace {

/**
 * Write `values` with runs of exact +0.0 encoded as `zN`. Only the
 * canonical positive zero is eligible: a negative zero (which the
 * delivery path never produces, but the encoder must not assume) is
 * written as a plain value so the bit pattern survives.
 */
void
writeRingRle(std::ostream &os, const std::vector<double> &values)
{
    size_t i = 0;
    while (i < values.size()) {
        const double x = values[i];
        if (x == 0.0 && !std::signbit(x)) {
            size_t run = 1;
            while (i + run < values.size() &&
                   values[i + run] == 0.0 &&
                   !std::signbit(values[i + run]))
                ++run;
            os << " z" << run;
            i += run;
        } else {
            os << ' ' << x;
            ++i;
        }
    }
}

void
readRingRle(std::istream &is, std::vector<double> &values)
{
    size_t i = 0;
    std::string token;
    while (i < values.size() && is >> token) {
        if (token[0] == 'z') {
            const size_t run = std::stoull(token.substr(1));
            if (run == 0 || run > values.size() - i)
                fatal("corrupt ring run length in checkpoint");
            std::fill(values.begin() + i, values.begin() + i + run,
                      0.0);
            i += run;
        } else {
            values[i++] = std::stod(token);
        }
    }
    if (i != values.size())
        fatal("truncated delay-ring data in checkpoint");
}

void
writeTouchList(std::ostream &os, const TouchList &list)
{
    const auto keys = list.keys();
    os << "touch " << list.cost() << ' ' << keys.size();
    for (const uint64_t key : keys)
        os << ' ' << key;
    os << '\n';
}

void
readTouchList(std::istream &is, TouchList &list)
{
    std::string tag;
    uint64_t cost = 0;
    size_t count = 0;
    is >> tag >> cost >> count;
    if (tag != "touch" || !is)
        fatal("malformed touch list in checkpoint");
    std::vector<uint64_t> keys(count);
    for (uint64_t &key : keys)
        is >> key;
    if (!is)
        fatal("truncated touch list in checkpoint");
    list.restore(std::move(keys), cost);
}

} // namespace

void
SpikeRouter::exportRing(uint64_t t, RingTransfer &out) const
{
    out.assign(ringDepth_, {});
    for (size_t d = 0; d < ringDepth_; ++d) {
        const std::span<const double> s = slot(t + d);
        for (size_t c = 0; c < s.size(); ++c) {
            if (s[c] != 0.0)
                out[d].emplace_back(static_cast<uint32_t>(c), s[c]);
        }
    }
}

void
SpikeRouter::importRing(uint64_t t, const RingTransfer &slots)
{
    if (slots.size() > ringDepth_)
        fatal("ring transfer depth %zu exceeds ring depth %zu",
              slots.size(), ringDepth_);
    for (size_t d = 0; d < slots.size(); ++d) {
        double *const base =
            ring_.data() + ((t + d) % ringDepth_) * slotSize_;
        for (const auto &[cell, value] : slots[d]) {
            base[cell] = value;
            noteStimulus(t + d, cell);
        }
    }
}

void
SpikeRouter::saveState(std::ostream &os) const
{
    os << "router " << ringDepth_ << ' ' << slotSize_ << ' '
       << shards_ << '\n';
    os << "ring";
    writeRingRle(os, ring_);
    os << '\n';
    for (const TouchList &list : touched_)
        writeTouchList(os, list);
    for (const TouchList &list : stimTouched_)
        writeTouchList(os, list);
    os << "counters " << events_ << ' ' << denseClears_ << ' '
       << sparseClears_ << ' ' << cellsCleared_ << ' '
       << shardsSkipped_ << ' ' << bucketsVisited_ << '\n';
}

void
SpikeRouter::loadState(std::istream &is)
{
    std::string tag;
    size_t depth = 0, slot = 0, shards = 0;
    is >> tag >> depth >> slot >> shards;
    if (tag != "router" || !is || depth != ringDepth_ ||
        slot != slotSize_ || shards != shards_) {
        fatal("checkpoint router geometry mismatch (expected "
              "%zu x %zu x %zu)",
              ringDepth_, slotSize_, shards_);
    }
    is >> tag;
    if (tag != "ring" || !is)
        fatal("malformed ring section in checkpoint");
    readRingRle(is, ring_);
    for (TouchList &list : touched_)
        readTouchList(is, list);
    for (TouchList &list : stimTouched_)
        readTouchList(is, list);
    is >> tag >> events_ >> denseClears_ >> sparseClears_ >>
        cellsCleared_ >> shardsSkipped_ >> bucketsVisited_;
    if (tag != "counters" || !is)
        fatal("truncated router counters in checkpoint");
}

void
SpikeRouter::reset()
{
    std::fill(ring_.begin(), ring_.end(), 0.0);
    for (TouchList &list : touched_)
        list.clear();
    for (TouchList &list : stimTouched_)
        list.clear();
    events_ = 0;
    denseClears_ = 0;
    sparseClears_ = 0;
    cellsCleared_ = 0;
    shardsSkipped_ = 0;
    bucketsVisited_ = 0;
    conn_->reset();
}

} // namespace flexon
