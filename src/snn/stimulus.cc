#include "snn/stimulus.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace flexon {

StimulusSource
StimulusSource::poisson(uint32_t base, uint32_t count,
                        double probability, float weight, uint8_t type)
{
    flexon_assert(probability >= 0.0 && probability <= 1.0);
    flexon_assert(count > 0);
    StimulusSource s;
    s.kind_ = Kind::Poisson;
    s.base_ = base;
    s.count_ = count;
    s.probability_ = probability;
    s.weight_ = weight;
    s.type_ = type;
    return s;
}

StimulusSource
StimulusSource::pattern(uint32_t base, uint32_t count, uint32_t period,
                        float weight, uint8_t type)
{
    flexon_assert(period >= 1);
    flexon_assert(count > 0);
    StimulusSource s;
    s.kind_ = Kind::Pattern;
    s.base_ = base;
    s.count_ = count;
    s.period_ = period;
    s.weight_ = weight;
    s.type_ = type;
    return s;
}

StimulusSource
StimulusSource::ou(uint32_t base, uint32_t count, double mean,
                   double sigma, double tau, uint8_t type)
{
    flexon_assert(count > 0);
    flexon_assert(tau >= 1.0);
    flexon_assert(sigma >= 0.0);
    StimulusSource s;
    s.kind_ = Kind::OrnsteinUhlenbeck;
    s.base_ = base;
    s.count_ = count;
    s.ouMean_ = mean;
    s.ouSigma_ = sigma;
    s.ouTau_ = tau;
    s.type_ = type;
    return s;
}

void
StimulusSource::generate(uint64_t t, Rng &rng,
                         std::vector<StimulusSpike> &out)
{
    if (kind_ == Kind::Poisson) {
        for (uint32_t i = 0; i < count_; ++i) {
            if (rng.bernoulli(probability_))
                out.push_back({base_ + i, weight_, type_});
        }
    } else if (kind_ == Kind::Pattern) {
        if (t % period_ == 0) {
            for (uint32_t i = 0; i < count_; ++i)
                out.push_back({base_ + i, weight_, type_});
        }
    } else {
        if (ouState_.empty())
            ouState_.assign(count_, ouMean_);
        const double noise_gain =
            ouSigma_ * std::sqrt(2.0 / ouTau_);
        for (uint32_t i = 0; i < count_; ++i) {
            double &x = ouState_[i];
            x += (ouMean_ - x) / ouTau_ + noise_gain * rng.normal();
            x = std::max(0.0, x);
            if (x > 0.0) {
                out.push_back(
                    {base_ + i, static_cast<float>(x), type_});
            }
        }
    }
}

double
StimulusSource::expectedSpikesPerStep() const
{
    if (kind_ == Kind::Poisson)
        return probability_ * count_;
    if (kind_ == Kind::Pattern)
        return static_cast<double>(count_) / period_;
    return static_cast<double>(count_); // OU: one input per neuron
}

void
StimulusSource::saveState(std::ostream &os) const
{
    // Only the OU trajectory is dynamic; everything else is
    // configuration, reconstructed by the owner. An OU source whose
    // state is still lazily unallocated writes length 0, and loading
    // length 0 restores exactly that (the first generate() seeds it).
    os << "source " << ouState_.size();
    for (const double x : ouState_)
        os << ' ' << x;
    os << '\n';
}

void
StimulusSource::loadState(std::istream &is)
{
    std::string tag;
    size_t len = 0;
    is >> tag >> len;
    if (tag != "source" || !is)
        fatal("malformed stimulus-source state in checkpoint");
    ouState_.resize(len);
    for (double &x : ouState_)
        is >> x;
    if (!is)
        fatal("truncated stimulus-source state in checkpoint");
}

StimulusGenerator::StimulusGenerator(uint64_t seed) : rng_(seed)
{
}

void
StimulusGenerator::addSource(const StimulusSource &source)
{
    sources_.push_back(source);
}

const std::vector<StimulusSpike> &
StimulusGenerator::generate(uint64_t t)
{
    buffer_.clear();
    for (StimulusSource &s : sources_)
        s.generate(t, rng_, buffer_);
    return buffer_;
}

double
StimulusGenerator::expectedSpikesPerStep() const
{
    double total = 0.0;
    for (const StimulusSource &s : sources_)
        total += s.expectedSpikesPerStep();
    return total;
}

void
StimulusGenerator::saveState(std::ostream &os) const
{
    const RngState rng = rng_.state();
    os << "stimulus " << sources_.size() << '\n';
    os << "rng " << rng.s[0] << ' ' << rng.s[1] << ' ' << rng.s[2]
       << ' ' << rng.s[3] << ' ' << rng.cachedNormal << ' '
       << (rng.hasCachedNormal ? 1 : 0) << '\n';
    for (const StimulusSource &s : sources_)
        s.saveState(os);
}

void
StimulusGenerator::loadState(std::istream &is)
{
    std::string tag;
    size_t count = 0;
    is >> tag >> count;
    if (tag != "stimulus" || !is)
        fatal("malformed stimulus state in checkpoint");
    if (count != sources_.size()) {
        fatal("checkpoint has %zu stimulus sources, generator has "
              "%zu — the run configuration must match",
              count, sources_.size());
    }
    RngState rng;
    int hasCached = 0;
    is >> tag >> rng.s[0] >> rng.s[1] >> rng.s[2] >> rng.s[3] >>
        rng.cachedNormal >> hasCached;
    if (tag != "rng" || !is)
        fatal("malformed stimulus RNG state in checkpoint");
    rng.hasCachedNormal = hasCached != 0;
    rng_.setState(rng);
    for (StimulusSource &s : sources_)
        s.loadState(is);
}

} // namespace flexon
