#include "snn/stimulus.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flexon {

StimulusSource
StimulusSource::poisson(uint32_t base, uint32_t count,
                        double probability, float weight, uint8_t type)
{
    flexon_assert(probability >= 0.0 && probability <= 1.0);
    flexon_assert(count > 0);
    StimulusSource s;
    s.kind_ = Kind::Poisson;
    s.base_ = base;
    s.count_ = count;
    s.probability_ = probability;
    s.weight_ = weight;
    s.type_ = type;
    return s;
}

StimulusSource
StimulusSource::pattern(uint32_t base, uint32_t count, uint32_t period,
                        float weight, uint8_t type)
{
    flexon_assert(period >= 1);
    flexon_assert(count > 0);
    StimulusSource s;
    s.kind_ = Kind::Pattern;
    s.base_ = base;
    s.count_ = count;
    s.period_ = period;
    s.weight_ = weight;
    s.type_ = type;
    return s;
}

StimulusSource
StimulusSource::ou(uint32_t base, uint32_t count, double mean,
                   double sigma, double tau, uint8_t type)
{
    flexon_assert(count > 0);
    flexon_assert(tau >= 1.0);
    flexon_assert(sigma >= 0.0);
    StimulusSource s;
    s.kind_ = Kind::OrnsteinUhlenbeck;
    s.base_ = base;
    s.count_ = count;
    s.ouMean_ = mean;
    s.ouSigma_ = sigma;
    s.ouTau_ = tau;
    s.type_ = type;
    return s;
}

void
StimulusSource::generate(uint64_t t, Rng &rng,
                         std::vector<StimulusSpike> &out)
{
    if (kind_ == Kind::Poisson) {
        for (uint32_t i = 0; i < count_; ++i) {
            if (rng.bernoulli(probability_))
                out.push_back({base_ + i, weight_, type_});
        }
    } else if (kind_ == Kind::Pattern) {
        if (t % period_ == 0) {
            for (uint32_t i = 0; i < count_; ++i)
                out.push_back({base_ + i, weight_, type_});
        }
    } else {
        if (ouState_.empty())
            ouState_.assign(count_, ouMean_);
        const double noise_gain =
            ouSigma_ * std::sqrt(2.0 / ouTau_);
        for (uint32_t i = 0; i < count_; ++i) {
            double &x = ouState_[i];
            x += (ouMean_ - x) / ouTau_ + noise_gain * rng.normal();
            x = std::max(0.0, x);
            if (x > 0.0) {
                out.push_back(
                    {base_ + i, static_cast<float>(x), type_});
            }
        }
    }
}

double
StimulusSource::expectedSpikesPerStep() const
{
    if (kind_ == Kind::Poisson)
        return probability_ * count_;
    if (kind_ == Kind::Pattern)
        return static_cast<double>(count_) / period_;
    return static_cast<double>(count_); // OU: one input per neuron
}

StimulusGenerator::StimulusGenerator(uint64_t seed) : rng_(seed)
{
}

void
StimulusGenerator::addSource(const StimulusSource &source)
{
    sources_.push_back(source);
}

const std::vector<StimulusSpike> &
StimulusGenerator::generate(uint64_t t)
{
    buffer_.clear();
    for (StimulusSource &s : sources_)
        s.generate(t, rng_, buffer_);
    return buffer_;
}

double
StimulusGenerator::expectedSpikesPerStep() const
{
    double total = 0.0;
    for (const StimulusSource &s : sources_)
        total += s.expectedSpikesPerStep();
    return total;
}

} // namespace flexon
