#include "snn/auto_engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "snn/event_driven.hh"
#include "snn/serialize.hh"

namespace flexon {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
    case EngineKind::Dense:
        return "dense";
    case EngineKind::Event:
        return "event";
    case EngineKind::Auto:
        return "auto";
    }
    return "?";
}

bool
parseEngineKind(const std::string &text, EngineKind &out)
{
    if (text == "dense")
        out = EngineKind::Dense;
    else if (text == "event")
        out = EngineKind::Event;
    else if (text == "auto")
        out = EngineKind::Auto;
    else
        return false;
    return true;
}

namespace {

SessionOptions
toSessionOptions(const SimulatorOptions &options)
{
    SessionOptions session;
    session.stimulusSeed = options.stimulusSeed;
    session.threads = options.threads;
    session.recordSpikes = options.recordSpikes;
    session.probes = options.probes;
    session.health = options.health;
    session.metricsOut = options.metricsOut;
    session.metricsEvery = options.metricsEvery;
    session.label = options.label;
    return session;
}

} // namespace

AutoSession::AutoSession(const Network &network,
                         StimulusGenerator stimulus,
                         const SimulatorOptions &options,
                         const AutoEngineOptions &autoOptions)
    : network_(network), stimulus_(std::move(stimulus)),
      options_(options), auto_(autoOptions)
{
    bool startEvent = auto_.engine == EngineKind::Event;

    if (options_.connectivity != ConnectivityKind::Materialized &&
        auto_.engine == EngineKind::Event) {
        // The event-driven engine walks stored rows through its own
        // materialized table; running it would silently ignore the
        // requested representation.
        fatal("engine=event requires materialized connectivity "
              "(requested %s)",
              connectivityKindName(options_.connectivity));
    }

    if (auto_.engine == EngineKind::Auto) {
        // Adaptivity requires the bit-exact hand-off, which exists
        // for the Reference backend's discrete LLIF path only.
        std::string why;
        if (options_.backend != BackendKind::Reference)
            why = "the " +
                  std::string(backendName(options_.backend)) +
                  " backend models hardware timing and cannot hand "
                  "off neuron state";
        else if (options_.mode != IntegrationMode::Discrete)
            why = "continuous integration carries solver state the "
                  "event-driven engine cannot reproduce";
        else if (options_.connectivity !=
                 ConnectivityKind::Materialized)
            why = std::string(connectivityKindName(
                      options_.connectivity)) +
                  " connectivity has no event-driven delivery path";
        else
            eventDrivenEligible(network_, &why);
        adaptive_ = why.empty();
        if (!adaptive_)
            warn("engine=auto: pinned to the dense engine (%s)",
                 why.c_str());
    }

    // Plan from the caller's planner, or from the process-wide
    // active calibration when none was supplied. The plan is copied
    // — later setActiveCalibration() calls do not move a live
    // session's crossover.
    const plan::ExecutionPlanner fallback;
    const plan::ExecutionPlanner &planner =
        auto_.planner != nullptr ? *auto_.planner : fallback;
    const plan::NetworkStats netStats{network_.numNeurons(),
                                      network_.numSynapses()};
    const unsigned maxThreads = static_cast<unsigned>(
        std::max<size_t>(1, options_.threads));
    plan_ = planner.plan(netStats, plan::kDefaultRatePrior,
                         maxThreads);
    planner_ = planner;
    netStats_ = netStats;

    if (adaptive_) {
        // Rate at which the planner predicts dense and event-driven
        // step costs tie (common delivery terms cancel; with the
        // builtin calibration this is the tuned 1 / (K + 1)).
        crossoverRate_ = plan_.crossoverRate;
        // A fresh network is silent: start event-driven.
        startEvent = true;
    }

    child_ = makeEngine(startEvent);
    eventActive_ = startEvent;
    applyPlanInfo();
    if (adaptive_) {
        // Audit the implicit step-0 decision (the silent-network
        // prior picking the event engine) alongside the windowed
        // ones.
        recordDecision(plan::kDefaultRatePrior, false);
    }
}

void
AutoSession::recordDecision(double rate, bool switched)
{
    const unsigned threads = static_cast<unsigned>(
        std::max<size_t>(1, options_.threads));
    PlanDecision d;
    d.step = child_->currentStep();
    d.ewmaRate = rate;
    d.predictedDenseSec =
        planner_.predictDenseStepSec(netStats_, rate, threads);
    d.predictedEventSec =
        planner_.predictEventStepSec(netStats_, rate);
    d.chosen = eventActive_ ? "event" : "dense";
    d.switched = switched;
    child_->recordPlanDecision(d);
}

void
AutoSession::applyPlanInfo()
{
    PlanInfo info;
    info.present = true;
    info.strategy = adaptive_ ? "auto"
                    : eventActive_
                        ? "event"
                        : "dense";
    info.planned = false; // flexon_sim --plan=auto overrides
    info.predictedStepSec =
        eventActive_ ? plan_.predictedEventStepSec
                     : plan_.predictedDenseStepSec;
    info.crossoverRate = adaptive_ ? crossoverRate_ : 0.0;
    info.calibrationVersion = plan_.calibrationVersion;
    child_->setPlanInfo(info);
}

std::unique_ptr<SimulationSession>
AutoSession::makeEngine(bool event) const
{
    if (event)
        return std::make_unique<EventDrivenSimulator>(
            network_, stimulus_, toSessionOptions(options_));
    return std::make_unique<Simulator>(network_, stimulus_, options_);
}

const char *
AutoSession::activeEngine() const
{
    return eventActive_ ? "event-driven" : "dense";
}

void
AutoSession::switchEngine(bool toEvent)
{
    if (toEvent == eventActive_)
        return;
    EngineTransfer xfer;
    if (!child_->engineExportTransfer(xfer)) {
        warn("engine=auto: %s engine cannot export its state; "
             "switching disabled",
             activeEngine());
        adaptive_ = false;
        return;
    }
    std::unique_ptr<SimulationSession> next = makeEngine(toEvent);
    next->adoptSessionCore(*child_);
    if (!next->engineImportTransfer(xfer)) {
        warn("engine=auto: hand-off import failed; switching "
             "disabled");
        adaptive_ = false;
        return;
    }
    child_ = std::move(next);
    eventActive_ = toEvent;
    ++switches_;
}

void
AutoSession::decide()
{
    const double rate = child_->ewmaRate();
    const double margin = 1.0 + auto_.hysteresis;
    const bool wasEvent = eventActive_;
    if (eventActive_) {
        if (rate > crossoverRate_ * margin)
            switchEngine(false);
    } else {
        if (rate * margin < crossoverRate_)
            switchEngine(true);
    }
    // Record after any switch so the entry lands in the session
    // core the run continues with (adoptSessionCore carries the
    // trail across a hand-off).
    recordDecision(rate, eventActive_ != wasEvent);
}

void
AutoSession::run(uint64_t steps)
{
    if (!adaptive_ || auto_.decisionWindow == 0) {
        child_->run(steps);
        return;
    }
    while (steps > 0) {
        // Decide on absolute window boundaries, so a restored run
        // re-evaluates at the same steps as the original.
        const uint64_t window = auto_.decisionWindow;
        const uint64_t toBoundary =
            window - child_->currentStep() % window;
        const uint64_t chunk = std::min(steps, toBoundary);
        child_->run(chunk);
        steps -= chunk;
        if (child_->currentStep() % window == 0)
            decide();
    }
}

bool
AutoSession::saveCheckpointFile(const std::string &path) const
{
    return child_->saveCheckpointFile(path);
}

void
AutoSession::loadCheckpointFile(const std::string &path,
                                Network *mutableNetwork)
{
    if (adaptive_) {
        // Resume on the engine that wrote the snapshot; the rate
        // estimator it carries drives later decisions as usual.
        const std::string kind = peekCheckpointFileEngine(path);
        const bool wantEvent = kind == "event-driven";
        if (wantEvent != eventActive_) {
            const PlanInfo planInfo = child_->planInfo();
            child_ = makeEngine(wantEvent);
            eventActive_ = wantEvent;
            child_->setPlanInfo(planInfo);
        }
    }
    child_->loadCheckpointFile(path, mutableNetwork);
}

} // namespace flexon
