/**
 * @file
 * Network serialization: save a finalized Network (populations,
 * parameters, synapses) to a versioned text format and load it back.
 * Round-trips are exact (doubles are written with 17 significant
 * digits), so saved networks reproduce simulations bit for bit on
 * the hardware backends.
 */

#ifndef FLEXON_SNN_SERIALIZE_HH
#define FLEXON_SNN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "snn/network.hh"

namespace flexon {

/** Write a finalized network. fatal() on unfinalized networks. */
void saveNetwork(std::ostream &os, const Network &network);

/**
 * Read a network previously written by saveNetwork(); the returned
 * network is finalized. fatal() on format or validation errors.
 */
Network loadNetwork(std::istream &is);

/** Convenience file wrappers (fatal() on I/O errors). */
void saveNetworkFile(const std::string &path, const Network &network);
Network loadNetworkFile(const std::string &path);

} // namespace flexon

#endif // FLEXON_SNN_SERIALIZE_HH
