/**
 * @file
 * Network serialization: save a finalized Network (populations,
 * parameters, synapses) to a versioned text format and load it back.
 * Round-trips are exact (doubles are written with 17 significant
 * digits), so saved networks reproduce simulations bit for bit on
 * the hardware backends.
 */

#ifndef FLEXON_SNN_SERIALIZE_HH
#define FLEXON_SNN_SERIALIZE_HH

#include <iosfwd>
#include <string>
#include <string_view>

#include "snn/network.hh"

namespace flexon {

/** Write a finalized network. fatal() on unfinalized networks. */
void saveNetwork(std::ostream &os, const Network &network);

/**
 * Read a network previously written by saveNetwork(); the returned
 * network is finalized. fatal() on format or validation errors.
 */
Network loadNetwork(std::istream &is);

/** Convenience file wrappers (fatal() on I/O errors). */
void saveNetworkFile(const std::string &path, const Network &network);
Network loadNetworkFile(const std::string &path);

/**
 * Checkpoint file framing ("flexon-checkpoint v4"): the versioned
 * header of a SimulationSession snapshot. The header writer arms the
 * stream for exact round trips — 17 significant digits, the precision
 * at which every finite double (and, a fortiori, float) survives a
 * text round trip bit for bit — so the per-subsystem saveState()
 * blocks that follow can stream values with plain operator<<.
 */
void writeCheckpointHeader(std::ostream &os, std::string_view engine);

/** Parsed checkpoint header: format version plus engine kind. */
struct CheckpointHeader
{
    int version = 0;
    std::string engine;
};

/**
 * Read and validate a checkpoint header. fatal() on bad magic or an
 * unsupported version. Readers that accept more than one version
 * gate optional blocks (e.g. the v4 plasticity block) on `version`.
 */
CheckpointHeader readCheckpointHeaderInfo(std::istream &is);

/** Header read returning just the engine kind (legacy callers). */
std::string readCheckpointHeader(std::istream &is);

/**
 * Read just the engine kind from a checkpoint file's header without
 * consuming the body — the auto engine uses this to rebuild the
 * matching engine before restoring. fatal() on I/O or header errors.
 */
std::string peekCheckpointFileEngine(const std::string &path);

} // namespace flexon

#endif // FLEXON_SNN_SERIALIZE_HH
