#include "snn/connectivity.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "snn/routing.hh"

namespace flexon {

const char *
connectivityKindName(ConnectivityKind kind)
{
    switch (kind) {
    case ConnectivityKind::Materialized:
        return "materialized";
    case ConnectivityKind::Compressed:
        return "compressed";
    case ConnectivityKind::Procedural:
        return "procedural";
    }
    return "?";
}

bool
parseConnectivityKind(const std::string &text, ConnectivityKind &out)
{
    if (text == "materialized")
        out = ConnectivityKind::Materialized;
    else if (text == "compressed")
        out = ConnectivityKind::Compressed;
    else if (text == "procedural")
        out = ConnectivityKind::Procedural;
    else
        return false;
    return true;
}

ConnectivityGeometry
buildConnectivityGeometry(const Network &network, size_t shardCount)
{
    if (!network.finalized())
        fatal("network must be finalized before connectivity-"
              "geometry build");
    const size_t n = network.numNeurons();
    if (n > std::numeric_limits<uint32_t>::max() / maxSynapseTypes)
        fatal("connectivity cell offsets overflow at %zu neurons", n);

    ConnectivityGeometry geo;
    size_t sc = shardCount == 0 ? 1 : shardCount;
    sc = std::min(sc, ThreadPool::maxLanes);
    if (sc > n)
        sc = n == 0 ? 1 : n;
    geo.shardCount = sc;

    // Cut the target axis into contiguous ranges of roughly equal
    // incoming-synapse load (the finalize()-time in-degree cache, so
    // no synapse walk — procedural networks have no rows to walk).
    const std::vector<uint32_t> &incoming = network.incomingCounts();
    const uint64_t total = network.numSynapses();
    geo.shardTargetBegin.assign(sc + 1, 0);
    geo.shardTargetBegin[sc] = static_cast<uint32_t>(n);
    uint64_t accum = 0;
    size_t shard = 1;
    for (uint32_t target = 0; target < n && shard < sc; ++target) {
        accum += incoming[target];
        if (accum * sc >= total * shard) {
            geo.shardTargetBegin[shard] = target + 1;
            ++shard;
        }
    }
    for (; shard < sc; ++shard)
        geo.shardTargetBegin[shard] = static_cast<uint32_t>(n);

    geo.shardOf.assign(n, 0);
    for (size_t s = 0; s < sc; ++s)
        for (uint32_t t = geo.shardTargetBegin[s];
             t < geo.shardTargetBegin[s + 1]; ++t)
            geo.shardOf[t] = static_cast<uint32_t>(s);

    // Delay buckets cover only the delay values that occur, so the
    // delivery layout does not scale with the ring depth of sparse
    // delay sets.
    const std::array<bool, 256> &used = network.delaysUsed();
    for (size_t d = 0; d < used.size(); ++d) {
        if (used[d]) {
            geo.bucketOf[d] =
                static_cast<uint8_t>(geo.bucketDelay.size());
            geo.bucketDelay.push_back(static_cast<uint8_t>(d));
        }
    }
    return geo;
}

namespace {

size_t
geometryBytes(const ConnectivityGeometry &geo)
{
    return geo.shardTargetBegin.capacity() * sizeof(uint32_t) +
           geo.shardOf.capacity() * sizeof(uint32_t) +
           geo.bucketDelay.capacity();
}

// ---- LEB128 varints -------------------------------------------------

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint64_t
getVarint(const uint8_t *&p)
{
    uint64_t v = 0;
    unsigned shift = 0;
    while ((*p & 0x80) != 0) {
        v |= static_cast<uint64_t>(*p++ & 0x7F) << shift;
        shift += 7;
    }
    v |= static_cast<uint64_t>(*p++) << shift;
    return v;
}

/**
 * Decode a raw synapse row into (runs, records) for one shard: a
 * counting sort by delay bucket that preserves row order within each
 * bucket — exactly the order the materialized table lays records out
 * in, so per-cell accumulation order matches.
 */
RowView
decodeRowForShard(std::span<const Synapse> row, size_t shard,
                  const ConnectivityGeometry &geo, RowScratch &scratch)
{
    const size_t buckets = geo.bucketDelay.size();
    scratch.counts.assign(buckets, 0);
    for (const Synapse &syn : row)
        if (geo.shardOf[syn.target] == shard)
            ++scratch.counts[geo.bucketOf[syn.delay]];

    scratch.runs.clear();
    uint32_t total = 0;
    for (size_t b = 0; b < buckets; ++b) {
        const uint32_t len = scratch.counts[b];
        if (len == 0)
            continue;
        flexon_assert(len < (uint32_t{1} << 24));
        scratch.runs.push_back(
            packRunHeader(static_cast<uint32_t>(b), len));
        scratch.counts[b] = total; // becomes the run's write cursor
        total += len;
    }
    scratch.records.resize(total);
    for (const Synapse &syn : row) {
        if (geo.shardOf[syn.target] != shard)
            continue;
        const size_t b = geo.bucketOf[syn.delay];
        scratch.records[scratch.counts[b]++] = {
            static_cast<uint32_t>(syn.target * maxSynapseTypes +
                                  syn.type),
            syn.weight};
    }
    return {std::span<const uint32_t>(scratch.runs),
            scratch.records.data()};
}

// ---- Materialized ---------------------------------------------------

class MaterializedProvider final : public ConnectivityProvider
{
  public:
    MaterializedProvider(const Network &network, size_t shardCount,
                         telemetry::Registry *metrics)
        : ConnectivityProvider(
              ConnectivityKind::Materialized,
              buildConnectivityGeometry(network, shardCount)),
          table_(network, shardCount, metrics)
    {
        masksExact_ = table_.rowMasksExact();
        maskData_ = masksExact_ ? table_.rowMaskRow(0) : nullptr;
    }

    RowView
    rowSpan(uint32_t src, size_t shard,
            RowScratch & /*scratch*/) const override
    {
        // Zero-copy view of the table's source-major mirror.
        return {table_.sourceRuns(src, shard),
                table_.sourceRecords(src, shard)};
    }

    void refreshWeights() override { table_.refreshWeights(); }
    size_t connectivityBytes() const override
    {
        return table_.memoryBytes();
    }
    const RoutingTable *materializedTable() const override
    {
        return &table_;
    }

  private:
    RoutingTable table_;
};

// ---- Compressed -----------------------------------------------------

/**
 * Per-(source, shard) blob layout: a sequence of bucket runs, each
 *
 *   bucket   u8
 *   mode     u8    bit 0: uniform synapse type, bit 1: uniform weight
 *   count    varint
 *   [type    u8]                      when uniform type
 *   first    varint                   target id (uniform) / ring cell
 *   deltas   varint x (count - 1)     ascending, >= 0
 *   weights  f32 raw (1 when uniform, else count)
 *
 * Records are stable-sorted by (bucket, cell) before encoding so the
 * deltas are non-negative and small; same-cell records keep their
 * row-relative order, which is all per-cell accumulation order
 * needs, so results stay bit-identical to the materialized walks.
 * Weights stay lossless float32 — STDP and bit-identity rule out
 * quantization; the compression win comes from the id stream.
 */
class CompressedProvider final : public ConnectivityProvider
{
    struct Rec
    {
        uint8_t bucket;
        uint32_t cell;
        float weight;
    };

  public:
    CompressedProvider(const Network &network, size_t shardCount,
                       telemetry::Registry * /*metrics*/)
        : ConnectivityProvider(
              ConnectivityKind::Compressed,
              buildConnectivityGeometry(network, shardCount)),
          net_(network)
    {
        const size_t n = network.numNeurons();
        const size_t sc = geo_.shardCount;
        masksExact_ = geo_.bucketDelay.size() <= 64;
        if (masksExact_)
            mask_.assign(n * sc, 0);
        rowOffset_.assign(n * sc + 1, 0);
        patched_.assign(n, 0);

        std::vector<Synapse> rowScratch;
        std::vector<std::vector<Rec>> byShard(sc);
        for (uint32_t src = 0; src < n; ++src) {
            for (std::vector<Rec> &v : byShard)
                v.clear();
            for (const Synapse &syn : net_.rowFor(src, rowScratch))
                byShard[geo_.shardOf[syn.target]].push_back(
                    {geo_.bucketOf[syn.delay],
                     static_cast<uint32_t>(
                         syn.target * maxSynapseTypes + syn.type),
                     syn.weight});
            for (size_t s = 0; s < sc; ++s) {
                std::vector<Rec> &v = byShard[s];
                std::stable_sort(
                    v.begin(), v.end(),
                    [](const Rec &a, const Rec &b) {
                        return a.bucket != b.bucket
                                   ? a.bucket < b.bucket
                                   : a.cell < b.cell;
                    });
                size_t i = 0;
                while (i < v.size()) {
                    size_t j = i;
                    while (j < v.size() &&
                           v[j].bucket == v[i].bucket)
                        ++j;
                    encodeRun(v, i, j);
                    if (masksExact_)
                        mask_[src * sc + s] |= uint64_t{1}
                                               << v[i].bucket;
                    i = j;
                }
                rowOffset_[src * sc + s + 1] = blob_.size();
            }
        }
        blob_.shrink_to_fit();
        if (masksExact_)
            maskData_ = mask_.data();
        weightsSeen_ = net_.weightMutations();
    }

    RowView
    rowSpan(uint32_t src, size_t shard,
            RowScratch &scratch) const override
    {
        if (allPatched_ || patched_[src] != 0) {
            // Weight-mutated row: decode from the network, which
            // serves current weights in either storage mode.
            return decodeRowForShard(
                net_.rowFor(src, scratch.synapses), shard, geo_,
                scratch);
        }
        const uint8_t *p =
            blob_.data() + rowOffset_[src * geo_.shardCount + shard];
        const uint8_t *const end =
            blob_.data() +
            rowOffset_[src * geo_.shardCount + shard + 1];
        scratch.runs.clear();
        scratch.records.clear();
        while (p < end) {
            const uint8_t bucket = *p++;
            const uint8_t mode = *p++;
            const auto count = static_cast<uint32_t>(getVarint(p));
            scratch.runs.push_back(packRunHeader(bucket, count));
            const size_t base = scratch.records.size();
            scratch.records.resize(base + count);
            DeliveryRecord *const rec = scratch.records.data() + base;
            if ((mode & 1) != 0) {
                const uint8_t type = *p++;
                uint64_t target = getVarint(p);
                rec[0].cell = static_cast<uint32_t>(
                    target * maxSynapseTypes + type);
                for (uint32_t k = 1; k < count; ++k) {
                    target += getVarint(p);
                    rec[k].cell = static_cast<uint32_t>(
                        target * maxSynapseTypes + type);
                }
            } else {
                uint64_t cell = getVarint(p);
                rec[0].cell = static_cast<uint32_t>(cell);
                for (uint32_t k = 1; k < count; ++k) {
                    cell += getVarint(p);
                    rec[k].cell = static_cast<uint32_t>(cell);
                }
            }
            if ((mode & 2) != 0) {
                float w;
                std::memcpy(&w, p, sizeof w);
                p += sizeof w;
                for (uint32_t k = 0; k < count; ++k)
                    rec[k].weight = w;
            } else {
                for (uint32_t k = 0; k < count; ++k) {
                    std::memcpy(&rec[k].weight, p,
                                sizeof rec[k].weight);
                    p += sizeof rec[k].weight;
                }
            }
        }
        return {std::span<const uint32_t>(scratch.runs),
                scratch.records.data()};
    }

    void
    refreshWeights() override
    {
        // Blobs are immutable; rows whose weights mutated are
        // remembered and served from the network instead.
        const uint64_t total = net_.weightMutations();
        if (total == weightsSeen_)
            return;
        if (total - weightsSeen_ <= Network::weightLogCapacity) {
            for (uint64_t m = weightsSeen_; m < total; ++m)
                patched_[net_.sourceOfSynapse(
                    net_.weightLogEntry(m))] = 1;
        } else {
            allPatched_ = true;
        }
        weightsSeen_ = total;
    }

    size_t
    connectivityBytes() const override
    {
        return blob_.capacity() +
               rowOffset_.capacity() * sizeof(uint64_t) +
               patched_.capacity() +
               mask_.capacity() * sizeof(uint64_t) +
               geometryBytes(geo_);
    }

  private:
    void
    encodeRun(const std::vector<Rec> &v, size_t lo, size_t hi)
    {
        const auto count = static_cast<uint32_t>(hi - lo);
        flexon_assert(count < (uint32_t{1} << 24));
        const uint8_t type =
            static_cast<uint8_t>(v[lo].cell % maxSynapseTypes);
        bool uniformType = true;
        bool uniformWeight = true;
        uint32_t weightBits0;
        std::memcpy(&weightBits0, &v[lo].weight, sizeof weightBits0);
        for (size_t k = lo + 1; k < hi; ++k) {
            if (v[k].cell % maxSynapseTypes != type)
                uniformType = false;
            uint32_t bits;
            std::memcpy(&bits, &v[k].weight, sizeof bits);
            if (bits != weightBits0)
                uniformWeight = false;
        }
        blob_.push_back(v[lo].bucket);
        blob_.push_back(static_cast<uint8_t>(
            (uniformType ? 1 : 0) | (uniformWeight ? 2 : 0)));
        putVarint(blob_, count);
        if (uniformType) {
            // Delta over target ids: with one type per run the
            // targets ascend alongside the cells, and target gaps
            // are maxSynapseTypes times smaller than cell gaps —
            // usually a single varint byte at cortical densities.
            blob_.push_back(type);
            uint32_t prev = v[lo].cell / maxSynapseTypes;
            putVarint(blob_, prev);
            for (size_t k = lo + 1; k < hi; ++k) {
                const uint32_t target = v[k].cell / maxSynapseTypes;
                putVarint(blob_, target - prev);
                prev = target;
            }
        } else {
            uint32_t prev = v[lo].cell;
            putVarint(blob_, prev);
            for (size_t k = lo + 1; k < hi; ++k) {
                putVarint(blob_, v[k].cell - prev);
                prev = v[k].cell;
            }
        }
        const size_t weights = uniformWeight ? 1 : count;
        for (size_t k = 0; k < weights; ++k) {
            const size_t at = blob_.size();
            blob_.resize(at + sizeof(float));
            std::memcpy(blob_.data() + at, &v[lo + k].weight,
                        sizeof(float));
        }
    }

    const Network &net_;
    std::vector<uint8_t> blob_;
    /** (src * shardCount + shard) -> blob offset; +1 sentinel. */
    std::vector<uint64_t> rowOffset_;
    /** Per source: 1 when a weight mutation invalidated the blob. */
    std::vector<uint8_t> patched_;
    bool allPatched_ = false;
    std::vector<uint64_t> mask_;
    uint64_t weightsSeen_ = 0;
};

// ---- Procedural -----------------------------------------------------

/** Default hot-row cache budget (bytes); FLEXON_ROW_CACHE_BYTES
 *  overrides. */
constexpr size_t kDefaultRowCacheBytes = size_t{16} << 20;

class ProceduralProvider final : public ConnectivityProvider
{
    /** One fully decoded source row: per-shard (runs, records)
     *  slices of two contiguous arrays. */
    struct CachedRow
    {
        std::vector<uint32_t> runs;
        std::vector<DeliveryRecord> records;
        std::vector<uint32_t> runBegin; ///< shardCount + 1
        std::vector<uint32_t> recBegin; ///< shardCount + 1
        uint64_t lastUse = 0;

        size_t
        bytes() const
        {
            return sizeof(CachedRow) +
                   runs.capacity() * sizeof(uint32_t) +
                   records.capacity() * sizeof(DeliveryRecord) +
                   runBegin.capacity() * sizeof(uint32_t) +
                   recBegin.capacity() * sizeof(uint32_t);
        }
    };

  public:
    ProceduralProvider(const Network &network, size_t shardCount,
                       telemetry::Registry * /*metrics*/)
        : ConnectivityProvider(
              ConnectivityKind::Procedural,
              buildConnectivityGeometry(network, shardCount)),
          net_(network)
    {
        buildMasks();
        cacheCap_ = kDefaultRowCacheBytes;
        if (const char *env = std::getenv("FLEXON_ROW_CACHE_BYTES")) {
            char *rest = nullptr;
            const unsigned long long v = std::strtoull(env, &rest, 10);
            if (rest != env && *rest == '\0')
                cacheCap_ = static_cast<size_t>(v);
        }
        weightsSeen_ = net_.weightMutations();
    }

    RowView
    rowSpan(uint32_t src, size_t shard,
            RowScratch &scratch) const override
    {
        // Lanes only read the cache; prepareStep() is where it
        // mutates (serial). Rows absent from the cache — undo
        // probes for spikes fired before the cached window — decode
        // into the caller's scratch instead.
        const auto it = cache_.find(src);
        if (it != cache_.end()) {
            const CachedRow &c = it->second;
            return {std::span<const uint32_t>(
                        c.runs.data() + c.runBegin[shard],
                        c.runBegin[shard + 1] - c.runBegin[shard]),
                    c.records.data() + c.recBegin[shard]};
        }
        return decodeRowForShard(net_.rowFor(src, scratch.synapses),
                                 shard, geo_, scratch);
    }

    void
    prepareStep(std::span<const uint32_t> fired) override
    {
        ++tick_;
        for (const uint32_t src : fired) {
            const auto it = cache_.find(src);
            if (it != cache_.end()) {
                it->second.lastUse = tick_;
                hits_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            misses_.fetch_add(1, std::memory_order_relaxed);
            CachedRow row = decodeAllShards(src);
            row.lastUse = tick_;
            cacheBytes_ += row.bytes();
            cache_.emplace(src, std::move(row));
        }
        if (cacheBytes_ > cacheCap_)
            evict();
    }

    void
    refreshWeights() override
    {
        // rowFor() always serves current weights (the overlay is the
        // network's); only cached decodes can go stale.
        const uint64_t total = net_.weightMutations();
        if (total == weightsSeen_)
            return;
        if (total - weightsSeen_ <= Network::weightLogCapacity) {
            for (uint64_t m = weightsSeen_; m < total; ++m)
                dropCached(net_.sourceOfSynapse(
                    net_.weightLogEntry(m)));
        } else {
            cache_.clear();
            cacheBytes_ = 0;
        }
        weightsSeen_ = total;
    }

    size_t
    connectivityBytes() const override
    {
        return cacheBytes_ + mask_.capacity() * sizeof(uint64_t) +
               geometryBytes(geo_);
    }

    void
    reset() override
    {
        ConnectivityProvider::reset();
        cache_.clear();
        cacheBytes_ = 0;
        tick_ = 0;
        weightsSeen_ = net_.weightMutations();
    }

  private:
    void
    buildMasks()
    {
        // Conservative per-(source, shard) bucket masks straight
        // from the spec — no generation pass. A set bit only means
        // "may deliver there": the mask-directed dispatch then
        // decodes a row that contributes nothing, which is wasted
        // work but identical arithmetic. Bits are restricted to
        // realized delays so bucketOf stays well-defined.
        const size_t buckets = geo_.bucketDelay.size();
        masksExact_ = buckets <= 64;
        if (!masksExact_)
            return;
        const size_t n = net_.numNeurons();
        const size_t sc = geo_.shardCount;
        mask_.assign(n * sc, 0);
        const std::array<bool, 256> &used = net_.delaysUsed();
        for (const Projection &p :
             net_.connectivitySpec().projections) {
            if (p.srcCount == 0 || p.dstCount == 0)
                continue;
            if (p.rule == Projection::Rule::Bernoulli &&
                p.probability <= 0.0)
                continue;
            if (p.rule == Projection::Rule::FixedFanout &&
                p.fanout == 0)
                continue;
            uint64_t bits = 0;
            for (uint32_t d = p.delayMin; d <= p.delayMax; ++d)
                if (used[d])
                    bits |= uint64_t{1} << geo_.bucketOf[d];
            if (bits == 0)
                continue;
            const uint32_t sLo = geo_.shardOf[p.dstBase];
            const uint32_t sHi =
                geo_.shardOf[p.dstBase + p.dstCount - 1];
            for (uint32_t src = p.srcBase;
                 src < p.srcBase + p.srcCount; ++src)
                for (uint32_t s = sLo; s <= sHi; ++s)
                    mask_[static_cast<size_t>(src) * sc + s] |= bits;
        }
        maskData_ = mask_.data();
    }

    CachedRow
    decodeAllShards(uint32_t src)
    {
        // All shards of a row decode together (one generation pass);
        // the counting sort is (shard, bucket)-major, so each
        // shard's slice carries ascending-bucket runs in row order.
        CachedRow c;
        const std::span<const Synapse> row =
            net_.rowFor(src, rowScratch_);
        const size_t sc = geo_.shardCount;
        const size_t buckets = geo_.bucketDelay.size();
        counts_.assign(sc * buckets, 0);
        for (const Synapse &syn : row)
            ++counts_[geo_.shardOf[syn.target] * buckets +
                      geo_.bucketOf[syn.delay]];

        c.runBegin.resize(sc + 1);
        c.recBegin.resize(sc + 1);
        uint32_t runs = 0, recs = 0;
        for (size_t s = 0; s < sc; ++s) {
            c.runBegin[s] = runs;
            c.recBegin[s] = recs;
            for (size_t b = 0; b < buckets; ++b) {
                const uint32_t len = counts_[s * buckets + b];
                if (len == 0)
                    continue;
                flexon_assert(len < (uint32_t{1} << 24));
                ++runs;
                recs += len;
            }
        }
        c.runBegin[sc] = runs;
        c.recBegin[sc] = recs;
        c.runs.resize(runs);
        c.records.resize(recs);
        uint32_t run = 0, rec = 0;
        for (size_t s = 0; s < sc; ++s) {
            for (size_t b = 0; b < buckets; ++b) {
                const uint32_t len = counts_[s * buckets + b];
                if (len == 0)
                    continue;
                c.runs[run++] =
                    packRunHeader(static_cast<uint32_t>(b), len);
                counts_[s * buckets + b] = rec; // write cursor
                rec += len;
            }
        }
        for (const Synapse &syn : row) {
            const size_t at =
                geo_.shardOf[syn.target] * buckets +
                geo_.bucketOf[syn.delay];
            c.records[counts_[at]++] = {
                static_cast<uint32_t>(syn.target * maxSynapseTypes +
                                      syn.type),
                syn.weight};
        }
        return c;
    }

    void
    evict()
    {
        // One sorted scan, oldest first; rows decoded for the
        // current step are pinned (their views are about to be read
        // by the delivery lanes).
        evictScratch_.clear();
        for (const auto &[src, row] : cache_)
            if (row.lastUse != tick_)
                evictScratch_.emplace_back(row.lastUse, src);
        std::sort(evictScratch_.begin(), evictScratch_.end());
        for (const auto &[use, src] : evictScratch_) {
            if (cacheBytes_ <= cacheCap_)
                break;
            dropCached(src);
        }
    }

    void
    dropCached(uint32_t src)
    {
        const auto it = cache_.find(src);
        if (it == cache_.end())
            return;
        cacheBytes_ -= it->second.bytes();
        cache_.erase(it);
    }

    const Network &net_;
    std::unordered_map<uint32_t, CachedRow> cache_;
    size_t cacheCap_ = kDefaultRowCacheBytes;
    size_t cacheBytes_ = 0;
    uint64_t tick_ = 0;
    uint64_t weightsSeen_ = 0;
    std::vector<uint64_t> mask_;
    // prepareStep() scratch (serial use only).
    std::vector<Synapse> rowScratch_;
    std::vector<uint32_t> counts_;
    std::vector<std::pair<uint64_t, uint32_t>> evictScratch_;
};

} // namespace

std::unique_ptr<ConnectivityProvider>
makeConnectivityProvider(ConnectivityKind kind, const Network &network,
                         size_t shardCount,
                         telemetry::Registry *metrics)
{
    switch (kind) {
    case ConnectivityKind::Materialized:
        if (network.procedural())
            fatal("materialized connectivity requires stored synapse "
                  "rows; this network is procedural — use "
                  "--connectivity=procedural or compressed");
        return std::make_unique<MaterializedProvider>(
            network, shardCount, metrics);
    case ConnectivityKind::Compressed:
        return std::make_unique<CompressedProvider>(
            network, shardCount, metrics);
    case ConnectivityKind::Procedural:
        if (!network.hasSpec())
            fatal("procedural connectivity requires a generative "
                  "network spec (Network::buildFromSpec)");
        return std::make_unique<ProceduralProvider>(
            network, shardCount, metrics);
    }
    fatal("unknown connectivity kind");
}

} // namespace flexon
