#include "snn/stdp.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace flexon {

StdpEngine::StdpEngine(Network &network, const StdpConfig &config)
    : network_(network), config_(config)
{
    if (!network_.finalized())
        fatal("STDP requires a finalized network");
    flexon_assert(config_.tauPlus > 0.0);
    flexon_assert(config_.tauMinus > 0.0);
    flexon_assert(config_.wMin <= config_.wMax);

    decayPlus_ = std::exp(-1.0 / config_.tauPlus);
    decayMinus_ = std::exp(-1.0 / config_.tauMinus);

    preTrace_.assign(network_.numNeurons(), 0.0);
    postTrace_.assign(network_.numNeurons(), 0.0);

    // Reverse adjacency over the plastic synapses only.
    incoming_.resize(network_.numNeurons());
    for (uint32_t src = 0; src < network_.numNeurons(); ++src) {
        const uint64_t base = network_.rowStart(src);
        const auto out = network_.outgoing(src);
        for (size_t i = 0; i < out.size(); ++i) {
            if (out[i].type != config_.plasticType)
                continue;
            incoming_[out[i].target].push_back({src, base + i});
            ++plasticCount_;
        }
    }
}

void
StdpEngine::onStep(const std::vector<uint8_t> &fired)
{
    flexon_assert(fired.size() == network_.numNeurons());

    auto clamp = [&](float w) {
        return std::clamp(w, config_.wMin, config_.wMax);
    };

    // Trace decay for every neuron, every step.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        preTrace_[n] *= decayPlus_;
        postTrace_[n] *= decayMinus_;
    }

    // LTD: a pre spike arriving after recent post activity weakens
    // the synapse. Applied before the trace bumps so exact
    // coincidences are not double counted.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (!fired[n])
            continue;
        const uint64_t base = network_.rowStart(n);
        const auto out = network_.outgoing(n);
        for (size_t i = 0; i < out.size(); ++i) {
            if (out[i].type != config_.plasticType)
                continue;
            Synapse &syn = network_.synapseAt(base + i);
            syn.weight = clamp(static_cast<float>(
                syn.weight -
                config_.aMinus * postTrace_[syn.target]));
        }
    }

    // LTP: a post spike following recent pre activity strengthens
    // the incoming synapses.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (!fired[n])
            continue;
        for (const auto &[src, index] : incoming_[n]) {
            Synapse &syn = network_.synapseAt(index);
            syn.weight = clamp(static_cast<float>(
                syn.weight + config_.aPlus * preTrace_[src]));
        }
    }

    // Trace bumps last.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (fired[n]) {
            preTrace_[n] += 1.0;
            postTrace_[n] += 1.0;
        }
    }
}

double
StdpEngine::preTrace(uint32_t neuron) const
{
    flexon_assert(neuron < preTrace_.size());
    return preTrace_[neuron];
}

double
StdpEngine::postTrace(uint32_t neuron) const
{
    flexon_assert(neuron < postTrace_.size());
    return postTrace_[neuron];
}

double
StdpEngine::meanPlasticWeight() const
{
    if (plasticCount_ == 0)
        return 0.0;
    double sum = 0.0;
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        // Const access: a read must not pollute the network's
        // weight-mutation log.
        for (const auto &[src, index] : incoming_[n])
            sum += std::as_const(network_).synapseAt(index).weight;
    }
    return sum / static_cast<double>(plasticCount_);
}

void
StdpEngine::saveState(std::ostream &os) const
{
    os << "stdp " << preTrace_.size();
    for (const double x : preTrace_)
        os << ' ' << x;
    for (const double x : postTrace_)
        os << ' ' << x;
    os << '\n';
}

void
StdpEngine::loadState(std::istream &is)
{
    std::string tag;
    size_t count = 0;
    is >> tag >> count;
    if (tag != "stdp" || !is || count != preTrace_.size())
        fatal("checkpoint STDP state size mismatch (expected %zu "
              "neurons)",
              preTrace_.size());
    for (double &x : preTrace_)
        is >> x;
    for (double &x : postTrace_)
        is >> x;
    if (!is)
        fatal("truncated STDP state in checkpoint");
}

} // namespace flexon
