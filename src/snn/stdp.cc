#include "snn/stdp.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace flexon {

StdpEngine::StdpEngine(Network &network, const StdpConfig &config)
    : network_(network), config_(config)
{
    if (!network_.finalized())
        fatal("STDP requires a finalized network");
    flexon_assert(config_.tauPlus > 0.0);
    flexon_assert(config_.tauMinus > 0.0);
    flexon_assert(config_.wMin <= config_.wMax);

    decayPlus_ = std::exp(-1.0 / config_.tauPlus);
    decayMinus_ = std::exp(-1.0 / config_.tauMinus);

    preTrace_.assign(network_.numNeurons(), 0.0);
    postTrace_.assign(network_.numNeurons(), 0.0);

    // Forward and reverse adjacency over the plastic synapses only.
    // Rows come from rowFor() so procedural networks (which store no
    // CSR) index the same synapses; the adjacency itself is
    // O(plastic synapses), which STDP needs regardless of how the
    // fixed wiring is represented.
    plasticOut_.resize(network_.numNeurons());
    incoming_.resize(network_.numNeurons());
    std::vector<Synapse> scratch;
    for (uint32_t src = 0; src < network_.numNeurons(); ++src) {
        const uint64_t base = network_.rowStart(src);
        const auto out = network_.rowFor(src, scratch);
        for (size_t i = 0; i < out.size(); ++i) {
            if (out[i].type != config_.plasticType)
                continue;
            plasticOut_[src].push_back(
                {out[i].target, base + i, out[i].weight});
            incoming_[out[i].target].push_back(
                {src, base + i, out[i].weight});
            ++plasticCount_;
        }
    }
}

float
StdpEngine::currentWeight(const PlasticRef &ref) const
{
    if (network_.procedural()) {
        float w = 0.0f;
        return network_.overlayWeight(ref.index, w) ? w : ref.base;
    }
    // Const access: a read must not pollute the mutation log.
    return std::as_const(network_).synapseAt(ref.index).weight;
}

void
StdpEngine::onStep(const std::vector<uint8_t> &fired)
{
    flexon_assert(fired.size() == network_.numNeurons());

    auto clamp = [&](float w) {
        return std::clamp(w, config_.wMin, config_.wMax);
    };

    // Trace decay for every neuron, every step.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        preTrace_[n] *= decayPlus_;
        postTrace_[n] *= decayMinus_;
    }

    // LTD: a pre spike arriving after recent post activity weakens
    // the synapse. Applied before the trace bumps so exact
    // coincidences are not double counted.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (!fired[n])
            continue;
        for (const PlasticRef &ref : plasticOut_[n]) {
            network_.setSynapseWeight(
                ref.index,
                clamp(static_cast<float>(
                    currentWeight(ref) -
                    config_.aMinus * postTrace_[ref.peer])));
        }
    }

    // LTP: a post spike following recent pre activity strengthens
    // the incoming synapses.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (!fired[n])
            continue;
        for (const PlasticRef &ref : incoming_[n]) {
            network_.setSynapseWeight(
                ref.index,
                clamp(static_cast<float>(
                    currentWeight(ref) +
                    config_.aPlus * preTrace_[ref.peer])));
        }
    }

    // Trace bumps last.
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (fired[n]) {
            preTrace_[n] += 1.0;
            postTrace_[n] += 1.0;
        }
    }
}

double
StdpEngine::preTrace(uint32_t neuron) const
{
    flexon_assert(neuron < preTrace_.size());
    return preTrace_[neuron];
}

double
StdpEngine::postTrace(uint32_t neuron) const
{
    flexon_assert(neuron < postTrace_.size());
    return postTrace_[neuron];
}

double
StdpEngine::meanPlasticWeight() const
{
    if (plasticCount_ == 0)
        return 0.0;
    double sum = 0.0;
    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        for (const PlasticRef &ref : incoming_[n])
            sum += currentWeight(ref);
    }
    return sum / static_cast<double>(plasticCount_);
}

void
StdpEngine::saveState(std::ostream &os) const
{
    os << "stdp " << preTrace_.size();
    for (const double x : preTrace_)
        os << ' ' << x;
    for (const double x : postTrace_)
        os << ' ' << x;
    os << '\n';
}

void
StdpEngine::loadState(std::istream &is)
{
    std::string tag;
    size_t count = 0;
    is >> tag >> count;
    if (tag != "stdp" || !is || count != preTrace_.size())
        fatal("checkpoint STDP state size mismatch (expected %zu "
              "neurons)",
              preTrace_.size());
    for (double &x : preTrace_)
        is >> x;
    for (double &x : postTrace_)
        is >> x;
    if (!is)
        fatal("truncated STDP state in checkpoint");
}

} // namespace flexon
