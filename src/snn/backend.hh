/**
 * @file
 * Neuron-computation backends for the SNN simulator.
 *
 * The simulator's neuron-computation phase is pluggable: the same
 * network can run on the software reference models (the NEST/GeNN
 * stand-in), on a baseline Flexon array, or on a spatially folded
 * Flexon array. Hardware backends additionally report modelled
 * execution time (cycles / clock) for the Figure 13 comparisons.
 */

#ifndef FLEXON_SNN_BACKEND_HH
#define FLEXON_SNN_BACKEND_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/health.hh"
#include "models/population.hh"
#include "snn/network.hh"

namespace flexon {

/** Which engine evaluates the neuron-computation phase. */
enum class BackendKind {
    Reference, ///< software double-precision models
    Flexon,    ///< baseline Flexon array (single-cycle)
    Folded,    ///< spatially folded Flexon array (2-stage pipeline)
};

/** Printable backend name. */
const char *backendName(BackendKind kind);

/**
 * A neuron-computation engine stepping every neuron of a network.
 *
 * The input is the synapse-calculation output: row-major
 * [neuron][synapseType] accumulated weights with stride
 * maxSynapseTypes, in reference (unscaled) units. Backends perform
 * any representation conversion internally.
 */
class NeuronBackend
{
  public:
    virtual ~NeuronBackend() = default;

    virtual const char *name() const = 0;

    /**
     * Evaluate one time step; fills `fired` (one 0/1 flag per
     * neuron). Plain bytes rather than std::vector<bool> so worker
     * threads can write disjoint index ranges directly (bit proxies
     * would race on shared words) and the spike-routing loop reads
     * without bit extraction.
     */
    virtual void step(std::span<const double> input,
                      std::vector<uint8_t> &fired) = 0;

    /** Reset all neuron state to rest. */
    virtual void reset() = 0;

    /**
     * Modelled hardware seconds per simulation step (array cycles over
     * clock); 0 for software backends, whose cost is wall-clock time.
     */
    virtual double modelSecondsPerStep() const { return 0.0; }

    /** Membrane potential of one neuron, in reference units. */
    virtual double membrane(size_t neuron) const = 0;

    /**
     * Checkpoint the backend's complete dynamic neuron state to /
     * from the exact text format (snn/serialize.hh checkpoint
     * framing: the stream carries 17 significant digits). After
     * loadState, stepping is bit-identical to the uninterrupted run
     * the state was captured from. loadState fatal()s on a state
     * blob recorded by a different backend or network shape.
     */
    virtual void saveState(std::ostream &os) const = 0;
    virtual void loadState(std::istream &is) = 0;

    /**
     * LLIF engine hand-off: export/import the complete forward state
     * of an all-LLIF network as flat per-neuron (membrane,
     * refractory-countdown) arrays. For {LID, CUB, AR} populations
     * this pair *is* the whole state that influences future steps
     * (current-based inputs carry no conductance history), which is
     * what lets the dense and event-driven engines exchange state
     * bit-exactly. Returns false when the backend (or its
     * configuration) does not support the hand-off (the default);
     * import requires a freshly reset backend.
     */
    virtual bool
    exportLlifState(std::vector<double> &v,
                    std::vector<uint32_t> &refractory) const
    {
        (void)v;
        (void)refractory;
        return false;
    }
    virtual bool
    importLlifState(std::span<const double> v,
                    std::span<const uint32_t> refractory)
    {
        (void)v;
        (void)refractory;
        return false;
    }

    /**
     * Intrinsic-excitability hook: offset one neuron's firing
     * threshold (the spike check compares against
     * params.threshold() + offset). Returns false when the backend
     * cannot mutate per-neuron thresholds (the default; the
     * fixed-point arrays share one threshold constant per
     * population). Successful writes count into
     * parameterMutations() — the per-neuron parameter analogue of
     * Network's weight-mutation log — so consumers (reports, tests)
     * can tell whether any run-time parameter adaptation happened.
     */
    virtual bool setThresholdOffset(size_t neuron, double offset)
    {
        (void)neuron;
        (void)offset;
        return false;
    }

    /** Current threshold offset of one neuron (0 when unsupported). */
    virtual double thresholdOffset(size_t neuron) const
    {
        (void)neuron;
        return 0.0;
    }

    /** Monotone count of successful per-neuron parameter writes. */
    virtual uint64_t parameterMutations() const { return 0; }

    /**
     * Health-sweep probe: examine neurons [begin, end) and tally
     * anomalies into `scan`. The default checks membrane() for
     * non-finite values (what double backends can produce); the
     * fixed-point backends override it to look for values pinned at
     * a representation rail instead (Fix can never be NaN). Called
     * only at the health-sweep cadence, never per step.
     */
    virtual void healthProbe(size_t begin, size_t end,
                             health::HealthScan &scan) const;

    /**
     * Test/CI hook: overwrite one neuron's membrane with NaN so the
     * NaN detector has something real to find. Returns false when
     * the backend cannot represent NaN (fixed-point arrays).
     */
    virtual bool debugPoisonMembrane(size_t neuron)
    {
        (void)neuron;
        return false;
    }
};

/**
 * Build a software reference backend.
 *
 * @param mode discrete equations or continuous ODE integration
 * @param solver solver for continuous mode (Table I column)
 * @param threads worker threads for the neuron-update loop
 *        (<= 1 = single-threaded); neurons are split into
 *        contiguous chunks, as NEST does across cores
 */
std::unique_ptr<NeuronBackend>
makeReferenceBackend(const Network &network,
                     IntegrationMode mode = IntegrationMode::Discrete,
                     SolverKind solver = SolverKind::Euler,
                     size_t threads = 1);

/**
 * Build a baseline Flexon array backend.
 *
 * @param threads host worker threads for the functional neuron loop
 *        (the modelled hardware timing is unaffected)
 */
std::unique_ptr<NeuronBackend>
makeFlexonBackend(const Network &network, size_t width = 12,
                  double clock_hz = 250.0e6, size_t threads = 1);

/** Build a spatially folded Flexon array backend. */
std::unique_ptr<NeuronBackend>
makeFoldedBackend(const Network &network, size_t width = 72,
                  double clock_hz = 500.0e6, size_t threads = 1);

/** Dispatch on BackendKind with the default array shapes. */
std::unique_ptr<NeuronBackend>
makeBackend(BackendKind kind, const Network &network,
            IntegrationMode mode = IntegrationMode::Discrete,
            SolverKind solver = SolverKind::Euler,
            size_t threads = 1);

} // namespace flexon

#endif // FLEXON_SNN_BACKEND_HH
