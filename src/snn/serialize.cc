#include "snn/serialize.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace flexon {

namespace {

constexpr const char *magic = "flexon-network";
constexpr int version = 1;

void
writeParams(std::ostream &os, const NeuronParams &p)
{
    os << p.features.raw() << ' ' << p.numSynapseTypes << ' '
       << p.epsM << ' ' << p.vLeak;
    for (size_t i = 0; i < maxSynapseTypes; ++i)
        os << ' ' << p.syn[i].epsG << ' ' << p.syn[i].vG;
    os << ' ' << p.deltaT << ' ' << p.vCrit << ' ' << p.vFiring << ' '
       << p.epsW << ' ' << p.a << ' ' << p.vW << ' ' << p.b << ' '
       << p.arSteps << ' ' << p.epsR << ' ' << p.vRR << ' ' << p.vAR
       << ' ' << p.qR;
}

NeuronParams
readParams(std::istream &is)
{
    NeuronParams p;
    uint16_t features_raw = 0;
    is >> features_raw >> p.numSynapseTypes >> p.epsM >> p.vLeak;
    p.features = FeatureSet::fromRaw(features_raw);
    for (size_t i = 0; i < maxSynapseTypes; ++i)
        is >> p.syn[i].epsG >> p.syn[i].vG;
    is >> p.deltaT >> p.vCrit >> p.vFiring >> p.epsW >> p.a >> p.vW >>
        p.b >> p.arSteps >> p.epsR >> p.vRR >> p.vAR >> p.qR;
    if (!is)
        fatal("malformed neuron parameters in network file");
    return p;
}

/** Escape spaces in population names (space is the field separator). */
std::string
escapeName(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += (c == ' ') ? '\x1f' : c;
    return out.empty() ? "_" : out;
}

std::string
unescapeName(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += (c == '\x1f') ? ' ' : c;
    return out;
}

} // namespace

void
saveNetwork(std::ostream &os, const Network &network)
{
    if (!network.finalized())
        fatal("saveNetwork requires a finalized network");

    os << magic << " v" << version << '\n';
    os << std::setprecision(17);

    os << "populations " << network.numPopulations() << '\n';
    for (size_t i = 0; i < network.numPopulations(); ++i) {
        const Population &pop = network.population(i);
        os << "pop " << escapeName(pop.name) << ' ' << pop.count
           << ' ';
        writeParams(os, pop.params);
        os << '\n';
    }

    os << "synapses " << network.numSynapses() << '\n';
    os << std::setprecision(9); // float weights
    // rowFor() streams one row at a time, so procedural networks
    // export the same file without ever materializing the wiring.
    std::vector<Synapse> scratch;
    for (uint32_t n = 0; n < network.numNeurons(); ++n) {
        for (const Synapse &s : network.rowFor(n, scratch)) {
            os << n << ' ' << s.target << ' ' << s.weight << ' '
               << static_cast<int>(s.delay) << ' '
               << static_cast<int>(s.type) << '\n';
        }
    }
}

Network
loadNetwork(std::istream &is)
{
    std::string word;
    int file_version = 0;
    is >> word;
    if (word != magic)
        fatal("not a flexon network file (bad magic '%s')",
              word.c_str());
    is >> word;
    if (word.size() < 2 || word[0] != 'v')
        fatal("malformed version field '%s'", word.c_str());
    file_version = std::stoi(word.substr(1));
    if (file_version != version)
        fatal("unsupported network file version %d", file_version);

    Network net;

    size_t num_pops = 0;
    is >> word >> num_pops;
    if (word != "populations" || !is)
        fatal("expected populations header");
    for (size_t i = 0; i < num_pops; ++i) {
        std::string tag, name;
        size_t count = 0;
        is >> tag >> name >> count;
        if (tag != "pop" || !is)
            fatal("malformed population record %zu", i);
        const NeuronParams params = readParams(is);
        net.addPopulation(unescapeName(name), params, count);
    }

    size_t num_synapses = 0;
    is >> word >> num_synapses;
    if (word != "synapses" || !is)
        fatal("expected synapses header");
    for (size_t i = 0; i < num_synapses; ++i) {
        uint32_t src = 0;
        Synapse s{};
        int delay = 0, type = 0;
        is >> src >> s.target >> s.weight >> delay >> type;
        if (!is)
            fatal("malformed synapse record %zu", i);
        s.delay = static_cast<uint8_t>(delay);
        s.type = static_cast<uint8_t>(type);
        net.addSynapse(src, s);
    }

    net.finalize();
    return net;
}

void
saveNetworkFile(const std::string &path, const Network &network)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    saveNetwork(os, network);
    if (!os)
        fatal("error writing '%s'", path.c_str());
}

Network
loadNetworkFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s' for reading", path.c_str());
    return loadNetwork(is);
}

namespace {

constexpr const char *checkpointMagic = "flexon-checkpoint";
// v2: per-(slot, shard) stimulus touch lists and skip counters in the
// router block, the session EWMA rate on the counters line, and the
// event engine's carry block. v1 snapshots are rejected rather than
// misread.
// v3: adds the `weights 2` form — procedural networks snapshot the
// spec seed plus the sparse weight-delta overlay instead of a full
// weight vector. Blocks a v2 reader would understand are unchanged,
// so this build still reads v2 snapshots.
// v4: adds the `plasticity N` block between the weights and engine
// blocks — the state of every session-attached plasticity rule
// (STDP traces, intrinsic-excitability rates and threshold offsets).
// v2/v3 snapshots simply lack the block and restore with the rules'
// current state untouched.
constexpr int checkpointVersion = 4;
constexpr int checkpointMinVersion = 2;

} // namespace

void
writeCheckpointHeader(std::ostream &os, std::string_view engine)
{
    os << checkpointMagic << " v" << checkpointVersion << ' '
       << engine << '\n';
    os << std::setprecision(17);
}

CheckpointHeader
readCheckpointHeaderInfo(std::istream &is)
{
    std::string word;
    is >> word;
    if (word != checkpointMagic)
        fatal("not a flexon checkpoint file (bad magic '%s')",
              word.c_str());
    is >> word;
    if (word.size() < 2 || word[0] != 'v')
        fatal("malformed checkpoint version field '%s'", word.c_str());
    CheckpointHeader header;
    header.version = std::stoi(word.substr(1));
    if (header.version < checkpointMinVersion ||
        header.version > checkpointVersion)
        fatal("unsupported checkpoint version %d (this build reads "
              "v%d..v%d)",
              header.version, checkpointMinVersion, checkpointVersion);
    is >> header.engine;
    if (!is)
        fatal("truncated checkpoint header");
    return header;
}

std::string
readCheckpointHeader(std::istream &is)
{
    return readCheckpointHeaderInfo(is).engine;
}

std::string
peekCheckpointFileEngine(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open checkpoint file '%s'", path.c_str());
    return readCheckpointHeader(is);
}

} // namespace flexon
