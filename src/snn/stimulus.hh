/**
 * @file
 * Stimulus generation (Section II-C): external input injected into the
 * network each time step, either from a Poisson process mimicking
 * background activity or from a pre-defined spike pattern.
 */

#ifndef FLEXON_SNN_STIMULUS_HH
#define FLEXON_SNN_STIMULUS_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/random.hh"

namespace flexon {

/** One stimulus spike bound to a target neuron this step. */
struct StimulusSpike
{
    uint32_t target;
    float weight;
    uint8_t type;
};

/**
 * A stimulus source covering a contiguous range of neurons.
 *
 * Poisson sources draw an independent Bernoulli event per neuron per
 * step with probability rate (the discretized Poisson process);
 * pattern sources replay a fixed periodic schedule.
 */
class StimulusSource
{
  public:
    /**
     * Poisson background: every neuron in [base, base+count) receives
     * an input spike of the given weight with probability
     * `probability` each time step.
     */
    static StimulusSource poisson(uint32_t base, uint32_t count,
                                  double probability, float weight,
                                  uint8_t type);

    /**
     * Periodic pattern: every `period` steps, all neurons in the
     * range receive one input spike (a synchronous volley).
     */
    static StimulusSource pattern(uint32_t base, uint32_t count,
                                  uint32_t period, float weight,
                                  uint8_t type);

    /**
     * Ornstein-Uhlenbeck conductance noise — Destexhe's
     * point-conductance model of synaptic background activity (the
     * fluctuating drive behind the Destexhe rows of Table I). Every
     * neuron in the range receives an input every step, drawn from
     * its own OU process
     *
     *     x <- x + (mean - x) / tau + sigma * sqrt(2/tau) * N(0,1)
     *
     * clamped at zero (conductances cannot be negative).
     */
    static StimulusSource ou(uint32_t base, uint32_t count,
                             double mean, double sigma, double tau,
                             uint8_t type);

    /** Append this source's spikes for time step `t` to `out`. */
    void generate(uint64_t t, Rng &rng,
                  std::vector<StimulusSpike> &out);

    /** Expected spikes per step (for cost accounting). */
    double expectedSpikesPerStep() const;

    /**
     * Checkpoint the source's dynamic state (the per-neuron OU
     * trajectory; Poisson and pattern sources are stateless beyond
     * the generator's RNG). Text, exact round trip.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    enum class Kind { Poisson, Pattern, OrnsteinUhlenbeck };

    Kind kind_ = Kind::Poisson;
    uint32_t base_ = 0;
    uint32_t count_ = 0;
    double probability_ = 0.0;
    uint32_t period_ = 1;
    float weight_ = 0.0f;
    uint8_t type_ = 0;
    double ouMean_ = 0.0;
    double ouSigma_ = 0.0;
    double ouTau_ = 1.0;
    /** Per-neuron OU state (lazily sized). */
    std::vector<double> ouState_;
};

/** A collection of stimulus sources evaluated each step. */
class StimulusGenerator
{
  public:
    explicit StimulusGenerator(uint64_t seed = 1);

    void addSource(const StimulusSource &source);

    /** Generate all stimulus spikes for time step `t`. */
    const std::vector<StimulusSpike> &generate(uint64_t t);

    size_t numSources() const { return sources_.size(); }
    double expectedSpikesPerStep() const;

    /**
     * Checkpoint the generator's stream state: the RNG (every source
     * draws from it, so its position encodes all past steps) plus
     * each source's dynamic state. A restored generator continues the
     * identical spike sequence. fatal() on malformed input.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    Rng rng_;
    std::vector<StimulusSource> sources_;
    std::vector<StimulusSpike> buffer_;
};

} // namespace flexon

#endif // FLEXON_SNN_STIMULUS_HH
