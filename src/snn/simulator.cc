#include "snn/simulator.hh"

#include <utility>

#include "common/logging.hh"

namespace flexon {

namespace {

SessionOptions
toSessionOptions(const SimulatorOptions &options)
{
    SessionOptions session;
    session.stimulusSeed = options.stimulusSeed;
    session.threads = options.threads;
    session.recordSpikes = options.recordSpikes;
    session.probes = options.probes;
    session.health = options.health;
    session.metricsOut = options.metricsOut;
    session.metricsEvery = options.metricsEvery;
    session.label = options.label;
    return session;
}

} // namespace

Simulator::Simulator(const Network &network, StimulusGenerator stimulus,
                     const SimulatorOptions &options)
    : SimulationSession(network, std::move(stimulus),
                        toSessionOptions(options)),
      options_(options)
{
    backend_ = makeBackend(options_.backend, network, options_.mode,
                           options_.solver, options_.threads);
    router_ = std::make_unique<SpikeRouter>(
        network, options_.threads == 0 ? 1 : options_.threads,
        &metrics(), options_.connectivity);
    router_->setSparseDelivery(options_.sparseDelivery);
}

void
Simulator::engineInjectStimulus(uint64_t t,
                                std::span<const StimulusSpike> spikes)
{
    auto current = router_->slot(t);
    for (const StimulusSpike &s : spikes) {
        flexon_assert(s.target < network().numNeurons());
        flexon_assert(s.type < maxSynapseTypes);
        const uint32_t cell = s.target * maxSynapseTypes + s.type;
        current[cell] += s.weight;
        router_->noteStimulus(t, cell);
    }
}

void
Simulator::engineStepNeurons(uint64_t t, std::vector<uint8_t> &fired)
{
    backend_->step(router_->slot(t), fired);
}

void
Simulator::enginePrepareDelivery()
{
    router_->refreshWeights();
}

void
Simulator::engineDeliverSpikes(uint64_t t,
                               std::span<const uint32_t> fired)
{
    // Clear the consumed slot (activity-proportionally) and stream
    // the fired rows' delivery records into the t + delay slots —
    // bit-identical to the serial scan at any thread count (see
    // snn/routing.hh).
    router_->routeStep(t, fired);
}

void
Simulator::engineReset()
{
    backend_->reset();
    router_->reset();
}

double
Simulator::engineModelSecondsPerStep() const
{
    return backend_->modelSecondsPerStep();
}

void
Simulator::refreshEngineStats(PhaseStats &view) const
{
    view.synapseEvents = router_->events();
    view.routingTableBytes =
        router_->kind() == ConnectivityKind::Materialized
            ? router_->table().memoryBytes()
            : 0;
    view.connectivityBytes = router_->connectivityBytes() +
                             network().connectivityBytes();
    view.rowCacheHits = router_->rowCacheHits();
    view.rowCacheMisses = router_->rowCacheMisses();
    view.ringDenseClears = router_->denseClears();
    view.ringSparseClears = router_->sparseClears();
    view.ringCellsCleared = router_->cellsCleared();
    view.routerShardsSkipped = router_->shardsSkipped();
    view.routerBucketsVisited = router_->bucketsVisited();
}

void
Simulator::engineReportConfig(telemetry::ReportFields &config) const
{
    config.emplace_back(
        "backend",
        telemetry::jsonQuoted(backendName(options_.backend)));
    config.emplace_back("connectivity",
                        telemetry::jsonQuoted(connectivityKindName(
                            options_.connectivity)));
}

void
Simulator::engineSaveState(std::ostream &os) const
{
    backend_->saveState(os);
    router_->saveState(os);
}

void
Simulator::engineLoadState(std::istream &is)
{
    backend_->loadState(is);
    router_->loadState(is);
}

void
Simulator::engineHealthScan(uint64_t begin, uint64_t end,
                            health::HealthScan &scan) const
{
    backend_->healthProbe(static_cast<size_t>(begin),
                          static_cast<size_t>(end), scan);
    // Ring watermark: pending writes against the ring's cell count.
    // Duplicate writes count twice, so the session clamps the
    // fraction at 1.
    scan.ringOccupancy = router_->pendingWrites();
    scan.ringCapacity = static_cast<uint64_t>(router_->ringDepth()) *
                        router_->slotSize();
}

bool
Simulator::engineExportTransfer(EngineTransfer &out) const
{
    if (!backend_->exportLlifState(out.v, out.refractory))
        return false;
    out.t = currentStep();
    out.synapseEvents = router_->events();
    router_->exportRing(out.t, out.ring);
    return true;
}

bool
Simulator::engineImportTransfer(const EngineTransfer &in)
{
    flexon_assert(in.t == currentStep());
    if (!backend_->importLlifState(in.v, in.refractory))
        return false;
    router_->importRing(in.t, in.ring);
    router_->seedEvents(in.synapseEvents);
    return true;
}

} // namespace flexon
