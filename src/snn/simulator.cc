#include "snn/simulator.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/debug.hh"
#include "common/logging.hh"

namespace flexon {

Simulator::Simulator(const Network &network, StimulusGenerator stimulus,
                     const SimulatorOptions &options)
    : network_(network), stimulus_(std::move(stimulus)),
      stimulusInitial_(stimulus_), options_(options),
      stimulusTimer_(metrics_.timer(
          "phase.stimulus", "host seconds in stimulus generation")),
      neuronTimer_(metrics_.timer(
          "phase.neuron", "host seconds in neuron computation")),
      synapseTimer_(metrics_.timer(
          "phase.synapse", "host seconds in synapse calculation")),
      routeTimer_(metrics_.timer(
          "phase.synapse.route",
          "host seconds in the delivery engine (clear + route)")),
      probeTimer_(metrics_.timer(
          "phase.probe", "host seconds sampling membrane probes")),
      stepsCounter_(
          metrics_.counter("sim.steps", "time steps simulated")),
      spikesCounter_(
          metrics_.counter("sim.spikes", "output spikes fired")),
      modelNeuronSecGauge_(metrics_.gauge(
          "hw.model_neuron_sec",
          "modelled hardware neuron-phase seconds"))
{
    if (!network_.finalized())
        fatal("network must be finalized before simulation");
    backend_ = makeBackend(options_.backend, network_, options_.mode,
                           options_.solver, options_.threads);
    router_ = std::make_unique<SpikeRouter>(
        network_, options_.threads == 0 ? 1 : options_.threads,
        &metrics_);
    spikeCounts_.assign(network_.numNeurons(), 0);
    for (uint32_t probe : options_.probes)
        flexon_assert(probe < network_.numNeurons());
    probeTraces_.resize(options_.probes.size());
    firedList_.reserve(network_.numNeurons());
}

const std::vector<double> &
Simulator::probeTrace(size_t probe) const
{
    flexon_assert(probe < probeTraces_.size());
    return probeTraces_[probe];
}

std::span<double>
Simulator::slot(uint64_t t)
{
    return router_->slot(t);
}

void
Simulator::phaseStimulus()
{
    telemetry::ScopedTimer scope(stimulusTimer_, "sim.stimulus");
    auto current = slot(t_);
    for (const StimulusSpike &s : stimulus_.generate(t_)) {
        flexon_assert(s.target < network_.numNeurons());
        flexon_assert(s.type < maxSynapseTypes);
        const uint32_t cell = s.target * maxSynapseTypes + s.type;
        current[cell] += s.weight;
        router_->noteStimulus(t_, cell);
    }
}

void
Simulator::phaseNeuron()
{
    {
        telemetry::ScopedTimer scope(neuronTimer_, "sim.neuron");
        backend_->step(slot(t_), fired_);
    }
    modelNeuronSecGauge_.add(backend_->modelSecondsPerStep());
}

void
Simulator::phaseSynapse()
{
    telemetry::ScopedTimer scope(synapseTimer_, "sim.synapse");

    // Re-mirror any plasticity weight updates into the packed
    // routing table (one counter compare when nothing changed).
    router_->refreshWeights();

    // Serial bookkeeping sweep: spike counters, optional event
    // recording, and the fired list the routing lanes iterate.
    firedList_.clear();
    const uint32_t numNeurons =
        static_cast<uint32_t>(network_.numNeurons());
    for (uint32_t n = 0; n < numNeurons; ++n) {
        if (!fired_[n])
            continue;
        firedList_.push_back(n);
        ++spikeCounts_[n];
        if (options_.recordSpikes)
            spikeEvents_.push_back({t_, n});
    }
    spikesCounter_.add(firedList_.size());

    // Clear the consumed slot (activity-proportionally) and stream
    // the fired rows' delivery records into the t_ + delay slots —
    // bit-identical to the serial scan at any thread count (see
    // snn/routing.hh).
    telemetry::ScopedTimer routeScope(routeTimer_,
                                      "sim.synapse.route");
    router_->routeStep(t_, firedList_);
}

void
Simulator::stepOnce()
{
    telemetry::TraceScope step("sim.step");
    phaseStimulus();
    phaseNeuron();
    phaseSynapse();
    FLEXON_DPRINTF(Simulator,
                   "step %llu: %llu spikes so far, %llu synapse "
                   "events",
                   static_cast<unsigned long long>(t_),
                   static_cast<unsigned long long>(
                       spikesCounter_.value()),
                   static_cast<unsigned long long>(
                       router_->events()));
    if (!options_.probes.empty()) {
        telemetry::ScopedTimer scope(probeTimer_);
        for (size_t i = 0; i < options_.probes.size(); ++i) {
            probeTraces_[i].push_back(
                backend_->membrane(options_.probes[i]));
        }
    }
    ++t_;
    stepsCounter_.add(1);
}

void
Simulator::run(uint64_t steps)
{
    if (steps == 0)
        return;
    // Reserve recording capacity up front so per-step push_backs do
    // not reallocate mid-run. Spike-event growth is estimated from
    // the observed rate (a modest prior on a fresh simulator) and
    // capped so absurd step counts cannot over-commit memory.
    if (options_.recordSpikes && network_.numNeurons() > 0) {
        constexpr uint64_t maxReserveAhead = uint64_t{1} << 22;
        const double rate =
            stepsCounter_.value() > 0 ? meanRate() : 0.02;
        const double expected =
            1.25 * rate * static_cast<double>(steps) *
            static_cast<double>(network_.numNeurons());
        const auto ahead = static_cast<uint64_t>(
            std::min(expected, 1e18));
        spikeEvents_.reserve(spikeEvents_.size() +
                             std::min(ahead, maxReserveAhead));
    }
    for (auto &trace : probeTraces_)
        trace.reserve(trace.size() + steps);

    for (uint64_t i = 0; i < steps; ++i)
        stepOnce();
}

double
Simulator::meanRate() const
{
    const uint64_t steps = stepsCounter_.value();
    if (steps == 0 || network_.numNeurons() == 0)
        return 0.0;
    return static_cast<double>(spikesCounter_.value()) /
           (static_cast<double>(steps) *
            static_cast<double>(network_.numNeurons()));
}

const PhaseStats &
Simulator::stats() const
{
    statsView_.stimulusSec = stimulusTimer_.seconds();
    statsView_.neuronSec = neuronTimer_.seconds();
    statsView_.synapseSec = synapseTimer_.seconds();
    statsView_.synapseRouteSec = routeTimer_.seconds();
    statsView_.probeSec = probeTimer_.seconds();
    statsView_.steps = stepsCounter_.value();
    statsView_.spikes = spikesCounter_.value();
    statsView_.modelNeuronSec = modelNeuronSecGauge_.value();
    statsView_.threadsUsed =
        options_.threads == 0 ? 1 : options_.threads;
    statsView_.synapseEvents = router_->events();
    statsView_.routingTableBytes = router_->table().memoryBytes();
    statsView_.ringDenseClears = router_->denseClears();
    statsView_.ringSparseClears = router_->sparseClears();
    statsView_.ringCellsCleared = router_->cellsCleared();
    // The route interval is strictly nested inside the synapse-phase
    // interval on the same steady clock.
    flexon_debug_assert(statsView_.synapseRouteSec <=
                        statsView_.synapseSec);
    return statsView_;
}

void
Simulator::printStats(std::ostream &os) const
{
    const PhaseStats &view = stats();
    auto line = [&os](const char *name, double value,
                      const char *desc) {
        os << std::left << std::setw(34) << name << ' '
           << std::setprecision(9) << value << "  # " << desc
           << '\n';
    };
    os << "---------- simulation statistics ----------\n";
    line("sim.steps", static_cast<double>(view.steps),
         "time steps simulated");
    line("sim.neurons", static_cast<double>(network_.numNeurons()),
         "neurons in the network");
    line("sim.synapses", static_cast<double>(network_.numSynapses()),
         "synapses in the network");
    line("sim.spikes", static_cast<double>(view.spikes),
         "output spikes fired");
    line("sim.rate", meanRate(), "spikes per neuron per step");
    line("sim.synapse_events",
         static_cast<double>(view.synapseEvents),
         "synaptic weight deliveries");
    line("phase.stimulus_sec", view.stimulusSec,
         "host seconds in stimulus generation");
    line("phase.neuron_sec", view.neuronSec,
         "host seconds in neuron computation");
    line("phase.synapse_sec", view.synapseSec,
         "host seconds in synapse calculation");
    line("phase.synapse_route_sec", view.synapseRouteSec,
         "host seconds in parallel spike routing");
    line("phase.probe_sec", view.probeSec,
         "host seconds sampling membrane probes");
    if (view.totalSec() > 0.0) {
        line("sim.steps_per_sec",
             static_cast<double>(view.steps) / view.totalSec(),
             "simulated steps per host second");
        line("sim.synapse_events_per_sec",
             static_cast<double>(view.synapseEvents) /
                 view.totalSec(),
             "synaptic deliveries per host second");
    }
    line("engine.threads", static_cast<double>(view.threadsUsed),
         "worker lanes per phase (1 = serial)");
    if (view.synapseSec > 0.0) {
        line("engine.route_share",
             view.synapseRouteSec / view.synapseSec,
             "delivery-engine fraction of the synapse phase");
    }
    line("engine.routing_table_bytes",
         static_cast<double>(view.routingTableBytes),
         "precompiled spike-routing table footprint");
    line("engine.ring_dense_clears",
         static_cast<double>(view.ringDenseClears),
         "ring-slot clears via dense fill");
    line("engine.ring_sparse_clears",
         static_cast<double>(view.ringSparseClears),
         "ring-slot clears via tracked-write undo");
    line("engine.ring_cells_cleared",
         static_cast<double>(view.ringCellsCleared),
         "cells zeroed by sparse clears");
    if (view.totalSec() > 0.0) {
        line("phase.neuron_share",
             view.neuronSec / view.totalSec(),
             "neuron-computation fraction of the step (Figure 3)");
    }
    if (view.modelNeuronSec > 0.0) {
        line("hw.model_neuron_sec", view.modelNeuronSec,
             "modelled hardware neuron-phase seconds");
        line("hw.speedup_vs_host",
             view.neuronSec / view.modelNeuronSec,
             "modelled hardware speedup over this host");
    }
    os << "--------------------------------------------\n";
}

void
Simulator::reset()
{
    backend_->reset();
    router_->reset();
    std::fill(spikeCounts_.begin(), spikeCounts_.end(), 0);
    // Drop the previous run's fired flags too: lastFired() must
    // report "no step taken yet" after a reset, not stale spikes.
    fired_.clear();
    firedList_.clear();
    spikeEvents_.clear();
    for (auto &trace : probeTraces_)
        trace.clear();
    metrics_.reset();
    statsView_ = PhaseStats{};
    t_ = 0;
    stimulus_ = stimulusInitial_;
}

bool
Simulator::writeRunReport(const std::string &path) const
{
    const PhaseStats &view = stats();
    telemetry::ReportContext context;
    auto &config = context.config;
    config.emplace_back(
        "backend",
        telemetry::jsonQuoted(backendName(options_.backend)));
    config.emplace_back("threads",
                        std::to_string(view.threadsUsed));
    config.emplace_back("stimulus_seed",
                        std::to_string(options_.stimulusSeed));
    config.emplace_back("neurons",
                        std::to_string(network_.numNeurons()));
    config.emplace_back("synapses",
                        std::to_string(network_.numSynapses()));
    config.emplace_back("probes",
                        std::to_string(options_.probes.size()));
    config.emplace_back("record_spikes",
                        options_.recordSpikes ? "true" : "false");

    auto &stats = context.stats;
    auto num = [](double x) { return telemetry::jsonNumber(x); };
    stats.emplace_back("steps", std::to_string(view.steps));
    stats.emplace_back("spikes", std::to_string(view.spikes));
    stats.emplace_back("synapse_events",
                       std::to_string(view.synapseEvents));
    stats.emplace_back("mean_rate", num(meanRate()));
    stats.emplace_back("stimulus_sec", num(view.stimulusSec));
    stats.emplace_back("neuron_sec", num(view.neuronSec));
    stats.emplace_back("synapse_sec", num(view.synapseSec));
    stats.emplace_back("synapse_route_sec",
                       num(view.synapseRouteSec));
    stats.emplace_back("probe_sec", num(view.probeSec));
    stats.emplace_back("total_sec", num(view.totalSec()));
    stats.emplace_back("model_neuron_sec",
                       num(view.modelNeuronSec));
    stats.emplace_back("routing_table_bytes",
                       std::to_string(view.routingTableBytes));
    stats.emplace_back("ring_dense_clears",
                       std::to_string(view.ringDenseClears));
    stats.emplace_back("ring_sparse_clears",
                       std::to_string(view.ringSparseClears));
    stats.emplace_back("ring_cells_cleared",
                       std::to_string(view.ringCellsCleared));
    if (view.totalSec() > 0.0) {
        stats.emplace_back(
            "steps_per_sec",
            num(static_cast<double>(view.steps) / view.totalSec()));
        stats.emplace_back(
            "synapse_events_per_sec",
            num(static_cast<double>(view.synapseEvents) /
                view.totalSec()));
    }

    context.metrics = &metrics_;
    return telemetry::writeReportFile(path, context);
}

} // namespace flexon
