#include "snn/simulator.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

#include "common/debug.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace flexon {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

Simulator::Simulator(const Network &network, StimulusGenerator stimulus,
                     const SimulatorOptions &options)
    : network_(network), stimulus_(std::move(stimulus)),
      stimulusInitial_(stimulus_), options_(options)
{
    if (!network_.finalized())
        fatal("network must be finalized before simulation");
    backend_ = makeBackend(options_.backend, network_, options_.mode,
                           options_.solver, options_.threads);
    ringDepth_ = static_cast<size_t>(network_.maxDelay()) + 1;
    ring_.assign(ringDepth_ * network_.numNeurons() * maxSynapseTypes,
                 0.0);
    spikeCounts_.assign(network_.numNeurons(), 0);
    for (uint32_t probe : options_.probes)
        flexon_assert(probe < network_.numNeurons());
    probeTraces_.resize(options_.probes.size());

    stats_.threadsUsed = options_.threads == 0 ? 1 : options_.threads;
    firedList_.reserve(network_.numNeurons());
    slotBase_.assign(ringDepth_, nullptr);
    buildShards();
}

void
Simulator::buildShards()
{
    const size_t n = network_.numNeurons();
    shardCount_ =
        std::min(options_.threads == 0 ? size_t{1} : options_.threads,
                 ThreadPool::maxLanes);
    if (shardCount_ > 1 && shardCount_ > n)
        shardCount_ = n == 0 ? 1 : n;
    shardEvents_.assign(shardCount_, 0);

    // Incoming delivery count per target neuron: the load-balancing
    // weight for the shard boundaries.
    std::vector<uint64_t> incoming(n, 0);
    const uint64_t total = network_.numSynapses();
    for (uint32_t src = 0; src < n; ++src)
        for (const Synapse &syn : network_.outgoing(src))
            ++incoming[syn.target];

    // Cut the target axis into shardCount_ contiguous ranges of
    // roughly equal incoming-synapse load.
    shardTargetBegin_.assign(shardCount_ + 1, 0);
    shardTargetBegin_[shardCount_] = static_cast<uint32_t>(n);
    uint64_t accum = 0;
    size_t shard = 1;
    for (uint32_t target = 0; target < n && shard < shardCount_;
         ++target) {
        accum += incoming[target];
        if (accum * shardCount_ >= total * shard) {
            shardTargetBegin_[shard] = target + 1;
            ++shard;
        }
    }
    for (; shard < shardCount_; ++shard)
        shardTargetBegin_[shard] = static_cast<uint32_t>(n);

    // Target neuron -> owning shard.
    std::vector<uint32_t> shardOf(n, 0);
    for (size_t s = 0; s < shardCount_; ++s)
        for (uint32_t t = shardTargetBegin_[s];
             t < shardTargetBegin_[s + 1]; ++t)
            shardOf[t] = static_cast<uint32_t>(s);

    // Counting sort of the synapse indices into shard-major,
    // row-ascending order (row order preserved within a row, so the
    // per-cell delivery order matches the serial scan exactly).
    const size_t stride = n + 1;
    shardRow_.assign(shardCount_ * stride, 0);
    for (uint32_t src = 0; src < n; ++src) {
        for (const Synapse &syn : network_.outgoing(src))
            ++shardRow_[shardOf[syn.target] * stride + src + 1];
    }
    uint64_t running = 0;
    for (size_t s = 0; s < shardCount_; ++s) {
        shardRow_[s * stride] = running;
        for (size_t r = 1; r <= n; ++r) {
            running += shardRow_[s * stride + r];
            shardRow_[s * stride + r] = running;
        }
    }
    synOrder_.assign(total, 0);
    std::vector<uint64_t> fill(shardCount_ * stride);
    for (size_t s = 0; s < shardCount_; ++s)
        for (size_t r = 0; r < n; ++r)
            fill[s * stride + r] = shardRow_[s * stride + r];
    for (uint32_t src = 0; src < n; ++src) {
        const uint64_t base = network_.rowStart(src);
        const auto row = network_.outgoing(src);
        for (size_t k = 0; k < row.size(); ++k) {
            const size_t s = shardOf[row[k].target];
            synOrder_[fill[s * stride + src]++] = base + k;
        }
    }
}

const std::vector<double> &
Simulator::probeTrace(size_t probe) const
{
    flexon_assert(probe < probeTraces_.size());
    return probeTraces_[probe];
}

std::span<double>
Simulator::slot(uint64_t t)
{
    const size_t slot_size = network_.numNeurons() * maxSynapseTypes;
    return {ring_.data() + (t % ringDepth_) * slot_size, slot_size};
}

void
Simulator::phaseStimulus()
{
    const auto start = Clock::now();
    auto current = slot(t_);
    for (const StimulusSpike &s : stimulus_.generate(t_)) {
        flexon_assert(s.target < network_.numNeurons());
        flexon_assert(s.type < maxSynapseTypes);
        current[s.target * maxSynapseTypes + s.type] += s.weight;
    }
    stats_.stimulusSec += secondsSince(start);
}

void
Simulator::phaseNeuron()
{
    const auto start = Clock::now();
    backend_->step(slot(t_), fired_);
    stats_.neuronSec += secondsSince(start);
    stats_.modelNeuronSec += backend_->modelSecondsPerStep();
}

void
Simulator::phaseSynapse()
{
    const auto start = Clock::now();
    // Consume the current slot, then route the new spikes into the
    // future slots according to each synapse's delay.
    auto current = slot(t_);
    std::fill(current.begin(), current.end(), 0.0);

    // Serial bookkeeping sweep: spike counters, optional event
    // recording, and the fired list the routing lanes iterate.
    firedList_.clear();
    const uint32_t numNeurons =
        static_cast<uint32_t>(network_.numNeurons());
    for (uint32_t n = 0; n < numNeurons; ++n) {
        if (!fired_[n])
            continue;
        firedList_.push_back(n);
        ++spikeCounts_[n];
        ++stats_.spikes;
        if (options_.recordSpikes)
            spikeEvents_.push_back({t_, n});
    }

    if (!firedList_.empty() && network_.numSynapses() > 0) {
        // Hoist the slot(t_ + delay) recomputation out of the inner
        // loop: one base pointer per ring slot, indexed by delay.
        const size_t slotSize =
            network_.numNeurons() * maxSynapseTypes;
        for (size_t d = 0; d < ringDepth_; ++d)
            slotBase_[d] =
                ring_.data() + ((t_ + d) % ringDepth_) * slotSize;

        const auto routeStart = Clock::now();
        const Synapse *const syns = &network_.synapseAt(0);
        const uint64_t *const synOrder = synOrder_.data();
        const size_t stride = network_.numNeurons() + 1;
        // Each lane delivers only the synapses whose targets fall in
        // its own shard: contention-free, and every ring cell is
        // written in exactly the serial order regardless of the
        // shard count, so results are bit-identical for any
        // `threads` setting.
        ThreadPool::global().forEachLane(
            shardCount_, [&](size_t s) {
                const uint64_t *const rowPtr =
                    shardRow_.data() + s * stride;
                uint64_t events = 0;
                for (const uint32_t n : firedList_) {
                    const uint64_t rowEnd = rowPtr[n + 1];
                    for (uint64_t k = rowPtr[n]; k < rowEnd; ++k) {
                        const Synapse &syn = syns[synOrder[k]];
                        slotBase_[syn.delay]
                                 [syn.target * maxSynapseTypes +
                                  syn.type] += syn.weight;
                        ++events;
                    }
                }
                shardEvents_[s] = events;
            });
        for (size_t s = 0; s < shardCount_; ++s)
            stats_.synapseEvents += shardEvents_[s];
        stats_.synapseRouteSec += secondsSince(routeStart);
    }
    stats_.synapseSec += secondsSince(start);
}

void
Simulator::stepOnce()
{
    phaseStimulus();
    phaseNeuron();
    phaseSynapse();
    FLEXON_DPRINTF(Simulator,
                   "step %llu: %llu spikes so far, %llu synapse "
                   "events",
                   static_cast<unsigned long long>(t_),
                   static_cast<unsigned long long>(stats_.spikes),
                   static_cast<unsigned long long>(
                       stats_.synapseEvents));
    for (size_t i = 0; i < options_.probes.size(); ++i) {
        probeTraces_[i].push_back(
            backend_->membrane(options_.probes[i]));
    }
    ++t_;
    ++stats_.steps;
}

void
Simulator::run(uint64_t steps)
{
    for (uint64_t i = 0; i < steps; ++i)
        stepOnce();
}

double
Simulator::meanRate() const
{
    if (stats_.steps == 0 || network_.numNeurons() == 0)
        return 0.0;
    return static_cast<double>(stats_.spikes) /
           (static_cast<double>(stats_.steps) *
            static_cast<double>(network_.numNeurons()));
}

void
Simulator::printStats(std::ostream &os) const
{
    auto line = [&os](const char *name, double value,
                      const char *desc) {
        os << std::left << std::setw(34) << name << ' '
           << std::setprecision(9) << value << "  # " << desc
           << '\n';
    };
    os << "---------- simulation statistics ----------\n";
    line("sim.steps", static_cast<double>(stats_.steps),
         "time steps simulated");
    line("sim.neurons", static_cast<double>(network_.numNeurons()),
         "neurons in the network");
    line("sim.synapses", static_cast<double>(network_.numSynapses()),
         "synapses in the network");
    line("sim.spikes", static_cast<double>(stats_.spikes),
         "output spikes fired");
    line("sim.rate", meanRate(), "spikes per neuron per step");
    line("sim.synapse_events",
         static_cast<double>(stats_.synapseEvents),
         "synaptic weight deliveries");
    line("phase.stimulus_sec", stats_.stimulusSec,
         "host seconds in stimulus generation");
    line("phase.neuron_sec", stats_.neuronSec,
         "host seconds in neuron computation");
    line("phase.synapse_sec", stats_.synapseSec,
         "host seconds in synapse calculation");
    line("phase.synapse_route_sec", stats_.synapseRouteSec,
         "host seconds in parallel spike routing");
    line("engine.threads", static_cast<double>(stats_.threadsUsed),
         "worker lanes per phase (1 = serial)");
    if (stats_.synapseSec > 0.0) {
        line("engine.route_share",
             stats_.synapseRouteSec / stats_.synapseSec,
             "parallel fraction of the synapse phase");
    }
    if (stats_.totalSec() > 0.0) {
        line("phase.neuron_share",
             stats_.neuronSec / stats_.totalSec(),
             "neuron-computation fraction of the step (Figure 3)");
    }
    if (stats_.modelNeuronSec > 0.0) {
        line("hw.model_neuron_sec", stats_.modelNeuronSec,
             "modelled hardware neuron-phase seconds");
        line("hw.speedup_vs_host",
             stats_.neuronSec / stats_.modelNeuronSec,
             "modelled hardware speedup over this host");
    }
    os << "--------------------------------------------\n";
}

void
Simulator::reset()
{
    backend_->reset();
    std::fill(ring_.begin(), ring_.end(), 0.0);
    std::fill(spikeCounts_.begin(), spikeCounts_.end(), 0);
    spikeEvents_.clear();
    for (auto &trace : probeTraces_)
        trace.clear();
    stats_ = PhaseStats{};
    stats_.threadsUsed = options_.threads == 0 ? 1 : options_.threads;
    t_ = 0;
    stimulus_ = stimulusInitial_;
}

} // namespace flexon
