#include "snn/simulator.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

#include "common/debug.hh"
#include "common/logging.hh"

namespace flexon {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

Simulator::Simulator(const Network &network, StimulusGenerator stimulus,
                     const SimulatorOptions &options)
    : network_(network), stimulus_(std::move(stimulus)),
      stimulusInitial_(stimulus_), options_(options)
{
    if (!network_.finalized())
        fatal("network must be finalized before simulation");
    backend_ = makeBackend(options_.backend, network_, options_.mode,
                           options_.solver, options_.threads);
    router_ = std::make_unique<SpikeRouter>(
        network_, options_.threads == 0 ? 1 : options_.threads);
    spikeCounts_.assign(network_.numNeurons(), 0);
    for (uint32_t probe : options_.probes)
        flexon_assert(probe < network_.numNeurons());
    probeTraces_.resize(options_.probes.size());

    stats_.threadsUsed = options_.threads == 0 ? 1 : options_.threads;
    stats_.routingTableBytes = router_->table().memoryBytes();
    firedList_.reserve(network_.numNeurons());
}

const std::vector<double> &
Simulator::probeTrace(size_t probe) const
{
    flexon_assert(probe < probeTraces_.size());
    return probeTraces_[probe];
}

std::span<double>
Simulator::slot(uint64_t t)
{
    return router_->slot(t);
}

void
Simulator::phaseStimulus()
{
    const auto start = Clock::now();
    auto current = slot(t_);
    for (const StimulusSpike &s : stimulus_.generate(t_)) {
        flexon_assert(s.target < network_.numNeurons());
        flexon_assert(s.type < maxSynapseTypes);
        const uint32_t cell = s.target * maxSynapseTypes + s.type;
        current[cell] += s.weight;
        router_->noteStimulus(t_, cell);
    }
    stats_.stimulusSec += secondsSince(start);
}

void
Simulator::phaseNeuron()
{
    const auto start = Clock::now();
    backend_->step(slot(t_), fired_);
    stats_.neuronSec += secondsSince(start);
    stats_.modelNeuronSec += backend_->modelSecondsPerStep();
}

void
Simulator::phaseSynapse()
{
    const auto start = Clock::now();

    // Re-mirror any plasticity weight updates into the packed
    // routing table (one counter compare when nothing changed).
    router_->refreshWeights();

    // Serial bookkeeping sweep: spike counters, optional event
    // recording, and the fired list the routing lanes iterate.
    firedList_.clear();
    const uint32_t numNeurons =
        static_cast<uint32_t>(network_.numNeurons());
    for (uint32_t n = 0; n < numNeurons; ++n) {
        if (!fired_[n])
            continue;
        firedList_.push_back(n);
        ++spikeCounts_[n];
        ++stats_.spikes;
        if (options_.recordSpikes)
            spikeEvents_.push_back({t_, n});
    }

    // Clear the consumed slot (activity-proportionally) and stream
    // the fired rows' delivery records into the t_ + delay slots —
    // bit-identical to the serial scan at any thread count (see
    // snn/routing.hh).
    const auto routeStart = Clock::now();
    router_->routeStep(t_, firedList_);
    stats_.synapseRouteSec += secondsSince(routeStart);
    stats_.synapseEvents = router_->events();
    stats_.ringDenseClears = router_->denseClears();
    stats_.ringSparseClears = router_->sparseClears();
    stats_.ringCellsCleared = router_->cellsCleared();
    stats_.synapseSec += secondsSince(start);
}

void
Simulator::stepOnce()
{
    phaseStimulus();
    phaseNeuron();
    phaseSynapse();
    FLEXON_DPRINTF(Simulator,
                   "step %llu: %llu spikes so far, %llu synapse "
                   "events",
                   static_cast<unsigned long long>(t_),
                   static_cast<unsigned long long>(stats_.spikes),
                   static_cast<unsigned long long>(
                       stats_.synapseEvents));
    for (size_t i = 0; i < options_.probes.size(); ++i) {
        probeTraces_[i].push_back(
            backend_->membrane(options_.probes[i]));
    }
    ++t_;
    ++stats_.steps;
}

void
Simulator::run(uint64_t steps)
{
    if (steps == 0)
        return;
    // Reserve recording capacity up front so per-step push_backs do
    // not reallocate mid-run. Spike-event growth is estimated from
    // the observed rate (a modest prior on a fresh simulator) and
    // capped so absurd step counts cannot over-commit memory.
    if (options_.recordSpikes && network_.numNeurons() > 0) {
        constexpr uint64_t maxReserveAhead = uint64_t{1} << 22;
        const double rate = stats_.steps > 0 ? meanRate() : 0.02;
        const double expected =
            1.25 * rate * static_cast<double>(steps) *
            static_cast<double>(network_.numNeurons());
        const auto ahead = static_cast<uint64_t>(
            std::min(expected, 1e18));
        spikeEvents_.reserve(spikeEvents_.size() +
                             std::min(ahead, maxReserveAhead));
    }
    for (auto &trace : probeTraces_)
        trace.reserve(trace.size() + steps);

    for (uint64_t i = 0; i < steps; ++i)
        stepOnce();
}

double
Simulator::meanRate() const
{
    if (stats_.steps == 0 || network_.numNeurons() == 0)
        return 0.0;
    return static_cast<double>(stats_.spikes) /
           (static_cast<double>(stats_.steps) *
            static_cast<double>(network_.numNeurons()));
}

void
Simulator::printStats(std::ostream &os) const
{
    auto line = [&os](const char *name, double value,
                      const char *desc) {
        os << std::left << std::setw(34) << name << ' '
           << std::setprecision(9) << value << "  # " << desc
           << '\n';
    };
    os << "---------- simulation statistics ----------\n";
    line("sim.steps", static_cast<double>(stats_.steps),
         "time steps simulated");
    line("sim.neurons", static_cast<double>(network_.numNeurons()),
         "neurons in the network");
    line("sim.synapses", static_cast<double>(network_.numSynapses()),
         "synapses in the network");
    line("sim.spikes", static_cast<double>(stats_.spikes),
         "output spikes fired");
    line("sim.rate", meanRate(), "spikes per neuron per step");
    line("sim.synapse_events",
         static_cast<double>(stats_.synapseEvents),
         "synaptic weight deliveries");
    line("phase.stimulus_sec", stats_.stimulusSec,
         "host seconds in stimulus generation");
    line("phase.neuron_sec", stats_.neuronSec,
         "host seconds in neuron computation");
    line("phase.synapse_sec", stats_.synapseSec,
         "host seconds in synapse calculation");
    line("phase.synapse_route_sec", stats_.synapseRouteSec,
         "host seconds in parallel spike routing");
    line("engine.threads", static_cast<double>(stats_.threadsUsed),
         "worker lanes per phase (1 = serial)");
    if (stats_.synapseSec > 0.0) {
        line("engine.route_share",
             stats_.synapseRouteSec / stats_.synapseSec,
             "delivery-engine fraction of the synapse phase");
    }
    line("engine.routing_table_bytes",
         static_cast<double>(stats_.routingTableBytes),
         "precompiled spike-routing table footprint");
    line("engine.ring_dense_clears",
         static_cast<double>(stats_.ringDenseClears),
         "ring-slot clears via dense fill");
    line("engine.ring_sparse_clears",
         static_cast<double>(stats_.ringSparseClears),
         "ring-slot clears via tracked-write undo");
    line("engine.ring_cells_cleared",
         static_cast<double>(stats_.ringCellsCleared),
         "cells zeroed by sparse clears");
    if (stats_.totalSec() > 0.0) {
        line("phase.neuron_share",
             stats_.neuronSec / stats_.totalSec(),
             "neuron-computation fraction of the step (Figure 3)");
    }
    if (stats_.modelNeuronSec > 0.0) {
        line("hw.model_neuron_sec", stats_.modelNeuronSec,
             "modelled hardware neuron-phase seconds");
        line("hw.speedup_vs_host",
             stats_.neuronSec / stats_.modelNeuronSec,
             "modelled hardware speedup over this host");
    }
    os << "--------------------------------------------\n";
}

void
Simulator::reset()
{
    backend_->reset();
    router_->reset();
    std::fill(spikeCounts_.begin(), spikeCounts_.end(), 0);
    // Drop the previous run's fired flags too: lastFired() must
    // report "no step taken yet" after a reset, not stale spikes.
    fired_.clear();
    firedList_.clear();
    spikeEvents_.clear();
    for (auto &trace : probeTraces_)
        trace.clear();
    stats_ = PhaseStats{};
    stats_.threadsUsed = options_.threads == 0 ? 1 : options_.threads;
    stats_.routingTableBytes = router_->table().memoryBytes();
    t_ = 0;
    stimulus_ = stimulusInitial_;
}

} // namespace flexon
