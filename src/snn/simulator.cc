#include "snn/simulator.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

#include "common/debug.hh"
#include "common/logging.hh"

namespace flexon {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

Simulator::Simulator(const Network &network, StimulusGenerator stimulus,
                     const SimulatorOptions &options)
    : network_(network), stimulus_(std::move(stimulus)),
      stimulusInitial_(stimulus_), options_(options)
{
    if (!network_.finalized())
        fatal("network must be finalized before simulation");
    backend_ = makeBackend(options_.backend, network_, options_.mode,
                           options_.solver, options_.threads);
    ringDepth_ = static_cast<size_t>(network_.maxDelay()) + 1;
    ring_.assign(ringDepth_ * network_.numNeurons() * maxSynapseTypes,
                 0.0);
    spikeCounts_.assign(network_.numNeurons(), 0);
    for (uint32_t probe : options_.probes)
        flexon_assert(probe < network_.numNeurons());
    probeTraces_.resize(options_.probes.size());
}

const std::vector<double> &
Simulator::probeTrace(size_t probe) const
{
    flexon_assert(probe < probeTraces_.size());
    return probeTraces_[probe];
}

std::span<double>
Simulator::slot(uint64_t t)
{
    const size_t slot_size = network_.numNeurons() * maxSynapseTypes;
    return {ring_.data() + (t % ringDepth_) * slot_size, slot_size};
}

void
Simulator::phaseStimulus()
{
    const auto start = Clock::now();
    auto current = slot(t_);
    for (const StimulusSpike &s : stimulus_.generate(t_)) {
        flexon_assert(s.target < network_.numNeurons());
        flexon_assert(s.type < maxSynapseTypes);
        current[s.target * maxSynapseTypes + s.type] += s.weight;
    }
    stats_.stimulusSec += secondsSince(start);
}

void
Simulator::phaseNeuron()
{
    const auto start = Clock::now();
    backend_->step(slot(t_), fired_);
    stats_.neuronSec += secondsSince(start);
    stats_.modelNeuronSec += backend_->modelSecondsPerStep();
}

void
Simulator::phaseSynapse()
{
    const auto start = Clock::now();
    // Consume the current slot, then route the new spikes into the
    // future slots according to each synapse's delay.
    auto current = slot(t_);
    std::fill(current.begin(), current.end(), 0.0);

    for (uint32_t n = 0; n < network_.numNeurons(); ++n) {
        if (!fired_[n])
            continue;
        ++spikeCounts_[n];
        ++stats_.spikes;
        if (options_.recordSpikes)
            spikeEvents_.push_back({t_, n});
        for (const Synapse &syn : network_.outgoing(n)) {
            auto future = slot(t_ + syn.delay);
            future[syn.target * maxSynapseTypes + syn.type] +=
                syn.weight;
            ++stats_.synapseEvents;
        }
    }
    stats_.synapseSec += secondsSince(start);
}

void
Simulator::stepOnce()
{
    phaseStimulus();
    phaseNeuron();
    phaseSynapse();
    FLEXON_DPRINTF(Simulator,
                   "step %llu: %llu spikes so far, %llu synapse "
                   "events",
                   static_cast<unsigned long long>(t_),
                   static_cast<unsigned long long>(stats_.spikes),
                   static_cast<unsigned long long>(
                       stats_.synapseEvents));
    for (size_t i = 0; i < options_.probes.size(); ++i) {
        probeTraces_[i].push_back(
            backend_->membrane(options_.probes[i]));
    }
    ++t_;
    ++stats_.steps;
}

void
Simulator::run(uint64_t steps)
{
    for (uint64_t i = 0; i < steps; ++i)
        stepOnce();
}

double
Simulator::meanRate() const
{
    if (stats_.steps == 0 || network_.numNeurons() == 0)
        return 0.0;
    return static_cast<double>(stats_.spikes) /
           (static_cast<double>(stats_.steps) *
            static_cast<double>(network_.numNeurons()));
}

void
Simulator::printStats(std::ostream &os) const
{
    auto line = [&os](const char *name, double value,
                      const char *desc) {
        os << std::left << std::setw(34) << name << ' '
           << std::setprecision(9) << value << "  # " << desc
           << '\n';
    };
    os << "---------- simulation statistics ----------\n";
    line("sim.steps", static_cast<double>(stats_.steps),
         "time steps simulated");
    line("sim.neurons", static_cast<double>(network_.numNeurons()),
         "neurons in the network");
    line("sim.synapses", static_cast<double>(network_.numSynapses()),
         "synapses in the network");
    line("sim.spikes", static_cast<double>(stats_.spikes),
         "output spikes fired");
    line("sim.rate", meanRate(), "spikes per neuron per step");
    line("sim.synapse_events",
         static_cast<double>(stats_.synapseEvents),
         "synaptic weight deliveries");
    line("phase.stimulus_sec", stats_.stimulusSec,
         "host seconds in stimulus generation");
    line("phase.neuron_sec", stats_.neuronSec,
         "host seconds in neuron computation");
    line("phase.synapse_sec", stats_.synapseSec,
         "host seconds in synapse calculation");
    if (stats_.totalSec() > 0.0) {
        line("phase.neuron_share",
             stats_.neuronSec / stats_.totalSec(),
             "neuron-computation fraction of the step (Figure 3)");
    }
    if (stats_.modelNeuronSec > 0.0) {
        line("hw.model_neuron_sec", stats_.modelNeuronSec,
             "modelled hardware neuron-phase seconds");
        line("hw.speedup_vs_host",
             stats_.neuronSec / stats_.modelNeuronSec,
             "modelled hardware speedup over this host");
    }
    os << "--------------------------------------------\n";
}

void
Simulator::reset()
{
    backend_->reset();
    std::fill(ring_.begin(), ring_.end(), 0.0);
    std::fill(spikeCounts_.begin(), spikeCounts_.end(), 0);
    spikeEvents_.clear();
    for (auto &trace : probeTraces_)
        trace.clear();
    stats_ = PhaseStats{};
    t_ = 0;
    stimulus_ = stimulusInitial_;
}

} // namespace flexon
