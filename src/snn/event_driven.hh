/**
 * @file
 * Event-driven simulation for LLIF networks (Section IV-A: linear
 * decay "is suitable for event-driven execution", the property
 * TrueNorth-class designs exploit).
 *
 * A silent LLIF neuron reaches the resting floor after finitely many
 * steps and then stays there *exactly*, so the engine only touches
 * neurons in its active set: those with non-zero state, a pending
 * refractory countdown, or an arriving input. Because the linear
 * decay is closed-form (v -> max(0, v - k * vLeak)), skipped steps
 * are reconstructed exactly on wake-up; the engine is
 * *step-equivalent* to the dense Simulator, which the test suite
 * asserts spike-for-spike.
 *
 * Restrictions: every population must be LID + CUB (+ optional AR) —
 * exactly the TrueNorth-style LLIF configuration.
 */

#ifndef FLEXON_SNN_EVENT_DRIVEN_HH
#define FLEXON_SNN_EVENT_DRIVEN_HH

#include <cstdint>
#include <vector>

#include "common/telemetry.hh"
#include "snn/network.hh"
#include "snn/routing.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** Statistics of an event-driven run. */
struct EventDrivenStats
{
    uint64_t steps = 0;
    uint64_t spikes = 0;
    /** Neuron updates actually performed. */
    uint64_t updates = 0;
    /** Updates a dense per-step engine would have performed. */
    uint64_t denseUpdates = 0;

    /** Fraction of dense updates skipped (the headline saving). */
    double
    savings() const
    {
        return denseUpdates == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(updates) /
                               static_cast<double>(denseUpdates);
    }
};

/** The event-driven LLIF engine. */
class EventDrivenSimulator
{
  public:
    /**
     * @param network finalized; every population must be LID + CUB
     *        (+AR) — fatal() otherwise
     */
    EventDrivenSimulator(const Network &network,
                         StimulusGenerator stimulus);

    /** Run `steps` time steps. */
    void run(uint64_t steps);

    const EventDrivenStats &stats() const { return stats_; }
    const std::vector<uint64_t> &spikeCounts() const
    {
        return spikeCounts_;
    }

    /**
     * This engine's private metrics registry: run()-level counters
     * ("ev.*", mirrored from EventDrivenStats after each run) and
     * the routing table's refresh counters.
     */
    telemetry::Registry &metrics() { return metrics_; }
    const telemetry::Registry &metrics() const { return metrics_; }

    /** Membrane potential of a neuron *as of the current step*. */
    double membrane(uint32_t neuron) const;

  private:
    struct NeuronState
    {
        double v = 0.0;
        uint32_t refractory = 0; ///< remaining AR steps
        uint64_t lastUpdate = 0; ///< step the state was valid at
    };

    /** Bring a neuron's state up to `now` via closed-form decay. */
    void catchUp(uint32_t neuron, uint64_t now);

    /** Evaluate one neuron that has input this step. */
    void updateNeuron(uint32_t neuron, double input, uint64_t now);

    const Network &network_;
    StimulusGenerator stimulus_;
    /** Declared before table_: the table registers counters here. */
    telemetry::Registry metrics_;
    /**
     * Packed delivery rows (single shard): a fired neuron's bucket
     * rows are appended to the pending ring as-is, so delivery
     * streams 8-byte records instead of gathering Synapse structs.
     */
    RoutingTable table_;
    std::vector<NeuronState> state_;
    /** Per-neuron cached parameters. */
    std::vector<double> vLeak_;
    std::vector<uint32_t> arSteps_;

    /**
     * Pending inputs: ring of DeliveryRecords (cell = target *
     * maxSynapseTypes + type) in arrival order.
     */
    size_t ringDepth_;
    std::vector<std::vector<DeliveryRecord>> ring_;

    std::vector<uint64_t> spikeCounts_;
    EventDrivenStats stats_;
    uint64_t t_ = 0;

    /** Cached registry handles (see the class comment on metrics()). */
    telemetry::Timer &runTimer_;
    telemetry::Counter &stepsCounter_;
    telemetry::Counter &spikesCounter_;
    telemetry::Counter &updatesCounter_;
    telemetry::Counter &denseUpdatesCounter_;
};

} // namespace flexon

#endif // FLEXON_SNN_EVENT_DRIVEN_HH
