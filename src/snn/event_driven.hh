/**
 * @file
 * Event-driven simulation for LLIF networks (Section IV-A: linear
 * decay "is suitable for event-driven execution", the property
 * TrueNorth-class designs exploit).
 *
 * A silent LLIF neuron reaches the resting floor after finitely many
 * steps and then stays there *exactly*, so the engine only touches
 * neurons in its active set: those with non-zero state, a pending
 * refractory countdown, or an arriving input. Because the linear
 * decay is closed-form (v -> max(0, v - k * vLeak)), skipped steps
 * are reconstructed exactly on wake-up; the engine is
 * *step-equivalent* to the dense Simulator, which the test suite
 * asserts spike-for-spike.
 *
 * The engine is a SimulationSession: it shares the dense engine's
 * orchestration (stimulus stream, spike recording, membrane probes,
 * printStats, run reports, reset, checkpoint/restore) and plugs in
 * sparse phase bodies — stimulus and pending deliveries fold into
 * per-neuron accumulators, and only the touched set is updated.
 *
 * Restrictions: every population must be LID + CUB (+ optional AR) —
 * exactly the TrueNorth-style LLIF configuration.
 */

#ifndef FLEXON_SNN_EVENT_DRIVEN_HH
#define FLEXON_SNN_EVENT_DRIVEN_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/telemetry.hh"
#include "snn/network.hh"
#include "snn/routing.hh"
#include "snn/session.hh"
#include "snn/stimulus.hh"

namespace flexon {

/**
 * True when `network` satisfies the event-driven engine's model
 * restriction: every population LID + CUB (+ optional AR). When
 * false and `why` is non-null, *why receives a human-readable
 * reason. The auto engine consults this before considering a
 * switch; the EventDrivenSimulator constructor fatal()s on it.
 */
bool eventDrivenEligible(const Network &network,
                         std::string *why = nullptr);

/** Statistics of an event-driven run. */
struct EventDrivenStats
{
    uint64_t steps = 0;
    uint64_t spikes = 0;
    /** Neuron updates actually performed. */
    uint64_t updates = 0;
    /** Updates a dense per-step engine would have performed. */
    uint64_t denseUpdates = 0;

    /** Fraction of dense updates skipped (the headline saving). */
    double
    savings() const
    {
        return denseUpdates == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(updates) /
                               static_cast<double>(denseUpdates);
    }
};

/** The event-driven LLIF engine. */
class EventDrivenSimulator : public SimulationSession
{
  public:
    /**
     * @param network finalized; every population must be LID + CUB
     *        (+AR) — fatal() otherwise
     */
    EventDrivenSimulator(const Network &network,
                         StimulusGenerator stimulus,
                         const SessionOptions &options = {});

    /**
     * Event-driven statistics view (hides the base PhaseStats view;
     * use SimulationSession::stats() for the phase breakdown).
     */
    const EventDrivenStats &stats() const;

    /** Membrane potential of a neuron *as of the current step*. */
    double membrane(uint32_t neuron) const override;

    /** Test/CI hook: NaN-poison one neuron's stored state. */
    bool
    debugPoisonMembrane(uint32_t neuron) override
    {
        if (neuron >= state_.size())
            return false;
        state_[neuron].v = std::numeric_limits<double>::quiet_NaN();
        return true;
    }

  protected:
    const char *engineKind() const override { return "event-driven"; }
    void engineInjectStimulus(
        uint64_t t, std::span<const StimulusSpike> spikes) override;
    void engineStepNeurons(uint64_t t,
                           std::vector<uint8_t> &fired) override;
    void enginePrepareDelivery() override;
    void engineDeliverSpikes(
        uint64_t t, std::span<const uint32_t> fired) override;
    void engineReset() override;
    void refreshEngineStats(PhaseStats &view) const override;
    void engineReportConfig(
        telemetry::ReportFields &config) const override;
    void engineReportStats(
        telemetry::ReportFields &stats) const override;
    void engineSaveState(std::ostream &os) const override;
    void engineLoadState(std::istream &is) override;

    /**
     * Health sweep: check the *stored* membrane values (catchUp's
     * closed-form max() would mask a NaN when reconstructing), and
     * report the pending-event backlog as ring occupancy. The
     * backlog is unbounded (vectors, not a fixed slot), so capacity
     * stays 0 and the watermark detector does not apply.
     */
    void
    engineHealthScan(uint64_t begin, uint64_t end,
                     health::HealthScan &scan) const override
    {
        for (uint64_t n = begin; n < end; ++n) {
            ++scan.checked;
            if (!std::isfinite(state_[n].v)) {
                ++scan.nonFinite;
                if (scan.firstBad < 0)
                    scan.firstBad = static_cast<int64_t>(n);
            }
        }
        uint64_t pending = 0;
        for (const auto &slot : ring_)
            pending += slot.size();
        for (const auto &slot : carry_)
            pending += slot.size();
        scan.ringOccupancy = pending;
        scan.ringCapacity = 0;
    }

  public:
    bool engineExportTransfer(EngineTransfer &out) const override;
    bool engineImportTransfer(const EngineTransfer &in) override;

  private:
    struct NeuronState
    {
        double v = 0.0;
        uint32_t refractory = 0; ///< remaining AR steps
        uint64_t lastUpdate = 0; ///< step the state was valid at
    };

    /** Bring a neuron's state up to `now` via closed-form decay. */
    void catchUp(uint32_t neuron, uint64_t now);

    /** Evaluate one neuron that has input this step. */
    void updateNeuron(uint32_t neuron, double input, uint64_t now,
                      std::vector<uint8_t> &fired);

    /**
     * Packed delivery rows (single shard): a fired neuron's bucket
     * rows are appended to the pending ring as-is, so delivery
     * streams 8-byte records instead of gathering Synapse structs.
     * Constructed after the base class, so the session registry is
     * live for the table's refresh counters.
     */
    RoutingTable table_;
    std::vector<NeuronState> state_;
    /** Per-neuron cached parameters. */
    std::vector<double> vLeak_;
    std::vector<uint32_t> arSteps_;

    /**
     * Pending inputs: ring of DeliveryRecords (cell = target *
     * maxSynapseTypes + type) in arrival order.
     */
    size_t ringDepth_;
    std::vector<std::vector<DeliveryRecord>> ring_;

    /**
     * Carried-over slot values from an engine hand-off: per ring
     * slot, ascending (cell, value) pairs holding the *accumulated
     * doubles* the dense ring contained at the switch point. Folded
     * into the accumulators before the slot's records (they arrived
     * strictly earlier), then cleared with the slot — so a switch
     * loses neither precision nor arrival order. Checkpointed.
     */
    std::vector<std::vector<std::pair<uint32_t, double>>> carry_;

    /**
     * Per-step scratch, members so checkpoints never have to capture
     * them (they are empty/zero between steps): per-neuron per-type
     * accumulators summed in type order — exactly as the dense
     * engine's ring slot is — a queued flag per neuron, and the
     * touched set in discovery order.
     */
    std::vector<std::array<double, maxSynapseTypes>> acc_;
    std::vector<uint8_t> queued_;
    std::vector<uint32_t> touched_;

    /** Delivery records appended to the pending ring (synapse
     *  events). */
    uint64_t evEvents_ = 0;

    /** Materialized by stats() from the session counters. */
    mutable EventDrivenStats evStats_;

    telemetry::Counter &updatesCounter_;
    telemetry::Counter &denseUpdatesCounter_;
};

} // namespace flexon

#endif // FLEXON_SNN_EVENT_DRIVEN_HH
