#include "snn/event_driven.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace flexon {

EventDrivenSimulator::EventDrivenSimulator(const Network &network,
                                           StimulusGenerator stimulus)
    : network_(network), stimulus_(std::move(stimulus)),
      table_(network, 1, &metrics_),
      runTimer_(metrics_.timer("ev.run",
                               "host seconds inside run() calls")),
      stepsCounter_(
          metrics_.counter("ev.steps", "time steps simulated")),
      spikesCounter_(
          metrics_.counter("ev.spikes", "output spikes fired")),
      updatesCounter_(metrics_.counter(
          "ev.updates", "neuron updates actually performed")),
      denseUpdatesCounter_(metrics_.counter(
          "ev.dense_updates",
          "updates a dense per-step engine would have performed"))
{
    if (!network_.finalized())
        fatal("network must be finalized before simulation");

    // Validate the LLIF restriction and cache per-neuron parameters.
    state_.resize(network_.numNeurons());
    vLeak_.resize(network_.numNeurons());
    arSteps_.resize(network_.numNeurons());
    for (size_t p = 0; p < network_.numPopulations(); ++p) {
        const Population &pop = network_.population(p);
        const FeatureSet &f = pop.params.features;
        if (!f.has(Feature::LID) || !f.has(Feature::CUB)) {
            fatal("event-driven execution requires LLIF populations "
                  "(LID + CUB); population '%s' is %s",
                  pop.name.c_str(), f.toString().c_str());
        }
        const FeatureSet allowed{Feature::LID, Feature::CUB,
                                 Feature::AR};
        for (Feature feat : f.list()) {
            if (!allowed.has(feat)) {
                fatal("population '%s' uses %s, which the "
                      "event-driven engine does not support",
                      pop.name.c_str(), featureName(feat));
            }
        }
        for (size_t i = 0; i < pop.count; ++i) {
            vLeak_[pop.base + i] = pop.params.vLeak;
            arSteps_[pop.base + i] =
                f.has(Feature::AR) ? pop.params.arSteps : 0;
        }
    }

    ringDepth_ = static_cast<size_t>(network_.maxDelay()) + 1;
    ring_.resize(ringDepth_);
    spikeCounts_.assign(network_.numNeurons(), 0);
}

void
EventDrivenSimulator::catchUp(uint32_t neuron, uint64_t now)
{
    NeuronState &s = state_[neuron];
    flexon_assert(now >= s.lastUpdate);
    const uint64_t elapsed = now - s.lastUpdate;
    if (elapsed == 0)
        return;
    // Closed-form silent evolution: linear decay floored at rest
    // (the per-step clamp commutes with batching for a monotone
    // decay) and refractory countdown.
    s.v = std::max(0.0, s.v - vLeak_[neuron] *
                            static_cast<double>(elapsed));
    s.refractory = elapsed >= s.refractory
                       ? 0
                       : s.refractory -
                             static_cast<uint32_t>(elapsed);
    s.lastUpdate = now;
}

void
EventDrivenSimulator::updateNeuron(uint32_t neuron, double input,
                                   uint64_t now)
{
    // Bring the state to the entry of step `now`, then apply the
    // dense engine's per-step semantics (Equations 3 + 7).
    catchUp(neuron, now);
    NeuronState &s = state_[neuron];

    const bool blocked = s.refractory > 0;
    if (s.refractory > 0)
        --s.refractory;
    const double in = blocked ? 0.0 : input;
    s.v = std::max(0.0, s.v + in - vLeak_[neuron]);
    s.lastUpdate = now + 1;
    ++stats_.updates;

    if (s.v > 1.0) {
        s.v = 0.0;
        s.refractory = arSteps_[neuron];
        ++spikeCounts_[neuron];
        ++stats_.spikes;
        // Append the fired row's packed delivery records per delay
        // bucket — same per-slot arrival order as the old per-synapse
        // scan (records keep row order within a bucket), half the
        // bytes per pending event.
        for (size_t b = 0; b < table_.bucketCount(); ++b) {
            const auto row = table_.row(0, b, neuron);
            if (row.empty())
                continue;
            auto &slot =
                ring_[(now + table_.bucketDelay(b)) % ringDepth_];
            slot.insert(slot.end(), row.begin(), row.end());
        }
    }
}

void
EventDrivenSimulator::run(uint64_t steps)
{
    telemetry::ScopedTimer runScope(runTimer_, "ev.run");
    const EventDrivenStats before = stats_;

    // Per-type buckets summed in type order, exactly as the dense
    // engine's synapse-calculation slot does — so the floating-point
    // accumulation order (and hence every spike) matches bit for bit.
    std::vector<std::array<double, maxSynapseTypes>> acc(
        network_.numNeurons(),
        std::array<double, maxSynapseTypes>{});
    std::vector<uint8_t> queued(network_.numNeurons(), 0);
    std::vector<uint32_t> touched;

    for (uint64_t i = 0; i < steps; ++i, ++t_) {
        touched.clear();

        // Pick up weight updates made between steps (cheap no-op
        // compare when nothing changed).
        table_.refreshWeights();

        auto &slot = ring_[t_ % ringDepth_];
        for (const DeliveryRecord &rec : slot) {
            const uint32_t target = rec.cell / maxSynapseTypes;
            const uint32_t type = rec.cell % maxSynapseTypes;
            if (!queued[target]) {
                queued[target] = 1;
                touched.push_back(target);
            }
            acc[target][type] += rec.weight;
        }
        slot.clear();

        for (const StimulusSpike &s : stimulus_.generate(t_)) {
            if (!queued[s.target]) {
                queued[s.target] = 1;
                touched.push_back(s.target);
            }
            acc[s.target][s.type] += s.weight;
        }

        for (uint32_t neuron : touched) {
            double input = 0.0;
            for (size_t type = 0; type < maxSynapseTypes; ++type) {
                input += acc[neuron][type];
                acc[neuron][type] = 0.0;
            }
            updateNeuron(neuron, input, t_);
            queued[neuron] = 0;
        }

        // Refractory neurons must tick even without input (their
        // countdown is part of the dense semantics, and a spike is
        // impossible for them, so the closed-form catch-up in the
        // next touch is exact). Nothing to do here: catchUp handles
        // both the decay and the countdown lazily.

        ++stats_.steps;
        stats_.denseUpdates += network_.numNeurons();
    }

    // Mirror this run's deltas into the registry (the hot loop above
    // increments only the plain struct).
    stepsCounter_.add(stats_.steps - before.steps);
    spikesCounter_.add(stats_.spikes - before.spikes);
    updatesCounter_.add(stats_.updates - before.updates);
    denseUpdatesCounter_.add(stats_.denseUpdates -
                             before.denseUpdates);
}

double
EventDrivenSimulator::membrane(uint32_t neuron) const
{
    flexon_assert(neuron < network_.numNeurons());
    const NeuronState &s = state_[neuron];
    const uint64_t elapsed = t_ - std::min(t_, s.lastUpdate);
    return std::max(0.0, s.v - vLeak_[neuron] *
                             static_cast<double>(elapsed));
}

} // namespace flexon
