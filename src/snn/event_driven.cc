#include "snn/event_driven.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace flexon {

bool
eventDrivenEligible(const Network &network, std::string *why)
{
    if (network.procedural()) {
        // The engine's lazy membrane updates walk stored rows via
        // RoutingTable; a row-regenerating network has none.
        if (why)
            *why = "the engine requires stored synapse rows; this "
                   "network is procedural (rows regenerate on "
                   "demand)";
        return false;
    }
    for (size_t p = 0; p < network.numPopulations(); ++p) {
        const Population &pop = network.population(p);
        const FeatureSet &f = pop.params.features;
        if (!f.has(Feature::LID) || !f.has(Feature::CUB)) {
            if (why)
                *why = "the engine requires LLIF (LID + CUB) "
                       "populations; '" +
                       pop.name + "' is " + f.toString();
            return false;
        }
        const FeatureSet allowed{Feature::LID, Feature::CUB,
                                 Feature::AR};
        for (Feature feat : f.list()) {
            if (!allowed.has(feat)) {
                if (why)
                    *why = "population '" + pop.name + "' uses " +
                           featureName(feat) +
                           ", which the event-driven engine does "
                           "not support";
                return false;
            }
        }
    }
    return true;
}

EventDrivenSimulator::EventDrivenSimulator(
    const Network &network, StimulusGenerator stimulus,
    const SessionOptions &options)
    : SimulationSession(network, std::move(stimulus), options),
      table_(network, 1, &metrics()),
      updatesCounter_(metrics().counter(
          "ev.updates", "neuron updates actually performed")),
      denseUpdatesCounter_(metrics().counter(
          "ev.dense_updates",
          "updates a dense per-step engine would have performed"))
{
    // Validate the LLIF restriction and cache per-neuron parameters.
    std::string why;
    if (!eventDrivenEligible(network, &why))
        fatal("event-driven execution unavailable: %s", why.c_str());
    state_.resize(network.numNeurons());
    vLeak_.resize(network.numNeurons());
    arSteps_.resize(network.numNeurons());
    for (size_t p = 0; p < network.numPopulations(); ++p) {
        const Population &pop = network.population(p);
        const FeatureSet &f = pop.params.features;
        for (size_t i = 0; i < pop.count; ++i) {
            vLeak_[pop.base + i] = pop.params.vLeak;
            arSteps_[pop.base + i] =
                f.has(Feature::AR) ? pop.params.arSteps : 0;
        }
    }

    ringDepth_ = static_cast<size_t>(network.maxDelay()) + 1;
    ring_.resize(ringDepth_);
    carry_.resize(ringDepth_);
    acc_.assign(network.numNeurons(),
                std::array<double, maxSynapseTypes>{});
    queued_.assign(network.numNeurons(), 0);
    touched_.reserve(network.numNeurons());
}

void
EventDrivenSimulator::catchUp(uint32_t neuron, uint64_t now)
{
    NeuronState &s = state_[neuron];
    flexon_assert(now >= s.lastUpdate);
    const uint64_t elapsed = now - s.lastUpdate;
    if (elapsed == 0)
        return;
    // Closed-form silent evolution: linear decay floored at rest
    // (the per-step clamp commutes with batching for a monotone
    // decay) and refractory countdown.
    s.v = std::max(0.0, s.v - vLeak_[neuron] *
                            static_cast<double>(elapsed));
    s.refractory = elapsed >= s.refractory
                       ? 0
                       : s.refractory -
                             static_cast<uint32_t>(elapsed);
    s.lastUpdate = now;
}

void
EventDrivenSimulator::updateNeuron(uint32_t neuron, double input,
                                   uint64_t now,
                                   std::vector<uint8_t> &fired)
{
    // Bring the state to the entry of step `now`, then apply the
    // dense engine's per-step semantics (Equations 3 + 7).
    catchUp(neuron, now);
    NeuronState &s = state_[neuron];

    const bool blocked = s.refractory > 0;
    if (s.refractory > 0)
        --s.refractory;
    const double in = blocked ? 0.0 : input;
    s.v = std::max(0.0, s.v + in - vLeak_[neuron]);
    s.lastUpdate = now + 1;

    if (s.v > 1.0) {
        s.v = 0.0;
        s.refractory = arSteps_[neuron];
        fired[neuron] = 1;
    }
}

void
EventDrivenSimulator::engineInjectStimulus(
    uint64_t t, std::span<const StimulusSpike> spikes)
{
    touched_.clear();

    // Hand-off carry first (those doubles were accumulated strictly
    // before the switch), then pending deliveries, then this step's
    // stimulus — the same per-cell arrival order as the dense
    // engine's ring slot (ring writes land in earlier steps,
    // stimulus in phase 1 of step t).
    auto &carry = carry_[t % ringDepth_];
    for (const auto &[cell, value] : carry) {
        const uint32_t target = cell / maxSynapseTypes;
        const uint32_t type = cell % maxSynapseTypes;
        if (!queued_[target]) {
            queued_[target] = 1;
            touched_.push_back(target);
        }
        acc_[target][type] += value;
    }
    carry.clear();

    auto &slot = ring_[t % ringDepth_];
    for (const DeliveryRecord &rec : slot) {
        const uint32_t target = rec.cell / maxSynapseTypes;
        const uint32_t type = rec.cell % maxSynapseTypes;
        if (!queued_[target]) {
            queued_[target] = 1;
            touched_.push_back(target);
        }
        acc_[target][type] += rec.weight;
    }
    slot.clear();

    for (const StimulusSpike &s : spikes) {
        if (!queued_[s.target]) {
            queued_[s.target] = 1;
            touched_.push_back(s.target);
        }
        acc_[s.target][s.type] += s.weight;
    }
}

void
EventDrivenSimulator::engineStepNeurons(uint64_t t,
                                        std::vector<uint8_t> &fired)
{
    // Per-type buckets summed in type order, exactly as the dense
    // engine's synapse-calculation slot does — so the floating-point
    // accumulation order (and hence every spike) matches bit for bit.
    for (const uint32_t neuron : touched_) {
        double input = 0.0;
        for (size_t type = 0; type < maxSynapseTypes; ++type) {
            input += acc_[neuron][type];
            acc_[neuron][type] = 0.0;
        }
        updateNeuron(neuron, input, t, fired);
        queued_[neuron] = 0;
    }

    // Refractory neurons must tick even without input (their
    // countdown is part of the dense semantics, and a spike is
    // impossible for them, so the closed-form catch-up in the next
    // touch is exact). Nothing to do here: catchUp handles both the
    // decay and the countdown lazily.

    updatesCounter_.add(touched_.size());
    denseUpdatesCounter_.add(network().numNeurons());
}

void
EventDrivenSimulator::enginePrepareDelivery()
{
    // Pick up weight updates made between steps (cheap no-op compare
    // when nothing changed).
    table_.refreshWeights();
}

void
EventDrivenSimulator::engineDeliverSpikes(
    uint64_t t, std::span<const uint32_t> fired)
{
    // Append the fired rows' packed delivery records per delay
    // bucket, sources ascending — the same per-slot arrival order as
    // the dense router's lanes (records keep row order within a
    // bucket), half the bytes per pending event.
    for (const uint32_t neuron : fired) {
        for (size_t b = 0; b < table_.bucketCount(); ++b) {
            const auto row = table_.row(0, b, neuron);
            if (row.empty())
                continue;
            auto &slot =
                ring_[(t + table_.bucketDelay(b)) % ringDepth_];
            slot.insert(slot.end(), row.begin(), row.end());
            evEvents_ += row.size();
        }
    }
}

void
EventDrivenSimulator::engineReset()
{
    state_.assign(state_.size(), NeuronState{});
    for (auto &slot : ring_)
        slot.clear();
    for (auto &carry : carry_)
        carry.clear();
    acc_.assign(acc_.size(), std::array<double, maxSynapseTypes>{});
    std::fill(queued_.begin(), queued_.end(), 0);
    touched_.clear();
    evEvents_ = 0;
}

void
EventDrivenSimulator::refreshEngineStats(PhaseStats &view) const
{
    view.synapseEvents = evEvents_;
    view.routingTableBytes = table_.memoryBytes();
    view.connectivityBytes =
        table_.memoryBytes() + network().connectivityBytes();
    view.rowCacheHits = 0;
    view.rowCacheMisses = 0;
    view.ringDenseClears = 0;
    view.ringSparseClears = 0;
    view.ringCellsCleared = 0;
    view.routerShardsSkipped = 0;
    view.routerBucketsVisited = 0;
}

const EventDrivenStats &
EventDrivenSimulator::stats() const
{
    const PhaseStats &view = SimulationSession::stats();
    evStats_.steps = view.steps;
    evStats_.spikes = view.spikes;
    evStats_.updates = updatesCounter_.value();
    evStats_.denseUpdates = denseUpdatesCounter_.value();
    return evStats_;
}

void
EventDrivenSimulator::engineReportConfig(
    telemetry::ReportFields &config) const
{
    config.emplace_back("backend",
                        telemetry::jsonQuoted("event-driven"));
}

void
EventDrivenSimulator::engineReportStats(
    telemetry::ReportFields &stats) const
{
    const EventDrivenStats &ev = this->stats();
    stats.emplace_back("updates", std::to_string(ev.updates));
    stats.emplace_back("dense_updates",
                       std::to_string(ev.denseUpdates));
    stats.emplace_back("update_savings",
                       telemetry::jsonNumber(ev.savings()));
}

double
EventDrivenSimulator::membrane(uint32_t neuron) const
{
    flexon_assert(neuron < network().numNeurons());
    const NeuronState &s = state_[neuron];
    const uint64_t now = currentStep();
    const uint64_t elapsed = now - std::min(now, s.lastUpdate);
    return std::max(0.0, s.v - vLeak_[neuron] *
                             static_cast<double>(elapsed));
}

void
EventDrivenSimulator::engineSaveState(std::ostream &os) const
{
    os << "ev " << state_.size() << ' ' << ringDepth_ << ' '
       << evEvents_ << ' ' << updatesCounter_.value() << ' '
       << denseUpdatesCounter_.value() << '\n';
    os << "states";
    for (const NeuronState &s : state_)
        os << ' ' << s.v << ' ' << s.refractory << ' '
           << s.lastUpdate;
    os << '\n';
    // Pending deliveries, in arrival order (the order is part of the
    // bit-identity contract: per-cell accumulation replays it).
    for (const auto &slot : ring_) {
        os << "slot " << slot.size();
        for (const DeliveryRecord &rec : slot)
            os << ' ' << rec.cell << ' ' << rec.weight;
        os << '\n';
    }
    // Hand-off carry values (usually empty; non-empty only between
    // an engine switch and the next pass of the ring).
    for (const auto &carry : carry_) {
        os << "carry " << carry.size();
        for (const auto &[cell, value] : carry)
            os << ' ' << cell << ' ' << value;
        os << '\n';
    }
}

void
EventDrivenSimulator::engineLoadState(std::istream &is)
{
    std::string tag;
    size_t numNeurons = 0, ringDepth = 0;
    uint64_t events = 0, updates = 0, denseUpdates = 0;
    is >> tag >> numNeurons >> ringDepth >> events >> updates >>
        denseUpdates;
    if (tag != "ev" || !is || numNeurons != state_.size() ||
        ringDepth != ringDepth_) {
        fatal("checkpoint event-driven state does not match this "
              "engine (%zu neurons, ring depth %zu)",
              state_.size(), ringDepth_);
    }
    evEvents_ = events;
    updatesCounter_.add(updates);
    denseUpdatesCounter_.add(denseUpdates);

    is >> tag;
    if (tag != "states")
        fatal("malformed checkpoint event-driven states block");
    for (NeuronState &s : state_)
        is >> s.v >> s.refractory >> s.lastUpdate;

    for (auto &slot : ring_) {
        size_t count = 0;
        is >> tag >> count;
        if (tag != "slot" || !is)
            fatal("malformed checkpoint event-driven slot block");
        slot.resize(count);
        for (DeliveryRecord &rec : slot)
            is >> rec.cell >> rec.weight;
    }
    for (auto &carry : carry_) {
        size_t count = 0;
        is >> tag >> count;
        if (tag != "carry" || !is)
            fatal("malformed checkpoint event-driven carry block");
        carry.resize(count);
        for (auto &[cell, value] : carry)
            is >> cell >> value;
    }
    if (!is)
        fatal("truncated event-driven state in checkpoint");
}

bool
EventDrivenSimulator::engineExportTransfer(EngineTransfer &out) const
{
    const uint64_t now = currentStep();
    out.t = now;
    out.synapseEvents = evEvents_;

    // Materialize every neuron's state at step `now` without
    // mutating: the same closed-form evolution catchUp applies.
    const size_t n = state_.size();
    out.v.resize(n);
    out.refractory.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const NeuronState &s = state_[i];
        const uint64_t elapsed = now - std::min(now, s.lastUpdate);
        out.v[i] =
            elapsed == 0
                ? s.v
                : std::max(0.0, s.v -
                                    vLeak_[i] *
                                        static_cast<double>(elapsed));
        out.refractory[i] =
            elapsed >= s.refractory
                ? 0
                : s.refractory - static_cast<uint32_t>(elapsed);
    }

    // Fold each pending slot (carry first, then records, both in
    // arrival order) into per-cell doubles — exactly the additions
    // the dense ring would have performed, so the importer receives
    // bit-identical slot values. Cells whose total is exactly 0.0
    // are dropped: the delivery path never produces -0.0, and an
    // absent cell reconstructs as +0.0 on the other side.
    out.ring.assign(ringDepth_, {});
    std::vector<double> scratch(n * maxSynapseTypes, 0.0);
    for (size_t d = 0; d < ringDepth_; ++d) {
        const size_t idx = (now + d) % ringDepth_;
        for (const auto &[cell, value] : carry_[idx])
            scratch[cell] += value;
        for (const DeliveryRecord &rec : ring_[idx])
            scratch[rec.cell] += rec.weight;
        auto &slot = out.ring[d];
        for (uint32_t cell = 0;
             cell < static_cast<uint32_t>(scratch.size()); ++cell) {
            if (scratch[cell] != 0.0) {
                slot.emplace_back(cell, scratch[cell]);
                scratch[cell] = 0.0;
            }
        }
    }
    return true;
}

bool
EventDrivenSimulator::engineImportTransfer(const EngineTransfer &in)
{
    if (in.v.size() != state_.size() ||
        in.refractory.size() != state_.size() ||
        in.ring.size() > ringDepth_)
        return false;
    flexon_assert(in.t == currentStep());

    for (size_t i = 0; i < state_.size(); ++i)
        state_[i] = NeuronState{in.v[i], in.refractory[i], in.t};
    for (auto &slot : ring_)
        slot.clear();
    for (auto &carry : carry_)
        carry.clear();
    for (size_t d = 0; d < in.ring.size(); ++d)
        carry_[(in.t + d) % ringDepth_] = in.ring[d];
    evEvents_ = in.synapseEvents;
    return true;
}

} // namespace flexon
