/**
 * @file
 * The shared simulation-session layer.
 *
 * The paper's Section II-C three-phase loop (stimulus generation,
 * neuron computation, synapse calculation) is engine-independent:
 * only *how* each phase is evaluated differs between the dense
 * Simulator and the event-driven LLIF engine. SimulationSession owns
 * everything around the phases — stimulus stream, fired bookkeeping,
 * spike counters and event recording, membrane probes, per-phase
 * telemetry, printStats, run reports, reset — and delegates the
 * phase bodies to a small engine hook interface. Engines therefore
 * get probes, spike recording, reset and run reports for free, and
 * the orchestration exists exactly once.
 *
 * On top of the shared core the session implements versioned,
 * bit-exact checkpoint/restore: a snapshot captures the step
 * counter, the session's recording state (spike counts, probe
 * traces, recorded spike events), the stimulus RNG stream, any
 * plasticity-mutated weights, and the engine's own dynamic state
 * (neuron arrays, delay ring, pending deliveries). Restoring a
 * snapshot into a freshly built session and running the remaining
 * steps is bit-identical — spike for spike, probe sample for probe
 * sample — to the uninterrupted run (tests/test_session.cc).
 *
 * Format: text, "flexon-checkpoint v4" framing (snn/serialize.hh),
 * doubles at 17 significant digits and fixed-point values as raw
 * integers, so every value round trips exactly. Wall-clock phase
 * timers are deliberately *not* checkpointed — host seconds are not
 * simulation state — so timer-derived stats restart from zero while
 * all step/spike/event counters continue.
 */

#ifndef FLEXON_SNN_SESSION_HH
#define FLEXON_SNN_SESSION_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/health.hh"
#include "common/telemetry.hh"
#include "snn/network.hh"
#include "snn/stimulus.hh"

namespace flexon {

class PlasticityRule;

/** Engine-independent options of a simulation session. */
struct SessionOptions
{
    uint64_t stimulusSeed = 1;
    /** Worker threads for the parallel phases. */
    size_t threads = 1;
    /** Record (step, neuron) spike events (memory-heavy). */
    bool recordSpikes = false;
    /** Neurons whose membrane potential is sampled every step. */
    std::vector<uint32_t> probes;
    /** Runtime health monitoring (invariant detectors). */
    health::HealthOptions health;
    /** Live metrics export target ("" = off): Prometheus text at
     *  this path (atomically replaced) + JSONL history alongside. */
    std::string metricsOut;
    /** Steps between metric snapshots (when metricsOut is set). */
    uint64_t metricsEvery = 256;
    /** Session label stamped on exported metrics. */
    std::string label = "flexon";
};

/**
 * Accumulated per-phase wall-clock time plus event counters. This is
 * a *materialized view* over the session's telemetry registry:
 * stats() refreshes it from the underlying counters and timers, so
 * the struct stays a plain value type for callers while the phases
 * write through wait-free sharded metrics.
 *
 * Units: every `*Sec` field is host wall-clock seconds accumulated
 * over all steps of the run (steady clock); counter fields are event
 * counts over the same extent.
 */
struct PhaseStats
{
    /** Host seconds in stimulus generation (phase 1). */
    double stimulusSec = 0.0;
    /** Host seconds in neuron computation (phase 2). */
    double neuronSec = 0.0;
    /** Host seconds in synapse calculation (phase 3). */
    double synapseSec = 0.0;
    /**
     * Host seconds of synapseSec spent inside the delivery engine
     * (ring clear + routing). Strictly nested within the synapse
     * phase interval, so synapseRouteSec <= synapseSec up to clock
     * resolution (debug-asserted in stats()).
     */
    double synapseRouteSec = 0.0;
    /** Host seconds sampling membrane probes (0 without probes). */
    double probeSec = 0.0;
    /** Time steps completed. */
    uint64_t steps = 0;
    /** Output spikes fired (sum over neurons). */
    uint64_t spikes = 0;
    /** Synaptic weight deliveries into the delay ring. */
    uint64_t synapseEvents = 0;
    /** Worker lanes the engine was configured with. */
    size_t threadsUsed = 1;
    /** Modelled hardware seconds (Flexon/folded backends only). */
    double modelNeuronSec = 0.0;
    /** Bytes of the precompiled spike-routing table. */
    uint64_t routingTableBytes = 0;
    /**
     * Total connectivity footprint: the delivery provider's bytes
     * (routing table, compressed blobs or hot-row cache) plus the
     * network's own synapse storage (CSR + row geometry + overlay).
     */
    uint64_t connectivityBytes = 0;
    /** connectivityBytes / network synapses (0 when no synapses). */
    double bytesPerSynapse = 0.0;
    /** Procedural hot-row cache hits (fired-row lookups). */
    uint64_t rowCacheHits = 0;
    /** Procedural hot-row cache misses (rows decoded). */
    uint64_t rowCacheMisses = 0;
    /** Ring-slot clears done densely (std::fill over the slot). */
    uint64_t ringDenseClears = 0;
    /** Ring-slot clears done sparsely (tracked writes undone). */
    uint64_t ringSparseClears = 0;
    /** Cells zeroed by sparse clears (incl. duplicate zeroings). */
    uint64_t ringCellsCleared = 0;
    /** Target shards skipped entirely by sparse delivery. */
    uint64_t routerShardsSkipped = 0;
    /** (shard, delay-bucket) pairs streamed by delivery. */
    uint64_t routerBucketsVisited = 0;

    /** Host seconds across every tracked per-step phase. */
    double totalSec() const
    {
        return stimulusSec + neuronSec + synapseSec + probeSec;
    }
};

/** A recorded spike event. */
struct SpikeEvent
{
    uint64_t step;
    uint32_t neuron;
};

/**
 * Descriptive execution-plan record for the run report's "plan"
 * section (report v4). Purely informational — the owner (AutoSession
 * or the CLI) made the decisions; this records what was chosen, what
 * the cost model predicted, and which calibration the prediction
 * came from, so predicted-vs-measured step cost is auditable from
 * the report alone.
 */
struct PlanInfo
{
    /** False until setPlanInfo(): no "plan" section is emitted. */
    bool present = false;
    /** Effective strategy: "dense" / "event" / "auto". */
    std::string strategy;
    /** True when the planner chose the strategy (--plan=auto). */
    bool planned = false;
    /** Predicted seconds per step for the chosen strategy. */
    double predictedStepSec = 0.0;
    /** Planned dense/event crossover rate (0 when not adaptive). */
    double crossoverRate = 0.0;
    /** Version tag of the calibration the plan derives from. */
    std::string calibrationVersion;
};

/**
 * One recorded ExecutionPlanner decision: what the planner saw (step,
 * EWMA rate), what the cost model predicted per strategy, and what it
 * chose. AutoSession records one per decision window; the session
 * stores them for the report's "plan_audit" section and mirrors each
 * as a trace instant, making the adaptive switching explainable from
 * the artifacts alone.
 */
struct PlanDecision
{
    /** Completed steps when the decision was evaluated. */
    uint64_t step = 0;
    /** EWMA firing rate the decision was based on. */
    double ewmaRate = 0.0;
    /** Predicted seconds/step for the dense strategy. */
    double predictedDenseSec = 0.0;
    /** Predicted seconds/step for the event-driven strategy. */
    double predictedEventSec = 0.0;
    /** Chosen strategy: "dense" or "event". */
    std::string chosen;
    /** True when the decision switched the active engine. */
    bool switched = false;
};

/**
 * The bit-exact engine hand-off bundle: everything one delivery
 * engine must pass to another so the simulation continues spike for
 * spike as if the target engine had run from step 0. Produced by
 * engineExportTransfer() and consumed by engineImportTransfer() on a
 * session whose core was adopted via adoptSessionCore(). Ring values
 * are the accumulated doubles (not the float weights), so the
 * hand-off loses no precision.
 */
struct EngineTransfer
{
    /** Completed steps at the hand-off point. */
    uint64_t t = 0;
    /** Cumulative synaptic deliveries (continues the counter). */
    uint64_t synapseEvents = 0;
    /** Per-neuron membrane potential, reference units. */
    std::vector<double> v;
    /** Per-neuron absolute-refractory countdown, in steps. */
    std::vector<uint32_t> refractory;
    /** Pending deliveries per delay offset d from t: ascending
     *  (cell, value) pairs destined for step t + d. */
    std::vector<std::vector<std::pair<uint32_t, double>>> ring;
};

/**
 * The engine-independent simulation core. Derive an engine, implement
 * the engine* hooks, and the session supplies the per-step loop,
 * recording, statistics, reports, reset and checkpointing.
 */
class SimulationSession
{
  public:
    /**
     * @param network finalized network topology (kept by reference;
     *        must outlive the session)
     * @param stimulus stimulus sources (copied)
     */
    SimulationSession(const Network &network,
                      StimulusGenerator stimulus,
                      const SessionOptions &options);
    virtual ~SimulationSession();

    SimulationSession(const SimulationSession &) = delete;
    SimulationSession &operator=(const SimulationSession &) = delete;

    /** Run `steps` time steps. */
    void run(uint64_t steps);

    /** Run a single time step. */
    void stepOnce();

    /**
     * Refresh and return the statistics view (sums the sharded
     * telemetry slots; cheap, but not free — cache the reference's
     * fields rather than calling per step in hot loops).
     */
    const PhaseStats &stats() const;
    const Network &network() const { return network_; }

    /** Per-neuron output spike counts. */
    const std::vector<uint64_t> &spikeCounts() const
    {
        return spikeCounts_;
    }

    /**
     * The fired flags (0/1 bytes) of the most recent step (empty
     * before the first step). Plasticity engines consume this after
     * stepOnce().
     */
    const std::vector<uint8_t> &lastFired() const { return fired_; }

    /**
     * Attach a plasticity rule: the session calls rule->onStep(fired)
     * at the end of every stepOnce() (in attachment order) and
     * carries the rule's state in checkpoints (the v4 plasticity
     * block), so save/restore resumes learning bit-identically. The
     * rule is borrowed, not owned — it must outlive the session — and
     * typically references this session's backend or network, so
     * attach only to the session those objects belong to.
     * Restore-time contract: loadCheckpoint requires the same rules
     * (count, kinds, order) the checkpoint was saved with.
     */
    void attachPlasticityRule(PlasticityRule *rule);

    /** Rules attached so far, in onStep order. */
    const std::vector<PlasticityRule *> &plasticityRules() const
    {
        return plasticityRules_;
    }

    /**
     * Membrane trace of the i-th probed neuron (options.probes),
     * one sample per completed step.
     */
    const std::vector<double> &probeTrace(size_t probe) const;

    /** Recorded spike events (empty unless recordSpikes). */
    const std::vector<SpikeEvent> &spikeEvents() const
    {
        return spikeEvents_;
    }

    /** Mean firing rate in spikes per neuron per step. */
    double meanRate() const;

    /**
     * Exponentially weighted moving average of the per-step firing
     * rate (spikes per neuron per step), alpha = plan::kEwmaAlpha
     * (1/64). Updated every step from the fired sweep, checkpointed,
     * and deterministic —
     * it derives purely from the spike history, so it is safe to
     * base engine-selection decisions on without breaking
     * bit-identity.
     */
    double ewmaRate() const { return ewmaRate_; }

    /**
     * Copy the engine-independent core — step counter, spike
     * counts/recordings, probe traces, fired state, stimulus stream
     * position, rate estimator and the checkpointed counters — from
     * `other` into this freshly built session. Both sessions must
     * simulate the same network with the same options. Wall-clock
     * phase timers restart from zero (the checkpoint contract). Used
     * together with engineExportTransfer()/engineImportTransfer()
     * to switch delivery engines mid-run.
     */
    void adoptSessionCore(const SimulationSession &other);

    /**
     * Dump a gem5-style statistics block: one `name value # desc`
     * line per statistic, hierarchical dot-separated names.
     */
    void printStats(std::ostream &os) const;

    /**
     * Reset state, statistics and time to zero. Also zeroes every
     * metric in this session's telemetry registry, so two identical
     * runs separated by reset() report identical counters.
     */
    void reset();

    /** This session's private metrics registry. */
    telemetry::Registry &metrics() { return metrics_; }
    const telemetry::Registry &metrics() const { return metrics_; }

    /**
     * Write a "flexon-run-report-v5" JSON document (config, stats,
     * checkpoint section, health section, plan section when
     * setPlanInfo() was called, plan_audit section when decisions
     * were recorded, this registry, the process registry, pool lane
     * accounting) to `path`. Returns false (after warn()) on I/O
     * failure.
     */
    bool writeRunReport(const std::string &path) const;

    uint64_t currentStep() const { return t_; }

    /**
     * Membrane potential of one neuron as of the last completed
     * step, in reference units.
     */
    virtual double membrane(uint32_t neuron) const = 0;

    // ---- Checkpoint/restore ------------------------------------

    /**
     * Write a bit-exact snapshot of the session: step counter,
     * session counters and recordings, stimulus stream state, the
     * network's plasticity-mutated weights (only when any exist),
     * and the engine's dynamic state.
     */
    void saveCheckpoint(std::ostream &os) const;

    /**
     * Restore a snapshot previously written by saveCheckpoint() on a
     * session with the same configuration (engine kind, network
     * shape, probe set — validated, fatal() on mismatch). The
     * session is fully reset first, so restoring onto a used session
     * equals restoring onto a fresh one.
     *
     * @param mutableNetwork the same Network this session simulates,
     *        passed non-const when the checkpoint carries mutated
     *        weights (STDP runs); fatal() if the checkpoint has a
     *        weights block and this is null or a different network.
     *        Weight writes go through Network::synapseAt(), so
     *        routing tables re-mirror them automatically.
     */
    void loadCheckpoint(std::istream &is,
                        Network *mutableNetwork = nullptr);

    /** saveCheckpoint to a file; warn()s and returns false on I/O
     *  failure. */
    bool saveCheckpointFile(const std::string &path) const;

    /** loadCheckpoint from a file; fatal() on I/O errors. */
    void loadCheckpointFile(const std::string &path,
                            Network *mutableNetwork = nullptr);

    /** Snapshots written by this session (saveCheckpoint calls). */
    uint64_t checkpointSaves() const { return checkpointSaves_; }

    /** True once loadCheckpoint() has run. */
    bool restored() const { return restored_; }

    /** Step counter value at the last restore (0 if none). */
    uint64_t restoredStep() const { return restoredStep_; }

    /**
     * Record the checkpoint cadence for the run report's checkpoint
     * section (0 = checkpointing disabled). Purely descriptive: the
     * owner drives the actual saves.
     */
    void setCheckpointCadence(uint64_t every)
    {
        checkpointEvery_ = every;
    }

    /**
     * Record the execution plan for the run report's "plan" section.
     * Purely descriptive (like setCheckpointCadence): the owner made
     * the decisions. Carried across adoptSessionCore so an engine
     * hand-off keeps the plan provenance.
     */
    void setPlanInfo(const PlanInfo &info) { planInfo_ = info; }
    const PlanInfo &planInfo() const { return planInfo_; }

    // ---- Health monitoring and plan audit ----------------------

    /** Detector tallies accumulated so far (report "health"). */
    const health::HealthCounters &healthCounters() const
    {
        return healthCounters_;
    }

    /** True when the detectors actually run (session options AND the
     *  process-wide kill switch both allow it). */
    bool healthActive() const { return healthActive_; }

    /**
     * Append one planner decision to the audit trail (also emitted
     * as a "plan.decision" trace instant). Bounded: after
     * kPlanAuditCapacity decisions only the total keeps counting.
     */
    void recordPlanDecision(const PlanDecision &decision);

    /** Retained audit records (at most kPlanAuditCapacity). */
    const std::vector<PlanDecision> &planDecisions() const
    {
        return planDecisions_;
    }

    /** All decisions ever recorded, including dropped ones. */
    uint64_t planDecisionsTotal() const { return planDecisionsTotal_; }

    /** Audit records kept before only counting (bounds report size). */
    static constexpr size_t kPlanAuditCapacity = 1024;

    // ---- Test-only fault injection -----------------------------

    /**
     * Overwrite one neuron's membrane with NaN (test/CI hook for the
     * NaN detector). Returns false when the engine/backend cannot
     * poison state in place (e.g. fixed-point backends, which cannot
     * represent NaN at all).
     */
    virtual bool debugPoisonMembrane(uint32_t neuron)
    {
        (void)neuron;
        return false;
    }

    /** Force the EWMA rate to 1.0 (rate-explosion detector hook). */
    void debugInjectRateExplosion() { ewmaRate_ = 1.0; }

  protected:
    /** Engine kind tag written into checkpoints and reports. */
    virtual const char *engineKind() const = 0;

    /**
     * Phase 1 body: fold this step's stimulus spikes (and any
     * pending deliveries the engine defers) into the engine's input
     * accumulation for step t. Targets are pre-validated.
     */
    virtual void
    engineInjectStimulus(uint64_t t,
                         std::span<const StimulusSpike> spikes) = 0;

    /**
     * Phase 2 body: evaluate the neurons of step t and set
     * fired[n] = 1 for every spiking neuron. `fired` arrives sized
     * to the network with the previous step's flags cleared; engines
     * that evaluate every neuron may simply overwrite it.
     */
    virtual void engineStepNeurons(uint64_t t,
                                   std::vector<uint8_t> &fired) = 0;

    /**
     * Start of phase 3, before the fired sweep: re-mirror plasticity
     * weight updates into the engine's delivery structures. Runs
     * inside the synapse-phase timer but outside the route timer.
     */
    virtual void enginePrepareDelivery() = 0;

    /**
     * Phase 3 delivery body: propagate the (ascending) fired list
     * into future steps' inputs. Runs inside the route timer.
     */
    virtual void
    engineDeliverSpikes(uint64_t t,
                        std::span<const uint32_t> fired) = 0;

    /** Reset all engine-owned dynamic state (session reset()). */
    virtual void engineReset() = 0;

    /** Modelled hardware seconds of the step just evaluated. */
    virtual double engineModelSecondsPerStep() const { return 0.0; }

    /** Fill the engine-owned PhaseStats fields (stats() refresh). */
    virtual void refreshEngineStats(PhaseStats &view) const = 0;

    /** Engine-specific run-report config fields ("backend", ...). */
    virtual void
    engineReportConfig(telemetry::ReportFields &config) const = 0;

    /** Engine-specific run-report stats fields (appended last). */
    virtual void
    engineReportStats(telemetry::ReportFields &stats) const
    {
        (void)stats;
    }

    /** Checkpoint the engine's dynamic state (saveCheckpoint). */
    virtual void engineSaveState(std::ostream &os) const = 0;

    /** Restore the engine's dynamic state (loadCheckpoint). */
    virtual void engineLoadState(std::istream &is) = 0;

    /**
     * Health-sweep hook: examine neurons [begin, end) plus the
     * engine's delivery structures and fill `scan`. The default
     * reports nothing (detectors simply see a clean engine). Called
     * at the sweep cadence only, so implementations may be O(window)
     * without hurting the step loop.
     */
    virtual void engineHealthScan(uint64_t begin, uint64_t end,
                                  health::HealthScan &scan) const
    {
        (void)begin;
        (void)end;
        (void)scan;
    }

  public:
    /**
     * Export the engine's dynamic state as an EngineTransfer for a
     * hand-off to another engine. Returns false when the engine does
     * not support hand-offs (the default).
     */
    virtual bool engineExportTransfer(EngineTransfer &out) const
    {
        (void)out;
        return false;
    }

    /**
     * Seed the engine's dynamic state from an EngineTransfer; call
     * only on a session that just adopted the matching core via
     * adoptSessionCore(). Returns false when unsupported.
     */
    virtual bool engineImportTransfer(const EngineTransfer &in)
    {
        (void)in;
        return false;
    }

  protected:

    const SessionOptions &sessionOptions() const { return options_; }

    /** Fired neuron indices of the current step, ascending. */
    const std::vector<uint32_t> &firedList() const
    {
        return firedList_;
    }

  private:
    void phaseStimulus();
    void phaseNeuron();
    void phaseSynapse();

    /** Run every enabled detector over one scan window. */
    void healthSweep();

    /** Apply one detector's policy after it tripped. */
    void healthApply(health::Policy policy, const char *detector,
                     uint64_t events, const std::string &message);

    const Network &network_;
    StimulusGenerator stimulus_;
    StimulusGenerator stimulusInitial_; ///< pristine copy for reset()
    SessionOptions options_;

    uint64_t t_ = 0;
    std::vector<uint8_t> fired_;
    std::vector<uint64_t> spikeCounts_;
    std::vector<SpikeEvent> spikeEvents_;
    std::vector<std::vector<double>> probeTraces_;

    /**
     * Private metrics registry plus cached handles for the hot
     * paths. Declared before the handles (initialization order).
     */
    telemetry::Registry metrics_;
    telemetry::Timer &stimulusTimer_;
    telemetry::Timer &neuronTimer_;
    telemetry::Timer &synapseTimer_;
    telemetry::Timer &routeTimer_;
    telemetry::Timer &probeTimer_;
    telemetry::Counter &stepsCounter_;
    telemetry::Counter &spikesCounter_;
    telemetry::Gauge &modelNeuronSecGauge_;

    /** Materialized by stats() from the registry + engine. */
    mutable PhaseStats statsView_;

    /** Fired neuron indices of the current step (capacity N). */
    std::vector<uint32_t> firedList_;

    /** EWMA of the per-step firing rate (see ewmaRate()). */
    double ewmaRate_ = 0.0;

    // Checkpoint bookkeeping (saveCheckpoint is logically const).
    mutable uint64_t checkpointSaves_ = 0;
    bool restored_ = false;
    uint64_t restoredStep_ = 0;
    uint64_t checkpointEvery_ = 0;

    /** Report-only plan record (setPlanInfo). */
    PlanInfo planInfo_;

    // Health monitoring (constructor caches the effective switch so
    // the per-step gate is one bool test).
    bool healthActive_ = false;
    health::HealthCounters healthCounters_;
    /** Next rotating scan-window start. */
    uint64_t healthCursor_ = 0;
    /** fixSaturations() watermark for per-sweep deltas. */
    uint64_t lastFixSaturations_ = 0;

    /** Live metrics exporter (null unless options.metricsOut). */
    std::unique_ptr<health::MetricsExporter> exporter_;

    // Plan-decision audit trail (recordPlanDecision).
    std::vector<PlanDecision> planDecisions_;
    uint64_t planDecisionsTotal_ = 0;

    /** Attached plasticity rules (borrowed), in onStep order. */
    std::vector<PlasticityRule *> plasticityRules_;
};

} // namespace flexon

#endif // FLEXON_SNN_SESSION_HH
