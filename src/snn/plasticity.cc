#include "snn/plasticity.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "snn/backend.hh"

namespace flexon {

IntrinsicExcitabilityRule::IntrinsicExcitabilityRule(
    NeuronBackend &backend, size_t numNeurons,
    const IePlasticityConfig &config)
    : backend_(backend), config_(config),
      alpha_(1.0 / config.tau), rates_(numNeurons, 0.0),
      offsets_(numNeurons, 0.0)
{
    const std::string err = config_.validate();
    if (!err.empty())
        fatal("invalid IE configuration: %s", err.c_str());
    // Fail loudly at construction, not silently per step: probe the
    // backend's threshold support with the neutral offset.
    if (numNeurons > 0 && !backend_.setThresholdOffset(0, 0.0)) {
        fatal("backend '%s' does not support per-neuron threshold "
              "offsets; intrinsic excitability needs the discrete "
              "reference backend",
              backend_.name());
    }
}

void
IntrinsicExcitabilityRule::onStep(const std::vector<uint8_t> &fired)
{
    flexon_assert(fired.size() == rates_.size());
    const double eta = config_.eta;
    const double target = config_.targetRate;
    const double lo = config_.minOffset;
    const double hi = config_.maxOffset;
    for (size_t n = 0; n < rates_.size(); ++n) {
        rates_[n] += (static_cast<double>(fired[n]) - rates_[n]) *
                     alpha_;
        const double next = std::clamp(
            offsets_[n] + eta * (rates_[n] - target), lo, hi);
        if (next != offsets_[n]) {
            offsets_[n] = next;
            backend_.setThresholdOffset(n, next);
        }
    }
}

double
IntrinsicExcitabilityRule::meanOffset() const
{
    if (offsets_.empty())
        return 0.0;
    double sum = 0.0;
    for (const double o : offsets_)
        sum += o;
    return sum / static_cast<double>(offsets_.size());
}

void
IntrinsicExcitabilityRule::saveState(std::ostream &os) const
{
    os << "ie " << rates_.size();
    for (const double r : rates_)
        os << ' ' << r;
    for (const double o : offsets_)
        os << ' ' << o;
    os << '\n';
}

void
IntrinsicExcitabilityRule::loadState(std::istream &is)
{
    std::string tag;
    size_t count = 0;
    is >> tag >> count;
    if (tag != "ie" || !is || count != rates_.size()) {
        fatal("checkpoint IE state does not match this rule "
              "(%zu neurons)",
              rates_.size());
    }
    for (double &r : rates_)
        is >> r;
    for (double &o : offsets_)
        is >> o;
    if (!is)
        fatal("truncated IE state in checkpoint");
    // The offsets live in the backend, which restored to whatever the
    // engine block recorded — parameters are not engine state, so
    // re-apply them here (the rule owns their persistence).
    for (size_t n = 0; n < offsets_.size(); ++n)
        backend_.setThresholdOffset(n, offsets_[n]);
}

} // namespace flexon
