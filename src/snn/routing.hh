/**
 * @file
 * Precompiled spike-routing tables and the delay-ring delivery
 * engine.
 *
 * Spike delivery is a memory-bandwidth problem (Lindqvist & Podobas,
 * arXiv:2405.02019): the per-event work is one multiply-free
 * accumulate, so throughput is set by how compactly the synapse data
 * streams. The seed path gathered 12-byte `Synapse` records through
 * a 64-bit permutation per event; RoutingTable instead compiles the
 * synapse table once, at construction, into delivery order:
 *
 *   per target shard, per delay bucket, a contiguous stream of
 *   8-byte records {cell = target * maxSynapseTypes + type, weight}
 *   with a CSR index over source rows.
 *
 * The hot loop per fired source and delay bucket is then a pure
 * sequential stream of `base[cell] += weight` — no struct gather, no
 * permutation indirection, and the ring-slot base pointer hoisted
 * per bucket.
 *
 * Order preservation (the bit-identity argument): a ring cell is one
 * (slot, target, type) location, and within a step exactly one delay
 * bucket writes a given slot. Within that bucket records are laid
 * out source-ascending with original row order preserved, and the
 * fired list is scanned in ascending order — so every cell receives
 * its floating-point additions in exactly the serial-scan order, for
 * any shard count. Across steps, ordering follows simulation time as
 * before. Results are therefore bit-identical to the serial path at
 * any thread count (tests/test_routing.cc enforces this against a
 * naive delivery oracle).
 *
 * Weights are copied into the records, so in-place plasticity
 * updates (Network::synapseAt) are re-mirrored from the network's
 * weight-mutation log by refreshWeights() — O(mutations), or one
 * full O(synapses) pass when more than Network::weightLogCapacity
 * mutations behind.
 *
 * SpikeRouter owns the delay ring on top of the table and makes ring
 * maintenance activity-proportional: each slot tracks what was
 * written into it (stimulus cells and routed (bucket, source) rows),
 * and the consumed slot is cleared by undoing only those writes when
 * activity is sparse, falling back to a dense std::fill above a
 * density threshold — quiet steps of large networks no longer pay
 * O(numNeurons * maxSynapseTypes) per step.
 */

#ifndef FLEXON_SNN_ROUTING_HH
#define FLEXON_SNN_ROUTING_HH

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/telemetry.hh"
#include "common/touch_list.hh"
#include "snn/network.hh"

namespace flexon {

/** One packed delivery: flat ring-cell offset + weight (8 bytes). */
struct DeliveryRecord
{
    uint32_t cell; ///< target * maxSynapseTypes + type
    float weight;
};

/**
 * The precompiled delivery layout: per (target shard, delay bucket),
 * a contiguous run of DeliveryRecords with a CSR index over source
 * rows. Shards partition the target axis into contiguous ranges of
 * roughly equal incoming-synapse load, so concurrent lanes never
 * write the same cell.
 */
class RoutingTable
{
  public:
    /**
     * @param network finalized topology (kept by reference; must
     *        outlive the table)
     * @param shardCount requested target shards (>= 1; clamped to
     *        the neuron count)
     * @param metrics optional registry for refresh-path counters
     *        (must outlive the table; nullptr = no telemetry)
     */
    RoutingTable(const Network &network, size_t shardCount,
                 telemetry::Registry *metrics = nullptr);

    size_t shardCount() const { return shardCount_; }

    /** Delay values that actually occur, ascending. */
    size_t bucketCount() const { return bucketDelay_.size(); }
    uint8_t bucketDelay(size_t bucket) const
    {
        return bucketDelay_[bucket];
    }

    /** First target neuron of each shard; size shardCount() + 1. */
    const std::vector<uint32_t> &shardTargetBegin() const
    {
        return shardTargetBegin_;
    }

    /**
     * CSR row index of (shard, bucket): row src's records are
     * records()[ptr[src] .. ptr[src + 1]). Offsets are global into
     * records(), so one pointer serves the whole table.
     */
    const uint32_t *
    rowPtr(size_t shard, size_t bucket) const
    {
        return rowPtr_.data() +
               (shard * bucketDelay_.size() + bucket) * rowStride_;
    }

    const DeliveryRecord *records() const { return records_.data(); }

    /** Delivery records of source row src in (shard, bucket). */
    std::span<const DeliveryRecord>
    row(size_t shard, size_t bucket, uint32_t src) const
    {
        const uint32_t *ptr = rowPtr(shard, bucket);
        return {records_.data() + ptr[src], ptr[src + 1] - ptr[src]};
    }

    /** True when (shard, bucket) holds no records at all. */
    bool
    bucketEmpty(size_t shard, size_t bucket) const
    {
        const uint32_t *ptr = rowPtr(shard, bucket);
        return ptr[0] == ptr[rowStride_ - 1];
    }

    /**
     * Re-mirror weights mutated through Network::synapseAt() since
     * the last call (or construction). Must not run concurrently
     * with mutations; call it between steps.
     */
    void refreshWeights();

    /** Bytes held by the table (records + CSR + refresh map). */
    size_t memoryBytes() const;

  private:
    const Network &network_;
    size_t shardCount_;
    size_t rowStride_; ///< numNeurons + 1
    std::vector<uint8_t> bucketDelay_;
    std::vector<uint32_t> shardTargetBegin_;
    std::vector<DeliveryRecord> records_;
    std::vector<uint32_t> rowPtr_;
    /** Global synapse index -> record position (weight refresh). */
    std::vector<uint32_t> recordOf_;
    /** Network::weightMutations() already mirrored. */
    uint64_t weightsSeen_ = 0;
    /** Refresh-path telemetry (null without a registry). */
    telemetry::Counter *tailRefreshCounter_ = nullptr;
    telemetry::Counter *fullRefreshCounter_ = nullptr;
};

/**
 * The delay ring plus its delivery engine: ring slots are cleared
 * activity-proportionally and fired spikes are streamed through the
 * RoutingTable, in parallel across target shards, with bit-identical
 * results at any shard count.
 */
class SpikeRouter
{
  public:
    /**
     * @param metrics optional registry (must outlive the router;
     *        nullptr = no telemetry). Registers refresh counters, a
     *        ring-occupancy histogram and a touched-cells counter;
     *        the deep per-step samples only fire while
     *        telemetry::detailEnabled().
     */
    SpikeRouter(const Network &network, size_t shardCount,
                telemetry::Registry *metrics = nullptr);

    const RoutingTable &table() const { return table_; }

    size_t ringDepth() const { return ringDepth_; }
    size_t slotSize() const { return slotSize_; }

    /** The weight buffer consumed by step t's neuron phase. */
    std::span<double> slot(uint64_t t);
    std::span<const double> slot(uint64_t t) const;

    /** The raw ring (ringDepth * slotSize doubles, slot-major). */
    const std::vector<double> &ringBuffer() const { return ring_; }

    /**
     * Record a stimulus write into step t's slot so the sparse clear
     * can undo it (cell = target * maxSynapseTypes + type). Call for
     * every cell the stimulus phase accumulates into.
     */
    void
    noteStimulus(uint64_t t, uint32_t cell)
    {
        stimTouched_[t % ringDepth_].add(cell, 1);
    }

    /**
     * One synapse-calculation step: clear the consumed slot of step
     * t (sparse or dense), then deliver every fired source's
     * outgoing synapses into the slots of t + delay. `fired` must be
     * ascending. Runs across shardCount lanes when fired is
     * non-empty; quiet steps clear inline without a pool barrier.
     */
    void routeStep(uint64_t t, std::span<const uint32_t> fired);

    /** Re-mirror plasticity weight updates (cheap when unchanged). */
    void refreshWeights() { table_.refreshWeights(); }

    // Counters since construction / reset().
    uint64_t events() const { return events_; }
    uint64_t denseClears() const { return denseClears_; }
    uint64_t sparseClears() const { return sparseClears_; }
    /** Cell zeroings performed by sparse clears (incl. duplicates). */
    uint64_t cellsCleared() const { return cellsCleared_; }

    /** Zero the ring, the touch tracking and the counters. */
    void reset();

    /**
     * Checkpoint the router's dynamic state: the delay ring (runs of
     * exact +0.0 run-length encoded as `zN` tokens — quiet slots
     * dominate the ring), every per-(slot, shard) and per-slot
     * stimulus touch list, and the event/clear counters. The touch
     * lists are part of correctness, not just telemetry: a restored
     * ring without its pending-write tracking would let a sparse
     * clear miss stale cells. Saturated lists round trip as
     * saturated, so the dense/sparse decision sequence — and with it
     * every counter — continues deterministically. loadState
     * fatal()s on a geometry mismatch.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    /**
     * Clear the consumed slot for lane `shard`: its contiguous cell
     * range densely, or only the tracked writes when sparse.
     */
    void laneClear(size_t slotIdx, size_t shard, bool dense);

    /** Deliver `fired` through lane `shard`'s buckets for step t. */
    void laneRoute(uint64_t t, size_t shard,
                   std::span<const uint32_t> fired);

    TouchList &touch(size_t slotIdx, size_t shard)
    {
        return touched_[slotIdx * table_.shardCount() + shard];
    }

    RoutingTable table_;
    size_t ringDepth_;
    size_t slotSize_;
    std::vector<double> ring_;
    /** Ring-slot base pointer per delay, recomputed each step. */
    std::vector<double *> slotBase_;
    /**
     * Per (slot, shard): routed writes pending in that slot, as
     * packed (bucket << 32 | source) keys with row-length cost.
     */
    std::vector<TouchList> touched_;
    /** Per slot: stimulus cells pending in that slot. */
    std::vector<TouchList> stimTouched_;
    /** Per-shard event tallies (reduced after the barrier). */
    std::vector<uint64_t> laneEvents_;
    /** Sparse-clear cost cap: dense fill at or above this. */
    uint64_t sparseClearBudget_;

    uint64_t events_ = 0;
    uint64_t denseClears_ = 0;
    uint64_t sparseClears_ = 0;
    uint64_t cellsCleared_ = 0;

    /** Deep telemetry, sampled per step while detailEnabled(). */
    telemetry::Counter *touchedCellsCounter_ = nullptr;
    telemetry::HistogramMetric *occupancyHist_ = nullptr;
};

} // namespace flexon

#endif // FLEXON_SNN_ROUTING_HH
