/**
 * @file
 * Precompiled spike-routing tables and the delay-ring delivery
 * engine.
 *
 * Spike delivery is a memory-bandwidth problem (Lindqvist & Podobas,
 * arXiv:2405.02019): the per-event work is one multiply-free
 * accumulate, so throughput is set by how compactly the synapse data
 * streams. The seed path gathered 12-byte `Synapse` records through
 * a 64-bit permutation per event; RoutingTable instead compiles the
 * synapse table once, at construction, into delivery order:
 *
 *   per target shard, per delay bucket, a contiguous stream of
 *   8-byte records {cell = target * maxSynapseTypes + type, weight}
 *   with a CSR index over source rows.
 *
 * The hot loop per fired source and delay bucket is then a pure
 * sequential stream of `base[cell] += weight` — no struct gather, no
 * permutation indirection, and the ring-slot base pointer hoisted
 * per bucket.
 *
 * Sparse activity (the PR 6 fast path): realistic cortical workloads
 * fire at a few Hz, so on most steps most (shard, bucket) pairs carry
 * nothing. The table therefore also compiles a per-(source, shard)
 * *activity bitmap* — bit b set when source row src has records in
 * (shard, bucket b). Delivery ORs the fired sources' masks per shard,
 * dispatches only the shards with route or clear work (no pool
 * barrier when at most one shard has work), and walks only the set
 * mask bits instead of scanning every bucket's CSR row. Networks with
 * more than 64 distinct delay values fall back to the bucket-scan
 * loop (masks would not fit a word); shard skipping still applies via
 * the whole-shard emptiness check.
 *
 * Order preservation (the bit-identity argument): a ring cell is one
 * (slot, target, type) location, and within a step exactly one delay
 * bucket writes a given slot. Within that bucket records are laid
 * out source-ascending with original row order preserved, and the
 * fired list is scanned in ascending order — so every cell receives
 * its floating-point additions in exactly the serial-scan order, for
 * any shard count. This holds for the mask-directed loop too: it is
 * bucket-major like the scan loop, with the same ascending fired
 * scan per bucket — it merely skips buckets whose mask bit is clear,
 * which carry no writes at all.
 * Results are therefore bit-identical to the serial path at any
 * thread count and with the sparse path on or off
 * (tests/test_routing.cc enforces this against a naive delivery
 * oracle).
 *
 * Weights are copied into the records, so in-place plasticity
 * updates (Network::synapseAt) are re-mirrored from the network's
 * weight-mutation log by refreshWeights() — O(mutations), or one
 * full O(synapses) pass when more than Network::weightLogCapacity
 * mutations behind.
 *
 * SpikeRouter owns the delay ring on top of the table and makes ring
 * maintenance activity-proportional: each (slot, shard) tracks what
 * was written into it (stimulus cells and routed (bucket, source)
 * rows), and the consumed slot is cleared by undoing only those
 * writes when activity is sparse, falling back to a dense std::fill
 * above a per-shard density threshold — quiet steps and quiet shards
 * of large networks no longer pay O(numNeurons * maxSynapseTypes)
 * per step.
 */

#ifndef FLEXON_SNN_ROUTING_HH
#define FLEXON_SNN_ROUTING_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/telemetry.hh"
#include "common/touch_list.hh"
#include "snn/connectivity.hh"
#include "snn/network.hh"

namespace flexon {

/** Sparse ring contents: per delay offset, ascending (cell, value). */
using RingTransfer =
    std::vector<std::vector<std::pair<uint32_t, double>>>;

/**
 * The precompiled delivery layout: per (target shard, delay bucket),
 * a contiguous run of DeliveryRecords with a CSR index over source
 * rows. Shards partition the target axis into contiguous ranges of
 * roughly equal incoming-synapse load, so concurrent lanes never
 * write the same cell.
 */
class RoutingTable
{
  public:
    /**
     * @param network finalized topology (kept by reference; must
     *        outlive the table)
     * @param shardCount requested target shards (>= 1; clamped to
     *        the neuron count)
     * @param metrics optional registry for refresh-path counters
     *        (must outlive the table; nullptr = no telemetry)
     */
    RoutingTable(const Network &network, size_t shardCount,
                 telemetry::Registry *metrics = nullptr);

    /** The shard/bucket layout (buildConnectivityGeometry). */
    const ConnectivityGeometry &geometry() const { return geo_; }

    size_t shardCount() const { return geo_.shardCount; }

    /** Delay values that actually occur, ascending. */
    size_t bucketCount() const { return geo_.bucketDelay.size(); }
    uint8_t bucketDelay(size_t bucket) const
    {
        return geo_.bucketDelay[bucket];
    }

    /** First target neuron of each shard; size shardCount() + 1. */
    const std::vector<uint32_t> &shardTargetBegin() const
    {
        return geo_.shardTargetBegin;
    }

    /** Shard owning ring cell (target * maxSynapseTypes + type). */
    size_t
    shardOfCell(uint32_t cell) const
    {
        return geo_.shardOf[cell / maxSynapseTypes];
    }

    /**
     * CSR row index of (shard, bucket): row src's records are
     * records()[ptr[src] .. ptr[src + 1]). Offsets are global into
     * records(), so one pointer serves the whole table.
     */
    const uint32_t *
    rowPtr(size_t shard, size_t bucket) const
    {
        return rowPtr_.data() +
               (shard * geo_.bucketDelay.size() + bucket) *
                   rowStride_;
    }

    const DeliveryRecord *records() const { return records_.data(); }

    /** Delivery records of source row src in (shard, bucket). */
    std::span<const DeliveryRecord>
    row(size_t shard, size_t bucket, uint32_t src) const
    {
        const uint32_t *ptr = rowPtr(shard, bucket);
        return {records_.data() + ptr[src], ptr[src + 1] - ptr[src]};
    }

    /** True when (shard, bucket) holds no records at all. */
    bool
    bucketEmpty(size_t shard, size_t bucket) const
    {
        const uint32_t *ptr = rowPtr(shard, bucket);
        return ptr[0] == ptr[rowStride_ - 1];
    }

    /**
     * True when activity bitmaps are available: bucketCount() <= 64,
     * so a shard's bucket occupancy per source fits one word. When
     * false, rowMask()/rowMaskRow() must not be consulted and
     * delivery falls back to the bucket-scan loop.
     */
    bool rowMasksExact() const { return masksExact_; }

    /** Bit b set iff row (shard, bucket b, src) has records. */
    uint64_t
    rowMask(uint32_t src, size_t shard) const
    {
        return rowMask_[src * geo_.shardCount + shard];
    }

    /** Source row src's masks for all shards (shardCount() words). */
    const uint64_t *
    rowMaskRow(uint32_t src) const
    {
        return rowMask_.data() + src * geo_.shardCount;
    }

    // ---- Source-major mirror ------------------------------------
    //
    // The bucket-major CSR above streams best when many sources fire
    // at once (each (shard, bucket) run is contiguous across
    // sources), but on a sparse step it costs ~2 scattered row
    // probes per populated bucket to stream a handful of records.
    // The table therefore also keeps a source-major mirror: per
    // (source, shard), that source's records contiguous in
    // ascending-bucket order, prefixed by packed run headers
    // (bucket << 24 | record count). A sparse step streams a fired
    // row with one header line and one record stream per shard —
    // no per-bucket probing. Addition order per ring cell is
    // unchanged (ascending source, original row order within a
    // source; a cell belongs to exactly one bucket per step), so
    // either walk is bit-identical.

    /** Packed run headers of (src, shard), ascending bucket. */
    std::span<const uint32_t>
    sourceRuns(uint32_t src, size_t shard) const
    {
        const size_t at = src * geo_.shardCount + shard;
        return {srcRuns_.data() + srcRunPtr_[at],
                srcRunPtr_[at + 1] - srcRunPtr_[at]};
    }

    /** First source-major record of (src, shard). */
    const DeliveryRecord *
    sourceRecords(uint32_t src, size_t shard) const
    {
        return srcRecords_.data() +
               srcRecPtr_[src * geo_.shardCount + shard];
    }

    /** Offset of sourceRecords(src, shard) into the mirror array. */
    uint32_t
    sourceRecordOffset(uint32_t src, size_t shard) const
    {
        return srcRecPtr_[src * geo_.shardCount + shard];
    }

    /** Bucket-major record at a global records() offset. */
    const DeliveryRecord *
    recordAt(uint32_t offset) const
    {
        return records_.data() + offset;
    }

    /** Source-major record at a global mirror offset. */
    const DeliveryRecord *
    sourceRecordAt(uint32_t offset) const
    {
        return srcRecords_.data() + offset;
    }

    static constexpr uint32_t runBucket(uint32_t header)
    {
        return header >> 24;
    }
    static constexpr uint32_t runLength(uint32_t header)
    {
        return header & 0xFFFFFFu;
    }

    /**
     * Re-mirror weights mutated through Network::synapseAt() since
     * the last call (or construction). Must not run concurrently
     * with mutations; call it between steps.
     */
    void refreshWeights();

    /** Bytes held by the table (records + CSR + masks + refresh map). */
    size_t memoryBytes() const;

  private:
    const Network &network_;
    ConnectivityGeometry geo_;
    size_t rowStride_; ///< numNeurons + 1
    std::vector<DeliveryRecord> records_;
    std::vector<uint32_t> rowPtr_;
    /** Per (source, shard) bucket-occupancy bitmaps (see above). */
    std::vector<uint64_t> rowMask_;
    bool masksExact_ = false;
    /** Source-major mirror (see above). */
    std::vector<DeliveryRecord> srcRecords_;
    std::vector<uint32_t> srcRuns_;
    /** CSR (src * shardCount + shard) -> srcRuns_. */
    std::vector<uint32_t> srcRunPtr_;
    /** CSR (src * shardCount + shard) -> srcRecords_. */
    std::vector<uint32_t> srcRecPtr_;
    /** Bucket-major record position -> source-major position. */
    std::vector<uint32_t> srcPosOf_;
    /** Global synapse index -> record position (weight refresh). */
    std::vector<uint32_t> recordOf_;
    /** Network::weightMutations() already mirrored. */
    uint64_t weightsSeen_ = 0;
    /** Refresh-path telemetry (null without a registry). */
    telemetry::Counter *tailRefreshCounter_ = nullptr;
    telemetry::Counter *fullRefreshCounter_ = nullptr;
};

/**
 * The delay ring plus its delivery engine: ring slots are cleared
 * activity-proportionally and fired spikes are streamed through the
 * RoutingTable, in parallel across target shards, with bit-identical
 * results at any shard count.
 */
class SpikeRouter
{
  public:
    /**
     * @param metrics optional registry (must outlive the router;
     *        nullptr = no telemetry). Registers refresh counters,
     *        the sparse-path skip counters, a ring-occupancy
     *        histogram and a touched-cells counter; the deep
     *        per-step samples only fire while
     *        telemetry::detailEnabled().
     * @param kind connectivity representation spikes are delivered
     *        from. Materialized keeps the direct RoutingTable fast
     *        paths; compressed and procedural decode rows through
     *        the provider's per-shard scratch machinery (identical
     *        results, see the bit-identity notes above).
     */
    SpikeRouter(const Network &network, size_t shardCount,
                telemetry::Registry *metrics = nullptr,
                ConnectivityKind kind = ConnectivityKind::Materialized);

    /** The materialized routing table; fatal()s for other kinds. */
    const RoutingTable &table() const;

    /** The connectivity source spikes are delivered from. */
    const ConnectivityProvider &provider() const { return *conn_; }
    ConnectivityKind kind() const { return conn_->kind(); }

    /** Provider-owned connectivity bytes (tables/blobs/caches). */
    size_t connectivityBytes() const
    {
        return conn_->connectivityBytes();
    }

    /** Hot-row cache telemetry (non-zero for procedural only). */
    uint64_t rowCacheHits() const { return conn_->rowCacheHits(); }
    uint64_t rowCacheMisses() const
    {
        return conn_->rowCacheMisses();
    }

    size_t ringDepth() const { return ringDepth_; }
    size_t slotSize() const { return slotSize_; }

    /** The weight buffer consumed by step t's neuron phase. */
    std::span<double> slot(uint64_t t);
    std::span<const double> slot(uint64_t t) const;

    /** The raw ring (ringDepth * slotSize doubles, slot-major). */
    const std::vector<double> &ringBuffer() const { return ring_; }

    /**
     * Toggle the sparse fast path (default on). Off restores the PR 5
     * dispatch: every shard runs every active step and delivery scans
     * every bucket. Ring contents are bit-identical either way; only
     * the schedule and the skip counters differ.
     */
    void setSparseDelivery(bool on) { sparseDelivery_ = on; }
    bool sparseDelivery() const { return sparseDelivery_; }

    /**
     * Record a stimulus write into step t's slot so the sparse clear
     * can undo it (cell = target * maxSynapseTypes + type). Call for
     * every cell the stimulus phase accumulates into.
     */
    void
    noteStimulus(uint64_t t, uint32_t cell)
    {
        stimTouch(t % ringDepth_, conn_->shardOfCell(cell))
            .add(cell, 1);
    }

    /**
     * One synapse-calculation step: clear the consumed slot of step
     * t (sparse or dense, decided per shard), then deliver every
     * fired source's outgoing synapses into the slots of t + delay.
     * `fired` must be ascending. Only shards with route or clear
     * work are dispatched; steps whose work fits one lane — quiet
     * steps included — run inline without a pool barrier.
     */
    void routeStep(uint64_t t, std::span<const uint32_t> fired);

    /** Re-mirror plasticity weight updates (cheap when unchanged). */
    void refreshWeights() { conn_->refreshWeights(); }

    /**
     * Pending-write load across the whole delay ring: the summed
     * undo cost of every routed and stimulus touch list. Duplicate
     * writes to one cell count each time, so the value can exceed
     * the cell count of the ring — callers comparing it against
     * ringDepth() * slotSize() should clamp. Health sweeps use it as
     * the delay-ring occupancy watermark signal.
     */
    uint64_t
    pendingWrites() const
    {
        uint64_t total = 0;
        for (const TouchList &list : touched_)
            total += list.cost();
        for (const TouchList &list : stimTouched_)
            total += list.cost();
        return total;
    }

    // Counters since construction / reset().
    uint64_t events() const { return events_; }
    uint64_t denseClears() const { return denseClears_; }
    uint64_t sparseClears() const { return sparseClears_; }
    /** Cell zeroings performed by sparse clears (incl. duplicates). */
    uint64_t cellsCleared() const { return cellsCleared_; }
    /** Shards skipped entirely by the sparse path, summed. */
    uint64_t shardsSkipped() const { return shardsSkipped_; }
    /** (shard, bucket) pairs streamed by delivery, summed. */
    uint64_t bucketsVisited() const { return bucketsVisited_; }

    /** Zero the ring, the touch tracking and the counters. */
    void reset();

    /**
     * Engine hand-off support: export the live ring as sparse
     * (cell, value) lists per delay offset from step t, or seed a
     * freshly reset ring from such lists (cells are touch-tracked so
     * later sparse clears stay correct). Values move verbatim —
     * the accumulated doubles, not the float weights — so a switch
     * between delivery engines stays bit-exact.
     */
    void exportRing(uint64_t t, RingTransfer &out) const;
    void importRing(uint64_t t, const RingTransfer &slots);
    /** Restore the cumulative event count after an engine hand-off. */
    void seedEvents(uint64_t events) { events_ = events; }

    /**
     * Checkpoint the router's dynamic state: the delay ring (runs of
     * exact +0.0 run-length encoded as `zN` tokens — quiet slots
     * dominate the ring), every per-(slot, shard) routed and
     * stimulus touch list, and the event/clear/skip counters. The
     * touch lists are part of correctness, not just telemetry: a
     * restored ring without its pending-write tracking would let a
     * sparse clear miss stale cells. Saturated lists round trip as
     * saturated, so the dense/sparse decision sequence — and with it
     * every counter — continues deterministically. loadState
     * fatal()s on a geometry mismatch.
     */
    void saveState(std::ostream &os) const;
    void loadState(std::istream &is);

  private:
    /**
     * Clear the consumed slot for lane `shard`: its contiguous cell
     * range densely, or only the tracked writes when sparse.
     */
    void laneClear(size_t slotIdx, size_t shard, bool dense);

    /** Bucket-scan delivery (mask fallback and PR 5 mode). */
    void laneRoute(uint64_t t, size_t shard,
                   std::span<const uint32_t> fired);

    /** Mask-directed delivery: walk only the set bucket bits. */
    void laneRouteMasked(uint64_t t, size_t shard,
                         std::span<const uint32_t> fired);

    /**
     * Source-major delivery for sparse steps: stream each fired
     * row's contiguous (header, records) runs, no per-bucket
     * probing.
     */
    void laneRouteSourceMajor(uint64_t t, size_t shard,
                              std::span<const uint32_t> fired);

    /**
     * Provider-decoded delivery (compressed / procedural): stream
     * each fired row via ConnectivityProvider::rowSpan through the
     * lane's scratch buffer. Runs arrive in the same source-major
     * shape (ascending-bucket runs per fired source, ascending
     * source scan), so additions per ring cell keep the identical
     * order as the materialized walks.
     */
    void laneRouteRows(uint64_t t, size_t shard,
                       std::span<const uint32_t> fired);

    void legacyRouteStep(uint64_t t, size_t slotIdx,
                         std::span<const uint32_t> fired);

    TouchList &touch(size_t slotIdx, size_t shard)
    {
        return touched_[slotIdx * shards_ + shard];
    }
    const TouchList &touch(size_t slotIdx, size_t shard) const
    {
        return touched_[slotIdx * shards_ + shard];
    }

    TouchList &stimTouch(size_t slotIdx, size_t shard)
    {
        return stimTouched_[slotIdx * shards_ + shard];
    }
    const TouchList &stimTouch(size_t slotIdx, size_t shard) const
    {
        return stimTouched_[slotIdx * shards_ + shard];
    }

    std::unique_ptr<ConnectivityProvider> conn_;
    /** Fast-path handle: non-null iff conn_ is materialized. The
     *  PR 3/PR 6 delivery loops run unchanged through it. */
    const RoutingTable *mat_ = nullptr;
    size_t shards_;
    /** One decode scratch per shard (lanes never share). */
    mutable std::vector<RowScratch> scratch_;
    size_t ringDepth_;
    size_t slotSize_;
    std::vector<double> ring_;
    /** Ring-slot base pointer per delay, recomputed each step. */
    std::vector<double *> slotBase_;
    /**
     * touched_ row (slot of t + delay, shard 0) per delay,
     * recomputed each step beside slotBase_ — the sparse lanes index
     * [delay][shard] instead of re-dividing by the ring depth per
     * visited bucket.
     */
    std::vector<TouchList *> touchBase_;
    /**
     * Per (slot, shard): routed writes pending in that slot, as
     * packed (bucket << 32 | source) keys with row-length cost —
     * or record-range keys from the sparse loops (see routing.cc).
     */
    std::vector<TouchList> touched_;
    /** Per (slot, shard): stimulus cells pending in that slot. */
    std::vector<TouchList> stimTouched_;
    /** Per-shard event tallies (reduced after the barrier). */
    std::vector<uint64_t> laneEvents_;
    /** Per-shard bucket-visit tallies (reduced after the barrier). */
    std::vector<uint64_t> laneBuckets_;
    /** Per-shard dense-clear decisions for the consumed slot. */
    std::vector<uint8_t> laneDense_;
    /** Per-shard OR of the fired sources' activity masks. */
    std::vector<uint64_t> routeMask_;
    /** Shards with route or clear work this step, compacted. */
    std::vector<uint32_t> activeShards_;
    /** Per-shard sparse-clear cost cap: dense fill at or above. */
    std::vector<uint64_t> shardClearBudget_;

    bool sparseDelivery_ = true;

    uint64_t events_ = 0;
    uint64_t denseClears_ = 0;
    uint64_t sparseClears_ = 0;
    uint64_t cellsCleared_ = 0;
    uint64_t shardsSkipped_ = 0;
    uint64_t bucketsVisited_ = 0;

    /** Sparse-path observability (always on when a registry exists). */
    telemetry::Counter *shardsSkippedCounter_ = nullptr;
    telemetry::Counter *bucketsVisitedCounter_ = nullptr;
    /** Deep telemetry, sampled per step while detailEnabled(). */
    telemetry::Counter *touchedCellsCounter_ = nullptr;
    telemetry::HistogramMetric *occupancyHist_ = nullptr;
};

} // namespace flexon

#endif // FLEXON_SNN_ROUTING_HH
