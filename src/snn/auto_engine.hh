/**
 * @file
 * Rate-adaptive engine selection (the dense/event-driven switch).
 *
 * The dense Simulator and the event-driven LLIF engine are
 * step-equivalent but have opposite cost profiles: dense work is
 * O(N) per step regardless of activity, event-driven work scales
 * with the spike traffic. Which one wins therefore depends on the
 * *current* firing rate — a quantity that changes over a run (onset
 * transients, stimulus episodes, synchronous bursts).
 *
 * AutoSession owns whichever engine is currently cheaper and switches
 * between them mid-run using the bit-exact hand-off machinery
 * (SimulationSession::adoptSessionCore + EngineTransfer): the spike
 * trains, probe traces and checkpoints of an auto run are identical
 * to both static engines' output, so engine choice is purely a
 * performance knob.
 *
 * The decision input is the session's EWMA firing-rate estimator
 * (SimulationSession::ewmaRate), which derives only from the spike
 * history — so decisions are deterministic and survive
 * checkpoint/restore. The crossover rate, hysteresis margin and
 * decision cadence all come from the execution planner
 * (plan::ExecutionPlanner::crossoverRate, plan::kSwitchHysteresis,
 * plan::kDecisionWindow): one definition, calibration-aware, and
 * still a pure function of (calibration, network stats, EWMA rate).
 */

#ifndef FLEXON_SNN_AUTO_ENGINE_HH
#define FLEXON_SNN_AUTO_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "plan/planner.hh"
#include "snn/network.hh"
#include "snn/session.hh"
#include "snn/simulator.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** Which delivery engine a run is pinned to (or Auto to adapt). */
enum class EngineKind {
    Dense, ///< dense three-phase Simulator
    Event, ///< event-driven LLIF engine
    Auto,  ///< rate-adaptive switch between the two
};

/** Printable engine-kind name ("dense" / "event" / "auto"). */
const char *engineKindName(EngineKind kind);

/** Parse "dense" / "event" / "auto"; returns false on anything
 *  else. */
bool parseEngineKind(const std::string &text, EngineKind &out);

/** Tunables of the rate-adaptive switch. */
struct AutoEngineOptions
{
    EngineKind engine = EngineKind::Auto;
    /**
     * Steps between switch decisions (plan::kDecisionWindow). Small
     * enough to catch regime changes, large enough that a hand-off
     * (O(N + ring) copies) amortizes to noise.
     */
    uint64_t decisionWindow = plan::kDecisionWindow;
    /**
     * Relative margin the estimated winner must beat the incumbent
     * by before a switch happens (thrash guard,
     * plan::kSwitchHysteresis).
     */
    double hysteresis = plan::kSwitchHysteresis;
    /**
     * Planner supplying the dense/event crossover rate (and, via its
     * calibration, the cost provenance recorded in run reports).
     * Null means "plan from the process-wide activeCalibration()" —
     * with no calibration installed that is the builtin model, whose
     * crossover reproduces the hand-tuned pre-PR 8 value exactly
     * (see plan::kBuiltinEventCostFactor). Not retained: the
     * AutoSession copies what it needs at construction.
     */
    const plan::ExecutionPlanner *planner = nullptr;
};

/**
 * A simulation session with a selectable (or self-selecting)
 * delivery engine.
 *
 * Facade contract: session() returns the live SimulationSession for
 * reads (stats, probes, spikes, reports); run() and the checkpoint
 * calls must go through AutoSession, because they are the points
 * where the underlying engine may be replaced. The reference
 * returned by session() is invalidated by run(), loadCheckpointFile()
 * and reset() — re-fetch it afterwards.
 */
class AutoSession
{
  public:
    /**
     * @param network finalized; kept by reference (must outlive the
     *        session)
     * @param stimulus stimulus sources (copied; a pristine copy is
     *        kept for rebuilding engines)
     * @param options dense-engine options (backend, threads, probes,
     *        sparse delivery, ...); the event engine shares the
     *        session-level subset
     * @param autoOptions engine pin / switch tunables. EngineKind::
     *        Auto silently pins to Dense (with a warn) when the
     *        configuration cannot hand off: non-Reference backend,
     *        non-discrete mode, or a network the event engine cannot
     *        run (eventDrivenEligible).
     */
    AutoSession(const Network &network, StimulusGenerator stimulus,
                const SimulatorOptions &options = {},
                const AutoEngineOptions &autoOptions = {});

    /** The live engine session (see the facade contract above). */
    SimulationSession &session() { return *child_; }
    const SimulationSession &session() const { return *child_; }

    /** Run `steps` steps, deciding the engine every
     *  decisionWindow. */
    void run(uint64_t steps);

    /** Engine kind currently executing ("dense" /
     *  "event-driven"). */
    const char *activeEngine() const;

    /** True while the event-driven engine is active. */
    bool eventActive() const { return eventActive_; }

    /** Completed engine switches this run. */
    uint64_t switches() const { return switches_; }

    /** True when rate-adaptive switching is in effect. */
    bool adaptive() const { return adaptive_; }

    /**
     * Firing rate (spikes/neuron/step) above which the dense engine
     * is estimated cheaper (before hysteresis).
     */
    double crossoverRate() const { return crossoverRate_; }

    /**
     * Checkpoint via the live engine. The snapshot records that
     * engine's kind; restore (here or in a pinned session of the
     * matching kind) resumes bit-exactly.
     */
    bool saveCheckpointFile(const std::string &path) const;

    /**
     * Restore from `path`, rebuilding the engine the checkpoint was
     * written by when it differs from the live one (only when the
     * session is not pinned; a pinned session of the wrong kind
     * fatal()s inside loadCheckpoint, as before).
     */
    void loadCheckpointFile(const std::string &path,
                            Network *mutableNetwork = nullptr);

  private:
    std::unique_ptr<SimulationSession> makeEngine(bool event) const;
    /** Hand the live state to the other engine (bit-exact). */
    void switchEngine(bool toEvent);
    /** Evaluate the crossover model and switch if warranted. */
    void decide();
    /** Stamp the live engine's PlanInfo (report "plan" section). */
    void applyPlanInfo();

    const Network &network_;
    StimulusGenerator stimulus_; ///< pristine copy for rebuilds
    SimulatorOptions options_;
    AutoEngineOptions auto_;

    /**
     * Stamp the decision just taken into the live engine's plan
     * audit trail (report "plan_audit" section, trace instants).
     * Called after any switch, so the record lands in the session
     * core the run continues with.
     */
    void recordDecision(double rate, bool switched);

    std::unique_ptr<SimulationSession> child_;
    bool eventActive_ = false;
    bool adaptive_ = false;
    double crossoverRate_ = 0.0;
    uint64_t switches_ = 0;
    /** Planner snapshot backing crossoverRate_ and the report. */
    plan::EnginePlan plan_;
    /** Planner copy driving the per-decision cost predictions. */
    plan::ExecutionPlanner planner_;
    plan::NetworkStats netStats_;
};

} // namespace flexon

#endif // FLEXON_SNN_AUTO_ENGINE_HH
