/**
 * @file
 * The SNN simulation engine: evaluates the three per-step phases of
 * Section II-C — stimulus generation, neuron computation, synapse
 * calculation — and times each phase (the Figure 3 breakdown).
 *
 * Spike propagation uses a delay ring buffer: a fired neuron's
 * synaptic weights are accumulated into the input buffer of time step
 * t + delay; the neuron-computation phase of step t consumes buffer
 * slot t mod D, where D is the network's maximum delay + 1.
 */

#ifndef FLEXON_SNN_SIMULATOR_HH
#define FLEXON_SNN_SIMULATOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "snn/backend.hh"
#include "snn/network.hh"
#include "snn/routing.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** Options controlling a simulation run. */
struct SimulatorOptions
{
    BackendKind backend = BackendKind::Reference;
    IntegrationMode mode = IntegrationMode::Discrete;
    SolverKind solver = SolverKind::Euler;
    uint64_t stimulusSeed = 1;
    /** Worker threads for the reference neuron-update loop. */
    size_t threads = 1;
    /** Record (step, neuron) spike events (memory-heavy). */
    bool recordSpikes = false;
    /** Neurons whose membrane potential is sampled every step. */
    std::vector<uint32_t> probes;
};

/** Accumulated wall-clock time per phase, plus counters. */
struct PhaseStats
{
    double stimulusSec = 0.0;
    double neuronSec = 0.0;
    double synapseSec = 0.0;
    /** Seconds of synapseSec in the delivery engine (clear+route). */
    double synapseRouteSec = 0.0;
    uint64_t steps = 0;
    uint64_t spikes = 0;
    uint64_t synapseEvents = 0;
    /** Worker lanes the engine was configured with. */
    size_t threadsUsed = 1;
    /** Modelled hardware time (Flexon/folded backends only). */
    double modelNeuronSec = 0.0;
    /** Bytes of the precompiled spike-routing table. */
    uint64_t routingTableBytes = 0;
    /** Ring-slot clears done densely (std::fill over the slot). */
    uint64_t ringDenseClears = 0;
    /** Ring-slot clears done sparsely (tracked writes undone). */
    uint64_t ringSparseClears = 0;
    /** Cells zeroed by sparse clears (incl. duplicate zeroings). */
    uint64_t ringCellsCleared = 0;

    double totalSec() const
    {
        return stimulusSec + neuronSec + synapseSec;
    }
};

/** A recorded spike event. */
struct SpikeEvent
{
    uint64_t step;
    uint32_t neuron;
};

/** The three-phase SNN simulation engine. */
class Simulator
{
  public:
    /**
     * @param network finalized network topology (kept by reference;
     *        must outlive the simulator)
     * @param stimulus stimulus sources (copied)
     */
    Simulator(const Network &network, StimulusGenerator stimulus,
              const SimulatorOptions &options = {});

    /** Run `steps` time steps. */
    void run(uint64_t steps);

    /** Run a single time step. */
    void stepOnce();

    const PhaseStats &stats() const { return stats_; }
    const Network &network() const { return network_; }
    NeuronBackend &backend() { return *backend_; }

    /** Per-neuron output spike counts. */
    const std::vector<uint64_t> &spikeCounts() const
    {
        return spikeCounts_;
    }

    /**
     * The fired flags (0/1 bytes) of the most recent step (empty
     * before the first step). Plasticity engines consume this after
     * stepOnce().
     */
    const std::vector<uint8_t> &lastFired() const { return fired_; }

    /**
     * Membrane trace of the i-th probed neuron (options.probes),
     * one sample per completed step.
     */
    const std::vector<double> &probeTrace(size_t probe) const;

    /** Recorded spike events (empty unless recordSpikes). */
    const std::vector<SpikeEvent> &spikeEvents() const
    {
        return spikeEvents_;
    }

    /** Mean firing rate in spikes per neuron per step. */
    double meanRate() const;

    /**
     * Dump a gem5-style statistics block: one `name value # desc`
     * line per statistic, hierarchical dot-separated names.
     */
    void printStats(std::ostream &os) const;

    /** Reset state, statistics and time to zero. */
    void reset();

    uint64_t currentStep() const { return t_; }

    /**
     * The delivery engine: precompiled routing table + delay ring
     * (read-only; for tests, benchmarks and diagnostics).
     */
    const SpikeRouter &router() const { return *router_; }

    /** The raw delay ring (for equivalence tests). */
    const std::vector<double> &ringBuffer() const
    {
        return router_->ringBuffer();
    }

  private:
    void phaseStimulus();
    void phaseNeuron();
    void phaseSynapse();

    std::span<double> slot(uint64_t t);

    const Network &network_;
    StimulusGenerator stimulus_;
    StimulusGenerator stimulusInitial_; ///< pristine copy for reset()
    SimulatorOptions options_;
    std::unique_ptr<NeuronBackend> backend_;

    uint64_t t_ = 0;
    /**
     * Spike delivery: routing table, delay ring, and
     * activity-proportional ring maintenance (snn/routing.hh).
     * Shard count == configured threads; results are bit-identical
     * to serial at any thread count.
     */
    std::unique_ptr<SpikeRouter> router_;
    std::vector<uint8_t> fired_;
    std::vector<uint64_t> spikeCounts_;
    std::vector<SpikeEvent> spikeEvents_;
    std::vector<std::vector<double>> probeTraces_;
    PhaseStats stats_;

    /** Fired neuron indices of the current step (capacity N). */
    std::vector<uint32_t> firedList_;
};

} // namespace flexon

#endif // FLEXON_SNN_SIMULATOR_HH
