/**
 * @file
 * The dense SNN simulation engine: evaluates the three per-step
 * phases of Section II-C — stimulus generation, neuron computation,
 * synapse calculation — and times each phase (the Figure 3
 * breakdown). Orchestration (stimulus stream, recording, stats,
 * reports, reset, checkpointing) lives in the shared
 * SimulationSession core; this class supplies the dense phase
 * bodies: a pluggable NeuronBackend evaluates every neuron each
 * step, and a SpikeRouter delivers spikes through precompiled
 * routing tables.
 *
 * Spike propagation uses a delay ring buffer: a fired neuron's
 * synaptic weights are accumulated into the input buffer of time step
 * t + delay; the neuron-computation phase of step t consumes buffer
 * slot t mod D, where D is the network's maximum delay + 1.
 */

#ifndef FLEXON_SNN_SIMULATOR_HH
#define FLEXON_SNN_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "snn/backend.hh"
#include "snn/network.hh"
#include "snn/routing.hh"
#include "snn/session.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** Options controlling a simulation run. */
struct SimulatorOptions
{
    BackendKind backend = BackendKind::Reference;
    IntegrationMode mode = IntegrationMode::Discrete;
    SolverKind solver = SolverKind::Euler;
    uint64_t stimulusSeed = 1;
    /** Worker threads for the reference neuron-update loop. */
    size_t threads = 1;
    /** Record (step, neuron) spike events (memory-heavy). */
    bool recordSpikes = false;
    /**
     * Sparse-activity delivery (activity bitmaps + shard skipping);
     * off restores the PR 5 every-shard schedule. Bit-identical
     * either way.
     */
    bool sparseDelivery = true;
    /**
     * Connectivity representation spikes are delivered from
     * (snn/connectivity.hh). Materialized is the precompiled
     * routing table; compressed and procedural trade delivery-time
     * decoding for 4-100x smaller memory footprints, bit-identical
     * results.
     */
    ConnectivityKind connectivity = ConnectivityKind::Materialized;
    /** Neurons whose membrane potential is sampled every step. */
    std::vector<uint32_t> probes;
    /** Runtime invariant detectors (common/health.hh). */
    health::HealthOptions health;
    /** Live metric export target; empty disables the exporter. */
    std::string metricsOut;
    /** Steps between live metric snapshots. */
    uint64_t metricsEvery = 256;
    /** Session label stamped onto exported metrics. */
    std::string label = "flexon";
};

/** The dense three-phase SNN simulation engine. */
class Simulator : public SimulationSession
{
  public:
    /**
     * @param network finalized network topology (kept by reference;
     *        must outlive the simulator)
     * @param stimulus stimulus sources (copied)
     */
    Simulator(const Network &network, StimulusGenerator stimulus,
              const SimulatorOptions &options = {});

    NeuronBackend &backend() { return *backend_; }

    /**
     * Membrane potential of one neuron as of the last completed
     * step, in reference units.
     */
    double membrane(uint32_t neuron) const override
    {
        return backend_->membrane(neuron);
    }

    /**
     * The delivery engine: precompiled routing table + delay ring
     * (read-only; for tests, benchmarks and diagnostics).
     */
    const SpikeRouter &router() const { return *router_; }

    /** The raw delay ring (for equivalence tests). */
    const std::vector<double> &ringBuffer() const
    {
        return router_->ringBuffer();
    }

    /** Test/CI hook: NaN-poison one neuron (see NeuronBackend). */
    bool debugPoisonMembrane(uint32_t neuron) override
    {
        return backend_->debugPoisonMembrane(neuron);
    }

  protected:
    const char *engineKind() const override { return "dense"; }
    void engineInjectStimulus(
        uint64_t t, std::span<const StimulusSpike> spikes) override;
    void engineStepNeurons(uint64_t t,
                           std::vector<uint8_t> &fired) override;
    void enginePrepareDelivery() override;
    void engineDeliverSpikes(
        uint64_t t, std::span<const uint32_t> fired) override;
    void engineReset() override;
    double engineModelSecondsPerStep() const override;
    void refreshEngineStats(PhaseStats &view) const override;
    void engineReportConfig(
        telemetry::ReportFields &config) const override;
    void engineSaveState(std::ostream &os) const override;
    void engineLoadState(std::istream &is) override;
    void engineHealthScan(uint64_t begin, uint64_t end,
                          health::HealthScan &scan) const override;

  public:
    /**
     * Engine hand-off (rate-adaptive switch): supported when the
     * backend can express its neuron state as LLIF (v, refractory)
     * arrays — the Reference backend in discrete mode. The ring is
     * exchanged as accumulated per-cell doubles, so the receiving
     * engine continues the exact addition sequence.
     */
    bool engineExportTransfer(EngineTransfer &out) const override;
    bool engineImportTransfer(const EngineTransfer &in) override;

  private:
    SimulatorOptions options_;
    std::unique_ptr<NeuronBackend> backend_;
    /**
     * Spike delivery: routing table, delay ring, and
     * activity-proportional ring maintenance (snn/routing.hh).
     * Shard count == configured threads; results are bit-identical
     * to serial at any thread count.
     */
    std::unique_ptr<SpikeRouter> router_;
};

} // namespace flexon

#endif // FLEXON_SNN_SIMULATOR_HH
