/**
 * @file
 * The SNN simulation engine: evaluates the three per-step phases of
 * Section II-C — stimulus generation, neuron computation, synapse
 * calculation — and times each phase (the Figure 3 breakdown).
 *
 * Spike propagation uses a delay ring buffer: a fired neuron's
 * synaptic weights are accumulated into the input buffer of time step
 * t + delay; the neuron-computation phase of step t consumes buffer
 * slot t mod D, where D is the network's maximum delay + 1.
 */

#ifndef FLEXON_SNN_SIMULATOR_HH
#define FLEXON_SNN_SIMULATOR_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.hh"
#include "snn/backend.hh"
#include "snn/network.hh"
#include "snn/routing.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** Options controlling a simulation run. */
struct SimulatorOptions
{
    BackendKind backend = BackendKind::Reference;
    IntegrationMode mode = IntegrationMode::Discrete;
    SolverKind solver = SolverKind::Euler;
    uint64_t stimulusSeed = 1;
    /** Worker threads for the reference neuron-update loop. */
    size_t threads = 1;
    /** Record (step, neuron) spike events (memory-heavy). */
    bool recordSpikes = false;
    /** Neurons whose membrane potential is sampled every step. */
    std::vector<uint32_t> probes;
};

/**
 * Accumulated per-phase wall-clock time plus event counters. This is
 * a *materialized view* over the simulator's telemetry registry:
 * Simulator::stats() refreshes it from the underlying counters and
 * timers, so the struct stays a plain value type for callers while
 * the phases write through wait-free sharded metrics.
 *
 * Units: every `*Sec` field is host wall-clock seconds accumulated
 * over all steps of the run (steady clock); counter fields are event
 * counts over the same extent.
 */
struct PhaseStats
{
    /** Host seconds in stimulus generation (phase 1). */
    double stimulusSec = 0.0;
    /** Host seconds in neuron computation (phase 2). */
    double neuronSec = 0.0;
    /** Host seconds in synapse calculation (phase 3). */
    double synapseSec = 0.0;
    /**
     * Host seconds of synapseSec spent inside the delivery engine
     * (ring clear + routing). Strictly nested within the synapse
     * phase interval, so synapseRouteSec <= synapseSec up to clock
     * resolution (debug-asserted in stats()).
     */
    double synapseRouteSec = 0.0;
    /** Host seconds sampling membrane probes (0 without probes). */
    double probeSec = 0.0;
    /** Time steps completed. */
    uint64_t steps = 0;
    /** Output spikes fired (sum over neurons). */
    uint64_t spikes = 0;
    /** Synaptic weight deliveries into the delay ring. */
    uint64_t synapseEvents = 0;
    /** Worker lanes the engine was configured with. */
    size_t threadsUsed = 1;
    /** Modelled hardware seconds (Flexon/folded backends only). */
    double modelNeuronSec = 0.0;
    /** Bytes of the precompiled spike-routing table. */
    uint64_t routingTableBytes = 0;
    /** Ring-slot clears done densely (std::fill over the slot). */
    uint64_t ringDenseClears = 0;
    /** Ring-slot clears done sparsely (tracked writes undone). */
    uint64_t ringSparseClears = 0;
    /** Cells zeroed by sparse clears (incl. duplicate zeroings). */
    uint64_t ringCellsCleared = 0;

    /** Host seconds across every tracked per-step phase. */
    double totalSec() const
    {
        return stimulusSec + neuronSec + synapseSec + probeSec;
    }
};

/** A recorded spike event. */
struct SpikeEvent
{
    uint64_t step;
    uint32_t neuron;
};

/** The three-phase SNN simulation engine. */
class Simulator
{
  public:
    /**
     * @param network finalized network topology (kept by reference;
     *        must outlive the simulator)
     * @param stimulus stimulus sources (copied)
     */
    Simulator(const Network &network, StimulusGenerator stimulus,
              const SimulatorOptions &options = {});

    /** Run `steps` time steps. */
    void run(uint64_t steps);

    /** Run a single time step. */
    void stepOnce();

    /**
     * Refresh and return the statistics view (sums the sharded
     * telemetry slots; cheap, but not free — cache the reference's
     * fields rather than calling per step in hot loops).
     */
    const PhaseStats &stats() const;
    const Network &network() const { return network_; }
    NeuronBackend &backend() { return *backend_; }

    /** Per-neuron output spike counts. */
    const std::vector<uint64_t> &spikeCounts() const
    {
        return spikeCounts_;
    }

    /**
     * The fired flags (0/1 bytes) of the most recent step (empty
     * before the first step). Plasticity engines consume this after
     * stepOnce().
     */
    const std::vector<uint8_t> &lastFired() const { return fired_; }

    /**
     * Membrane trace of the i-th probed neuron (options.probes),
     * one sample per completed step.
     */
    const std::vector<double> &probeTrace(size_t probe) const;

    /** Recorded spike events (empty unless recordSpikes). */
    const std::vector<SpikeEvent> &spikeEvents() const
    {
        return spikeEvents_;
    }

    /** Mean firing rate in spikes per neuron per step. */
    double meanRate() const;

    /**
     * Dump a gem5-style statistics block: one `name value # desc`
     * line per statistic, hierarchical dot-separated names.
     */
    void printStats(std::ostream &os) const;

    /**
     * Reset state, statistics and time to zero. Also zeroes every
     * metric in this simulator's telemetry registry, so two identical
     * runs separated by reset() report identical counters.
     */
    void reset();

    /** This simulator's private metrics registry. */
    telemetry::Registry &metrics() { return metrics_; }
    const telemetry::Registry &metrics() const { return metrics_; }

    /**
     * Write a "flexon-run-report-v1" JSON document (config, stats,
     * this registry, the process registry, pool lane accounting) to
     * `path`. Returns false (after warn()) on I/O failure.
     */
    bool writeRunReport(const std::string &path) const;

    uint64_t currentStep() const { return t_; }

    /**
     * The delivery engine: precompiled routing table + delay ring
     * (read-only; for tests, benchmarks and diagnostics).
     */
    const SpikeRouter &router() const { return *router_; }

    /** The raw delay ring (for equivalence tests). */
    const std::vector<double> &ringBuffer() const
    {
        return router_->ringBuffer();
    }

  private:
    void phaseStimulus();
    void phaseNeuron();
    void phaseSynapse();

    std::span<double> slot(uint64_t t);

    const Network &network_;
    StimulusGenerator stimulus_;
    StimulusGenerator stimulusInitial_; ///< pristine copy for reset()
    SimulatorOptions options_;
    std::unique_ptr<NeuronBackend> backend_;

    uint64_t t_ = 0;
    /**
     * Spike delivery: routing table, delay ring, and
     * activity-proportional ring maintenance (snn/routing.hh).
     * Shard count == configured threads; results are bit-identical
     * to serial at any thread count.
     */
    std::unique_ptr<SpikeRouter> router_;
    std::vector<uint8_t> fired_;
    std::vector<uint64_t> spikeCounts_;
    std::vector<SpikeEvent> spikeEvents_;
    std::vector<std::vector<double>> probeTraces_;

    /**
     * Private metrics registry plus cached handles for the hot
     * paths. Declared before the handles (initialization order).
     */
    telemetry::Registry metrics_;
    telemetry::Timer &stimulusTimer_;
    telemetry::Timer &neuronTimer_;
    telemetry::Timer &synapseTimer_;
    telemetry::Timer &routeTimer_;
    telemetry::Timer &probeTimer_;
    telemetry::Counter &stepsCounter_;
    telemetry::Counter &spikesCounter_;
    telemetry::Gauge &modelNeuronSecGauge_;

    /** Materialized by stats() from the registry + router. */
    mutable PhaseStats statsView_;

    /** Fired neuron indices of the current step (capacity N). */
    std::vector<uint32_t> firedList_;
};

} // namespace flexon

#endif // FLEXON_SNN_SIMULATOR_HH
