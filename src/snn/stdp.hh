/**
 * @file
 * Pair-based spike-timing-dependent plasticity (STDP).
 *
 * Flexon itself simulates fixed-weight neurons, but the SNN
 * frameworks it plugs into (NEST, Brian, CARLsim) ship STDP as a
 * standard synapse model, and the paper's related work highlights
 * spike-timing learning (Masquelier & Thorpe; Bichler et al.). This
 * engine implements the classic exponential pair rule on top of the
 * Network substrate:
 *
 *   pre spike at t:  w -= aMinus * postTrace(target)   (LTD)
 *                    preTrace(pre) += 1
 *   post spike at t: w += aPlus  * preTrace(source)    (LTP)
 *                    postTrace(post) += 1
 *
 * with both traces decaying as exp(-1/tau) per step and weights
 * clamped to [wMin, wMax]. Only synapses of the configured plastic
 * type are modified (inhibitory wiring stays fixed).
 */

#ifndef FLEXON_SNN_STDP_HH
#define FLEXON_SNN_STDP_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "snn/network.hh"
#include "snn/plasticity.hh"

namespace flexon {

/** Pair-rule parameters (time constants in steps). */
struct StdpConfig
{
    double aPlus = 0.005;   ///< LTP amplitude per coincidence
    double aMinus = 0.006;  ///< LTD amplitude (slightly dominant)
    double tauPlus = 200.0; ///< pre-trace time constant, steps
    double tauMinus = 200.0;///< post-trace time constant, steps
    float wMin = 0.0f;
    float wMax = 1.0f;
    uint8_t plasticType = 0; ///< synapse type subject to plasticity
};

/**
 * The synaptic plasticity engine. Construct over a finalized network
 * (held by non-const reference: weights are updated in place,
 * visible to any simulator routing through the same Network), then
 * either attach it to a session (attachPlasticityRule) or call
 * onStep() yourself after every simulation step with that step's
 * fired flags.
 */
class StdpEngine : public PlasticityRule
{
  public:
    StdpEngine(Network &network, const StdpConfig &config = {});

    const char *kind() const override { return "stdp"; }

    /**
     * Apply one step of trace decay and spike-driven updates.
     * @param fired the step's 0/1 spike flags (Simulator::lastFired)
     */
    void onStep(const std::vector<uint8_t> &fired) override;

    const StdpConfig &config() const { return config_; }
    double preTrace(uint32_t neuron) const;
    double postTrace(uint32_t neuron) const;

    /** Number of plastic synapses under management. */
    size_t plasticSynapses() const { return plasticCount_; }

    /** Mean weight of the plastic synapses (learning diagnostics). */
    double meanPlasticWeight() const;

    /**
     * Checkpoint the engine's dynamic state — the pre/post traces.
     * The weights themselves live in the Network and are captured by
     * the session checkpoint; restoring both sides resumes learning
     * bit-identically. loadState fatal()s on a size mismatch.
     */
    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

  private:
    /**
     * One plastic synapse as seen from either endpoint. `peer` is
     * the target in the forward list and the source in the reverse
     * list. `base` snapshots the construction-time (generated)
     * weight so procedural networks can answer reads that miss the
     * weight-delta overlay without regenerating the row.
     */
    struct PlasticRef
    {
        uint32_t peer;
        uint64_t index;
        float base;
    };

    /** Current weight of a plastic synapse in either storage mode. */
    float currentWeight(const PlasticRef &ref) const;

    Network &network_;
    StdpConfig config_;
    double decayPlus_;
    double decayMinus_;
    std::vector<double> preTrace_;
    std::vector<double> postTrace_;
    /** Outgoing plastic synapses per source, in row order. */
    std::vector<std::vector<PlasticRef>> plasticOut_;
    /** Incoming plastic synapses per target. */
    std::vector<std::vector<PlasticRef>> incoming_;
    size_t plasticCount_ = 0;
};

} // namespace flexon

#endif // FLEXON_SNN_STDP_HH
