#include "frontend/script.hh"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "features/model_table.hh"
#include "registry/registry.hh"

namespace flexon {

namespace {

/** Tokenized directive line with its source line number. */
struct Line
{
    int number;
    std::vector<std::string> tokens;
};

[[noreturn]] void
parseError(int line, const char *fmt, const std::string &detail)
{
    fatal("script line %d: %s%s", line, fmt, detail.c_str());
}

/** Split "key=value" pairs from tokens[from..). */
std::map<std::string, std::string>
keyValues(const Line &line, size_t from)
{
    std::map<std::string, std::string> out;
    for (size_t i = from; i < line.tokens.size(); ++i) {
        const std::string &tok = line.tokens[i];
        const size_t eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            parseError(line.number, "expected key=value, got ", tok);
        out[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
    return out;
}

double
toDouble(const Line &line, const std::string &key,
         const std::string &value)
{
    try {
        size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        parseError(line.number, "bad numeric value for ",
                   key + "=" + value);
    }
}

uint64_t
toUint(const Line &line, const std::string &key,
       const std::string &value)
{
    const double v = toDouble(line, key, value);
    if (v < 0.0 || v != static_cast<double>(static_cast<uint64_t>(v)))
        parseError(line.number, "expected a non-negative integer for ",
                   key + "=" + value);
    return static_cast<uint64_t>(v);
}

/** Parse "lo:hi" (or a single value) into a delay range. */
std::pair<uint8_t, uint8_t>
toDelayRange(const Line &line, const std::string &value)
{
    const size_t colon = value.find(':');
    const std::string lo_s =
        colon == std::string::npos ? value : value.substr(0, colon);
    const std::string hi_s =
        colon == std::string::npos ? value : value.substr(colon + 1);
    const uint64_t lo = toUint(line, "delay", lo_s);
    const uint64_t hi = toUint(line, "delay", hi_s);
    if (lo < 1 || hi > 255 || lo > hi)
        parseError(line.number, "delay range out of [1,255]: ",
                   value);
    return {static_cast<uint8_t>(lo), static_cast<uint8_t>(hi)};
}

/** Apply a normalized-parameter override by key name. */
void
applyOverride(const Line &line, NeuronParams &params,
              const std::string &key, const std::string &value)
{
    auto num = [&] { return toDouble(line, key, value); };
    if (key == "types") {
        params.numSynapseTypes =
            static_cast<size_t>(toUint(line, key, value));
    } else if (key == "eps_m") {
        params.epsM = num();
    } else if (key == "v_leak") {
        params.vLeak = num();
    } else if (key == "delta_t") {
        params.deltaT = num();
    } else if (key == "v_crit") {
        params.vCrit = num();
    } else if (key == "v_firing") {
        params.vFiring = num();
    } else if (key == "eps_w") {
        params.epsW = num();
    } else if (key == "a") {
        params.a = num();
    } else if (key == "v_w") {
        params.vW = num();
    } else if (key == "b") {
        params.b = num();
    } else if (key == "ar_steps") {
        params.arSteps =
            static_cast<uint32_t>(toUint(line, key, value));
    } else if (key == "eps_r") {
        params.epsR = num();
    } else if (key == "v_rr") {
        params.vRR = num();
    } else if (key == "v_ar") {
        params.vAR = num();
    } else if (key == "q_r") {
        params.qR = num();
    } else if (key.rfind("eps_g", 0) == 0 && key.size() == 6) {
        const size_t idx = static_cast<size_t>(key[5] - '0');
        if (idx >= maxSynapseTypes)
            parseError(line.number, "bad synapse type in ", key);
        params.syn[idx].epsG = num();
    } else if (key.rfind("v_g", 0) == 0 && key.size() == 4) {
        const size_t idx = static_cast<size_t>(key[3] - '0');
        if (idx >= maxSynapseTypes)
            parseError(line.number, "bad synapse type in ", key);
        params.syn[idx].vG = num();
    } else {
        parseError(line.number, "unknown parameter ", key);
    }
}

} // namespace

ParsedScript
parseScript(std::istream &is)
{
    // Pass 1: tokenize and find the seed (it must apply to wiring
    // even if declared last).
    std::vector<Line> lines;
    std::string raw;
    int number = 0;
    uint64_t seed = 1;
    while (std::getline(is, raw)) {
        ++number;
        const size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream tokens(raw);
        Line line{number, {}};
        std::string tok;
        while (tokens >> tok)
            line.tokens.push_back(tok);
        if (line.tokens.empty())
            continue;
        if (line.tokens[0] == "seed") {
            if (line.tokens.size() != 2)
                parseError(number, "usage: seed N", "");
            seed = toUint(line, "seed", line.tokens[1]);
            continue;
        }
        lines.push_back(std::move(line));
    }

    ParsedScript script;
    script.seed = seed;
    script.stimulus = StimulusGenerator(seed ^ 0x5712b1e5ULL);

    Network &net = script.network;
    Rng rng(seed);
    std::map<std::string, size_t> pops;

    auto find_pop = [&](const Line &line,
                        const std::string &name) -> size_t {
        auto it = pops.find(name);
        if (it == pops.end())
            parseError(line.number, "unknown population ", name);
        return it->second;
    };

    for (const Line &line : lines) {
        const std::string &directive = line.tokens[0];
        if (directive == "population") {
            if (line.tokens.size() < 2)
                parseError(line.number,
                           "usage: population NAME model=... count=...",
                           "");
            const std::string &name = line.tokens[1];
            if (pops.count(name))
                parseError(line.number, "duplicate population ", name);
            auto kv = keyValues(line, 2);
            if (!kv.count("model") || !kv.count("count"))
                parseError(line.number,
                           "population needs model= and count=", "");
            const ModelDescriptor *desc =
                ModelRegistry::instance().find(kv.at("model"));
            if (desc == nullptr)
                parseError(
                    line.number, "unknown model ",
                    kv.at("model") + "; registered models: " +
                        ModelRegistry::instance().namesSummary());
            NeuronParams params = desc->params;
            const size_t count = static_cast<size_t>(
                toUint(line, "count", kv.at("count")));
            kv.erase("model");
            kv.erase("count");
            for (const auto &[key, value] : kv)
                applyOverride(line, params, key, value);
            const std::string err = params.validate();
            if (!err.empty())
                parseError(line.number, "invalid parameters: ", err);
            pops[name] = net.addPopulation(name, params, count);
        } else if (directive == "connect" || directive == "fanout") {
            if (line.tokens.size() < 3)
                parseError(line.number,
                           "usage: connect SRC DST key=value...", "");
            const size_t src = find_pop(line, line.tokens[1]);
            const size_t dst = find_pop(line, line.tokens[2]);
            auto kv = keyValues(line, 3);
            if (!kv.count("weight"))
                parseError(line.number, "missing weight=", "");
            const double weight =
                toDouble(line, "weight", kv.at("weight"));
            auto [dlo, dhi] = kv.count("delay")
                                  ? toDelayRange(line, kv.at("delay"))
                                  : std::pair<uint8_t, uint8_t>{1, 1};
            const uint8_t type =
                kv.count("type")
                    ? static_cast<uint8_t>(
                          toUint(line, "type", kv.at("type")))
                    : 0;
            if (type >= maxSynapseTypes)
                parseError(line.number, "type out of range: ",
                           kv.at("type"));
            if (directive == "connect") {
                if (!kv.count("p"))
                    parseError(line.number, "connect needs p=", "");
                const double p = toDouble(line, "p", kv.at("p"));
                if (p < 0.0 || p > 1.0)
                    parseError(line.number,
                               "probability out of [0,1]: ",
                               kv.at("p"));
                net.connectRandom(src, dst, p, weight, dlo, dhi, type,
                                  rng);
            } else {
                if (!kv.count("k"))
                    parseError(line.number, "fanout needs k=", "");
                net.connectFixedFanout(
                    src, dst,
                    static_cast<size_t>(toUint(line, "k", kv.at("k"))),
                    weight, dlo, dhi, type, rng);
            }
        } else if (directive == "stimulus") {
            if (line.tokens.size() < 3)
                parseError(line.number,
                           "usage: stimulus poisson|pattern POP ...",
                           "");
            const std::string &kind = line.tokens[1];
            const size_t pop_idx = find_pop(line, line.tokens[2]);
            // Population base/count are known only after all
            // populations are declared; script order guarantees the
            // population exists already.
            const Population &pop = net.population(pop_idx);
            auto kv = keyValues(line, 3);
            if (!kv.count("weight"))
                parseError(line.number, "missing weight=", "");
            const float weight = static_cast<float>(
                toDouble(line, "weight", kv.at("weight")));
            const uint8_t type =
                kv.count("type")
                    ? static_cast<uint8_t>(
                          toUint(line, "type", kv.at("type")))
                    : 0;
            if (kind == "poisson") {
                if (!kv.count("rate"))
                    parseError(line.number, "poisson needs rate=", "");
                script.stimulus.addSource(StimulusSource::poisson(
                    static_cast<uint32_t>(pop.base),
                    static_cast<uint32_t>(pop.count),
                    toDouble(line, "rate", kv.at("rate")), weight,
                    type));
            } else if (kind == "pattern") {
                if (!kv.count("period"))
                    parseError(line.number, "pattern needs period=",
                               "");
                script.stimulus.addSource(StimulusSource::pattern(
                    static_cast<uint32_t>(pop.base),
                    static_cast<uint32_t>(pop.count),
                    static_cast<uint32_t>(
                        toUint(line, "period", kv.at("period"))),
                    weight, type));
            } else if (kind == "ou") {
                if (!kv.count("sigma") || !kv.count("tau"))
                    parseError(line.number,
                               "ou needs sigma= and tau=", "");
                // `weight` doubles as the OU mean.
                script.stimulus.addSource(StimulusSource::ou(
                    static_cast<uint32_t>(pop.base),
                    static_cast<uint32_t>(pop.count), weight,
                    toDouble(line, "sigma", kv.at("sigma")),
                    toDouble(line, "tau", kv.at("tau")), type));
            } else {
                parseError(line.number, "unknown stimulus kind ",
                           kind);
            }
        } else {
            parseError(line.number, "unknown directive ", directive);
        }
    }

    if (net.numPopulations() == 0)
        fatal("script declares no populations");
    net.finalize();
    return script;
}

ParsedScript
parseScriptString(const std::string &text)
{
    std::istringstream is(text);
    return parseScript(is);
}

ParsedScript
parseScriptFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open script '%s'", path.c_str());
    return parseScript(is);
}

} // namespace flexon
