/**
 * @file
 * A PyNN-style textual network description language (Section VII-B:
 * front-ends describe an SNN; device back-ends compile and run it).
 *
 * Line-oriented format; '#' starts a comment. Directives:
 *
 *   population NAME model=MODEL count=N [param=value ...]
 *   connect    SRC DST p=PROB weight=W delay=LO:HI type=T
 *   fanout     SRC DST k=K weight=W delay=LO:HI type=T
 *   stimulus   poisson POP rate=R weight=W [type=T]
 *   stimulus   pattern POP period=P weight=W [type=T]
 *   stimulus   ou      POP weight=MEAN sigma=S tau=T [type=T]
 *   seed       N
 *
 * `model` names a Table III model (see modelFromName); additional
 * key=value pairs override normalized NeuronParams fields:
 * types, eps_m, v_leak, eps_g0..3, v_g0..3, delta_t, v_crit,
 * v_firing, eps_w, a, v_w, b, ar_steps, eps_r, v_rr, v_ar, q_r.
 *
 * Parse errors report the line number and abort via fatal().
 */

#ifndef FLEXON_FRONTEND_SCRIPT_HH
#define FLEXON_FRONTEND_SCRIPT_HH

#include <istream>
#include <string>

#include "snn/network.hh"
#include "snn/stimulus.hh"

namespace flexon {

/** The result of parsing a network script. */
struct ParsedScript
{
    Network network;        ///< finalized
    StimulusGenerator stimulus;
    uint64_t seed = 1;      ///< wiring/stimulus seed (directive)
};

/**
 * Parse a script. The wiring RNG is seeded from the script's `seed`
 * directive (default 1) so identical scripts yield identical
 * networks.
 */
ParsedScript parseScript(std::istream &is);

/** Parse from a string (tests, inline examples). */
ParsedScript parseScriptString(const std::string &text);

/** Parse from a file; fatal() on I/O errors. */
ParsedScript parseScriptFile(const std::string &path);

} // namespace flexon

#endif // FLEXON_FRONTEND_SCRIPT_HH
