/**
 * @file
 * flexon_compare — the Brian-style cross-validation workflow as a
 * command-line tool (Section VI-A: "the functional correctness ...
 * is thoroughly verified ... by comparing the output spikes").
 *
 * Runs the same network (a Table I benchmark or a .fxs script) on
 * two backends with identical stimulus and reports divergence
 * metrics: spike totals, per-neuron rate deltas, and the
 * coincidence of the spike trains at a configurable tolerance.
 *
 * Usage:
 *   flexon_compare --benchmark NAME [--scale S] [--steps N]
 *                  [--seed N] [--a reference|flexon|folded]
 *                  [--b reference|flexon|folded] [--tolerance T]
 *   flexon_compare --script FILE ...
 */

#include <cstdio>
#include <string>

#include "analysis/spike_train.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "frontend/script.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

using namespace flexon;

namespace {

struct Args
{
    std::string benchmark;
    std::string script;
    double scale = 10.0;
    uint64_t steps = 2000;
    uint64_t seed = 1;
    uint64_t tolerance = 20; // 2 ms at the 0.1 ms step
    BackendKind a = BackendKind::Reference;
    BackendKind b = BackendKind::Folded;
};

BackendKind
parseBackend(const std::string &value)
{
    if (value == "reference")
        return BackendKind::Reference;
    if (value == "flexon")
        return BackendKind::Flexon;
    if (value == "folded")
        return BackendKind::Folded;
    fatal("unknown backend '%s'", value.c_str());
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: flexon_compare --benchmark NAME | "
                 "--script FILE\n"
                 "  [--scale S] [--steps N] [--seed N]\n"
                 "  [--a BACKEND] [--b BACKEND] [--tolerance T]\n");
    std::exit(2);
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--benchmark")
            args.benchmark = value(i);
        else if (flag == "--script")
            args.script = value(i);
        else if (flag == "--scale")
            args.scale = std::stod(value(i));
        else if (flag == "--steps")
            args.steps = std::stoull(value(i));
        else if (flag == "--seed")
            args.seed = std::stoull(value(i));
        else if (flag == "--tolerance")
            args.tolerance = std::stoull(value(i));
        else if (flag == "--a")
            args.a = parseBackend(value(i));
        else if (flag == "--b")
            args.b = parseBackend(value(i));
        else
            usage();
    }
    if (args.benchmark.empty() == args.script.empty())
        usage();
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);

    auto load = [&]() {
        if (!args.benchmark.empty()) {
            BenchmarkInstance inst = buildBenchmark(
                findBenchmark(args.benchmark), args.scale,
                args.seed);
            return std::make_pair(std::move(inst.network),
                                  std::move(inst.stimulus));
        }
        ParsedScript parsed = parseScriptFile(args.script);
        return std::make_pair(std::move(parsed.network),
                              std::move(parsed.stimulus));
    };

    auto run = [&](BackendKind kind) {
        auto [net, stim] = load();
        SimulatorOptions opts;
        opts.backend = kind;
        opts.recordSpikes = true;
        Simulator sim(net, std::move(stim), opts);
        sim.run(args.steps);
        struct Result
        {
            std::vector<SpikeEvent> events;
            std::vector<uint64_t> counts;
            size_t neurons;
        };
        return Result{sim.spikeEvents(), sim.spikeCounts(),
                      net.numNeurons()};
    };

    const auto ra = run(args.a);
    const auto rb = run(args.b);

    std::printf("backend A = %s: %zu spikes\n", backendName(args.a),
                ra.events.size());
    std::printf("backend B = %s: %zu spikes\n", backendName(args.b),
                rb.events.size());

    Summary rate_delta;
    size_t exact = 0;
    for (size_t n = 0; n < ra.neurons; ++n) {
        rate_delta.add(std::abs(
            static_cast<double>(ra.counts[n]) -
            static_cast<double>(rb.counts[n])));
        exact += ra.counts[n] == rb.counts[n];
    }
    const double coincidence_score =
        compareRuns(ra.events, rb.events, ra.neurons,
                    args.tolerance);

    std::printf("per-neuron spike-count delta: mean %.3f, max %.0f "
                "(%zu/%zu neurons exact)\n",
                rate_delta.mean(), rate_delta.max(), exact,
                ra.neurons);
    std::printf("train coincidence @ %llu steps: %.4f\n",
                static_cast<unsigned long long>(args.tolerance),
                coincidence_score);

    const bool hardware_pair = args.a != BackendKind::Reference &&
                               args.b != BackendKind::Reference;
    if (hardware_pair && coincidence_score < 1.0) {
        std::printf("FAIL: the two hardware models must be "
                    "bit-exact\n");
        return 1;
    }
    std::printf("%s\n", coincidence_score > 0.5
                            ? "OK: backends agree"
                            : "WARN: low coincidence — inspect "
                              "parameters or tolerance");
    return 0;
}
