/**
 * @file
 * calibrate — measure this machine's per-operation simulation costs
 * and emit a versioned calibration.json for the execution planner.
 *
 * The harness sweeps parametrized microbenches over population size
 * x stimulus rate x thread count (plus an informational feature-mask
 * and connectivity-provider dimension), reads the per-phase costs
 * off the sessions' existing telemetry timers (PhaseStats), and fits
 * the plan::CostModel coefficients by least squares over the sweep
 * grid:
 *
 *   denseNsPerNeuron     Theil-Sen slope of neuron-phase ns/step
 *                        vs N (dense engine, T = 1)
 *   deliveryNsPerRecord  Theil-Sen slope of route ns/step vs
 *   ringClearNsPerCell     records/step; cleared cells track records
 *                        on every measured host, so only the sum is
 *                        identifiable — split at the builtin ratio
 *   stepOverheadNs       median per-point step cost left over after
 *                        the modelled neuron and delivery phases
 *   eventNsPerUnit       Theil-Sen slope of event-engine step ns vs
 *                        fired x (K + 1), delivery terms removed
 *                        (the engine's own overhead rides in the
 *                        line's intercept, not the slope)
 *   dispatchNsPerLane    per-lane step-cost increase on a population
 *                        too small to gain from threads
 *   parallelEfficiency   neuron-phase speedup of T = 2 on a large
 *                        population, eff(T) = 1 + (T - 1) p
 *
 * Theil-Sen (median of pairwise slopes) rather than OLS: the sweep
 * runs on whatever machine needs calibrating, including noisy shared
 * hosts where a single descheduled run would swing a least-squares
 * slope, and the median estimator shrugs that off.
 *
 * The document's version tag is content-derived (FNV-1a over the
 * fitted coefficients), so identical measurements produce identical
 * tags and run reports / bench records are comparable by version.
 *
 * Usage:
 *   calibrate [--out calibration.json] [--quick] [--seed N]
 *   calibrate --check FILE [--max-residual X]
 */

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "features/model_table.hh"
#include "nets/table1.hh"
#include "plan/calibration.hh"
#include "plan/planner.hh"
#include "snn/event_driven.hh"
#include "snn/simulator.hh"

using namespace flexon;

namespace {

/** One sweep-grid measurement (all values per step). */
struct GridPoint
{
    size_t neurons = 0;
    double meanFanOut = 0.0;
    double rate = 0.0;       ///< measured spikes/neuron/step
    double stepNs = 0.0;     ///< full step (stimulus+neuron+synapse)
    double neuronNs = 0.0;   ///< neuron phase
    double routeNs = 0.0;    ///< delivery engine (clear + route)
    double recordsPerStep = 0.0;
    double cellsPerStep = 0.0;
    double firedPerStep = 0.0;
};

struct SweepConfig
{
    std::vector<size_t> sizes;
    std::vector<double> stimRates;
    uint64_t warmup = 0;
    uint64_t steps = 0;
    uint64_t seed = 1;
};

/** The recurrent LLIF microbench population (5% connectivity). */
struct Microbench
{
    Network net;
    StimulusGenerator stim{1};
};

Microbench
makeMicrobench(size_t neurons, double stimRate, uint64_t seed,
               ModelKind model = ModelKind::LLIF)
{
    Microbench m;
    NeuronParams p = defaultParams(model);
    const size_t pop = m.net.addPopulation("cal", p, neurons);
    Rng rng(seed);
    m.net.connectRandom(pop, pop, 0.05, 0.4, 1, 6, 0, rng);
    m.net.finalize();
    m.stim = StimulusGenerator(seed ^ 0xabcdULL);
    m.stim.addSource(StimulusSource::poisson(
        0, static_cast<uint32_t>(neurons), stimRate, 0.8f, 0));
    return m;
}

GridPoint
measureDense(size_t neurons, double stimRate, size_t threads,
             const SweepConfig &cfg)
{
    Microbench m = makeMicrobench(neurons, stimRate, cfg.seed);
    SimulatorOptions opts;
    opts.threads = threads;
    Simulator sim(m.net, m.stim, opts);
    // The onset transient rides along in the measurement; the fits
    // only need per-step averages consistent across the grid.
    sim.run(cfg.warmup + cfg.steps);
    const PhaseStats &st = sim.stats();
    const double steps = static_cast<double>(st.steps);

    GridPoint g;
    g.neurons = neurons;
    g.meanFanOut =
        static_cast<double>(m.net.numSynapses()) /
        static_cast<double>(m.net.numNeurons());
    g.rate = static_cast<double>(st.spikes) / steps /
             static_cast<double>(neurons);
    g.stepNs = st.totalSec() / steps * 1e9;
    g.neuronNs = st.neuronSec / steps * 1e9;
    g.routeNs = st.synapseRouteSec / steps * 1e9;
    g.recordsPerStep =
        static_cast<double>(st.synapseEvents) / steps;
    g.cellsPerStep =
        static_cast<double>(st.ringCellsCleared) / steps;
    g.firedPerStep = static_cast<double>(st.spikes) / steps;
    return g;
}

GridPoint
measureEvent(size_t neurons, double stimRate,
             const SweepConfig &cfg)
{
    Microbench m = makeMicrobench(neurons, stimRate, cfg.seed);
    EventDrivenSimulator sim(m.net, m.stim, SessionOptions{});
    sim.run(cfg.warmup + cfg.steps);
    // EventDrivenSimulator::stats() is the event-specific view; the
    // phase breakdown lives on the session base.
    const PhaseStats &st =
        static_cast<const SimulationSession &>(sim).stats();
    const double steps = static_cast<double>(st.steps);

    GridPoint g;
    g.neurons = neurons;
    g.meanFanOut =
        static_cast<double>(m.net.numSynapses()) /
        static_cast<double>(m.net.numNeurons());
    g.rate = static_cast<double>(st.spikes) / steps /
             static_cast<double>(neurons);
    g.stepNs = st.totalSec() / steps * 1e9;
    g.firedPerStep = static_cast<double>(st.spikes) / steps;
    return g;
}

/** Median of a scratch vector (sorts it in place). */
double
medianOf(std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Theil-Sen slope: the median of all pairwise slopes. Robust to the
 * outlier points a noisy shared host produces, and intercept-free by
 * construction (any fixed per-step cost cancels in the differences).
 */
double
theilSenSlope(const std::vector<double> &x,
              const std::vector<double> &y)
{
    std::vector<double> slopes;
    for (size_t i = 0; i < x.size(); ++i)
        for (size_t j = i + 1; j < x.size(); ++j)
            if (x[j] != x[i])
                slopes.push_back((y[j] - y[i]) / (x[j] - x[i]));
    return medianOf(slopes);
}

/** FNV-1a over the fitted coefficients: the content version tag. */
std::string
contentVersion(const plan::CostModel &m, uint64_t gridPoints)
{
    const double values[] = {
        m.denseNsPerNeuron,   m.eventNsPerUnit,
        m.deliveryNsPerRecord, m.ringClearNsPerCell,
        m.stepOverheadNs,      m.dispatchNsPerLane,
        m.parallelEfficiency,  static_cast<double>(gridPoints),
    };
    uint64_t h = 1469598103934665603ull;
    for (const double v : values) {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (bits >> (8 * byte)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "cal-%016" PRIx64, h);
    return buf;
}

plan::CalibrationData
runSweep(const SweepConfig &cfg)
{
    plan::CalibrationData cal;
    plan::CostModel &model = cal.model;
    std::vector<GridPoint> dense1; // T = 1 grid (the fit basis)

    inform("sweeping dense engine: %zu sizes x %zu rates",
           cfg.sizes.size(), cfg.stimRates.size());
    for (const size_t n : cfg.sizes)
        for (const double r : cfg.stimRates)
            dense1.push_back(measureDense(n, r, 1, cfg));

    // denseNsPerNeuron: the neuron phase of the dense engine is
    // rate-independent, so every T = 1 point constrains
    // neuron ns/step = const + N * denseNs.
    {
        std::vector<double> xs, yn;
        for (const GridPoint &g : dense1) {
            xs.push_back(static_cast<double>(g.neurons));
            yn.push_back(g.neuronNs);
        }
        model.denseNsPerNeuron =
            std::max(theilSenSlope(xs, yn), 0.01);
    }

    // deliveryNsPerRecord + ringClearNsPerCell: the planner charges
    // both per delivery record (cleared cells track written records
    // on every measured host), so fit the combined route ns/record
    // slope and split it at the builtin delivery:clear ratio — only
    // the sum is identifiable from the sweep.
    double combinedRouteNs = 0.0;
    {
        std::vector<double> x, y;
        for (const GridPoint &g : dense1) {
            x.push_back(g.recordsPerStep);
            y.push_back(g.routeNs);
        }
        combinedRouteNs = std::max(theilSenSlope(x, y), 0.0125);
        const double split =
            1.0 + plan::CostModel{}.ringClearNsPerCell /
                      plan::CostModel{}.deliveryNsPerRecord;
        model.deliveryNsPerRecord = combinedRouteNs / split;
        model.ringClearNsPerCell =
            combinedRouteNs - model.deliveryNsPerRecord;
    }

    // stepOverheadNs: the per-point step cost the fitted phases do
    // not explain, taken as a median. A median leftover is robust
    // against the occasional descheduled run on a shared host, where
    // an OLS intercept extrapolated from a handful of sizes is not.
    {
        std::vector<double> ys;
        for (const GridPoint &g : dense1)
            ys.push_back(
                g.stepNs -
                static_cast<double>(g.neurons) *
                    model.denseNsPerNeuron -
                g.recordsPerStep * combinedRouteNs);
        model.stepOverheadNs = std::max(medianOf(ys), 1.0);
    }

    // eventNsPerUnit: event-engine step cost minus the common
    // delivery terms, per touched fan-out unit. Theil-Sen ignores
    // the intercept, so the event engine's own per-step overhead
    // cannot corrupt the slope (subtracting the dense overhead here
    // would do exactly that).
    inform("sweeping event-driven engine");
    {
        std::vector<double> x, y;
        for (const size_t n : cfg.sizes)
            for (const double r : cfg.stimRates) {
                const GridPoint g = measureEvent(n, r, cfg);
                const double k = g.meanFanOut;
                x.push_back(g.firedPerStep * (k + 1.0));
                y.push_back(g.stepNs -
                            g.firedPerStep * k * combinedRouteNs);
                cal.gridPoints++;
            }
        model.eventNsPerUnit =
            std::max(theilSenSlope(x, y), 0.01);
    }

    // dispatchNsPerLane: on a population too small for threads to
    // help, the entire T = 2 step-cost increase is pool dispatch.
    // parallelEfficiency: on the largest population the T = 2
    // neuron-phase speedup pins eff(2) = 1 + p.
    inform("sweeping thread dimension");
    {
        const double midRate = cfg.stimRates[cfg.stimRates.size() / 2];
        const GridPoint tiny1 =
            measureDense(cfg.sizes.front(), midRate, 1, cfg);
        const GridPoint tiny2 =
            measureDense(cfg.sizes.front(), midRate, 2, cfg);
        model.dispatchNsPerLane = std::clamp(
            (tiny2.stepNs - tiny1.stepNs) / 2.0, 1.0, 1e6);

        const GridPoint big1 =
            measureDense(cfg.sizes.back(), midRate, 1, cfg);
        const GridPoint big2 =
            measureDense(cfg.sizes.back(), midRate, 2, cfg);
        const double eff2 =
            big2.neuronNs > 0.0 ? big1.neuronNs / big2.neuronNs
                                : 1.0;
        model.parallelEfficiency =
            std::clamp(eff2 - 1.0, 0.05, 1.0);
        cal.gridPoints += 4;
    }

    // Informational: ns/neuron-update per feature-mask (model) at a
    // fixed size, and ns/delivery-record per connectivity provider.
    inform("sweeping feature masks and providers");
    {
        const ModelKind masks[] = {ModelKind::LLIF, ModelKind::LIF,
                                   ModelKind::Izhikevich,
                                   ModelKind::AdEx};
        const size_t n = cfg.sizes[cfg.sizes.size() / 2];
        for (const ModelKind kind : masks) {
            Microbench m =
                makeMicrobench(n, cfg.stimRates[0], cfg.seed, kind);
            Simulator sim(m.net, m.stim, SimulatorOptions{});
            sim.run(cfg.steps);
            const PhaseStats &st = sim.stats();
            cal.maskNsPerNeuron.emplace_back(
                modelName(kind),
                st.neuronSec /
                    static_cast<double>(st.steps) / n * 1e9);
            cal.gridPoints++;
        }

        const ConnectivityKind providers[] = {
            ConnectivityKind::Materialized,
            ConnectivityKind::Compressed,
            ConnectivityKind::Procedural};
        for (const ConnectivityKind kind : providers) {
            BenchmarkInstance inst = buildBenchmarkSpec(
                findBenchmark("Vogels-Abbott"), 1.0 / 40.0,
                cfg.seed,
                kind != ConnectivityKind::Materialized);
            SimulatorOptions opts;
            opts.connectivity = kind;
            Simulator sim(inst.network, inst.stimulus, opts);
            sim.run(cfg.steps);
            const PhaseStats &st = sim.stats();
            const double records =
                static_cast<double>(st.synapseEvents);
            cal.providerDeliveryNs.emplace_back(
                connectivityKindName(kind),
                records > 0.0
                    ? st.synapseRouteSec / records * 1e9
                    : 0.0);
            cal.gridPoints++;
        }
    }

    cal.gridPoints += dense1.size();

    // Residual: worst relative error of the fitted model's full-step
    // prediction over the dense T = 1 grid it was fitted on.
    {
        cal.version = "fit"; // placeholder; planner ignores it here
        const plan::ExecutionPlanner planner(cal);
        double worst = 0.0;
        for (const GridPoint &g : dense1) {
            const plan::NetworkStats net{
                g.neurons,
                static_cast<uint64_t>(
                    g.meanFanOut *
                    static_cast<double>(g.neurons))};
            const double predicted =
                planner.predictDenseStepSec(net, g.rate, 1) * 1e9;
            if (g.stepNs > 0.0)
                worst = std::max(
                    worst,
                    std::abs(predicted - g.stepNs) / g.stepNs);
        }
        cal.maxResidual = worst;
    }

    cal.version = contentVersion(model, cal.gridPoints);
    std::ostringstream host;
    host << "cores=" << std::thread::hardware_concurrency();
    cal.host = host.str();
    return cal;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: calibrate [--out FILE] [--quick] [--seed N]\n"
        "       calibrate --check FILE [--max-residual X]\n"
        "  --out FILE        write calibration JSON "
        "(default calibration.json)\n"
        "  --quick           short sweep grid (CI smoke; noisier "
        "fit)\n"
        "  --seed N          microbench construction seed\n"
        "  --check FILE      validate an existing calibration "
        "(schema,\n"
        "                    coefficient sanity, fit residual "
        "bound)\n"
        "  --max-residual X  worst relative fit residual accepted "
        "by\n"
        "                    --check (default 2.0)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "calibration.json";
    std::string check;
    bool quick = false;
    uint64_t seed = 1;
    double maxResidual = 2.0;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (flag == "--out")
            out = value();
        else if (flag == "--check")
            check = value();
        else if (flag == "--quick")
            quick = true;
        else if (flag == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (flag == "--max-residual")
            maxResidual = std::strtod(value(), nullptr);
        else
            usage();
    }

    if (!check.empty()) {
        plan::CalibrationData cal;
        std::string err;
        if (!plan::loadCalibrationFile(check, cal, &err)) {
            std::fprintf(stderr, "calibrate: %s\n", err.c_str());
            return 1;
        }
        if (!plan::validateCalibration(cal, maxResidual, &err)) {
            std::fprintf(stderr, "calibrate: %s: %s\n",
                         check.c_str(), err.c_str());
            return 1;
        }
        std::printf("%s: version %s OK (residual %.3f <= %.3f, "
                    "%" PRIu64 " grid points)\n",
                    check.c_str(), cal.version.c_str(),
                    cal.maxResidual, maxResidual, cal.gridPoints);
        return 0;
    }

    SweepConfig cfg;
    cfg.seed = seed;
    if (quick) {
        cfg.sizes = {256, 1024, 2048};
        cfg.stimRates = {0.005, 0.02, 0.08};
        cfg.warmup = 30;
        cfg.steps = 150;
    } else {
        cfg.sizes = {512, 1024, 2048, 4096, 8192};
        cfg.stimRates = {0.002, 0.01, 0.04, 0.1};
        cfg.warmup = 100;
        cfg.steps = 600;
    }

    const plan::CalibrationData cal = runSweep(cfg);
    std::string err;
    if (!plan::validateCalibration(cal, 1e9, &err))
        fatal("fit produced an invalid calibration: %s",
              err.c_str());
    if (!plan::saveCalibrationFile(out, cal))
        fatal("cannot write %s", out.c_str());

    const plan::CostModel &m = cal.model;
    std::printf("wrote %s (version %s, %" PRIu64 " grid points)\n",
                out.c_str(), cal.version.c_str(), cal.gridPoints);
    std::printf("  dense      %8.3f ns/neuron\n",
                m.denseNsPerNeuron);
    std::printf("  event      %8.3f ns/unit\n", m.eventNsPerUnit);
    std::printf("  delivery   %8.3f ns/record\n",
                m.deliveryNsPerRecord);
    std::printf("  ring clear %8.3f ns/cell\n",
                m.ringClearNsPerCell);
    std::printf("  step       %8.1f ns overhead\n",
                m.stepOverheadNs);
    std::printf("  dispatch   %8.1f ns/lane\n",
                m.dispatchNsPerLane);
    std::printf("  parallel   %8.3f efficiency\n",
                m.parallelEfficiency);
    std::printf("  residual   %8.3f worst relative\n",
                cal.maxResidual);
    return 0;
}
