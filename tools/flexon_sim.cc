/**
 * @file
 * flexon_sim — command-line driver for the simulator.
 *
 * Run a Table I benchmark (or a saved network file) on any backend,
 * print activity statistics, and optionally dump a raster, a rate
 * sparkline, a spikes CSV, or the network itself.
 *
 * Usage:
 *   flexon_sim --benchmark Vogels-Abbott [--scale 10] [--steps 1000]
 *              [--backend reference|flexon|folded] [--seed 1]
 *              [--solver euler|rkf45] [--threads N]
 *              [--calibration calibration.json] [--plan auto|fixed]
 *              [--raster] [--csv spikes.csv] [--save net.fxn]
 *              [--telemetry] [--report run.json] [--trace trace.json]
 *   flexon_sim --load net.fxn [--steps 1000] ...
 *   flexon_sim --list
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <optional>
#include <string>
#include <thread>

#include "analysis/raster.hh"
#include "analysis/spike_train.hh"
#include "common/health.hh"
#include "common/logging.hh"
#include "frontend/script.hh"
#include "nets/model_demo.hh"
#include "nets/potjans_diesmann.hh"
#include "nets/table1.hh"
#include "plan/calibration.hh"
#include "plan/planner.hh"
#include "registry/model_file.hh"
#include "registry/registry.hh"
#include "snn/auto_engine.hh"
#include "snn/event_driven.hh"
#include "snn/plasticity.hh"
#include "snn/serialize.hh"
#include "snn/simulator.hh"

using namespace flexon;

namespace {

struct Args
{
    std::string benchmark;
    std::string model;
    std::string modelFile;
    std::string script;
    std::string load;
    std::string save;
    std::string csv;
    double scale = 10.0;
    double rateScale = 1.0;
    EngineKind engine = EngineKind::Dense;
    ConnectivityKind connectivity = ConnectivityKind::Materialized;
    /** True once --connectivity was given; any explicit kind (even
     *  materialized) routes benchmarks through the spec builders so
     *  all three providers describe identical wiring. */
    bool connectivitySet = false;
    uint64_t steps = 1000;
    uint64_t seed = 1;
    size_t threads = 1;
    /** True once --engine / --threads were given explicitly (the
     *  planner only fills in what the user left unspecified). */
    bool engineSet = false;
    bool threadsSet = false;
    /** Calibration JSON installed process-wide before planning. */
    std::string calibration;
    /** --plan=auto: let the planner pick engine and threads. */
    bool planAuto = false;
    BackendKind backend = BackendKind::Reference;
    IntegrationMode mode = IntegrationMode::Discrete;
    SolverKind solver = SolverKind::Euler;
    bool raster = false;
    bool legacyDelivery = false;
    bool stats = false;
    bool list = false;
    bool listModels = false;
    bool telemetry = false;
    std::string report;
    std::string trace;
    uint64_t checkpointEvery = 0;
    std::string checkpointDir = ".";
    std::string restore;
    health::HealthOptions health;
    std::string metricsOut;
    uint64_t metricsEvery = 256;
    double watchdogTimeout = 0.0;
    std::string crashDump;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: flexon_sim --benchmark NAME | --model NAME |\n"
        "                  --script FILE | --load FILE |\n"
        "                  --list | --list-models\n"
        "  [--model-file FILE]  register extra neuron models from a\n"
        "                    flexon-models-v1 file "
        "(registry/model_file.hh)\n"
        "  [--scale S] [--steps N] [--seed N] [--threads N]\n"
        "  [--backend reference|flexon|folded]\n"
        "  [--engine dense|event|auto]  delivery engine "
        "(auto = rate-adaptive)\n"
        "  [--connectivity materialized|compressed|procedural]\n"
        "                    synapse-table representation; any\n"
        "                    explicit choice builds benchmarks from\n"
        "                    their generative spec\n"
        "  [--legacy-delivery]  disable the sparse-activity "
        "delivery fast path\n"
        "  [--calibration FILE]  install a measured calibration.json "
        "(tools/calibrate)\n"
        "  [--plan auto|fixed]  auto = the execution planner picks\n"
        "                    engine and thread count from the "
        "calibrated cost model\n"
        "  [--rate-scale R]  external-drive multiplier "
        "(microcircuit)\n"
        "  [--solver euler|rkf45]  (reference backend only)\n"
        "  [--raster] [--stats] [--csv FILE] [--save FILE]\n"
        "  [--telemetry]     enable deep counters + flight recorder\n"
        "  [--report FILE]   write a run-report JSON document\n"
        "  [--trace FILE]    write a Chrome trace.json "
        "(implies --telemetry)\n"
        "  [--health SPEC]   invariant detectors: off|warn|report|"
        "abort,\n"
        "                    or nan|sat|rate|ring:POLICY pairs plus\n"
        "                    sample=N / warmup=N "
        "(default report,sample=64)\n"
        "  [--metrics-out FILE]  live Prometheus snapshot (plus "
        "FILE.jsonl)\n"
        "  [--metrics-every N]   steps between metric snapshots "
        "(default 256)\n"
        "  [--watchdog-timeout SEC]  abort (exit 4) with a crash "
        "dump when\n"
        "                    a step stalls longer than SEC seconds\n"
        "  [--crash-dump FILE]  crash-dump path "
        "(default flexon-crash-dump.json)\n"
        "  [--checkpoint-every N]  snapshot every N steps\n"
        "  [--checkpoint-dir DIR]  where snapshots go "
        "(default .)\n"
        "  [--restore FILE]  resume from a snapshot, then run "
        "--steps more\n");
    std::exit(2);
}

/**
 * Reject a flag value with a message naming the flag, the offending
 * text, and what would have been accepted; exits 2 like usage().
 * Enum and numeric flags must never fall back to a default or a
 * partial parse on a typo — a long run under the wrong engine or
 * backend looks plausible and wastes the whole simulation.
 */
[[noreturn]] void
badValue(const std::string &flag, const char *value,
         const char *expected)
{
    std::fprintf(stderr,
                 "flexon_sim: invalid value '%s' for %s "
                 "(expected %s)\n",
                 value, flag.c_str(), expected);
    std::exit(2);
}

/** Strict base-10 unsigned parse: the whole token, no sign. */
uint64_t
parseCount(const std::string &flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || text[0] == '-')
        badValue(flag, text, "a non-negative integer");
    return v;
}

/** Strict floating-point parse of the whole token. */
double
parseReal(const std::string &flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0')
        badValue(flag, text, "a number");
    return v;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--benchmark") {
            args.benchmark = need_value(i);
        } else if (flag == "--model") {
            args.model = need_value(i);
        } else if (flag == "--model-file") {
            args.modelFile = need_value(i);
        } else if (flag == "--script") {
            args.script = need_value(i);
        } else if (flag == "--load") {
            args.load = need_value(i);
        } else if (flag == "--save") {
            args.save = need_value(i);
        } else if (flag == "--csv") {
            args.csv = need_value(i);
        } else if (flag == "--scale") {
            const char *v = need_value(i);
            args.scale = parseReal(flag, v);
            if (!(args.scale > 0.0))
                badValue(flag, v, "a positive number");
        } else if (flag == "--rate-scale") {
            const char *v = need_value(i);
            args.rateScale = parseReal(flag, v);
            if (args.rateScale < 0.0)
                badValue(flag, v, "a non-negative number");
        } else if (flag == "--engine") {
            const char *v = need_value(i);
            if (!parseEngineKind(v, args.engine))
                badValue(flag, v, "dense, event, or auto");
            args.engineSet = true;
        } else if (flag == "--calibration") {
            args.calibration = need_value(i);
        } else if (flag == "--plan") {
            const char *v = need_value(i);
            if (std::strcmp(v, "auto") == 0)
                args.planAuto = true;
            else if (std::strcmp(v, "fixed") == 0)
                args.planAuto = false;
            else
                badValue(flag, v, "auto or fixed");
        } else if (flag == "--connectivity") {
            const char *v = need_value(i);
            if (!parseConnectivityKind(v, args.connectivity))
                badValue(flag, v,
                         "materialized, compressed, or procedural");
            args.connectivitySet = true;
        } else if (flag == "--steps") {
            args.steps = parseCount(flag, need_value(i));
        } else if (flag == "--seed") {
            args.seed = parseCount(flag, need_value(i));
        } else if (flag == "--threads") {
            args.threads = static_cast<size_t>(
                parseCount(flag, need_value(i)));
            args.threadsSet = true;
        } else if (flag == "--backend") {
            const char *v = need_value(i);
            if (std::strcmp(v, "reference") == 0)
                args.backend = BackendKind::Reference;
            else if (std::strcmp(v, "flexon") == 0)
                args.backend = BackendKind::Flexon;
            else if (std::strcmp(v, "folded") == 0)
                args.backend = BackendKind::Folded;
            else
                badValue(flag, v, "reference, flexon, or folded");
        } else if (flag == "--solver") {
            const char *v = need_value(i);
            args.mode = IntegrationMode::Continuous;
            if (std::strcmp(v, "euler") == 0)
                args.solver = SolverKind::Euler;
            else if (std::strcmp(v, "rkf45") == 0)
                args.solver = SolverKind::RKF45;
            else
                badValue(flag, v, "euler or rkf45");
        } else if (flag == "--telemetry") {
            args.telemetry = true;
        } else if (flag == "--report") {
            args.report = need_value(i);
        } else if (flag == "--trace") {
            args.trace = need_value(i);
        } else if (flag == "--health") {
            const char *v = need_value(i);
            std::string bad;
            if (!health::parseHealthSpec(v, args.health, &bad))
                badValue(flag, bad.c_str(),
                         "off|warn|report|abort, nan|sat|rate|ring:"
                         "POLICY pairs, sample=N, warmup=N");
        } else if (flag == "--metrics-out") {
            args.metricsOut = need_value(i);
        } else if (flag == "--metrics-every") {
            const char *v = need_value(i);
            args.metricsEvery = parseCount(flag, v);
            if (args.metricsEvery == 0)
                badValue(flag, v, "a positive integer");
        } else if (flag == "--watchdog-timeout") {
            const char *v = need_value(i);
            args.watchdogTimeout = parseReal(flag, v);
            if (!(args.watchdogTimeout > 0.0))
                badValue(flag, v, "a positive number of seconds");
        } else if (flag == "--crash-dump") {
            args.crashDump = need_value(i);
        } else if (flag == "--checkpoint-every") {
            args.checkpointEvery = parseCount(flag, need_value(i));
        } else if (flag == "--checkpoint-dir") {
            args.checkpointDir = need_value(i);
        } else if (flag == "--restore") {
            args.restore = need_value(i);
        } else if (flag == "--legacy-delivery") {
            args.legacyDelivery = true;
        } else if (flag == "--raster") {
            args.raster = true;
        } else if (flag == "--stats") {
            args.stats = true;
        } else if (flag == "--list") {
            args.list = true;
        } else if (flag == "--list-models") {
            args.listModels = true;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
            usage();
        }
    }
    return args;
}

/**
 * CI fault injection: FLEXON_HEALTH_INJECT=nan@STEP | rate@STEP |
 * stall@STEP corrupts the run at the given step (counted in steps
 * run by this invocation) so the health-smoke job can assert that
 * the right detector fires with the right exit code. A test hook,
 * not a user feature — hence an environment variable, not a flag.
 */
struct Injection
{
    enum class Kind { None, Nan, Rate, Stall };
    Kind kind = Kind::None;
    uint64_t step = 0;
};

Injection
parseInjection()
{
    Injection inj;
    const char *env = std::getenv("FLEXON_HEALTH_INJECT");
    if (env == nullptr || *env == '\0')
        return inj;
    const std::string text = env;
    const size_t at = text.find('@');
    const std::string kind = text.substr(0, at);
    if (at == std::string::npos)
        badValue("FLEXON_HEALTH_INJECT", env,
                 "nan@STEP, rate@STEP, or stall@STEP");
    if (kind == "nan")
        inj.kind = Injection::Kind::Nan;
    else if (kind == "rate")
        inj.kind = Injection::Kind::Rate;
    else if (kind == "stall")
        inj.kind = Injection::Kind::Stall;
    else
        badValue("FLEXON_HEALTH_INJECT", env,
                 "nan@STEP, rate@STEP, or stall@STEP");
    inj.step =
        parseCount("FLEXON_HEALTH_INJECT", text.c_str() + at + 1);
    return inj;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);

    // Install the measured calibration before anything consults the
    // planner (AutoSession, hwmodel, the plan block below).
    if (!args.calibration.empty()) {
        plan::CalibrationData cal;
        std::string err;
        if (!plan::loadCalibrationFile(args.calibration, cal, &err))
            fatal("--calibration: %s", err.c_str());
        plan::setActiveCalibration(cal);
        inform("installed calibration %s (version %s)",
               args.calibration.c_str(), cal.version.c_str());
    }

    // Register file-provided models before anything looks names up —
    // --list-models must show them and --model/--script must find
    // them. A malformed file is a usage error (exit 2), with the
    // parser's byte-offset diagnostic on stderr.
    if (!args.modelFile.empty()) {
        std::string err;
        const int added = loadModelFile(ModelRegistry::instance(),
                                        args.modelFile, &err);
        if (added < 0) {
            std::fprintf(stderr, "flexon_sim: --model-file: %s\n",
                         err.c_str());
            return 2;
        }
        inform("registered %d model(s) from %s", added,
               args.modelFile.c_str());
    }

    if (args.listModels) {
        std::printf("%-22s %-26s %3s %5s %7s  %-11s %-3s %s\n",
                    "model", "features", "syn", "uops", "latency",
                    "kernel", "ie", "description");
        for (const ModelDescriptor *d :
             ModelRegistry::instance().all()) {
            std::printf("%-22s %-26s %3u %5zu %7zu  %-11s %-3s %s\n",
                        d->name.c_str(),
                        d->features().toString().c_str(),
                        d->params.numSynapseTypes, d->microcodeOps,
                        d->microcodeLatency,
                        d->kernel.specialized ? "specialized"
                                              : "generic",
                        d->ie.enabled ? "yes" : "no",
                        d->doc.c_str());
        }
        std::printf("\nregistry fingerprint: %s\n",
                    ModelRegistry::instance().fingerprint().c_str());
        return 0;
    }

    // The watchdog arms the flight recorder too: a crash dump with an
    // empty trace buffer is useless for the post-mortem it exists
    // for. (Recording costs only the armed ring buffer.)
    if (args.telemetry || !args.trace.empty() ||
        args.watchdogTimeout > 0.0) {
        telemetry::TelemetryConfig cfg;
        cfg.detail = true;
        cfg.trace =
            !args.trace.empty() || args.watchdogTimeout > 0.0;
        telemetry::configure(cfg);
    }

    if (args.list) {
        std::printf("%-18s %8s %10s  %-22s %s\n", "benchmark",
                    "neurons", "synapses", "model", "solver");
        for (const BenchmarkSpec &spec : table1Benchmarks()) {
            std::printf("%-18s %8zu %10zu  %-22s %s\n",
                        spec.name.c_str(), spec.neurons,
                        spec.synapses, spec.model.c_str(),
                        solverName(spec.solver));
        }
        size_t mcNeurons = 0;
        for (const size_t n : microcircuitFullSizes())
            mcNeurons += n;
        std::printf("%-18s %8zu %10s  %-22s %s\n", "microcircuit",
                    mcNeurons, "~3e8", "LLIF (8 populations)",
                    "Euler");
        return 0;
    }
    const int sources = (!args.benchmark.empty()) +
                        (!args.model.empty()) +
                        (!args.script.empty()) + (!args.load.empty());
    if (sources != 1)
        usage(); // exactly one source required

    // Resolve --model early: an unknown name is a usage error and
    // should list what *is* registered (builtins plus --model-file).
    const ModelDescriptor *modelDesc = nullptr;
    if (!args.model.empty()) {
        modelDesc = ModelRegistry::instance().find(args.model);
        if (modelDesc == nullptr) {
            std::fprintf(stderr,
                         "flexon_sim: unknown model '%s'; registered "
                         "models: %s\n",
                         args.model.c_str(),
                         ModelRegistry::instance()
                             .namesSummary()
                             .c_str());
            return 2;
        }
    }

    // Compressed and procedural connectivity regenerate (or
    // re-encode) rows from the benchmark's generative spec, so they
    // only exist for spec-built networks.
    if (args.connectivity != ConnectivityKind::Materialized &&
        args.benchmark.empty()) {
        fatal("--connectivity=%s requires --benchmark: loaded or "
              "scripted networks carry no generative spec",
              connectivityKindName(args.connectivity));
    }
    const bool proceduralNet =
        args.connectivity != ConnectivityKind::Materialized;

    Network net;
    StimulusGenerator stim(args.seed);
    std::string title;
    if (args.benchmark == "microcircuit") {
        MicrocircuitOptions mc;
        mc.scale = args.scale;
        mc.seed = args.seed;
        mc.rateScale = args.rateScale;
        MicrocircuitInstance inst =
            args.connectivitySet
                ? buildMicrocircuitSpec(mc, proceduralNet)
                : buildMicrocircuit(mc);
        net = std::move(inst.network);
        stim = std::move(inst.stimulus);
        title = "microcircuit";
    } else if (!args.benchmark.empty()) {
        // --scale is a shrink divisor; the spec builder takes a
        // growth factor, so the same flag value means the same size
        // either way.
        BenchmarkInstance inst =
            args.connectivitySet
                ? buildBenchmarkSpec(findBenchmark(args.benchmark),
                                     1.0 / args.scale, args.seed,
                                     proceduralNet)
                : buildBenchmark(findBenchmark(args.benchmark),
                                 args.scale, args.seed);
        net = std::move(inst.network);
        stim = std::move(inst.stimulus);
        title = args.benchmark;
    } else if (modelDesc != nullptr) {
        // --scale keeps its shrink-divisor meaning: the demo net is
        // 10000 neurons at scale 1, i.e. 1000 at the default 10.
        const size_t demoNeurons = std::max<size_t>(
            10, static_cast<size_t>(
                    std::llround(10000.0 / args.scale)));
        BenchmarkInstance inst =
            buildModelDemo(*modelDesc, demoNeurons, args.seed);
        net = std::move(inst.network);
        stim = std::move(inst.stimulus);
        title = inst.spec.name;
    } else if (!args.script.empty()) {
        ParsedScript parsed = parseScriptFile(args.script);
        net = std::move(parsed.network);
        stim = std::move(parsed.stimulus);
        title = args.script;
    } else {
        net = loadNetworkFile(args.load);
        title = args.load;
        // Generic background drive for loaded networks.
        stim.addSource(StimulusSource::poisson(
            0, static_cast<uint32_t>(net.numNeurons()), 0.01, 2.0f,
            0));
    }

    if (!args.save.empty()) {
        saveNetworkFile(args.save, net);
        inform("saved network to %s", args.save.c_str());
    }

    // --plan=auto: predict per-strategy step cost from the active
    // calibration and fill in whatever the user left unspecified
    // (engine, thread count). Deterministic — depends only on the
    // calibration and the network's neuron/synapse counts.
    std::optional<plan::EnginePlan> planned;
    if (args.planAuto) {
        const plan::ExecutionPlanner planner;
        const plan::NetworkStats netStats{net.numNeurons(),
                                          net.numSynapses()};
        const unsigned maxThreads =
            args.threadsSet
                ? static_cast<unsigned>(
                      std::max<size_t>(1, args.threads))
                : std::max(1u,
                           std::thread::hardware_concurrency());
        planned = planner.plan(netStats, plan::kDefaultRatePrior,
                               maxThreads);
        if (!args.threadsSet)
            args.threads = planned->threads;
        if (!args.engineSet) {
            // The event-driven strategies only exist for the
            // reference backend's discrete LLIF path over a
            // materialized table; elsewhere the dense engine is the
            // only executor, so the plan degrades to it.
            std::string why;
            const bool eventCapable =
                args.backend == BackendKind::Reference &&
                args.mode == IntegrationMode::Discrete &&
                args.connectivity == ConnectivityKind::Materialized &&
                eventDrivenEligible(net, &why);
            switch (planned->strategy) {
            case plan::Strategy::Dense:
                args.engine = EngineKind::Dense;
                break;
            case plan::Strategy::EventDriven:
                args.engine = eventCapable ? EngineKind::Event
                                           : EngineKind::Dense;
                break;
            case plan::Strategy::Adaptive:
                args.engine = eventCapable ? EngineKind::Auto
                                           : EngineKind::Dense;
                break;
            }
        }
    }

    // Intrinsic-excitability plasticity attaches a rule to one live
    // session's backend, so it needs the discrete reference backend
    // and a pinned dense engine (adaptive switches and event-driven
    // restores rebuild the session, dropping attached rules).
    const bool wantIe = modelDesc != nullptr && modelDesc->ie.enabled;
    if (wantIe) {
        if (args.backend != BackendKind::Reference ||
            args.mode != IntegrationMode::Discrete) {
            fatal("model '%s' carries intrinsic-excitability "
                  "plasticity, which needs the discrete reference "
                  "backend",
                  args.model.c_str());
        }
        if (args.engine != EngineKind::Dense) {
            if (args.engineSet)
                warn("--engine %s overridden: plasticity rules "
                     "require the pinned dense engine",
                     engineKindName(args.engine));
            args.engine = EngineKind::Dense;
        }
    }

    SimulatorOptions opts;
    opts.backend = args.backend;
    opts.mode = args.mode;
    opts.solver = args.solver;
    opts.threads = args.threads;
    opts.recordSpikes = args.raster || !args.csv.empty();
    opts.sparseDelivery = !args.legacyDelivery;
    opts.connectivity = args.connectivity;
    opts.health = args.health;
    opts.metricsOut = args.metricsOut;
    opts.metricsEvery = args.metricsEvery;
    opts.label = title;
    AutoEngineOptions autoOpts;
    autoOpts.engine = args.engine;
    AutoSession sim(net, stim, opts, autoOpts);
    sim.session().setCheckpointCadence(args.checkpointEvery);

    // Attach the IE rule before any restore: loadCheckpoint requires
    // the same rules (count, kinds, order) the snapshot was saved
    // with. The engine is pinned dense above, so the session — and
    // with it the attachment — survives restores.
    std::optional<IntrinsicExcitabilityRule> ieRule;
    if (wantIe) {
        auto *dense = dynamic_cast<Simulator *>(&sim.session());
        if (dense == nullptr)
            fatal("internal: dense engine expected for plasticity");
        ieRule.emplace(dense->backend(), net.numNeurons(),
                       modelDesc->ie);
        sim.session().attachPlasticityRule(&*ieRule);
        inform("intrinsic excitability: eta=%g target-rate=%g "
               "tau=%g offsets=[%g, %g]",
               modelDesc->ie.eta, modelDesc->ie.targetRate,
               modelDesc->ie.tau, modelDesc->ie.minOffset,
               modelDesc->ie.maxOffset);
    }
    if (planned) {
        // Upgrade the AutoSession's descriptive record: this run's
        // strategy was planner-chosen, and the prediction to audit
        // against is the planned one.
        PlanInfo info = sim.session().planInfo();
        info.present = true;
        info.planned = true;
        info.predictedStepSec = planned->predictedStepSec;
        info.calibrationVersion = planned->calibrationVersion;
        sim.session().setPlanInfo(info);
        std::printf("plan: strategy=%s threads=%zu "
                    "predicted-step=%.3f us (dense %.3f us, event "
                    "%.3f us) calibration=%s\n",
                    engineKindName(args.engine), args.threads,
                    planned->predictedStepSec * 1e6,
                    planned->predictedDenseStepSec * 1e6,
                    planned->predictedEventStepSec * 1e6,
                    planned->calibrationVersion.c_str());
    }
    if (!args.restore.empty()) {
        sim.loadCheckpointFile(args.restore, &net);
        inform("restored checkpoint %s at step %llu",
               args.restore.c_str(),
               static_cast<unsigned long long>(
                   sim.session().restoredStep()));
    }

    // Crash-dump plumbing: detector aborts and watchdog stalls dump
    // the session registry and the flight recorder. The registered
    // registry is cleared automatically if the engine is swapped
    // (the dying session's destructor unregisters itself).
    if (!args.crashDump.empty())
        health::setCrashDumpPath(args.crashDump);
    health::setCrashDumpRegistry(&sim.session().metrics());

    std::optional<health::Watchdog> watchdog;
    if (args.watchdogTimeout > 0.0) {
        health::installCrashHandlers();
        watchdog.emplace(args.watchdogTimeout);
    }

    const Injection inject = parseInjection();
    if (inject.kind != Injection::Kind::None &&
        args.checkpointEvery != 0) {
        fatal("FLEXON_HEALTH_INJECT cannot be combined with "
              "--checkpoint-every");
    }

    // Arm the watchdog around the run loop only: network
    // construction and report writing must not count against the
    // step budget.
    if (watchdog)
        watchdog->start();

    // --steps counts the steps run by *this* invocation; after a
    // restore the simulation continues from the snapshot's step.
    if (inject.kind != Injection::Kind::None &&
        inject.step < args.steps) {
        sim.run(inject.step);
        switch (inject.kind) {
        case Injection::Kind::Nan:
            if (!sim.session().debugPoisonMembrane(0))
                warn("health inject: backend cannot represent NaN");
            break;
        case Injection::Kind::Rate:
            sim.session().debugInjectRateExplosion();
            break;
        case Injection::Kind::Stall: {
            const double sec =
                args.watchdogTimeout > 0.0
                    ? args.watchdogTimeout * 4.0 + 1.0
                    : 1.0;
            inform("health inject: stalling for %.1f s", sec);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(sec));
            break;
        }
        default:
            break;
        }
        sim.run(args.steps - inject.step);
    } else if (args.checkpointEvery == 0) {
        sim.run(args.steps);
    } else {
        uint64_t remaining = args.steps;
        while (remaining > 0) {
            const uint64_t untilNext =
                args.checkpointEvery -
                (sim.session().currentStep() % args.checkpointEvery);
            const uint64_t chunk =
                std::min(remaining, untilNext);
            sim.run(chunk);
            remaining -= chunk;
            if (sim.session().currentStep() % args.checkpointEvery ==
                0) {
                const std::string path =
                    args.checkpointDir + "/checkpoint-" +
                    std::to_string(sim.session().currentStep()) +
                    ".fxc";
                if (sim.saveCheckpointFile(path))
                    inform("wrote checkpoint %s", path.c_str());
            }
        }
    }

    if (watchdog)
        watchdog->stop();

    SimulationSession &session = sim.session();
    const PhaseStats &st = session.stats();
    std::printf("%s: %zu neurons, %zu synapses, backend=%s, "
                "engine=%s%s\n",
                title.c_str(), net.numNeurons(), net.numSynapses(),
                backendName(args.backend), sim.activeEngine(),
                sim.adaptive() ? " (adaptive)" : "");
    if (sim.switches() > 0)
        std::printf("engine switches: %llu (crossover rate %.5f "
                    "spikes/neuron/step)\n",
                    static_cast<unsigned long long>(sim.switches()),
                    sim.crossoverRate());
    std::printf("steps=%llu spikes=%llu rate=%.5f/neuron/step "
                "synapse-events=%llu\n",
                static_cast<unsigned long long>(st.steps),
                static_cast<unsigned long long>(st.spikes),
                session.meanRate(),
                static_cast<unsigned long long>(st.synapseEvents));
    std::printf("wall time: stimulus %.2f ms, neuron %.2f ms, "
                "synapse %.2f ms\n",
                st.stimulusSec * 1e3, st.neuronSec * 1e3,
                st.synapseSec * 1e3);
    if (ieRule) {
        std::printf("intrinsic excitability: mean threshold offset "
                    "%+.5f after %llu steps\n",
                    ieRule->meanOffset(),
                    static_cast<unsigned long long>(st.steps));
    }
    if (st.modelNeuronSec > 0.0) {
        std::printf("modelled hardware neuron time: %.3f ms "
                    "(%.1fx vs this host's reference loop)\n",
                    st.modelNeuronSec * 1e3,
                    st.neuronSec / st.modelNeuronSec);
    }

    if (args.stats) {
        std::ostringstream oss;
        session.printStats(oss);
        std::fputs(oss.str().c_str(), stdout);
    }

    if (args.raster) {
        std::printf("\n%s",
                    renderRaster(session.spikeEvents(), net.numNeurons(),
                                 st.steps)
                        .c_str());
        const auto rate = populationRate(
            session.spikeEvents(), net.numNeurons(), st.steps,
            std::max<uint64_t>(1, st.steps / 72));
        std::printf("rate    %s\n",
                    renderRateSparkline(rate).c_str());
    }
    if (!args.csv.empty()) {
        std::ofstream os(args.csv);
        if (!os)
            fatal("cannot open '%s'", args.csv.c_str());
        writeSpikesCsv(os, session.spikeEvents());
        inform("wrote %zu spike events to %s",
               session.spikeEvents().size(), args.csv.c_str());
    }
    if (!args.report.empty() && session.writeRunReport(args.report))
        inform("wrote run report to %s", args.report.c_str());
    if (!args.trace.empty() &&
        telemetry::writeTraceFile(args.trace)) {
        inform("wrote %zu trace events to %s",
               telemetry::traceEventCount(), args.trace.c_str());
    }
    // Only for an explicitly traced run: the watchdog's implicit
    // flight recorder is a ring for the crash dump, where losing the
    // oldest events on a long run is by design.
    if (!args.trace.empty() && telemetry::traceDropped() > 0) {
        warn("flight recorder dropped %llu trace events (per-thread "
             "capacity %zu); raise TelemetryConfig::traceCapacity or "
             "shorten the traced run",
             static_cast<unsigned long long>(
                 telemetry::traceDropped()),
             telemetry::config().traceCapacity);
    }
    return 0;
}
