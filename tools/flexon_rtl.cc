/**
 * @file
 * flexon_rtl — emit the spatially folded Flexon Verilog for a neuron
 * model (the code-generator path of Section VII-B, ending in RTL).
 *
 * Usage:
 *   flexon_rtl MODEL [module_name]       # emit the module
 *   flexon_rtl --testbench MODEL [name]  # emit a golden testbench
 *   flexon_rtl --list
 */

#include <cstdio>
#include <optional>
#include <string>

#include "backend/verilog.hh"

using namespace flexon;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: flexon_rtl MODEL [module_name]\n"
                     "       flexon_rtl --testbench MODEL [name]\n"
                     "       flexon_rtl --list\n");
        return 2;
    }
    std::string arg = argv[1];
    if (arg == "--list") {
        for (ModelKind kind : allModels())
            std::printf("%s\n", modelName(kind));
        return 0;
    }

    bool testbench = false;
    int model_idx = 1;
    if (arg == "--testbench") {
        if (argc < 3) {
            std::fprintf(stderr, "missing MODEL\n");
            return 2;
        }
        testbench = true;
        model_idx = 2;
        arg = argv[model_idx];
    }
    const std::optional<ModelKind> kind = modelFromName(arg);
    if (!kind) {
        std::fprintf(stderr,
                     "unknown model '%s'; builtin models:\n",
                     arg.c_str());
        for (ModelKind k : allModels())
            std::fprintf(stderr, "  %s\n", modelName(k));
        return 2;
    }
    const CompiledNeuron compiled = compileModel(*kind);
    const std::string module = argc > model_idx + 1
                                   ? argv[model_idx + 1]
                                   : "flexon_folded_neuron";
    const std::string text =
        testbench ? emitFoldedTestbench(compiled, 200, 1, module)
                  : emitFoldedVerilog(compiled, module) + "\n" +
                        emitFastExpVerilog();
    std::fputs(text.c_str(), stdout);
    return 0;
}
