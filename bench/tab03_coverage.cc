/**
 * @file
 * Table III reproduction: the feature combinations implementing each
 * published neuron model, plus a live demonstration that both Flexon
 * variants simulate every model (compile + run + compare spike
 * counts against the double-precision reference).
 */

#include <cstdio>
#include <iostream>

#include "backend/codegen.hh"
#include "common/table.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Table III: feature combinations for the "
                "published neuron models ===\n\n");

    std::vector<std::string> header = {"Neuron Model"};
    for (size_t i = 0; i < numFeatures; ++i)
        header.push_back(featureName(static_cast<Feature>(i)));
    header.push_back("signals");
    header.push_back("divergence");

    Table table(header);
    for (ModelKind kind : allModels()) {
        if (kind == ModelKind::LIF)
            continue; // the baseline model, not a Table III row
        const FeatureSet fs = modelFeatures(kind);
        std::vector<std::string> row = {modelName(kind)};
        for (size_t i = 0; i < numFeatures; ++i)
            row.push_back(fs.has(static_cast<Feature>(i)) ? "x" : "");

        const CompiledNeuron compiled = compileModel(kind);
        row.push_back(std::to_string(compiled.programLength()));
        // Folded-Flexon vs reference spike-count divergence over a
        // 20k-step pseudo-random run (the Brian cross-check role).
        row.push_back(
            Table::num(verifyCompiled(compiled, 20000, 2026), 4));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::printf("\n'signals' = control signals per neuron evaluation "
                "on spatially folded Flexon.\n");
    std::printf("'divergence' = relative spike-count difference vs "
                "the reference model\n(0 = identical; the paper "
                "verifies against Brian the same way).\n");
    return 0;
}
