/**
 * @file
 * Ablation: the 22-bit membrane-potential storage truncation of
 * Section IV-B1.
 *
 * The paper claims the truncation (32 -> 22 bits per stored membrane
 * potential, a 31.3 % reduction) "does not affect our SNN simulation
 * results". This ablation quantifies that claim: for hard-threshold
 * models the spike trains with and without truncation are compared
 * against the double-precision reference across drive levels.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/random.hh"
#include "common/table.hh"
#include "features/model_table.hh"
#include "flexon/neuron.hh"
#include "models/reference_neuron.hh"

using namespace flexon;

namespace {

struct Counts
{
    int reference;
    int plain;
    int truncated;
};

Counts
runOne(ModelKind kind, double drive, int steps, uint64_t seed)
{
    const NeuronParams p = defaultParams(kind);
    FlexonConfig plain_cfg = FlexonConfig::fromParams(p);
    FlexonConfig trunc_cfg = plain_cfg;
    trunc_cfg.truncateStorage = true;

    ReferenceNeuron ref(p);
    FlexonNeuron plain(plain_cfg);
    FlexonNeuron trunc(trunc_cfg);

    const bool cub = p.features.has(Feature::CUB);
    Rng rng(seed);
    Counts c{0, 0, 0};
    for (int t = 0; t < steps; ++t) {
        const double raw =
            rng.bernoulli(0.25) ? drive * rng.uniform(0.5, 1.5) : 0.0;
        const double scaled_raw = cub ? raw * 100.0 : raw;
        const Fix in = plain_cfg.scaleWeight(scaled_raw);
        c.reference += ref.step(scaled_raw);
        c.plain += plain.step(in);
        c.truncated += trunc.step(in);
    }
    return c;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: 22-bit membrane storage truncation "
                "(Section IV-B1) ===\n\n");
    std::printf("Storage: 32 -> 22 bits per membrane potential "
                "(31.3%% smaller), valid for\nhard-threshold models "
                "whose v stays within [0, 1).\n\n");

    Table table({"Model", "Drive", "Ref spikes", "Flexon",
                 "Flexon+trunc", "trunc err%"});

    const int steps = 40000;
    for (ModelKind kind :
         {ModelKind::SLIF, ModelKind::LLIF, ModelKind::DSRM0,
          ModelKind::DLIF}) {
        for (double drive : {0.3, 0.5, 0.8}) {
            const Counts c = runOne(kind, drive, steps, 17);
            const double err =
                c.plain == 0
                    ? 0.0
                    : 100.0 * std::abs(c.truncated - c.plain) /
                          static_cast<double>(c.plain);
            table.addRow({modelName(kind), Table::num(drive, 1),
                          std::to_string(c.reference),
                          std::to_string(c.plain),
                          std::to_string(c.truncated),
                          Table::num(err, 2)});
        }
    }
    table.print(std::cout);
    std::printf("\nExpected shape: trunc err%% ~ 0 for hard-threshold "
                "models — the paper's claim\nthat the optimization "
                "does not affect simulation results.\n");
    return 0;
}
