/**
 * @file
 * Table I reproduction: the SNNs collected from prior neuroscience
 * research, with the structural parameters our generators reproduce
 * and a verification column — the measured synapse count of a
 * generated instance against the published density.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "nets/table1.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Table I: the collected SNN benchmarks ===\n\n");

    Table table({"Name", "Neurons", "Synapses", "Neuron Model",
                 "Notes", "gen@1/20 n", "gen@1/20 syn",
                 "density err%"});

    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        BenchmarkInstance inst = buildBenchmark(spec, 20.0, 7);
        const double expected_syn =
            static_cast<double>(spec.synapses) / (20.0 * 20.0);
        const double err =
            100.0 *
            std::abs(static_cast<double>(inst.network.numSynapses()) -
                     expected_syn) /
            expected_syn;
        table.addRow({spec.name, std::to_string(spec.neurons),
                      std::to_string(spec.synapses),
                      spec.model,
                      std::string(solverName(spec.solver)) +
                          (spec.gpuNative ? " (GPU)" : ""),
                      std::to_string(inst.network.numNeurons()),
                      std::to_string(inst.network.numSynapses()),
                      Table::num(err, 1)});
    }
    table.print(std::cout);

    std::printf("\nThe 1/20-scale generated instances preserve the "
                "published connection density\n(err%% is binomial "
                "sampling noise). Izhikevich and Nowotny were "
                "collected from\nGeNN (GPU) in the paper; both use "
                "Euler integration.\n");
    return 0;
}
