/**
 * @file
 * Ablation: a complete Flexon-based accelerator.
 *
 * abl_amdahl shows that offloading only neuron computation caps the
 * end-to-end speedup at 1/(1 - neuron share). This bench adds the
 * modelled stimulus and synapse-calculation stages next to the
 * folded Flexon array and recomputes the end-to-end step speedup
 * over the CPU — quantifying how much of the Figure 13 neuron-phase
 * gain a full system retains, and where it becomes memory-bound.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "folded/array.hh"
#include "hwmodel/baselines.hh"
#include "hwmodel/full_system.hh"
#include "nets/table1.hh"

using namespace flexon;

int
main()
{
    std::printf("=== Ablation: end-to-end step time of a full "
                "accelerator (folded array +\nstimulus + synapse "
                "stages) vs the CPU ===\n\n");

    Table table({"SNN", "CPU e2e [us]", "accel e2e [us]", "stim%",
                 "neuron%", "syn%", "speedup"});
    std::vector<double> speedups;

    for (const BenchmarkSpec &spec : table1Benchmarks()) {
        // CPU end-to-end: neuron phase time over its Figure 3 share.
        const PhaseShares shares =
            phaseShares(Platform::CpuXeon, spec);
        const double cpu_neuron = neuronPhaseSeconds(
            Platform::CpuXeon, spec, spec.neurons);
        const double cpu_total = cpu_neuron / shares.neuron;

        // Accelerator: folded array + modelled stages.
        FoldedFlexonArray array;
        array.addPopulation(
            FlexonConfig::fromParams(benchmarkParams(spec)),
            spec.neurons);
        const double neuron_sec =
            static_cast<double>(array.cyclesPerStep()) /
            array.clockHz();
        const StepActivity activity = benchmarkActivity(spec);
        const FullSystemStep step =
            fullSystemStep(activity, neuron_sec);

        const double speedup = cpu_total / step.totalSec();
        speedups.push_back(speedup);
        table.addRow(
            {spec.name, Table::num(cpu_total * 1e6, 1),
             Table::num(step.totalSec() * 1e6, 2),
             Table::num(100.0 * step.stimulusSec / step.totalSec(),
                        0),
             Table::num(100.0 * step.neuronSec / step.totalSec(), 0),
             Table::num(100.0 * step.synapseSec / step.totalSec(),
                        0),
             Table::ratio(speedup, 1)});
    }
    table.print(std::cout);

    std::printf("\nGeomean end-to-end speedup with all three stages "
                "in hardware: %.1fx —\ncompare ~3x when only the "
                "neuron phase is offloaded (abl_amdahl). The\n"
                "synapse stage dominates the dense benchmarks "
                "(Izhikevich: 1000 synapses per\nneuron) where the "
                "design becomes DRAM-bandwidth-bound.\n",
                geomean(speedups));
    return 0;
}
