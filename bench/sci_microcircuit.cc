/**
 * @file
 * Potjans-Diesmann microcircuit scenario benchmarks (the PR 6
 * sparse-activity study): realistic few-Hz cortical activity is the
 * regime where the dense delivery schedule wastes its time on empty
 * (shard, bucket) streams and full-slot clears.
 *
 *   BM_MicrocircuitSynapsePhase  synapse phase in isolation, real
 *       recorded spike activity replayed through the router with the
 *       sparse fast path on vs. off (the PR 5 schedule), at a
 *       background (~7 Hz) and a driven (~10x) regime.
 *   BM_MicrocircuitStep  full-step cost of the dense engine (sparse
 *       and legacy delivery), the event-driven engine and the
 *       rate-adaptive auto session on the same scenario.
 *
 * All variants produce bit-identical spike trains (enforced in
 * tests/test_routing.cc and tests/test_session.cc); these benchmarks
 * only measure the schedules.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/health.hh"
#include "nets/potjans_diesmann.hh"
#include "plan/calibration.hh"
#include "registry/registry.hh"
#include "snn/auto_engine.hh"
#include "snn/routing.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

/** Scale 20 microcircuit: ~3.9k neurons, ~750k synapses. */
constexpr double benchScale = 20.0;
/** Past the silent onset transient, into the sustained regime. */
constexpr uint64_t warmupSteps = 2000;

MicrocircuitInstance
benchInstance(double rateScale)
{
    MicrocircuitOptions opts;
    opts.scale = benchScale;
    opts.seed = 1;
    opts.rateScale = rateScale;
    // The asynchronous-irregular operating point: weaker recurrence
    // with compensating inhibition and external drive keeps the
    // downscaled column irregular instead of bursty-synchronous —
    // x1 is ~10 Hz with most active steps carrying 1-10 spikes, x8
    // is the dense high-rate regime (~25 spikes/step).
    opts.gain = 2.0;
    opts.inhibition = -6.0;
    opts.extGain = 2.0;
    return buildMicrocircuit(opts);
}

/**
 * Real per-step fired lists from a warm microcircuit run: the
 * synapse-phase benchmarks replay genuine spatio-temporal sparsity,
 * not a synthetic stride pattern.
 */
std::vector<std::vector<uint32_t>>
recordActivity(MicrocircuitInstance &inst, uint64_t steps)
{
    Simulator sim(inst.network, inst.stimulus);
    sim.run(warmupSteps);
    std::vector<std::vector<uint32_t>> fired;
    fired.reserve(steps);
    for (uint64_t t = 0; t < steps; ++t) {
        sim.stepOnce();
        const std::vector<uint8_t> &flags = sim.lastFired();
        std::vector<uint32_t> step;
        for (uint32_t n = 0; n < flags.size(); ++n)
            if (flags[n])
                step.push_back(n);
        fired.push_back(std::move(step));
    }
    return fired;
}

/**
 * Synapse phase in isolation: recorded fired lists streamed through
 * the router. Args: sparse fast path on/off, rate-scale multiplier,
 * worker-lane count.
 */
void
BM_MicrocircuitSynapsePhase(benchmark::State &state)
{
    const bool sparse = state.range(0) != 0;
    const auto rateScale = static_cast<double>(state.range(1));
    const auto threads = static_cast<size_t>(state.range(2));

    // A window long enough to cover the scenario's burst/quiet
    // mixture — the aggregate the schedules differ on.
    MicrocircuitInstance inst = benchInstance(rateScale);
    const auto fired = recordActivity(inst, 2048);

    SpikeRouter router(inst.network, threads);
    router.setSparseDelivery(sparse);
    uint64_t t = 0;
    for (const auto &step : fired) // warm the ring
        router.routeStep(t++, step);

    uint64_t spikes = 0;
    for (const auto &step : fired)
        spikes += step.size();
    state.SetLabel(std::string(sparse ? "sparse" : "legacy") + "/x" +
                   std::to_string(state.range(1)) + "/t" +
                   std::to_string(threads));

    for (auto _ : state) {
        router.routeStep(t, fired[t % fired.size()]);
        ++t;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["spikes_per_step"] = benchmark::Counter(
        static_cast<double>(spikes) /
        static_cast<double>(fired.size()));
}

/**
 * Full-step cost per engine. Args: engine (0 = dense with the legacy
 * PR 5 delivery, 1 = dense sparse, 2 = event-driven, 3 = auto),
 * rate-scale multiplier.
 */
void
BM_MicrocircuitStep(benchmark::State &state)
{
    const int64_t engine = state.range(0);
    const auto rateScale = static_cast<double>(state.range(1));
    MicrocircuitInstance inst = benchInstance(rateScale);

    SimulatorOptions opts;
    opts.sparseDelivery = engine != 0;
    AutoEngineOptions autoOpts;
    autoOpts.engine = engine == 2   ? EngineKind::Event
                      : engine == 3 ? EngineKind::Auto
                                    : EngineKind::Dense;
    AutoSession sim(inst.network, inst.stimulus, opts, autoOpts);
    sim.run(warmupSteps);

    static const char *const names[] = {"legacy", "sparse", "event",
                                        "auto"};
    state.SetLabel(std::string(names[engine]) + "/x" +
                   std::to_string(state.range(1)));
    for (auto _ : state)
        sim.run(1);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["rate"] =
        benchmark::Counter(sim.session().meanRate());
}

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_MicrocircuitSynapsePhase)
    ->Args({0, 1, 1})
    ->Args({1, 1, 1})
    ->Args({0, 8, 1})
    ->Args({1, 8, 1})
    ->Args({0, 1, 4})
    ->Args({1, 1, 4})
    ->Args({0, 8, 4})
    ->Args({1, 8, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(flexon::BM_MicrocircuitStep)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({3, 8})
    ->Unit(benchmark::kMicrosecond);

#ifndef FLEXON_BENCH_BUILD_TYPE
#define FLEXON_BENCH_BUILD_TYPE "unknown"
#endif

int
main(int argc, char **argv)
{
    // Install before any benchmark builds a session: the auto rows'
    // engine choices come from the active calibration.
    const std::string calibration =
        flexon::plan::installCalibrationFromEnv();
    // FLEXON_HEALTH=0 disables the sampled invariant detectors: the
    // CI overhead gate A/Bs the default-on monitors against this.
    const char *const healthEnv = std::getenv("FLEXON_HEALTH");
    const bool healthOff =
        healthEnv != nullptr &&
        (std::string(healthEnv) == "0" ||
         std::string(healthEnv) == "off");
    flexon::health::setGloballyDisabled(healthOff);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // How the project was compiled (the packaged benchmark library's
    // own library_build_type key only describes itself); bench_diff
    // refuses records from unoptimized builds.
    benchmark::AddCustomContext("project_build_type",
                                FLEXON_BENCH_BUILD_TYPE);
    benchmark::AddCustomContext("calibration_version", calibration);
    benchmark::AddCustomContext("health_monitors",
                                healthOff ? "off" : "on");
    benchmark::AddCustomContext(
        "model_registry",
        flexon::ModelRegistry::instance().fingerprint());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
