/**
 * @file
 * Microbenchmarks: single-neuron update throughput of the reference
 * models (discrete, Euler-ODE, RKF45-ODE) and the two Flexon
 * functional models, across representative neuron models. These are
 * host-software numbers (the hardware timing model is separate);
 * they substantiate the Figure 3 claim that RKF45 neuron updates
 * dominate CPU simulation cost.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "features/model_table.hh"
#include "flexon/neuron.hh"
#include "folded/neuron.hh"
#include "models/ode_neuron.hh"
#include "models/reference_neuron.hh"

namespace flexon {
namespace {

ModelKind
kindArg(const benchmark::State &state)
{
    return static_cast<ModelKind>(state.range(0));
}

void
setLabel(benchmark::State &state)
{
    state.SetLabel(modelName(kindArg(state)));
}

void
BM_ReferenceDiscrete(benchmark::State &state)
{
    const NeuronParams p = defaultParams(kindArg(state));
    ReferenceNeuron n(p);
    setLabel(state);
    double in = 0.3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(n.step(in));
    }
}

void
BM_ReferenceEulerOde(benchmark::State &state)
{
    const NeuronParams p = defaultParams(kindArg(state));
    OdeNeuron n(p, SolverKind::Euler);
    setLabel(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(n.step(0.3));
    }
}

void
BM_ReferenceRkf45Ode(benchmark::State &state)
{
    const NeuronParams p = defaultParams(kindArg(state));
    OdeNeuron n(p, SolverKind::RKF45);
    setLabel(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(n.step(0.3));
    }
}

void
BM_FlexonFunctional(benchmark::State &state)
{
    const FlexonConfig c =
        FlexonConfig::fromParams(defaultParams(kindArg(state)));
    FlexonNeuron n(c);
    setLabel(state);
    const Fix in = c.scaleWeight(0.3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(n.step(in));
    }
}

void
BM_FoldedFunctional(benchmark::State &state)
{
    const FlexonConfig c =
        FlexonConfig::fromParams(defaultParams(kindArg(state)));
    FoldedFlexonNeuron n(c);
    setLabel(state);
    const Fix in = c.scaleWeight(0.3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(n.step(in));
    }
}

const std::vector<int64_t> kModels = {
    static_cast<int64_t>(ModelKind::LIF),
    static_cast<int64_t>(ModelKind::LLIF),
    static_cast<int64_t>(ModelKind::DLIF),
    static_cast<int64_t>(ModelKind::Izhikevich),
    static_cast<int64_t>(ModelKind::AdEx),
    static_cast<int64_t>(ModelKind::IFCondExpGsfaGrr),
};

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_ReferenceDiscrete)
    ->ArgsProduct({flexon::kModels});
BENCHMARK(flexon::BM_ReferenceEulerOde)
    ->ArgsProduct({flexon::kModels});
BENCHMARK(flexon::BM_ReferenceRkf45Ode)
    ->ArgsProduct({flexon::kModels});
BENCHMARK(flexon::BM_FlexonFunctional)
    ->ArgsProduct({flexon::kModels});
BENCHMARK(flexon::BM_FoldedFunctional)
    ->ArgsProduct({flexon::kModels});
