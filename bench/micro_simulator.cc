/**
 * @file
 * Microbenchmarks: full simulation-step cost of a scaled
 * Vogels-Abbott network on each neuron-computation backend, and the
 * scaling of the reference backend with network size.
 */

#include <benchmark/benchmark.h>

#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

void
BM_StepBackend(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 10.0, 3);
    SimulatorOptions opts;
    opts.backend = kind;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50); // warm up past the initial transient
    state.SetLabel(backendName(kind));
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

void
BM_StepRkf45Reference(benchmark::State &state)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 10.0, 3);
    SimulatorOptions opts;
    opts.mode = IntegrationMode::Continuous;
    opts.solver = SolverKind::RKF45;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

void
BM_ReferenceScaling(benchmark::State &state)
{
    const double scale = static_cast<double>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), scale, 3);
    Simulator sim(inst.network, inst.stimulus);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_StepBackend)
    ->Arg(static_cast<int>(flexon::BackendKind::Reference))
    ->Arg(static_cast<int>(flexon::BackendKind::Flexon))
    ->Arg(static_cast<int>(flexon::BackendKind::Folded));
BENCHMARK(flexon::BM_StepRkf45Reference);
BENCHMARK(flexon::BM_ReferenceScaling)->Arg(40)->Arg(20)->Arg(10);
