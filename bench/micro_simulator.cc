/**
 * @file
 * Microbenchmarks: full simulation-step cost of a scaled
 * Vogels-Abbott network on each neuron-computation backend, and the
 * scaling of the reference backend with network size.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/health.hh"
#include "common/random.hh"
#include "common/telemetry.hh"
#include "common/thread_pool.hh"
#include "nets/table1.hh"
#include "plan/calibration.hh"
#include "registry/registry.hh"
#include "snn/routing.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

void
BM_StepBackend(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 10.0, 3);
    SimulatorOptions opts;
    opts.backend = kind;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50); // warm up past the initial transient
    state.SetLabel(backendName(kind));
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

void
BM_StepRkf45Reference(benchmark::State &state)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 10.0, 3);
    SimulatorOptions opts;
    opts.mode = IntegrationMode::Continuous;
    opts.solver = SolverKind::RKF45;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

void
BM_ReferenceScaling(benchmark::State &state)
{
    const double scale = static_cast<double>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), scale, 3);
    Simulator sim(inst.network, inst.stimulus);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

/**
 * Full-step cost of each backend under the threaded execution
 * engine: Arg is the worker-lane count. Scale 4 (~1000 neurons,
 * ~21k synapses) gives the lanes enough work per dispatch for the
 * pool barrier (~ microseconds) to amortize.
 */
void
BM_StepThreaded(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    const auto threads = static_cast<size_t>(state.range(1));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 4.0, 3);
    SimulatorOptions opts;
    opts.backend = kind;
    opts.threads = threads;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    state.SetLabel(std::string(backendName(kind)) + "/t" +
                   std::to_string(threads));
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

/**
 * The continuous-mode (RKF45) reference backend is the paper's
 * neuron-computation-dominated case (Fig. 3), so it is where the
 * threaded neuron loop pays off most; sweep the lane count.
 */
void
BM_StepRkf45Threaded(benchmark::State &state)
{
    const auto threads = static_cast<size_t>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 4.0, 3);
    SimulatorOptions opts;
    opts.mode = IntegrationMode::Continuous;
    opts.solver = SolverKind::RKF45;
    opts.threads = threads;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

/**
 * Neuron-computation phase in isolation: one backend->step call on a
 * fixed sparse input buffer, with no synapse routing or stimulus
 * around it. This is the loop the per-population kernels specialize,
 * so it is the benchmark the kernel before/after comparison uses.
 * Args: backend kind, worker-lane count.
 */
void
BM_NeuronPhase(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    const auto threads = static_cast<size_t>(state.range(1));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 4.0, 3);
    auto backend = makeBackend(kind, inst.network,
                               IntegrationMode::Discrete,
                               SolverKind::Euler, threads);
    const size_t n = inst.network.numNeurons();
    // ~10 % of neurons receive an accumulated weight on synapse type
    // 0, the rest of the buffer stays zero — the sparsity a live
    // Vogels-Abbott synapse phase produces.
    std::vector<double> input(n * maxSynapseTypes, 0.0);
    Rng rng(7);
    for (size_t i = 0; i < n; ++i) {
        if (rng.uniform() < 0.1)
            input[i * maxSynapseTypes] = rng.uniform(0.0, 0.5);
    }
    std::vector<uint8_t> fired;
    backend->step(input, fired); // warm up / allocate
    state.SetLabel(std::string(backendName(kind)) + "/t" +
                   std::to_string(threads));
    for (auto _ : state)
        backend->step(input, fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}

/**
 * The pre-routing-table delivery path, kept here as the in-binary
 * baseline for BM_SynapsePhase: per target shard, a 64-bit
 * permutation over the synapse table gathered as 12-byte Synapse
 * records, the ring slot recomputed from the delay per event, and an
 * unconditional dense std::fill clear of the consumed slot.
 */
class LegacyRouter
{
  public:
    LegacyRouter(const Network &net, size_t shards)
        : ringDepth_(static_cast<size_t>(net.maxDelay()) + 1),
          slotSize_(net.numNeurons() * maxSynapseTypes),
          ring_(ringDepth_ * slotSize_, 0.0)
    {
        const size_t n = net.numNeurons();
        shards = std::min(shards == 0 ? 1 : shards, n);
        synapses_ = net.outgoing(0).data(); // rowStart(0) == 0

        std::vector<uint64_t> incoming(n, 0);
        for (uint32_t src = 0; src < n; ++src)
            for (const Synapse &syn : net.outgoing(src))
                ++incoming[syn.target];
        shardTargetBegin_.assign(shards + 1, 0);
        shardTargetBegin_[shards] = static_cast<uint32_t>(n);
        uint64_t accum = 0;
        size_t shard = 1;
        for (uint32_t t = 0; t < n && shard < shards; ++t) {
            accum += incoming[t];
            if (accum * shards >= net.numSynapses() * shard)
                shardTargetBegin_[shard++] = t + 1;
        }
        for (; shard < shards; ++shard)
            shardTargetBegin_[shard] = static_cast<uint32_t>(n);

        rowPtr_.assign(shards, {});
        synOrder_.reserve(net.numSynapses());
        std::vector<uint64_t> perShard;
        for (size_t s = 0; s < shards; ++s) {
            rowPtr_[s].assign(n + 1, 0);
            for (uint32_t src = 0; src < n; ++src) {
                const uint64_t base = net.rowStart(src);
                const auto row = net.outgoing(src);
                for (size_t k = 0; k < row.size(); ++k) {
                    if (row[k].target >= shardTargetBegin_[s] &&
                        row[k].target < shardTargetBegin_[s + 1])
                        synOrder_.push_back(base + k);
                }
                rowPtr_[s][src + 1] =
                    static_cast<uint64_t>(synOrder_.size());
            }
        }
    }

    void
    routeStep(uint64_t t, std::span<const uint32_t> fired)
    {
        const size_t shards = rowPtr_.size();
        double *const cur =
            ring_.data() + (t % ringDepth_) * slotSize_;
        ThreadPool::global().forEachLane(shards, [&](size_t s) {
            const uint32_t lo =
                shardTargetBegin_[s] * maxSynapseTypes;
            const uint32_t hi =
                shardTargetBegin_[s + 1] * maxSynapseTypes;
            std::fill(cur + lo, cur + hi, 0.0);
            const auto &rows = rowPtr_[s];
            uint64_t events = 0;
            for (const uint32_t n : fired) {
                for (uint64_t k = rows[n]; k < rows[n + 1]; ++k) {
                    const Synapse &syn = synapses_[synOrder_[k]];
                    ring_[((t + syn.delay) % ringDepth_) * slotSize_ +
                          syn.target * maxSynapseTypes + syn.type] +=
                        syn.weight;
                    ++events;
                }
            }
            benchmark::DoNotOptimize(events);
        });
    }

  private:
    size_t ringDepth_;
    size_t slotSize_;
    std::vector<double> ring_;
    const Synapse *synapses_;
    std::vector<uint32_t> shardTargetBegin_;
    std::vector<uint64_t> synOrder_;
    std::vector<std::vector<uint64_t>> rowPtr_;
};

/** Ascending fired list covering ratePct percent of the neurons. */
std::vector<uint32_t>
syntheticFired(size_t numNeurons, int64_t ratePct)
{
    const size_t stride =
        std::max<size_t>(1, static_cast<size_t>(100 / ratePct));
    std::vector<uint32_t> fired;
    for (size_t i = 0; i < numNeurons; i += stride)
        fired.push_back(static_cast<uint32_t>(i));
    return fired;
}

/**
 * Synapse-calculation phase in isolation: deliver a synthetic fired
 * list through the precompiled routing table (clear + route), the
 * loop the packed delivery records accelerate. Args: firing rate in
 * percent of the population (1 = sparse, 10 = Vogels-Abbott-like,
 * 100 = every neuron), worker-lane count.
 */
void
BM_SynapsePhase(benchmark::State &state)
{
    const int64_t ratePct = state.range(0);
    const auto threads = static_cast<size_t>(state.range(1));
    // Full-scale Vogels-Abbott: 4000 neurons, ~320k synapses — large
    // enough that delivery is memory-bound, the regime the packed
    // records target.
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 1.0, 3);
    SpikeRouter router(inst.network, threads);
    const std::vector<uint32_t> fired =
        syntheticFired(inst.network.numNeurons(), ratePct);

    uint64_t t = 0;
    router.routeStep(t++, fired); // events-per-step probe + warm-up
    const uint64_t perStep = router.events();
    state.SetLabel("r" + std::to_string(ratePct) + "/t" +
                   std::to_string(threads));
    for (auto _ : state)
        router.routeStep(t++, fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(perStep));
}

/**
 * The same phase through the pre-routing-table data path (Synapse
 * gather via a 64-bit permutation, dense slot clears): the in-binary
 * before/after baseline for BM_SynapsePhase.
 */
void
BM_SynapsePhaseLegacy(benchmark::State &state)
{
    const int64_t ratePct = state.range(0);
    const auto threads = static_cast<size_t>(state.range(1));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 1.0, 3);
    LegacyRouter router(inst.network, threads);
    const std::vector<uint32_t> fired =
        syntheticFired(inst.network.numNeurons(), ratePct);
    uint64_t events = 0;
    for (const uint32_t n : fired)
        events += inst.network.outgoing(n).size();

    uint64_t t = 0;
    router.routeStep(t++, fired); // warm-up
    state.SetLabel("r" + std::to_string(ratePct) + "/t" +
                   std::to_string(threads));
    for (auto _ : state)
        router.routeStep(t++, fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(events));
}

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_StepBackend)
    ->Arg(static_cast<int>(flexon::BackendKind::Reference))
    ->Arg(static_cast<int>(flexon::BackendKind::Flexon))
    ->Arg(static_cast<int>(flexon::BackendKind::Folded));
BENCHMARK(flexon::BM_StepRkf45Reference);
BENCHMARK(flexon::BM_ReferenceScaling)->Arg(40)->Arg(20)->Arg(10);
BENCHMARK(flexon::BM_StepThreaded)
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 2})
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 4});
BENCHMARK(flexon::BM_StepRkf45Threaded)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(flexon::BM_NeuronPhase)
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 4});
BENCHMARK(flexon::BM_SynapsePhase)
    ->Args({1, 1})
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({1, 4})
    ->Args({10, 4})
    ->Args({100, 4});
BENCHMARK(flexon::BM_SynapsePhaseLegacy)
    ->Args({1, 1})
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({10, 4});

/**
 * Custom main (overrides the benchmark_main archive member):
 * identical to the stock one plus environment-variable telemetry
 * hooks, since google-benchmark owns the argv namespace:
 *
 *   FLEXON_TELEMETRY=1         enable the deep counters
 *   FLEXON_TRACE=trace.json    enable + dump the flight recorder
 *   FLEXON_REPORT=report.json  dump pool/global metrics on exit
 *   FLEXON_HEALTH=0            disable the health monitors (A/B
 *                              overhead gate; default is sampled-on)
 *
 * The report carries the pool lane accounting and the process-wide
 * registry (kernel dispatch mix); per-simulator sections stay empty
 * because each benchmark owns short-lived simulators.
 */

#ifndef FLEXON_BENCH_BUILD_TYPE
#define FLEXON_BENCH_BUILD_TYPE "unknown"
#endif

int
main(int argc, char **argv)
{
    const char *const trace = std::getenv("FLEXON_TRACE");
    const char *const report = std::getenv("FLEXON_REPORT");
    const char *const detail = std::getenv("FLEXON_TELEMETRY");
    const char *const healthEnv = std::getenv("FLEXON_HEALTH");
    const bool healthOff =
        healthEnv != nullptr &&
        (std::string(healthEnv) == "0" ||
         std::string(healthEnv) == "off");
    flexon::health::setGloballyDisabled(healthOff);
    if ((detail != nullptr && detail[0] != '\0' &&
         detail[0] != '0') ||
        trace != nullptr) {
        flexon::telemetry::TelemetryConfig config;
        config.detail = true;
        config.trace = trace != nullptr;
        flexon::telemetry::configure(config);
    }

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // The library's own library_build_type context key describes the
    // packaged benchmark library, not this code; record how the
    // project itself was compiled so tools/bench_diff can reject
    // unoptimized records.
    benchmark::AddCustomContext("project_build_type",
                                FLEXON_BENCH_BUILD_TYPE);
    benchmark::AddCustomContext(
        "calibration_version",
        flexon::plan::installCalibrationFromEnv());
    // Records whether the sampled invariant detectors were live for
    // this run, so the health-overhead A/B gate can label its sides.
    benchmark::AddCustomContext("health_monitors",
                                healthOff ? "off" : "on");
    // Which neuron models were registered (and with what parameters,
    // via the descriptor hash): bench_diff flags baseline/candidate
    // records taken against different registries.
    benchmark::AddCustomContext(
        "model_registry",
        flexon::ModelRegistry::instance().fingerprint());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (report != nullptr) {
        flexon::telemetry::ReportContext context;
        context.config.emplace_back(
            "binary",
            flexon::telemetry::jsonQuoted("micro_simulator"));
        flexon::telemetry::writeReportFile(report, context);
    }
    if (trace != nullptr)
        flexon::telemetry::writeTraceFile(trace);
    return 0;
}
