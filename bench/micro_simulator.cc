/**
 * @file
 * Microbenchmarks: full simulation-step cost of a scaled
 * Vogels-Abbott network on each neuron-computation backend, and the
 * scaling of the reference backend with network size.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.hh"
#include "nets/table1.hh"
#include "snn/simulator.hh"

namespace flexon {
namespace {

void
BM_StepBackend(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 10.0, 3);
    SimulatorOptions opts;
    opts.backend = kind;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50); // warm up past the initial transient
    state.SetLabel(backendName(kind));
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

void
BM_StepRkf45Reference(benchmark::State &state)
{
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 10.0, 3);
    SimulatorOptions opts;
    opts.mode = IntegrationMode::Continuous;
    opts.solver = SolverKind::RKF45;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

void
BM_ReferenceScaling(benchmark::State &state)
{
    const double scale = static_cast<double>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), scale, 3);
    Simulator sim(inst.network, inst.stimulus);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

/**
 * Full-step cost of each backend under the threaded execution
 * engine: Arg is the worker-lane count. Scale 4 (~1000 neurons,
 * ~21k synapses) gives the lanes enough work per dispatch for the
 * pool barrier (~ microseconds) to amortize.
 */
void
BM_StepThreaded(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    const auto threads = static_cast<size_t>(state.range(1));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 4.0, 3);
    SimulatorOptions opts;
    opts.backend = kind;
    opts.threads = threads;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    state.SetLabel(std::string(backendName(kind)) + "/t" +
                   std::to_string(threads));
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

/**
 * The continuous-mode (RKF45) reference backend is the paper's
 * neuron-computation-dominated case (Fig. 3), so it is where the
 * threaded neuron loop pays off most; sweep the lane count.
 */
void
BM_StepRkf45Threaded(benchmark::State &state)
{
    const auto threads = static_cast<size_t>(state.range(0));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 4.0, 3);
    SimulatorOptions opts;
    opts.mode = IntegrationMode::Continuous;
    opts.solver = SolverKind::RKF45;
    opts.threads = threads;
    Simulator sim(inst.network, inst.stimulus, opts);
    sim.run(50);
    for (auto _ : state)
        sim.stepOnce();
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(inst.network.numNeurons()));
}

/**
 * Neuron-computation phase in isolation: one backend->step call on a
 * fixed sparse input buffer, with no synapse routing or stimulus
 * around it. This is the loop the per-population kernels specialize,
 * so it is the benchmark the kernel before/after comparison uses.
 * Args: backend kind, worker-lane count.
 */
void
BM_NeuronPhase(benchmark::State &state)
{
    const auto kind = static_cast<BackendKind>(state.range(0));
    const auto threads = static_cast<size_t>(state.range(1));
    BenchmarkInstance inst =
        buildBenchmark(findBenchmark("Vogels-Abbott"), 4.0, 3);
    auto backend = makeBackend(kind, inst.network,
                               IntegrationMode::Discrete,
                               SolverKind::Euler, threads);
    const size_t n = inst.network.numNeurons();
    // ~10 % of neurons receive an accumulated weight on synapse type
    // 0, the rest of the buffer stays zero — the sparsity a live
    // Vogels-Abbott synapse phase produces.
    std::vector<double> input(n * maxSynapseTypes, 0.0);
    Rng rng(7);
    for (size_t i = 0; i < n; ++i) {
        if (rng.uniform() < 0.1)
            input[i * maxSynapseTypes] = rng.uniform(0.0, 0.5);
    }
    std::vector<uint8_t> fired;
    backend->step(input, fired); // warm up / allocate
    state.SetLabel(std::string(backendName(kind)) + "/t" +
                   std::to_string(threads));
    for (auto _ : state)
        backend->step(input, fired);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
}

} // namespace
} // namespace flexon

BENCHMARK(flexon::BM_StepBackend)
    ->Arg(static_cast<int>(flexon::BackendKind::Reference))
    ->Arg(static_cast<int>(flexon::BackendKind::Flexon))
    ->Arg(static_cast<int>(flexon::BackendKind::Folded));
BENCHMARK(flexon::BM_StepRkf45Reference);
BENCHMARK(flexon::BM_ReferenceScaling)->Arg(40)->Arg(20)->Arg(10);
BENCHMARK(flexon::BM_StepThreaded)
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 2})
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 4});
BENCHMARK(flexon::BM_StepRkf45Threaded)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(flexon::BM_NeuronPhase)
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Reference), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Flexon), 4})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 1})
    ->Args({static_cast<int>(flexon::BackendKind::Folded), 4});
